//! D-NUCA bank layout: many small d-groups (paper Figure 3(a)).
//!
//! The best-performing D-NUCA divides an 8-MB cache into 128 × 64-KB banks,
//! each with its own tag array, reached over a switched network. Each bank
//! is a cluster of four 16-KB subarrays; network latency is counted in
//! switch hops from the core to the bank's position.

use crate::LShapeFloorplan;
use simbase::Capacity;

/// Placement of D-NUCA's small banks over the floorplan.
#[derive(Debug, Clone)]
pub struct BankPlan {
    /// Per-bank mean route distance in mm (banks sorted nearest-first).
    route_mm: Vec<f64>,
    /// Per-bank network hop count from the core.
    hops: Vec<u32>,
    bank_capacity: Capacity,
}

impl BankPlan {
    /// Lays `n_banks` equal banks over the floorplan, nearest-first.
    ///
    /// # Panics
    ///
    /// Panics if `n_banks` is zero or does not evenly divide the subarray
    /// count.
    pub fn partition(fp: &LShapeFloorplan, n_banks: usize) -> Self {
        assert!(n_banks > 0, "need at least one bank");
        let total = fp.n_subarrays();
        assert!(
            total.is_multiple_of(n_banks),
            "{n_banks} banks must evenly divide {total} subarrays"
        );
        let per = total / n_banks;
        // One switch per bank cluster: hop pitch calibrated so the
        // per-megabyte average D-NUCA latencies land on Table 4's 7..29
        // cycle ramp.
        let hop_mm = fp.grid().subarray_mm() * 1.75;
        let mut route_mm = Vec::with_capacity(n_banks);
        let mut hops = Vec::with_capacity(n_banks);
        for b in 0..n_banks {
            let mm = fp.grid().mean_route_mm(b * per, (b + 1) * per);
            route_mm.push(mm);
            hops.push((mm / hop_mm).round() as u32);
        }
        BankPlan {
            route_mm,
            hops,
            bank_capacity: Capacity::from_bytes(per as u64 * fp.subarray_bytes()),
        }
    }

    /// Number of banks.
    pub fn n_banks(&self) -> usize {
        self.route_mm.len()
    }

    /// Capacity of each bank.
    pub fn bank_capacity(&self) -> Capacity {
        self.bank_capacity
    }

    /// Route distance of bank `b` (nearest-first order) in mm.
    pub fn route_mm(&self, b: usize) -> f64 {
        self.route_mm[b]
    }

    /// Switched-network hop count to bank `b`.
    pub fn hops(&self, b: usize) -> u32 {
        self.hops[b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan128() -> BankPlan {
        let fp = LShapeFloorplan::micro2003(Capacity::from_mib(8));
        BankPlan::partition(&fp, 128)
    }

    #[test]
    fn dnuca_has_128_64kb_banks() {
        let p = plan128();
        assert_eq!(p.n_banks(), 128);
        assert_eq!(p.bank_capacity(), Capacity::from_kib(64));
    }

    #[test]
    fn bank_distances_are_non_decreasing() {
        let p = plan128();
        for b in 1..p.n_banks() {
            assert!(p.route_mm(b) >= p.route_mm(b - 1));
        }
    }

    #[test]
    fn closest_bank_is_adjacent_and_cheap() {
        let p = plan128();
        assert!(p.route_mm(0) < 0.5, "closest bank at {} mm", p.route_mm(0));
        assert_eq!(p.hops(0), 0);
    }

    #[test]
    fn farthest_bank_needs_many_hops() {
        let p = plan128();
        let far = p.hops(127);
        assert!(far >= 8, "farthest bank only {far} hops");
    }

    #[test]
    #[should_panic(expected = "evenly divide")]
    fn uneven_bank_partition_panics() {
        let fp = LShapeFloorplan::micro2003(Capacity::from_mib(8));
        let _ = BankPlan::partition(&fp, 100);
    }
}
