//! The subarray grid: positions of SRAM subarrays on the die and their
//! routing distance from the processor core.
//!
//! The core sits in the corner of the die at the grid origin; subarrays fill
//! the remaining L-shaped region. Routing distance is Manhattan distance
//! from the core edge, which is how the paper's wire-delay model (modified
//! Cacti, Section 4) accounts "for the wire delay to reach each d-group
//! based on the distance to route around any closer d-groups".

use std::fmt;

/// Identifies one subarray within a [`SubarrayGrid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubarrayId(pub usize);

impl fmt::Display for SubarrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub{}", self.0)
    }
}

/// One subarray's placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Grid column (0 at the core corner).
    pub col: u32,
    /// Grid row (0 at the core corner).
    pub row: u32,
    /// Manhattan routing distance from the core edge, in mm.
    pub route_mm: f64,
}

/// A set of subarrays placed on the die, sorted nearest-first.
#[derive(Debug, Clone)]
pub struct SubarrayGrid {
    placements: Vec<Placement>,
    subarray_mm: f64,
    core_cells: u32,
}

impl SubarrayGrid {
    /// Places `n` subarrays in an L-shaped region around a corner core.
    ///
    /// The core occupies a `c × c` square of cells in the corner, where `c`
    /// is chosen as roughly half the die edge (matching Figure 3(b), where
    /// the core fills the unoccupied corner of the L). Cells are filled in
    /// increasing Manhattan distance from the core corner and the resulting
    /// list is sorted nearest-first.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `subarray_mm` is not positive.
    pub fn l_shape(n: usize, subarray_mm: f64) -> Self {
        assert!(n > 0, "grid must contain at least one subarray");
        assert!(subarray_mm > 0.0, "subarray edge must be positive");

        // Choose die dimensions: core is a square of `c` cells; the L-region
        // (die minus core) must hold `n` cells. Die edge `e` satisfies
        // e^2 - c^2 >= n with c ~ e/2 -> e ~ sqrt(4n/3).
        let e = ((4.0 * n as f64 / 3.0).sqrt().ceil()) as u32;
        let c = e / 2;

        let mut cells: Vec<(u32, u32)> = Vec::with_capacity((e * e) as usize);
        for row in 0..e {
            for col in 0..e {
                if row < c && col < c {
                    continue; // core corner
                }
                cells.push((col, row));
            }
        }
        // Nearest-first by Manhattan distance from the core *edge*: a cell
        // adjacent to the core has distance ~0.
        cells.sort_by_key(|&(col, row)| {
            let dx = col.saturating_sub(c);
            let dy = row.saturating_sub(c);
            // Cells alongside the core (col < c or row < c) are reached by
            // running straight out from the core face.
            let d = if col < c {
                dy
            } else if row < c {
                dx
            } else {
                dx + dy
            };
            (d, row, col)
        });
        assert!(
            cells.len() >= n,
            "L-region too small: {} cells for {} subarrays",
            cells.len(),
            n
        );
        cells.truncate(n);

        let placements = cells
            .into_iter()
            .map(|(col, row)| {
                let dx = col.saturating_sub(c) as f64;
                let dy = row.saturating_sub(c) as f64;
                let d = if col < c {
                    dy
                } else if row < c {
                    dx
                } else {
                    dx + dy
                };
                Placement {
                    col,
                    row,
                    route_mm: d * subarray_mm,
                }
            })
            .collect();

        SubarrayGrid {
            placements,
            subarray_mm,
            core_cells: c,
        }
    }

    /// Places `n` subarrays in a rectangular array above a full-width
    /// core strip — the "more aggressive, rectangular floorplan" the
    /// original NUCA work assumes (paper Section 5.1). Every column abuts
    /// the core, so routing distance is dominated by the row index alone
    /// and far subarrays sit closer than in the L-shape.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `subarray_mm` is not positive.
    pub fn rectangle(n: usize, subarray_mm: f64) -> Self {
        assert!(n > 0, "grid must contain at least one subarray");
        assert!(subarray_mm > 0.0, "subarray edge must be positive");
        // Four times as wide as tall: rows stay short, keeping worst-case
        // routes low (the aggressive part of this floorplan).
        let width = ((4.0 * n as f64).sqrt().ceil()) as u32;
        let rows = (n as u64).div_ceil(width as u64) as u32;
        let mut cells: Vec<(u32, u32)> = Vec::with_capacity(n);
        'outer: for row in 0..rows {
            for col in 0..width {
                cells.push((col, row));
                if cells.len() == n {
                    break 'outer;
                }
            }
        }
        // Nearest-first: distance is the row index (the core strip spans
        // the full width), with a small lateral term to reach the column.
        let center = width as f64 / 2.0;
        let mut placements: Vec<Placement> = cells
            .into_iter()
            .map(|(col, row)| Placement {
                col,
                row,
                // The full-width core strip gives every column a direct
                // vertical channel; lateral reach is mostly inside the
                // core's own wiring, discounted accordingly.
                route_mm: (row as f64 + (col as f64 - center).abs() / 8.0) * subarray_mm,
            })
            .collect();
        placements.sort_by(|a, b| {
            a.route_mm
                .partial_cmp(&b.route_mm)
                .expect("distances are finite")
                .then(a.row.cmp(&b.row))
                .then(a.col.cmp(&b.col))
        });
        SubarrayGrid {
            placements,
            subarray_mm,
            core_cells: 0,
        }
    }

    /// Number of subarrays.
    pub fn len(&self) -> usize {
        self.placements.len()
    }

    /// True if the grid holds no subarrays (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }

    /// Placement of subarray `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn placement(&self, id: SubarrayId) -> Placement {
        self.placements[id.0]
    }

    /// Routing distance of subarray `id` from the core, in mm.
    pub fn route_mm(&self, id: SubarrayId) -> f64 {
        self.placements[id.0].route_mm
    }

    /// Subarray edge length in mm.
    pub fn subarray_mm(&self) -> f64 {
        self.subarray_mm
    }

    /// Core size in grid cells (core is `core_cells × core_cells`).
    pub fn core_cells(&self) -> u32 {
        self.core_cells
    }

    /// Iterates over subarray ids nearest-first.
    pub fn iter(&self) -> impl Iterator<Item = SubarrayId> + '_ {
        (0..self.placements.len()).map(SubarrayId)
    }

    /// Mean routing distance over a contiguous nearest-first range of
    /// subarrays, in mm.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn mean_route_mm(&self, start: usize, end: usize) -> f64 {
        assert!(start < end && end <= self.placements.len(), "bad range {start}..{end}");
        let sum: f64 = self.placements[start..end].iter().map(|p| p.route_mm).sum();
        sum / (end - start) as f64
    }

    /// Maximum routing distance over a contiguous nearest-first range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn max_route_mm(&self, start: usize, end: usize) -> f64 {
        assert!(start < end && end <= self.placements.len(), "bad range {start}..{end}");
        self.placements[start..end]
            .iter()
            .map(|p| p.route_mm)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_sorted_nearest_first() {
        let g = SubarrayGrid::l_shape(512, 0.30);
        let mut last = -1.0;
        for id in g.iter() {
            let d = g.route_mm(id);
            assert!(d >= last, "distances must be non-decreasing");
            last = d;
        }
    }

    #[test]
    fn nearest_subarrays_touch_the_core() {
        let g = SubarrayGrid::l_shape(512, 0.30);
        assert_eq!(g.route_mm(SubarrayId(0)), 0.0);
    }

    #[test]
    fn farthest_subarray_is_several_mm_away() {
        let g = SubarrayGrid::l_shape(512, 0.30);
        let far = g.route_mm(SubarrayId(511));
        // 512 subarrays of 0.3 mm -> die edge ~ 8 mm; far corner is a
        // multi-mm route.
        assert!(far > 3.0 && far < 12.0, "far={far}");
    }

    #[test]
    fn no_subarray_in_core_region() {
        let g = SubarrayGrid::l_shape(100, 0.5);
        let c = g.core_cells();
        for id in g.iter() {
            let p = g.placement(id);
            assert!(p.col >= c || p.row >= c, "subarray {id} inside core");
        }
    }

    #[test]
    fn placements_are_unique() {
        let g = SubarrayGrid::l_shape(300, 0.30);
        let mut seen = std::collections::HashSet::new();
        for id in g.iter() {
            let p = g.placement(id);
            assert!(seen.insert((p.col, p.row)), "duplicate cell {:?}", (p.col, p.row));
        }
    }

    #[test]
    fn mean_and_max_route() {
        let g = SubarrayGrid::l_shape(512, 0.30);
        let near = g.mean_route_mm(0, 128);
        let far = g.mean_route_mm(384, 512);
        assert!(near < far);
        assert!(g.max_route_mm(0, 128) <= g.max_route_mm(0, 512));
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn mean_route_empty_range_panics() {
        let g = SubarrayGrid::l_shape(8, 0.30);
        let _ = g.mean_route_mm(3, 3);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_subarrays_panics() {
        let _ = SubarrayGrid::l_shape(0, 0.30);
    }

    #[test]
    fn rectangle_is_sorted_and_closer_than_l_shape() {
        let rect = SubarrayGrid::rectangle(512, 0.30);
        let ell = SubarrayGrid::l_shape(512, 0.30);
        let mut last = -1.0;
        for id in rect.iter() {
            let d = rect.route_mm(id);
            assert!(d >= last);
            last = d;
        }
        // The rectangle's mean route is shorter: every column touches the
        // core strip.
        assert!(
            rect.mean_route_mm(0, 512) < ell.mean_route_mm(0, 512),
            "rect {} vs L {}",
            rect.mean_route_mm(0, 512),
            ell.mean_route_mm(0, 512)
        );
    }

    #[test]
    fn rectangle_places_all_cells_uniquely() {
        let g = SubarrayGrid::rectangle(100, 0.5);
        let mut seen = std::collections::HashSet::new();
        for id in g.iter() {
            let p = g.placement(id);
            assert!(seen.insert((p.col, p.row)));
        }
        assert_eq!(seen.len(), 100);
    }
}
