//! Section 3.1 layout considerations: spare subarrays for hard errors and
//! block-bit spreading for soft-error (ECC) tolerance.
//!
//! The paper argues that large d-groups retain the conventional-cache
//! advantages of (a) sharing a few spare subarrays across many blocks and
//! (b) spreading each block's bits over many subarrays so one particle
//! strike corrupts at most the number of bits ECC can repair. NUCA's 64-KB
//! d-groups cannot share spares across d-groups because the groups neither
//! share row addresses nor have equal latency.

use crate::grid::SubarrayId;

/// How a block's bits are spread over the subarrays of one d-group.
#[derive(Debug, Clone)]
pub struct BitSpread {
    subarrays: Vec<SubarrayId>,
    bits_per_subarray: u32,
}

impl BitSpread {
    /// Spreads a block of `block_bits` over `subarrays`, as evenly as
    /// possible (paper: Itanium II spreads each block over many of its 135
    /// subarrays).
    ///
    /// # Panics
    ///
    /// Panics if `subarrays` is empty or `block_bits` is zero.
    pub fn even(subarrays: Vec<SubarrayId>, block_bits: u32) -> Self {
        assert!(!subarrays.is_empty(), "need at least one subarray");
        assert!(block_bits > 0, "block must have bits");
        let bits_per_subarray = block_bits.div_ceil(subarrays.len() as u32);
        BitSpread {
            subarrays,
            bits_per_subarray,
        }
    }

    /// Subarrays holding this block's bits.
    pub fn subarrays(&self) -> &[SubarrayId] {
        &self.subarrays
    }

    /// Bits of the block held in each subarray.
    pub fn bits_per_subarray(&self) -> u32 {
        self.bits_per_subarray
    }

    /// True if a single-subarray failure corrupts at most `ecc_bits`
    /// correctable bits of this block.
    pub fn tolerates_strike(&self, ecc_bits: u32) -> bool {
        self.bits_per_subarray <= ecc_bits
    }
}

/// Spare-subarray bookkeeping for one latency-uniform region (a NuRAPID
/// d-group, or a whole conventional cache).
///
/// Spares can only replace subarrays within the same region, because a spare
/// must share row addresses and access latency with the subarray it stands
/// in for (Section 3.2's argument for why NUCA's tiny d-groups cannot share
/// spares).
#[derive(Debug, Clone)]
pub struct SpareMap {
    region: Vec<SubarrayId>,
    spares: Vec<SubarrayId>,
    remapped: Vec<(SubarrayId, SubarrayId)>,
}

/// Error returned when a defective subarray cannot be remapped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemapError {
    /// The subarray is not part of this region.
    NotInRegion(SubarrayId),
    /// All spares in the region are already in use.
    OutOfSpares,
    /// The subarray was already remapped.
    AlreadyRemapped(SubarrayId),
}

impl std::fmt::Display for RemapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemapError::NotInRegion(s) => write!(f, "subarray {s} is not in this region"),
            RemapError::OutOfSpares => write!(f, "no spare subarrays remain"),
            RemapError::AlreadyRemapped(s) => write!(f, "subarray {s} already remapped"),
        }
    }
}

impl std::error::Error for RemapError {}

impl SpareMap {
    /// Creates a spare map: `region` data subarrays protected by `spares`
    /// (the Itanium II L3 has 2 spares for 135 subarrays).
    pub fn new(region: Vec<SubarrayId>, spares: Vec<SubarrayId>) -> Self {
        SpareMap {
            region,
            spares,
            remapped: Vec::new(),
        }
    }

    /// Number of unused spares.
    pub fn spares_left(&self) -> usize {
        self.spares.len()
    }

    /// Permanently remaps a defective subarray onto a spare (the on-die
    /// fuse programming step of chip test).
    ///
    /// # Errors
    ///
    /// Returns [`RemapError`] if the subarray is foreign, already remapped,
    /// or no spares remain.
    pub fn remap(&mut self, defective: SubarrayId) -> Result<SubarrayId, RemapError> {
        if !self.region.contains(&defective) {
            return Err(RemapError::NotInRegion(defective));
        }
        if self.remapped.iter().any(|&(d, _)| d == defective) {
            return Err(RemapError::AlreadyRemapped(defective));
        }
        let spare = self.spares.pop().ok_or(RemapError::OutOfSpares)?;
        self.remapped.push((defective, spare));
        Ok(spare)
    }

    /// Resolves a subarray through any remapping.
    pub fn resolve(&self, s: SubarrayId) -> SubarrayId {
        self.remapped
            .iter()
            .find(|&&(d, _)| d == s)
            .map(|&(_, spare)| spare)
            .unwrap_or(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(r: std::ops::Range<usize>) -> Vec<SubarrayId> {
        r.map(SubarrayId).collect()
    }

    #[test]
    fn even_spread_over_128_subarrays() {
        // A 128-byte block (1024 bits + ECC) over a 128-subarray d-group:
        // 8 bits per subarray.
        let s = BitSpread::even(ids(0..128), 1024);
        assert_eq!(s.bits_per_subarray(), 8);
        assert!(s.tolerates_strike(8));
        assert!(!s.tolerates_strike(7));
        assert_eq!(s.subarrays().len(), 128);
    }

    #[test]
    fn nuca_small_dgroup_concentrates_bits() {
        // NUCA's 64-KB d-group is only 4 subarrays: 256 bits per subarray,
        // far beyond typical ECC reach.
        let s = BitSpread::even(ids(0..4), 1024);
        assert_eq!(s.bits_per_subarray(), 256);
        assert!(!s.tolerates_strike(8));
    }

    #[test]
    fn uneven_division_rounds_up() {
        let s = BitSpread::even(ids(0..3), 10);
        assert_eq!(s.bits_per_subarray(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn spread_requires_subarrays() {
        let _ = BitSpread::even(vec![], 10);
    }

    #[test]
    fn spare_remap_and_resolve() {
        let mut m = SpareMap::new(ids(0..8), ids(8..10));
        assert_eq!(m.spares_left(), 2);
        let spare = m.remap(SubarrayId(3)).unwrap();
        assert_eq!(m.resolve(SubarrayId(3)), spare);
        assert_eq!(m.resolve(SubarrayId(4)), SubarrayId(4));
        assert_eq!(m.spares_left(), 1);
    }

    #[test]
    fn spare_remap_errors() {
        let mut m = SpareMap::new(ids(0..4), ids(4..5));
        assert_eq!(
            m.remap(SubarrayId(99)),
            Err(RemapError::NotInRegion(SubarrayId(99)))
        );
        m.remap(SubarrayId(0)).unwrap();
        assert_eq!(
            m.remap(SubarrayId(0)),
            Err(RemapError::AlreadyRemapped(SubarrayId(0)))
        );
        assert_eq!(m.remap(SubarrayId(1)), Err(RemapError::OutOfSpares));
        assert_eq!(m.remap(SubarrayId(99)).unwrap_err().to_string(), "subarray sub99 is not in this region");
    }
}
