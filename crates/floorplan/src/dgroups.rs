//! Partitioning of the subarray grid into NuRAPID distance-groups.
//!
//! NuRAPID uses a few large d-groups (paper Section 3.3): equal-capacity
//! slices of the subarray population taken in nearest-first order. Farther
//! d-groups pay a *detour* on top of raw Manhattan distance because their
//! wires must route around the closer d-groups (Section 4's Cacti
//! modification #2).

use crate::LShapeFloorplan;
use simbase::Capacity;

/// Extra route length multiplier per d-group index, modeling the need to
/// route around every closer d-group on the L-shaped die.
const DETOUR_PER_GROUP: f64 = 0.18;

/// A partition of the floorplan into `n` equal-capacity d-groups ordered
/// nearest-first.
#[derive(Debug, Clone)]
pub struct DGroupPlan {
    /// Per-group `(start, end)` subarray index ranges (nearest-first order).
    ranges: Vec<(usize, usize)>,
    /// Per-group effective route distance in mm (mean over subarrays,
    /// inflated by the routing detour).
    route_mm: Vec<f64>,
    /// Per-group worst-case route distance in mm.
    max_route_mm: Vec<f64>,
    dgroup_capacity: Capacity,
}

impl DGroupPlan {
    /// Splits `fp` into `n` equal d-groups.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or does not evenly divide the subarray count.
    pub fn partition(fp: &LShapeFloorplan, n: usize) -> Self {
        assert!(n > 0, "need at least one d-group");
        let total = fp.n_subarrays();
        assert!(
            total.is_multiple_of(n),
            "{n} d-groups must evenly divide {total} subarrays"
        );
        let per = total / n;
        let mut ranges = Vec::with_capacity(n);
        let mut route_mm = Vec::with_capacity(n);
        let mut max_route_mm = Vec::with_capacity(n);
        for g in 0..n {
            let (s, e) = (g * per, (g + 1) * per);
            ranges.push((s, e));
            let detour = 1.0 + DETOUR_PER_GROUP * g as f64;
            route_mm.push(fp.grid().mean_route_mm(s, e) * detour);
            max_route_mm.push(fp.grid().max_route_mm(s, e) * detour);
        }
        DGroupPlan {
            ranges,
            route_mm,
            max_route_mm,
            dgroup_capacity: Capacity::from_bytes(per as u64 * fp.subarray_bytes()),
        }
    }

    /// Number of d-groups.
    pub fn n_dgroups(&self) -> usize {
        self.ranges.len()
    }

    /// Capacity of each d-group.
    pub fn dgroup_capacity(&self) -> Capacity {
        self.dgroup_capacity
    }

    /// Effective (detour-inflated mean) route distance of d-group `g` in mm.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn route_mm(&self, g: usize) -> f64 {
        self.route_mm[g]
    }

    /// Worst-case route distance of d-group `g` in mm.
    pub fn max_route_mm(&self, g: usize) -> f64 {
        self.max_route_mm[g]
    }

    /// Subarray index range `(start, end)` of d-group `g` in nearest-first
    /// order.
    pub fn subarray_range(&self, g: usize) -> (usize, usize) {
        self.ranges[g]
    }

    /// Number of subarrays per d-group.
    pub fn subarrays_per_dgroup(&self) -> usize {
        let (s, e) = self.ranges[0];
        e - s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp8() -> LShapeFloorplan {
        LShapeFloorplan::micro2003(Capacity::from_mib(8))
    }

    #[test]
    fn four_group_partition_of_8mb() {
        let plan = DGroupPlan::partition(&fp8(), 4);
        assert_eq!(plan.n_dgroups(), 4);
        assert_eq!(plan.dgroup_capacity(), Capacity::from_mib(2));
        assert_eq!(plan.subarrays_per_dgroup(), 128);
        assert_eq!(plan.subarray_range(2), (256, 384));
    }

    #[test]
    fn route_distances_grow_with_group_index() {
        for n in [2, 4, 8] {
            let plan = DGroupPlan::partition(&fp8(), n);
            for g in 1..n {
                assert!(
                    plan.route_mm(g) > plan.route_mm(g - 1),
                    "n={n} g={g}: {} !> {}",
                    plan.route_mm(g),
                    plan.route_mm(g - 1)
                );
            }
        }
    }

    #[test]
    fn more_groups_means_closer_fastest_and_farther_slowest() {
        // Paper Table 4: as the number of d-groups increases, the fastest
        // megabyte gets faster and the slowest megabyte gets slower.
        let p2 = DGroupPlan::partition(&fp8(), 2);
        let p4 = DGroupPlan::partition(&fp8(), 4);
        let p8 = DGroupPlan::partition(&fp8(), 8);
        assert!(p8.route_mm(0) < p4.route_mm(0));
        assert!(p4.route_mm(0) < p2.route_mm(0));
        assert!(p8.route_mm(7) > p4.route_mm(3));
        assert!(p4.route_mm(3) > p2.route_mm(1));
    }

    #[test]
    fn max_route_at_least_mean_route_without_detour_confusion() {
        let plan = DGroupPlan::partition(&fp8(), 4);
        for g in 0..4 {
            assert!(plan.max_route_mm(g) >= plan.route_mm(g));
        }
    }

    #[test]
    #[should_panic(expected = "evenly divide")]
    fn uneven_partition_panics() {
        let _ = DGroupPlan::partition(&fp8(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_groups_panics() {
        let _ = DGroupPlan::partition(&fp8(), 0);
    }
}
