//! Physical layout model for large non-uniform caches (paper Section 3).
//!
//! Large caches are built from many small SRAM subarrays spread across the
//! die; the latency and energy of reaching a subarray is dominated by the
//! wires between it and the processor core. This crate models:
//!
//! * a [`grid::SubarrayGrid`] of 16-KB subarrays filling an L-shaped region
//!   around a processor core placed in one corner (paper Figure 3(b));
//! * partitioning of the grid into **distance-groups** (d-groups) by routing
//!   distance, for NuRAPID's few-large-groups organization
//!   ([`dgroups::DGroupPlan`]) and for D-NUCA's many-small-banks
//!   organization ([`banks::BankPlan`], paper Figure 3(a));
//! * the Section 3.1 layout considerations: spare-subarray remapping for
//!   hard-error tolerance and spreading of a block's bits across subarrays
//!   for soft-error (ECC) tolerance ([`resilience`]).
//!
//! # Examples
//!
//! ```
//! use floorplan::{LShapeFloorplan, dgroups::DGroupPlan};
//! use simbase::Capacity;
//!
//! let fp = LShapeFloorplan::micro2003(Capacity::from_mib(8));
//! let plan = DGroupPlan::partition(&fp, 4);
//! assert_eq!(plan.n_dgroups(), 4);
//! // d-groups are ordered nearest-first: route distance grows monotonically.
//! assert!(plan.route_mm(0) < plan.route_mm(3));
//! ```

pub mod banks;
pub mod dgroups;
pub mod grid;
pub mod resilience;

pub use grid::{SubarrayGrid, SubarrayId};

use simbase::Capacity;

/// The L-shaped floorplan of the paper's evaluation: a processor core in one
/// corner of the die and cache subarrays filling the remaining L-shaped
/// region (paper Figure 3(b)).
#[derive(Debug, Clone)]
pub struct LShapeFloorplan {
    grid: SubarrayGrid,
    capacity: Capacity,
}

impl LShapeFloorplan {
    /// Subarray size used throughout the paper's floorplans (Figure 3).
    pub const SUBARRAY_KIB: u64 = 16;

    /// Builds the floorplan used in the paper's evaluation at 70 nm:
    /// `capacity` of cache in 16-KB subarrays around a corner core.
    ///
    /// The die is sized so that cache area plus core area form a square; the
    /// per-subarray footprint (0.30 mm on a side) is calibrated so an 8-MB
    /// cache plus core yields a ~9 mm die edge, in line with the wire-delay
    /// budget the paper reports in Table 4.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not a multiple of the subarray size.
    pub fn micro2003(capacity: Capacity) -> Self {
        Self::with_subarray_mm(capacity, 0.30)
    }

    /// Builds the "more aggressive, rectangular floorplan" the original
    /// NUCA work assumes (Section 5.1 notes D-NUCA's lower latencies
    /// partly come from it): a rectangular subarray array over a
    /// full-width core strip.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not a multiple of the subarray size.
    pub fn rectangular(capacity: Capacity) -> Self {
        let sub_bytes = Self::SUBARRAY_KIB * 1024;
        assert!(
            capacity.bytes().is_multiple_of(sub_bytes) && capacity.bytes() > 0,
            "capacity {capacity} must be a positive multiple of {}KB",
            Self::SUBARRAY_KIB
        );
        let n = (capacity.bytes() / sub_bytes) as usize;
        LShapeFloorplan {
            grid: SubarrayGrid::rectangle(n, 0.30),
            capacity,
        }
    }

    /// Builds a floorplan with an explicit subarray edge length in mm.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not a multiple of the subarray size or
    /// `subarray_mm` is not positive.
    pub fn with_subarray_mm(capacity: Capacity, subarray_mm: f64) -> Self {
        assert!(subarray_mm > 0.0, "subarray edge must be positive");
        let sub_bytes = Self::SUBARRAY_KIB * 1024;
        assert!(
            capacity.bytes().is_multiple_of(sub_bytes) && capacity.bytes() > 0,
            "capacity {capacity} must be a positive multiple of {}KB",
            Self::SUBARRAY_KIB
        );
        let n_subarrays = (capacity.bytes() / sub_bytes) as usize;
        let grid = SubarrayGrid::l_shape(n_subarrays, subarray_mm);
        LShapeFloorplan { grid, capacity }
    }

    /// The underlying subarray grid.
    pub fn grid(&self) -> &SubarrayGrid {
        &self.grid
    }

    /// Total cache capacity.
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// Number of 16-KB subarrays.
    pub fn n_subarrays(&self) -> usize {
        self.grid.len()
    }

    /// Capacity of one subarray in bytes.
    pub fn subarray_bytes(&self) -> u64 {
        Self::SUBARRAY_KIB * 1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_mb_floorplan_has_512_subarrays() {
        let fp = LShapeFloorplan::micro2003(Capacity::from_mib(8));
        assert_eq!(fp.n_subarrays(), 512);
        assert_eq!(fp.subarray_bytes(), 16 * 1024);
        assert_eq!(fp.capacity(), Capacity::from_mib(8));
    }

    #[test]
    fn one_mb_floorplan_has_64_subarrays() {
        let fp = LShapeFloorplan::micro2003(Capacity::from_mib(1));
        assert_eq!(fp.n_subarrays(), 64);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn rejects_non_multiple_capacity() {
        let _ = LShapeFloorplan::micro2003(Capacity::from_kib(24));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_subarray_edge() {
        let _ = LShapeFloorplan::with_subarray_mm(Capacity::from_mib(1), 0.0);
    }

    #[test]
    fn rectangular_floorplan_has_shorter_routes() {
        let ell = LShapeFloorplan::micro2003(Capacity::from_mib(8));
        let rect = LShapeFloorplan::rectangular(Capacity::from_mib(8));
        assert_eq!(rect.n_subarrays(), ell.n_subarrays());
        let n = rect.n_subarrays();
        assert!(rect.grid().mean_route_mm(0, n) < ell.grid().mean_route_mm(0, n));
    }
}
