//! Out-of-order processor timing model (paper Table 1).
//!
//! A trace-driven reimplementation of the SimpleScalar-style core the paper
//! simulates: 8-wide issue, a 64-entry RUU (register update unit — the
//! combined ROB/scheduler), a 32-entry LSQ, a 2-level hybrid branch
//! predictor with 8 K entries and a 9-cycle misprediction penalty, over the
//! L1s and lower-level cache provided by [`memsys`].
//!
//! The model is dependency-driven rather than cycle-by-cycle: each
//! micro-op's issue time is the maximum of its fetch time, its source
//! operands' ready times, and structural constraints (RUU/LSQ occupancy,
//! fetch and commit bandwidth). This reproduces the quantities the paper's
//! results depend on — IPC sensitivity to L2 latency, memory-level
//! parallelism across the instruction window, and misprediction drain —
//! at a small fraction of the cost of a full pipeline simulation.
//!
//! # Examples
//!
//! ```
//! use cpu::{uop::{MicroOp, OpClass}, OooCore, CoreParams};
//! use memsys::hierarchy::BaseHierarchy;
//! use memsys::l1::CoreMemSystem;
//! use simbase::Addr;
//!
//! let mem = CoreMemSystem::micro2003(BaseHierarchy::micro2003());
//! let mut core = OooCore::new(CoreParams::micro2003(), mem);
//! // A tight loop of independent ALU ops (32-B code footprint).
//! for i in 0..10_000u64 {
//!     core.execute(MicroOp::alu(Addr::new((i % 8) * 4)));
//! }
//! let r = core.finish();
//! assert_eq!(r.instructions, 10_000);
//! assert!(r.ipc() > 4.0); // independent ALU ops run wide
//! ```

pub mod branch;
pub mod core;
pub mod uop;

pub use crate::core::{CoreParams, CoreResult, OooCore};
