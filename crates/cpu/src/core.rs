//! The dependency-driven out-of-order core model.

use crate::branch::HybridPredictor;
use crate::uop::{MicroOp, OpClass, TraceSource};
use memsys::l1::CoreMemSystem;
use memsys::lower::LowerCache;
use simbase::stats::Counter;
use simbase::{Addr, BlockGeometry, Cycle};
use simtel::TelemetrySink;
use std::collections::VecDeque;

/// Core configuration (paper Table 1).
#[derive(Debug, Clone, Copy)]
pub struct CoreParams {
    /// Fetch/issue/commit width (8).
    pub width: u32,
    /// RUU (combined ROB/scheduler) entries (64).
    pub ruu_entries: usize,
    /// Load/store queue entries (32).
    pub lsq_entries: usize,
    /// Branch misprediction penalty in cycles (9).
    pub mispredict_penalty: u64,
    /// Pipelined integer ALUs.
    pub int_alus: usize,
    /// Pipelined integer multipliers.
    pub int_muls: usize,
    /// Pipelined FP adders.
    pub fp_alus: usize,
    /// Pipelined FP multipliers.
    pub fp_muls: usize,
    /// Data-cache ports (Table 1: "1 port, pipelined").
    pub mem_ports: usize,
}

impl CoreParams {
    /// The paper's configuration: 8-wide, 64-entry RUU, 32-entry LSQ,
    /// 9-cycle misprediction penalty, one pipelined data-cache port.
    pub fn micro2003() -> Self {
        CoreParams {
            width: 8,
            ruu_entries: 64,
            lsq_entries: 32,
            mispredict_penalty: 9,
            int_alus: 8,
            int_muls: 2,
            fp_alus: 4,
            fp_muls: 2,
            mem_ports: 1,
        }
    }
}

/// Ring length for per-cycle functional-unit occupancy. Issue times from
/// the out-of-order engine are non-monotonic within roughly a window's
/// worth of cycles; the ring must comfortably exceed that span.
const FU_RING: usize = 1024;
const _: () = assert!(FU_RING.is_power_of_two(), "ring index uses a mask");

/// A pool of `n` pipelined functional units: each unit accepts one
/// operation per cycle. Occupancy is tracked per cycle (not as a
/// high-water mark) so out-of-order issue times do not falsely serialize.
#[derive(Debug, Clone)]
struct FuPool {
    units: u32,
    /// `(cycle, ops issued that cycle)` per ring slot.
    ring: Vec<(u64, u32)>,
}

impl FuPool {
    fn new(n: usize) -> Self {
        assert!(n > 0, "pool needs at least one unit");
        FuPool {
            units: n as u32,
            ring: vec![(u64::MAX, 0); FU_RING],
        }
    }

    /// Claims a unit at the earliest cycle ≥ `at` with spare issue
    /// bandwidth; returns the actual issue time.
    fn issue(&mut self, at: Cycle) -> Cycle {
        let mut c = at.raw();
        loop {
            let slot = &mut self.ring[(c & (FU_RING as u64 - 1)) as usize];
            if slot.0 != c {
                // Slot belonged to a far-away cycle: repurpose it.
                *slot = (c, 0);
            }
            if slot.1 < self.units {
                slot.1 += 1;
                return Cycle::new(c);
            }
            c += 1;
        }
    }
}

/// Aggregate results of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreResult {
    /// Committed instructions.
    pub instructions: u64,
    /// Total cycles from start to the last commit.
    pub cycles: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Committed branches.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Committed integer ops (ALU + multiply).
    pub int_ops: u64,
    /// Committed floating-point ops.
    pub fp_ops: u64,
}

impl CoreResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// The delta between this result and an `earlier` snapshot of the same
    /// run — the steady-state measurement after a warm-up phase.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is not actually earlier.
    #[must_use]
    pub fn since(&self, earlier: &CoreResult) -> CoreResult {
        assert!(
            self.instructions >= earlier.instructions && self.cycles >= earlier.cycles,
            "snapshot order reversed"
        );
        CoreResult {
            instructions: self.instructions - earlier.instructions,
            cycles: self.cycles - earlier.cycles,
            loads: self.loads - earlier.loads,
            stores: self.stores - earlier.stores,
            branches: self.branches - earlier.branches,
            mispredicts: self.mispredicts - earlier.mispredicts,
            int_ops: self.int_ops - earlier.int_ops,
            fp_ops: self.fp_ops - earlier.fp_ops,
        }
    }
}

/// The out-of-order core: drives a [`CoreMemSystem`] with a micro-op trace.
#[derive(Debug)]
pub struct OooCore<L> {
    params: CoreParams,
    mem: CoreMemSystem<L>,
    predictor: HybridPredictor,
    /// Result-ready times of the youngest `ruu_entries` ops, oldest first.
    ready_window: VecDeque<Cycle>,
    /// Commit times of in-flight ops (RUU occupancy), oldest first.
    ruu_commits: VecDeque<Cycle>,
    /// Commit times of in-flight memory ops (LSQ occupancy), oldest first.
    lsq_commits: VecDeque<Cycle>,
    /// Earliest time the front end may fetch the next op.
    fetch_free: Cycle,
    /// Ops fetched in the current fetch cycle.
    fetch_slot: u32,
    /// Time of the most recent commit.
    last_commit: Cycle,
    /// Ops committed in the `last_commit` cycle.
    commit_slot: u32,
    /// Functional-unit pools: integer ALU, integer multiply, FP add,
    /// FP multiply, data-cache ports.
    fu_int_alu: FuPool,
    fu_int_mul: FuPool,
    fu_fp_alu: FuPool,
    fu_fp_mul: FuPool,
    fu_mem: FuPool,
    /// Most recent instruction-fetch block, to probe the I-cache once per
    /// line rather than once per op.
    last_fetch_block: Option<u64>,
    fetch_geom: BlockGeometry,
    instructions: Counter,
    loads: Counter,
    stores: Counter,
    branches: Counter,
    int_ops: Counter,
    fp_ops: Counter,
    sink: TelemetrySink,
    snap_every: u64,
    next_snap: u64,
}

impl<L: LowerCache> OooCore<L> {
    /// Creates a core with `params` over the given memory system.
    pub fn new(params: CoreParams, mem: CoreMemSystem<L>) -> Self {
        assert!(params.width > 0 && params.ruu_entries > 0 && params.lsq_entries > 0);
        OooCore {
            params,
            mem,
            predictor: HybridPredictor::micro2003(),
            ready_window: VecDeque::with_capacity(params.ruu_entries),
            ruu_commits: VecDeque::with_capacity(params.ruu_entries),
            lsq_commits: VecDeque::with_capacity(params.lsq_entries),
            fetch_free: Cycle::ZERO,
            fetch_slot: 0,
            last_commit: Cycle::ZERO,
            commit_slot: 0,
            fu_int_alu: FuPool::new(params.int_alus),
            fu_int_mul: FuPool::new(params.int_muls),
            fu_fp_alu: FuPool::new(params.fp_alus),
            fu_fp_mul: FuPool::new(params.fp_muls),
            fu_mem: FuPool::new(params.mem_ports),
            last_fetch_block: None,
            fetch_geom: BlockGeometry::new(32),
            instructions: Counter::new(),
            loads: Counter::new(),
            stores: Counter::new(),
            branches: Counter::new(),
            int_ops: Counter::new(),
            fp_ops: Counter::new(),
            sink: TelemetrySink::disabled(),
            snap_every: 0,
            next_snap: u64::MAX,
        }
    }

    /// Attaches a telemetry sink. When `snap_every` is non-zero, the
    /// core emits a periodic progress snapshot (cumulative IPC as a
    /// counter track plus an `ipc` gauge) every `snap_every` committed
    /// cycles. Disabled sinks set the threshold to `u64::MAX`, so the
    /// hot path pays exactly one compare.
    pub fn set_telemetry(&mut self, sink: TelemetrySink, snap_every: u64) {
        self.next_snap = if sink.enabled() && snap_every > 0 {
            self.last_commit.raw() + snap_every
        } else {
            u64::MAX
        };
        self.snap_every = snap_every;
        self.sink = sink;
    }

    /// Emits the periodic IPC snapshot once commit time passes the next
    /// snapshot boundary.
    fn snapshot(&mut self) {
        let cycles = self.last_commit.raw();
        let instr = self.instructions.get();
        let ipc = instr as f64 / cycles.max(1) as f64;
        self.sink.gauge("cpu.ipc", cycles, ipc);
        self.sink.counter_track("snap", "cpu_ipc_milli", cycles, (ipc * 1000.0) as u64);
        while self.next_snap <= cycles {
            self.next_snap += self.snap_every;
        }
    }

    /// Advances `self.fetch_free`/`fetch_slot` by one fetch and returns the
    /// fetch time of this op.
    fn fetch(&mut self, pc: Addr) -> Cycle {
        // Structural: RUU must have room — the oldest in-flight op must
        // commit before a new one enters the window.
        if self.ruu_commits.len() >= self.params.ruu_entries {
            let oldest = self.ruu_commits.pop_front().expect("non-empty");
            if oldest > self.fetch_free {
                self.fetch_free = oldest;
                self.fetch_slot = 0;
            }
        }
        // I-cache: probe once per new 32-B line; a miss stalls the front
        // end by the extra latency beyond the pipelined 3-cycle hit.
        let block = self.fetch_geom.block_of(pc).index();
        if self.last_fetch_block != Some(block) {
            self.last_fetch_block = Some(block);
            let done = self.mem.fetch(pc, self.fetch_free);
            let hit_done = self.fetch_free + 3;
            if done > hit_done {
                self.fetch_free += done - hit_done;
                self.fetch_slot = 0;
            }
        }
        let t = self.fetch_free;
        self.fetch_slot += 1;
        if self.fetch_slot >= self.params.width {
            self.fetch_free += 1;
            self.fetch_slot = 0;
        }
        t
    }

    /// Ready time of the op `dist` positions back, or `fallback` when out
    /// of window (already committed) or `dist == 0`.
    fn dep_ready(&self, dist: u8, fallback: Cycle) -> Cycle {
        if dist == 0 {
            return fallback;
        }
        let len = self.ready_window.len();
        if (dist as usize) > len {
            return fallback;
        }
        self.ready_window[len - dist as usize]
    }

    /// Commits an op whose result is ready at `ready`, respecting in-order
    /// commit and commit bandwidth. Returns the commit time.
    fn commit(&mut self, ready: Cycle) -> Cycle {
        let mut t = ready.max(self.last_commit);
        if t == self.last_commit {
            self.commit_slot += 1;
            if self.commit_slot >= self.params.width {
                t += 1;
                self.commit_slot = 0;
            }
        } else {
            self.commit_slot = 1;
        }
        self.last_commit = t;
        t
    }

    /// Executes one micro-op through the model.
    pub fn execute(&mut self, op: MicroOp) {
        let fetch_t = self.fetch(op.pc);
        let dep1 = self.dep_ready(op.dep1, fetch_t);
        let dep2 = self.dep_ready(op.dep2, fetch_t);
        let mut issue = fetch_t.max(dep1).max(dep2);

        let ready = match op.class {
            OpClass::Load | OpClass::Store => {
                // Structural: LSQ must have room.
                if self.lsq_commits.len() >= self.params.lsq_entries {
                    let oldest = self.lsq_commits.pop_front().expect("non-empty");
                    issue = issue.max(oldest);
                }
                // Structural: a data-cache port must be free.
                issue = self.fu_mem.issue(issue);
                let addr = op.mem_addr.expect("memory op needs an address");
                let out = self.mem.data_access(addr, op.access_kind(), issue);
                if op.class == OpClass::Load {
                    self.loads.inc();
                    out.complete_at
                } else {
                    self.stores.inc();
                    // Stores complete into the LSQ; dependents (rare) see
                    // store-to-load forwarding at +1.
                    issue + OpClass::Store.latency()
                }
            }
            OpClass::Branch => {
                self.branches.inc();
                let resolve = issue + OpClass::Branch.latency();
                let correct = self.predictor.predict_and_update(op.pc, op.taken);
                if !correct {
                    // Redirect: the front end restarts after the penalty.
                    let restart = resolve + self.params.mispredict_penalty;
                    if restart > self.fetch_free {
                        self.fetch_free = restart;
                        self.fetch_slot = 0;
                    }
                }
                resolve
            }
            c => {
                let pool = match c {
                    OpClass::IntAlu => {
                        self.int_ops.inc();
                        &mut self.fu_int_alu
                    }
                    OpClass::IntMul => {
                        self.int_ops.inc();
                        &mut self.fu_int_mul
                    }
                    OpClass::FpAlu => {
                        self.fp_ops.inc();
                        &mut self.fu_fp_alu
                    }
                    OpClass::FpMul => {
                        self.fp_ops.inc();
                        &mut self.fu_fp_mul
                    }
                    _ => unreachable!(),
                };
                let start = pool.issue(issue);
                start + c.latency()
            }
        };

        // Record for dependents.
        if self.ready_window.len() >= self.params.ruu_entries {
            self.ready_window.pop_front();
        }
        self.ready_window.push_back(ready);

        let commit_t = self.commit(ready);
        self.ruu_commits.push_back(commit_t);
        if op.class.is_mem() {
            self.lsq_commits.push_back(commit_t);
        }
        self.instructions.inc();
        if self.last_commit.raw() >= self.next_snap {
            self.snapshot();
        }
    }

    /// Runs `n` ops from `src`.
    pub fn run<S: TraceSource>(&mut self, src: &mut S, n: u64) {
        for _ in 0..n {
            let op = src.next_op();
            self.execute(op);
        }
    }

    /// Warm-up execution of one micro-op: applies its architectural
    /// effects (I-/D-cache and lower-level contents, branch-predictor
    /// training) while skipping the out-of-order timing model — no
    /// windows, functional units, port contention, or latency math.
    pub fn warm_execute(&mut self, op: MicroOp) {
        // Same once-per-line I-cache probe discipline as `fetch`.
        let block = self.fetch_geom.block_of(op.pc).index();
        if self.last_fetch_block != Some(block) {
            self.last_fetch_block = Some(block);
            self.mem.warm_fetch(op.pc);
        }
        match op.class {
            OpClass::Load | OpClass::Store => {
                let addr = op.mem_addr.expect("memory op needs an address");
                self.mem.warm_data_access(addr, op.access_kind());
            }
            OpClass::Branch => {
                let _ = self.predictor.predict_and_update(op.pc, op.taken);
            }
            _ => {}
        }
    }

    /// Warm-runs `n` ops from `src` through [`Self::warm_execute`].
    pub fn warm_run<S: TraceSource>(&mut self, src: &mut S, n: u64) {
        for _ in 0..n {
            let op = src.next_op();
            self.warm_execute(op);
        }
    }

    /// Functional fast-forward to an **absolute** stream offset: warm-runs
    /// until `src` has emitted `target` ops. A no-op when the stream is
    /// already at (or past) the target, so callers can issue it
    /// unconditionally between sampled windows.
    pub fn warm_run_to<S: crate::uop::TraceCursor>(&mut self, src: &mut S, target: u64) {
        let n = target.saturating_sub(src.position());
        self.warm_run(src, n);
    }

    /// Branch predictor statistics.
    pub fn predictor(&self) -> &HybridPredictor {
        &self.predictor
    }

    /// Mutable access to the branch predictor (for checkpoint restore).
    pub fn predictor_mut(&mut self) -> &mut HybridPredictor {
        &mut self.predictor
    }

    /// The memory system (for cache statistics).
    pub fn mem(&self) -> &CoreMemSystem<L> {
        &self.mem
    }

    /// Mutable access to the memory system.
    pub fn mem_mut(&mut self) -> &mut CoreMemSystem<L> {
        &mut self.mem
    }

    /// Committed instructions so far.
    pub fn instructions(&self) -> u64 {
        self.instructions.get()
    }

    /// Current cycle count (time of the latest commit).
    pub fn cycles(&self) -> u64 {
        self.last_commit.raw()
    }

    /// Finalizes the run and returns the aggregate result.
    pub fn finish(&self) -> CoreResult {
        CoreResult {
            instructions: self.instructions.get(),
            cycles: self.last_commit.raw(),
            loads: self.loads.get(),
            stores: self.stores.get(),
            branches: self.branches.get(),
            mispredicts: self.predictor.mispredictions(),
            int_ops: self.int_ops.get(),
            fp_ops: self.fp_ops.get(),
        }
    }

    /// Consumes the core, returning the memory system.
    pub fn into_mem(self) -> CoreMemSystem<L> {
        self.mem
    }

    /// Consumes the core, returning the memory system and the trained
    /// predictor — the pieces that survive the stats boundary when a
    /// fresh core is built for the measured phase.
    pub fn into_parts(self) -> (CoreMemSystem<L>, HybridPredictor) {
        (self.mem, self.predictor)
    }

    /// Replaces the predictor (transplanting trained tables across the
    /// warm-up/measure boundary).
    pub fn set_predictor(&mut self, predictor: HybridPredictor) {
        self.predictor = predictor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uop::MicroOp;
    use memsys::hierarchy::BaseHierarchy;

    fn core() -> OooCore<BaseHierarchy> {
        OooCore::new(
            CoreParams::micro2003(),
            CoreMemSystem::micro2003(BaseHierarchy::micro2003()),
        )
    }

    /// A looping 2-KB code footprint: pc for instruction `i`.
    fn loop_pc(i: u64) -> Addr {
        Addr::new((i % 512) * 4)
    }

    #[test]
    fn independent_alu_ops_run_at_full_width() {
        let mut c = core();
        // Warm the I-cache over the loop body, then measure steady state.
        for i in 0..1024u64 {
            c.execute(MicroOp::alu(loop_pc(i)));
        }
        let warm_cycles = c.cycles();
        for i in 1024..41_024u64 {
            c.execute(MicroOp::alu(loop_pc(i)));
        }
        let steady_ipc = 40_000.0 / (c.cycles() - warm_cycles) as f64;
        // 8-wide: steady-state IPC approaches 8.
        assert!(steady_ipc > 6.0, "ipc={steady_ipc}");
        assert_eq!(c.finish().instructions, 41_024);
    }

    #[test]
    fn serial_dependency_chain_limits_ipc_to_one() {
        let mut c = core();
        for i in 0..1024u64 {
            c.execute(MicroOp::alu(loop_pc(i))); // warm I-cache
        }
        let warm_cycles = c.cycles();
        for i in 1024..5024u64 {
            let mut op = MicroOp::alu(loop_pc(i));
            op.dep1 = 1; // each op depends on its predecessor
            c.execute(op);
        }
        let steady_ipc = 4000.0 / (c.cycles() - warm_cycles) as f64;
        assert!(steady_ipc < 1.2, "ipc={steady_ipc}");
        assert!(steady_ipc > 0.8, "ipc={steady_ipc}");
    }

    /// A cold-miss address stream that spreads across cache sets (odd
    /// stride avoids aliasing every access onto one set).
    fn miss_addr(i: u64) -> Addr {
        Addr::new((i * 131_101) % (64 * 1024 * 1024))
    }

    #[test]
    fn dependent_loads_expose_memory_latency() {
        // A pointer chase over a footprint far beyond L2: every load misses
        // and depends on the previous one -> IPC collapses.
        let mut c = core();
        for i in 0..2000u64 {
            c.execute(MicroOp::load(loop_pc(i), miss_addr(i), 1));
        }
        let r = c.finish();
        assert!(r.ipc() < 0.05, "ipc={}", r.ipc());
    }

    #[test]
    fn independent_misses_overlap_through_mshrs() {
        // Same miss stream but independent: MLP should lift IPC well above
        // the serial case.
        let serial = {
            let mut c = core();
            for i in 0..2000u64 {
                c.execute(MicroOp::load(loop_pc(i), miss_addr(i), 1));
            }
            c.finish().ipc()
        };
        let parallel = {
            let mut c = core();
            for i in 0..2000u64 {
                c.execute(MicroOp::load(loop_pc(i), miss_addr(i), 0));
            }
            c.finish().ipc()
        };
        assert!(
            parallel > 3.0 * serial,
            "parallel {parallel} vs serial {serial}"
        );
    }

    #[test]
    fn mispredicted_branches_slow_the_machine() {
        use simbase::rng::SimRng;
        let mut rng = SimRng::seeded(11);
        // Random branches: ~half mispredict, each costing the 9-cycle
        // penalty.
        let mut c = core();
        for i in 0..8000u64 {
            if i % 4 == 0 {
                c.execute(MicroOp::branch(Addr::new(0x100), rng.chance(0.5)));
            } else {
                c.execute(MicroOp::alu(loop_pc(i)));
            }
        }
        let random_ipc = c.finish().ipc();

        let mut c = core();
        for i in 0..8000u64 {
            if i % 4 == 0 {
                c.execute(MicroOp::branch(Addr::new(0x100), true));
            } else {
                c.execute(MicroOp::alu(loop_pc(i)));
            }
        }
        let predictable_ipc = c.finish().ipc();
        assert!(
            predictable_ipc > 1.5 * random_ipc,
            "predictable {predictable_ipc} vs random {random_ipc}"
        );
    }

    #[test]
    fn lsq_bounds_outstanding_memory_ops() {
        // With > 32 independent loads in flight the LSQ becomes the limit;
        // the model must not let hundreds overlap.
        let mut c = core();
        for i in 0..1000u64 {
            c.execute(MicroOp::load(loop_pc(i), miss_addr(i), 0));
        }
        let r = c.finish();
        // 1000 misses at ~237 cycles each, at most ~8 overlapped by MSHRs:
        // total cycles must exceed 1000 * 237 / 8.
        assert!(r.cycles > 1000 * 237 / 8 / 2, "cycles={}", r.cycles);
    }

    #[test]
    fn run_consumes_a_trace_source() {
        let mut c = core();
        let mut n = 0u64;
        let mut src = move || {
            n += 1;
            MicroOp::alu(Addr::new(n * 4))
        };
        c.run(&mut src, 500);
        assert_eq!(c.instructions(), 500);
        assert!(c.cycles() > 0);
    }

    #[test]
    fn op_mix_counters() {
        let mut c = core();
        c.execute(MicroOp::alu(Addr::new(0)));
        c.execute(MicroOp::load(Addr::new(4), Addr::new(0x100), 0));
        c.execute(MicroOp::store(Addr::new(8), Addr::new(0x100), 0));
        c.execute(MicroOp::branch(Addr::new(12), true));
        let mut fp = MicroOp::alu(Addr::new(16));
        fp.class = OpClass::FpMul;
        c.execute(fp);
        let r = c.finish();
        assert_eq!(
            (r.loads, r.stores, r.branches, r.int_ops, r.fp_ops),
            (1, 1, 1, 1, 1)
        );
        assert_eq!(r.instructions, 5);
    }

    #[test]
    fn store_misses_outpace_dependent_load_misses() {
        // Stores complete into the LSQ at issue+1 and their misses overlap
        // through the MSHRs, so an all-miss store stream must run well
        // ahead of an equal all-miss dependent-load stream.
        let store_ipc = {
            let mut c = core();
            for i in 0..500u64 {
                c.execute(MicroOp::store(loop_pc(i), miss_addr(i), 0));
            }
            c.finish().ipc()
        };
        let load_ipc = {
            let mut c = core();
            for i in 0..500u64 {
                c.execute(MicroOp::load(loop_pc(i), miss_addr(i), 1));
            }
            c.finish().ipc()
        };
        assert!(
            store_ipc > 2.0 * load_ipc,
            "stores {store_ipc} vs dependent loads {load_ipc}"
        );
    }

    #[test]
    fn fp_multiplier_pool_caps_throughput() {
        // Two pipelined FP multipliers: an endless stream of independent
        // FpMul ops cannot exceed 2 IPC.
        let mut c = core();
        for i in 0..1024u64 {
            c.execute(MicroOp::alu(loop_pc(i))); // warm the I-cache
        }
        let warm = c.cycles();
        for i in 1024..9216u64 {
            let mut op = MicroOp::alu(loop_pc(i));
            op.class = OpClass::FpMul;
            c.execute(op);
        }
        let ipc = 8192.0 / (c.cycles() - warm) as f64;
        assert!(ipc < 2.2, "ipc={ipc} exceeds the 2-unit FP multiply pool");
        assert!(ipc > 1.5, "ipc={ipc} far below the 2-unit bound");
    }

    #[test]
    fn single_data_port_caps_l1_hit_throughput() {
        // Table 1: one pipelined data-cache port -> at most one memory op
        // per cycle even when everything hits.
        let mut c = core();
        for i in 0..1024u64 {
            c.execute(MicroOp::alu(loop_pc(i)));
        }
        // Warm a single line, then hammer it.
        c.execute(MicroOp::load(loop_pc(0), Addr::new(0x100), 0));
        let warm = c.cycles();
        for i in 0..8192u64 {
            c.execute(MicroOp::load(loop_pc(i), Addr::new(0x100), 0));
        }
        let ipc = 8192.0 / (c.cycles() - warm) as f64;
        assert!(ipc < 1.1, "ipc={ipc} exceeds the single data port");
    }

    #[test]
    fn fast_forward_warm_up_yields_bit_identical_measured_phase() {
        use simbase::rng::SimRng;
        // A mixed op stream spanning L1 reuse, L2/L3 footprints, memory
        // misses, dependent loads, stores, and biased branches.
        let stream = |seed: u64, n: u64| {
            let mut rng = SimRng::seeded(seed);
            let mut ops = Vec::with_capacity(n as usize);
            for i in 0..n {
                let pc = loop_pc(i);
                let roll = rng.unit();
                let op = if roll < 0.30 {
                    let addr = if rng.chance(0.6) {
                        Addr::new(rng.below(1 << 16) * 32)
                    } else {
                        miss_addr(rng.below(1 << 20))
                    };
                    MicroOp::load(pc, addr, if rng.chance(0.3) { 1 } else { 0 })
                } else if roll < 0.42 {
                    MicroOp::store(pc, Addr::new(rng.below(1 << 18) * 32), 0)
                } else if roll < 0.55 {
                    MicroOp::branch(pc, rng.chance(0.85))
                } else {
                    MicroOp::alu(pc)
                };
                ops.push(op);
            }
            ops
        };
        let warm_ops = stream(21, 40_000);
        let measure_ops = stream(22, 20_000);

        let mut timed = core();
        let mut fast = core();
        for op in &warm_ops {
            timed.execute(*op);
            fast.warm_execute(*op);
        }
        // The drain barrier + fresh-core rebuild both modes share.
        let rebuild = |c: OooCore<BaseHierarchy>| {
            let (mut mem, mut pred) = c.into_parts();
            mem.drain_timing();
            mem.lower_mut().drain_timing();
            mem.reset_stats();
            mem.lower_mut().reset_stats();
            pred.reset_counters();
            let mut fresh = OooCore::new(CoreParams::micro2003(), mem);
            fresh.set_predictor(pred);
            fresh
        };
        let mut timed = rebuild(timed);
        let mut fast = rebuild(fast);
        for op in &measure_ops {
            timed.execute(*op);
            fast.execute(*op);
        }
        assert_eq!(timed.finish(), fast.finish());
        assert_eq!(timed.mem().d_hits(), fast.mem().d_hits());
        assert_eq!(timed.mem().i_hits(), fast.mem().i_hits());
        assert_eq!(
            timed.mem().lower().misses(),
            fast.mem().lower().misses()
        );
    }

    #[test]
    fn finish_is_idempotent() {
        let mut c = core();
        c.execute(MicroOp::alu(Addr::new(0)));
        let a = c.finish();
        let b = c.finish();
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.cycles, b.cycles);
    }
}
