//! Two-level hybrid branch predictor (Table 1: "2-level, hybrid, 8K
//! entries", 9-cycle misprediction penalty).
//!
//! The hybrid combines a gshare component (global history XOR PC into a
//! pattern history table of 2-bit counters) with a bimodal component
//! (PC-indexed 2-bit counters) through a PC-indexed chooser table, the
//! classic McFarling arrangement SimpleScalar's "hybrid" predictor
//! implements.

use simbase::snapshot::{Decoder, Encoder, SnapshotError};
use simbase::Addr;

/// A table of 2-bit saturating counters.
#[derive(Debug, Clone)]
struct Counters {
    table: Vec<u8>,
    mask: u64,
}

impl Counters {
    fn new(entries: usize, init: u8) -> Self {
        assert!(entries.is_power_of_two(), "table size must be a power of two");
        Counters {
            table: vec![init; entries],
            mask: entries as u64 - 1,
        }
    }

    fn predict(&self, index: u64) -> bool {
        self.table[(index & self.mask) as usize] >= 2
    }

    fn update(&mut self, index: u64, taken: bool) {
        let c = &mut self.table[(index & self.mask) as usize];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

/// McFarling-style hybrid predictor with 8 K-entry component tables.
#[derive(Debug, Clone)]
pub struct HybridPredictor {
    gshare: Counters,
    bimodal: Counters,
    chooser: Counters,
    history: u64,
    history_bits: u32,
    predictions: u64,
    mispredictions: u64,
}

impl HybridPredictor {
    /// The paper's 8 K-entry configuration.
    pub fn micro2003() -> Self {
        Self::new(8192)
    }

    /// Creates a hybrid predictor with `entries` counters per component.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        HybridPredictor {
            gshare: Counters::new(entries, 1),
            bimodal: Counters::new(entries, 1),
            chooser: Counters::new(entries, 2), // slight initial gshare bias
            history: 0,
            history_bits: entries.trailing_zeros(),
            predictions: 0,
            mispredictions: 0,
        }
    }

    fn pc_index(pc: Addr) -> u64 {
        pc.raw() >> 2
    }

    /// Predicts the branch at `pc`, then updates all tables with the real
    /// `taken` outcome. Returns `true` if the prediction was correct.
    pub fn predict_and_update(&mut self, pc: Addr, taken: bool) -> bool {
        let pci = Self::pc_index(pc);
        let gi = pci ^ self.history;
        let g = self.gshare.predict(gi);
        let b = self.bimodal.predict(pci);
        let use_gshare = self.chooser.predict(pci);
        let prediction = if use_gshare { g } else { b };

        // Chooser trains toward the component that was right (only when
        // they disagree).
        if g != b {
            self.chooser.update(pci, g == taken);
        }
        self.gshare.update(gi, taken);
        self.bimodal.update(pci, taken);
        self.history = ((self.history << 1) | taken as u64) & ((1 << self.history_bits) - 1);

        self.predictions += 1;
        let correct = prediction == taken;
        if !correct {
            self.mispredictions += 1;
        }
        correct
    }

    /// Total predictions made.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Total mispredictions.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Zeroes the prediction/misprediction counters, keeping the trained
    /// tables and history — the stats boundary after warm-up.
    pub fn reset_counters(&mut self) {
        self.predictions = 0;
        self.mispredictions = 0;
    }

    /// Serialises the trained state (all three counter tables and the
    /// global history); the prediction counters are statistics and are not
    /// part of the snapshot.
    pub fn save_state(&self, e: &mut Encoder) {
        e.put_u8_slice(&self.gshare.table);
        e.put_u8_slice(&self.bimodal.table);
        e.put_u8_slice(&self.chooser.table);
        e.put_u64(self.history);
    }

    /// Restores state written by [`Self::save_state`] into a predictor of
    /// the same geometry.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Malformed`] if any table size differs.
    pub fn load_state(&mut self, d: &mut Decoder) -> Result<(), SnapshotError> {
        let gshare = d.u8_slice()?;
        let bimodal = d.u8_slice()?;
        let chooser = d.u8_slice()?;
        if gshare.len() != self.gshare.table.len()
            || bimodal.len() != self.bimodal.table.len()
            || chooser.len() != self.chooser.table.len()
        {
            return Err(SnapshotError::Malformed("predictor geometry mismatch"));
        }
        self.gshare.table = gshare;
        self.bimodal.table = bimodal;
        self.chooser.table = chooser;
        self.history = d.u64()?;
        Ok(())
    }

    /// Misprediction ratio (0.0 before any prediction).
    pub fn mispredict_ratio(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbase::rng::SimRng;

    #[test]
    fn learns_always_taken() {
        let mut p = HybridPredictor::micro2003();
        let pc = Addr::new(0x400);
        for _ in 0..10 {
            p.predict_and_update(pc, true);
        }
        // After warm-up, the predictor must be right every time.
        for _ in 0..100 {
            assert!(p.predict_and_update(pc, true));
        }
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut p = HybridPredictor::micro2003();
        let pc = Addr::new(0x800);
        let mut correct_late = 0;
        for i in 0..2000u64 {
            let taken = i % 2 == 0;
            let c = p.predict_and_update(pc, taken);
            if i >= 1000 && c {
                correct_late += 1;
            }
        }
        // A pure bimodal predictor is ~50% on alternation; the gshare side
        // captures the pattern almost perfectly.
        assert!(correct_late > 950, "late accuracy {correct_late}/1000");
    }

    #[test]
    fn random_branches_are_hard() {
        let mut p = HybridPredictor::micro2003();
        let mut rng = SimRng::seeded(3);
        let pc = Addr::new(0xc00);
        for _ in 0..5000 {
            p.predict_and_update(pc, rng.chance(0.5));
        }
        let r = p.mispredict_ratio();
        assert!(r > 0.35 && r < 0.65, "random stream ratio {r}");
    }

    #[test]
    fn biased_branches_are_mostly_right() {
        let mut p = HybridPredictor::micro2003();
        let mut rng = SimRng::seeded(7);
        for i in 0..10_000u64 {
            let pc = Addr::new(0x1000 + (i % 16) * 4);
            p.predict_and_update(pc, rng.chance(0.9));
        }
        let r = p.mispredict_ratio();
        assert!(r < 0.2, "90%-biased stream mispredicts at {r}");
    }

    #[test]
    fn counters_start_neutral_and_stats_accumulate() {
        let mut p = HybridPredictor::new(1024);
        assert_eq!(p.mispredict_ratio(), 0.0);
        p.predict_and_update(Addr::new(4), true);
        assert_eq!(p.predictions(), 1);
        assert!(p.mispredictions() <= 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = HybridPredictor::new(1000);
    }

    #[test]
    fn state_roundtrip_preserves_training_and_resets_counters() {
        let mut p = HybridPredictor::new(1024);
        let mut rng = SimRng::seeded(13);
        for i in 0..5_000u64 {
            let pc = Addr::new(0x2000 + (i % 64) * 4);
            p.predict_and_update(pc, rng.chance(0.8));
        }
        let mut e = Encoder::new();
        p.save_state(&mut e);
        let bytes = e.into_bytes();

        let mut restored = HybridPredictor::new(1024);
        let mut d = Decoder::new(&bytes);
        restored.load_state(&mut d).expect("load");
        d.finish().expect("no trailing bytes");
        assert_eq!(restored.predictions(), 0, "counters are not snapshotted");

        p.reset_counters();
        assert_eq!(p.predictions(), 0);
        // Both predictors must now produce identical outcome streams.
        for i in 0..5_000u64 {
            let pc = Addr::new(0x2000 + (i % 64) * 4);
            let taken = rng.chance(0.8);
            assert_eq!(
                p.predict_and_update(pc, taken),
                restored.predict_and_update(pc, taken),
                "prediction {i} diverged"
            );
        }
        assert_eq!(p.mispredictions(), restored.mispredictions());
    }

    #[test]
    fn load_rejects_geometry_mismatch() {
        let p = HybridPredictor::new(1024);
        let mut e = Encoder::new();
        p.save_state(&mut e);
        let bytes = e.into_bytes();
        let mut wrong = HybridPredictor::new(2048);
        let mut d = Decoder::new(&bytes);
        assert!(wrong.load_state(&mut d).is_err());
    }
}
