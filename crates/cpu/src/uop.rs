//! Micro-op vocabulary shared between the core model and trace generators.

use simbase::{AccessKind, Addr};

/// Functional-unit class of a micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Simple integer ALU operation (1 cycle).
    IntAlu,
    /// Integer multiply/divide (3 cycles).
    IntMul,
    /// Floating-point add/compare (2 cycles).
    FpAlu,
    /// Floating-point multiply/divide (4 cycles).
    FpMul,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch (1 cycle to resolve once inputs are ready).
    Branch,
}

impl OpClass {
    /// Execution latency in cycles once operands are ready (memory ops
    /// excluded — their latency comes from the memory system).
    pub const fn latency(self) -> u64 {
        match self {
            OpClass::IntAlu | OpClass::Branch | OpClass::Store => 1,
            OpClass::FpAlu => 2,
            OpClass::IntMul => 3,
            OpClass::FpMul => 4,
            OpClass::Load => 0, // determined by the memory system
        }
    }

    /// True for loads and stores.
    pub const fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }
}

/// One instruction of the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroOp {
    /// Functional class.
    pub class: OpClass,
    /// Program counter (drives instruction fetch).
    pub pc: Addr,
    /// Effective address for loads/stores.
    pub mem_addr: Option<Addr>,
    /// Backward dependency distances: this op reads the results of the
    /// `dep1`-th and `dep2`-th most recent older ops (0 = no dependency).
    pub dep1: u8,
    /// Second source dependency distance (0 = none).
    pub dep2: u8,
    /// Branch outcome (meaningful only for [`OpClass::Branch`]).
    pub taken: bool,
}

impl MicroOp {
    /// An independent single-cycle ALU op at `pc`.
    pub fn alu(pc: Addr) -> Self {
        MicroOp {
            class: OpClass::IntAlu,
            pc,
            mem_addr: None,
            dep1: 0,
            dep2: 0,
            taken: false,
        }
    }

    /// A load from `addr` at `pc` with dependency distance `dep1`.
    pub fn load(pc: Addr, addr: Addr, dep1: u8) -> Self {
        MicroOp {
            class: OpClass::Load,
            pc,
            mem_addr: Some(addr),
            dep1,
            dep2: 0,
            taken: false,
        }
    }

    /// A store to `addr` at `pc`.
    pub fn store(pc: Addr, addr: Addr, dep1: u8) -> Self {
        MicroOp {
            class: OpClass::Store,
            pc,
            mem_addr: Some(addr),
            dep1,
            dep2: 0,
            taken: false,
        }
    }

    /// A conditional branch at `pc` with the given outcome.
    pub fn branch(pc: Addr, taken: bool) -> Self {
        MicroOp {
            class: OpClass::Branch,
            pc,
            mem_addr: None,
            dep1: 1,
            dep2: 0,
            taken,
        }
    }

    /// The access kind of a memory op.
    ///
    /// # Panics
    ///
    /// Panics for non-memory ops.
    pub fn access_kind(&self) -> AccessKind {
        match self.class {
            OpClass::Load => AccessKind::Read,
            OpClass::Store => AccessKind::Write,
            _ => panic!("access_kind on non-memory op"),
        }
    }
}

/// A source of micro-ops (implemented by the workload generators).
pub trait TraceSource {
    /// Produces the next instruction of the trace.
    fn next_op(&mut self) -> MicroOp;
}

impl<F: FnMut() -> MicroOp> TraceSource for F {
    fn next_op(&mut self) -> MicroOp {
        self()
    }
}

/// A trace source that knows its absolute position in the op stream —
/// the number of ops it has emitted since construction. Offset-addressed
/// execution (sampled simulation, interval-parallel runs) uses this to
/// fast-forward a core *to* a stream offset instead of *by* a count, so
/// a consumer that restored mid-trace state never has to track how many
/// ops the stream already produced.
pub trait TraceCursor: TraceSource {
    /// Ops emitted so far (the index of the next op).
    fn position(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies() {
        assert_eq!(OpClass::IntAlu.latency(), 1);
        assert_eq!(OpClass::FpMul.latency(), 4);
        assert_eq!(OpClass::Load.latency(), 0);
    }

    #[test]
    fn mem_classification() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::Branch.is_mem());
    }

    #[test]
    fn constructors_fill_fields() {
        let l = MicroOp::load(Addr::new(4), Addr::new(0x100), 2);
        assert_eq!(l.class, OpClass::Load);
        assert_eq!(l.mem_addr, Some(Addr::new(0x100)));
        assert_eq!(l.dep1, 2);
        assert_eq!(l.access_kind(), AccessKind::Read);
        let s = MicroOp::store(Addr::new(8), Addr::new(0x200), 0);
        assert_eq!(s.access_kind(), AccessKind::Write);
        let b = MicroOp::branch(Addr::new(12), true);
        assert!(b.taken);
    }

    #[test]
    #[should_panic(expected = "non-memory")]
    fn access_kind_panics_for_alu() {
        MicroOp::alu(Addr::new(0)).access_kind();
    }

    #[test]
    fn closures_are_trace_sources() {
        let mut n = 0u64;
        let mut src = move || {
            n += 4;
            MicroOp::alu(Addr::new(n))
        };
        assert_eq!(TraceSource::next_op(&mut src).pc, Addr::new(4));
        assert_eq!(TraceSource::next_op(&mut src).pc, Addr::new(8));
    }
}
