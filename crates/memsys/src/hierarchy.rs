//! The conventional multi-level base case: 1-MB L2 + 8-MB L3.
//!
//! Section 4: "Our base configuration has a 1-MB, 8-way L2 cache with
//! 11-cycle latency, and an 8-MB, 8-way L3 cache, with 43-cycle latency.
//! Both have 128-B blocks." This is the same configuration the NUCA work used when
//! comparing NUCA against a multi-level hierarchy.

use crate::lower::{LowerCache, LowerOutcome};
use crate::memory::MainMemory;
use crate::org::{Organization, OrgReport};
use crate::replacement::PolicyKind;
use crate::setassoc::SetAssocCache;
use simbase::EnergyNj;
use simbase::rng::SimRng;
use simbase::stats::Counter;
use simbase::{AccessKind, BlockAddr, Capacity, Cycle};
use simtel::TelemetrySink;

/// Parameters of one conventional cache level.
#[derive(Debug, Clone, Copy)]
pub struct LevelParams {
    /// Capacity of the level.
    pub capacity: Capacity,
    /// Associativity.
    pub assoc: u32,
    /// Hit latency in cycles.
    pub latency: u64,
}

/// The conventional L2/L3 hierarchy plus main memory.
///
/// # Examples
///
/// ```
/// use memsys::hierarchy::BaseHierarchy;
/// use memsys::lower::LowerCache;
/// use simbase::{AccessKind, BlockAddr, Cycle};
///
/// let mut h = BaseHierarchy::micro2003();
/// h.access(BlockAddr::from_index(1), AccessKind::Read, Cycle::ZERO);
/// // The refill now hits the 1-MB L2 at its 11-cycle latency.
/// let hit = h.access(BlockAddr::from_index(1), AccessKind::Read, Cycle::new(500));
/// assert!(hit.hit);
/// assert_eq!(hit.complete_at, Cycle::new(511));
/// ```
#[derive(Debug, Clone)]
pub struct BaseHierarchy {
    l2: SetAssocCache,
    l3: SetAssocCache,
    l2_latency: u64,
    l3_latency: u64,
    block_bytes: u64,
    memory: MainMemory,
    l2_accesses: Counter,
    l2_hits: Counter,
    l3_accesses: Counter,
    l3_hits: Counter,
    writebacks: Counter,
    sink: TelemetrySink,
    snap_every: u64,
    next_snap: u64,
    l2_access_nj: f64,
    l3_access_nj: f64,
}

impl BaseHierarchy {
    /// The paper's base configuration (Table 1 / Section 4).
    pub fn micro2003() -> Self {
        Self::new(
            LevelParams {
                capacity: Capacity::from_mib(1),
                assoc: 8,
                latency: 11,
            },
            LevelParams {
                capacity: Capacity::from_mib(8),
                assoc: 8,
                latency: 43,
            },
            128,
            SimRng::seeded(0x6261_7365), // "base"
        )
    }

    /// Builds a hierarchy with explicit level parameters.
    pub fn new(l2: LevelParams, l3: LevelParams, block_bytes: u64, mut rng: SimRng) -> Self {
        let l2_cache = SetAssocCache::new(l2.capacity, block_bytes, l2.assoc, PolicyKind::Lru, rng.fork(2));
        let l3_cache = SetAssocCache::new(l3.capacity, block_bytes, l3.assoc, PolicyKind::Lru, rng.fork(3));
        BaseHierarchy {
            l2: l2_cache,
            l3: l3_cache,
            l2_latency: l2.latency,
            l3_latency: l3.latency,
            block_bytes,
            memory: MainMemory::micro2003(),
            l2_accesses: Counter::new(),
            l2_hits: Counter::new(),
            l3_accesses: Counter::new(),
            l3_hits: Counter::new(),
            writebacks: Counter::new(),
            sink: TelemetrySink::disabled(),
            snap_every: 0,
            next_snap: u64::MAX,
            l2_access_nj: 0.0,
            l3_access_nj: 0.0,
        }
    }

    /// Injects the per-access energies of the two levels (in nJ), priced
    /// by the caller's array models. This crate sits below the technology
    /// models, so the hierarchy cannot derive these itself; until they
    /// are set, [`Organization::report`] prices L2 energy as zero.
    pub fn set_level_energies(&mut self, l2_nj: f64, l3_nj: f64) {
        self.l2_access_nj = l2_nj;
        self.l3_access_nj = l3_nj;
    }

    /// Attaches a telemetry sink, forwarded to the memory channel. When
    /// `snap_every` is non-zero, a periodic snapshot of the L2 hit rate
    /// is emitted every `snap_every` cycles as a counter track.
    pub fn set_telemetry(&mut self, sink: TelemetrySink, snap_every: u64) {
        self.memory.set_telemetry(sink.clone());
        self.next_snap = if sink.enabled() && snap_every > 0 { snap_every } else { u64::MAX };
        self.snap_every = snap_every;
        self.sink = sink;
    }

    /// Emits the periodic L2 hit-rate snapshot once `now` passes the
    /// next snapshot boundary.
    fn maybe_snapshot(&mut self, now: Cycle) {
        if now.raw() < self.next_snap {
            return;
        }
        let hit_milli = 1000 * self.l2_hits.get() / self.l2_accesses.get().max(1);
        self.sink.counter_track("snap", "l2_hit_milli", now.raw(), hit_milli);
        self.sink.gauge("l2.hit_frac", now.raw(), self.l2_hits.get() as f64 / self.l2_accesses.get().max(1) as f64);
        while self.next_snap <= now.raw() {
            self.next_snap += self.snap_every;
        }
    }

    /// L2 accesses observed (the denominator of Table 3's APKI).
    pub fn l2_accesses(&self) -> u64 {
        self.l2_accesses.get()
    }

    /// L2 hits.
    pub fn l2_hits(&self) -> u64 {
        self.l2_hits.get()
    }

    /// L3 accesses (L2 misses plus L2 writebacks).
    pub fn l3_accesses(&self) -> u64 {
        self.l3_accesses.get()
    }

    /// L3 hits.
    pub fn l3_hits(&self) -> u64 {
        self.l3_hits.get()
    }

    /// Dirty-block writebacks between levels (L2→L3 and L3→memory).
    pub fn writebacks(&self) -> u64 {
        self.writebacks.get()
    }

    /// Accesses that went off chip.
    pub fn memory_accesses(&self) -> u64 {
        self.memory.accesses()
    }

    /// Zeroes the level counters (cache contents are kept). Used after
    /// warm-up, matching the paper's fast-forward methodology. The
    /// off-chip access counter is reset by replacing the memory model's
    /// counters via [`MainMemory::reset_counters`].
    pub fn reset_stats(&mut self) {
        self.l2_accesses = Counter::new();
        self.l2_hits = Counter::new();
        self.l3_accesses = Counter::new();
        self.l3_hits = Counter::new();
        self.writebacks = Counter::new();
        self.memory.reset_counters();
    }

    /// Fills every L2 and L3 frame with placeholder blocks (steady-state
    /// occupancy, the stand-in for the paper's 5 B-instruction
    /// fast-forward). Placeholders use a reserved address range and are
    /// natural LRU victims.
    pub fn prefill(&mut self) {
        let base = u64::MAX / 256;
        let l2_blocks = self.l2.sets() as u64 * self.l2.assoc() as u64;
        let l3_blocks = self.l3.sets() as u64 * self.l3.assoc() as u64;
        for i in 0..l3_blocks {
            let b = BlockAddr::from_index(base + i);
            let ev = self.l3.fill(b, false);
            assert!(ev.is_none(), "prefill must not evict");
            if i < l2_blocks {
                let ev = self.l2.fill(b, false);
                assert!(ev.is_none(), "prefill must not evict");
            }
        }
    }

    /// Warm-up drain barrier: forgets memory-channel occupancy. The L2/L3
    /// directories hold no in-flight timing state of their own.
    pub fn drain_timing(&mut self) {
        self.memory.drain_timing();
    }

    /// Serializes the architectural state of both levels. Counters, the
    /// memory channel, and telemetry are timing state and excluded.
    pub fn save_state(&self, e: &mut simbase::snapshot::Encoder) {
        self.l2.save_state(e);
        self.l3.save_state(e);
        self.memory.save_l4_state(e);
    }

    /// Restores state written by [`BaseHierarchy::save_state`] into a
    /// hierarchy of identical geometry.
    pub fn load_state(
        &mut self,
        d: &mut simbase::snapshot::Decoder<'_>,
    ) -> Result<(), simbase::snapshot::SnapshotError> {
        self.l2.load_state(d)?;
        self.l3.load_state(d)?;
        self.memory.load_l4_state(d)
    }

    /// Warm-up variant of [`BaseHierarchy::fill_l3`]: the dirty-victim
    /// writeback is pure timing on the channel, but with an L4 attached
    /// it changes L4 resident state, so it takes the warm twin.
    fn warm_fill_l3(&mut self, block: BlockAddr, dirty: bool) {
        if let Some(ev) = self.l3.fill(block, dirty) {
            if ev.dirty {
                self.memory.warm_writeback(ev.block);
            }
        }
    }

    /// Warm-up variant of [`BaseHierarchy::fill_l2`]: same victim handling,
    /// no counters or memory timing.
    fn warm_fill_l2(&mut self, block: BlockAddr, dirty: bool) {
        if let Some(ev) = self.l2.fill(block, dirty) {
            if ev.dirty && !self.l3.access(ev.block, AccessKind::Write).is_hit() {
                self.warm_fill_l3(ev.block, true);
            }
        }
    }

    /// Fills `block` into the L3, writing back a dirty victim to memory.
    fn fill_l3(&mut self, block: BlockAddr, dirty: bool, now: Cycle) {
        if let Some(ev) = self.l3.fill(block, dirty) {
            if ev.dirty {
                self.writebacks.inc();
                let _ = self.memory.writeback_block(ev.block, self.block_bytes, now);
            }
        }
    }

    /// Fills `block` into the L2, spilling a dirty victim into the L3.
    fn fill_l2(&mut self, block: BlockAddr, dirty: bool, now: Cycle) {
        if let Some(ev) = self.l2.fill(block, dirty) {
            if ev.dirty {
                self.writebacks.inc();
                // Victim writeback: update in place on L3 hit, else
                // allocate in L3 (exclusive-ish victim handling).
                self.l3_accesses.inc();
                if !self.l3.access(ev.block, AccessKind::Write).is_hit() {
                    self.fill_l3(ev.block, true, now);
                } else {
                    self.l3_hits.inc();
                }
            }
        }
    }
}

impl LowerCache for BaseHierarchy {
    fn access(&mut self, block: BlockAddr, kind: AccessKind, now: Cycle) -> LowerOutcome {
        self.l2_accesses.inc();
        self.maybe_snapshot(now);
        if self.l2.access(block, kind).is_hit() {
            self.l2_hits.inc();
            return LowerOutcome {
                complete_at: now + self.l2_latency,
                hit: true,
            };
        }
        // L2 miss: probe the L3 after the L2 lookup.
        let after_l2 = now + self.l2_latency;
        self.l3_accesses.inc();
        if self.l3.access(block, AccessKind::Read).is_hit() {
            self.l3_hits.inc();
            self.fill_l2(block, kind.is_write(), after_l2);
            return LowerOutcome {
                complete_at: now + self.l3_latency,
                hit: true,
            };
        }
        // Off-chip. L3 lookup time is part of the 43-cycle L3 latency; the
        // memory access starts after the on-chip lookups.
        let after_l3 = now + self.l3_latency;
        let done = self.memory.fill_block(block, self.block_bytes, after_l3);
        self.fill_l3(block, false, done);
        self.fill_l2(block, kind.is_write(), done);
        LowerOutcome {
            complete_at: done,
            hit: false,
        }
    }

    fn accesses(&self) -> u64 {
        self.l2_accesses.get()
    }

    fn misses(&self) -> u64 {
        self.memory.accesses()
    }

    fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    fn warm_access(&mut self, block: BlockAddr, kind: AccessKind) {
        // Mirrors the timed path's architectural transitions exactly —
        // same lookup order, same fill and victim handling — with the
        // latency math, counters, and memory channel elided.
        if self.l2.access(block, kind).is_hit() {
            return;
        }
        if self.l3.access(block, AccessKind::Read).is_hit() {
            self.warm_fill_l2(block, kind.is_write());
            return;
        }
        self.memory.warm_fill(block);
        self.warm_fill_l3(block, false);
        self.warm_fill_l2(block, kind.is_write());
    }
}

impl Organization for BaseHierarchy {
    fn prefill(&mut self) {
        BaseHierarchy::prefill(self);
    }

    fn reset_stats(&mut self) {
        BaseHierarchy::reset_stats(self);
    }

    fn set_telemetry(&mut self, sink: &TelemetrySink, snap_every: u64) {
        BaseHierarchy::set_telemetry(self, sink.clone(), snap_every);
    }

    fn drain_timing(&mut self) {
        BaseHierarchy::drain_timing(self);
    }

    fn save_state(&self, e: &mut simbase::snapshot::Encoder) {
        BaseHierarchy::save_state(self, e);
    }

    fn load_state(
        &mut self,
        d: &mut simbase::snapshot::Decoder<'_>,
    ) -> Result<(), simbase::snapshot::SnapshotError> {
        BaseHierarchy::load_state(self, d)
    }

    fn main_memory(&self) -> Option<&crate::memory::MainMemory> {
        Some(&self.memory)
    }

    fn main_memory_mut(&mut self) -> Option<&mut crate::memory::MainMemory> {
        Some(&mut self.memory)
    }

    fn report(&self) -> OrgReport {
        OrgReport {
            l2_accesses: self.l2_accesses(),
            l2_misses: self.l2_accesses() - self.l2_hits(),
            group_fracs: Vec::new(),
            miss_frac: 1.0 - self.l2_hits() as f64 / self.l2_accesses().max(1) as f64,
            dgroup_accesses: 0,
            swaps: 0,
            memory_accesses: self.memory_accesses(),
            l2_energy: EnergyNj::new(self.l2_access_nj) * self.l2_accesses()
                + EnergyNj::new(self.l3_access_nj) * self.l3_accesses(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    #[test]
    fn cold_miss_goes_to_memory() {
        let mut h = BaseHierarchy::micro2003();
        let out = h.access(blk(1), AccessKind::Read, Cycle::ZERO);
        assert!(!out.hit);
        // 43 (L3 path) + 194 (memory) cycles.
        assert_eq!(out.complete_at, Cycle::new(43 + 194));
        assert_eq!(h.memory_accesses(), 1);
    }

    #[test]
    fn second_access_hits_l2_at_11_cycles() {
        let mut h = BaseHierarchy::micro2003();
        h.access(blk(1), AccessKind::Read, Cycle::ZERO);
        let out = h.access(blk(1), AccessKind::Read, Cycle::new(1000));
        assert!(out.hit);
        assert_eq!(out.complete_at, Cycle::new(1011));
        assert_eq!(h.l2_hits(), 1);
    }

    #[test]
    fn l2_victim_hits_in_l3_at_43_cycles() {
        let mut h = BaseHierarchy::micro2003();
        // 1-MB 8-way L2 with 128-B blocks: 1024 sets. Fill 9 conflicting
        // blocks to push the first one out of L2 (it stays in L3).
        let sets = 1024u64;
        for i in 0..9 {
            h.access(blk(1 + i * sets), AccessKind::Read, Cycle::new(i * 10_000));
        }
        let out = h.access(blk(1), AccessKind::Read, Cycle::new(1_000_000));
        assert!(out.hit, "evicted L2 block must still hit in the 8-MB L3");
        assert_eq!(out.complete_at, Cycle::new(1_000_043));
    }

    #[test]
    fn writes_cause_writebacks_on_eviction() {
        let mut h = BaseHierarchy::micro2003();
        let sets = 1024u64;
        h.access(blk(1), AccessKind::Write, Cycle::ZERO);
        for i in 1..9 {
            h.access(blk(1 + i * sets), AccessKind::Read, Cycle::new(i * 10_000));
        }
        assert!(h.writebacks() >= 1, "dirty victim must write back to L3");
    }

    #[test]
    fn counters_are_consistent() {
        let mut h = BaseHierarchy::micro2003();
        for i in 0..100 {
            h.access(blk(i % 10), AccessKind::Read, Cycle::new(i * 500));
        }
        assert_eq!(h.accesses(), 100);
        assert_eq!(h.l2_hits() + h.l3_accesses() - h.writebacks(), 100);
        assert_eq!(h.misses(), 10, "10 distinct blocks, each one cold miss");
        assert!(h.miss_ratio() > 0.0 && h.miss_ratio() < 1.0);
    }

    #[test]
    fn block_bytes_is_128() {
        assert_eq!(BaseHierarchy::micro2003().block_bytes(), 128);
    }

    #[test]
    fn warm_access_matches_timed_architectural_state() {
        let mut timed = BaseHierarchy::micro2003();
        let mut warm = BaseHierarchy::micro2003();
        // A mix of conflict evictions, dirty writebacks, and L3 re-hits.
        let sets = 1024u64;
        let mut addrs = Vec::new();
        for i in 0..12u64 {
            addrs.push((1 + i * sets, if i % 3 == 0 { AccessKind::Write } else { AccessKind::Read }));
        }
        addrs.push((1, AccessKind::Read)); // back to the (evicted) first block
        for (i, &(b, k)) in addrs.iter().enumerate() {
            timed.access(blk(b), k, Cycle::new(i as u64 * 7));
            warm.warm_access(blk(b), k);
        }
        // Equal state ⇒ identical hit pattern on a cold replay.
        for &(b, k) in &addrs {
            let t = timed.access(blk(b), k, Cycle::new(100_000));
            let w = warm.access(blk(b), k, Cycle::new(100_000));
            assert_eq!(t.hit, w.hit, "block {b}");
        }
    }

    #[test]
    fn state_roundtrips_through_snapshot() {
        use simbase::snapshot::{Decoder, Encoder};
        let mut h = BaseHierarchy::micro2003();
        let sets = 1024u64;
        for i in 0..10u64 {
            h.access(blk(1 + i * sets), AccessKind::Write, Cycle::new(i * 100));
        }
        let mut e = Encoder::new();
        h.save_state(&mut e);
        let bytes = e.into_bytes();
        let mut fresh = BaseHierarchy::micro2003();
        let mut d = Decoder::new(&bytes);
        fresh.load_state(&mut d).unwrap();
        d.finish().unwrap();
        // Every warmed block must now be an on-chip hit in the twin.
        for i in 0..10u64 {
            let out = fresh.access(blk(1 + i * sets), AccessKind::Read, Cycle::new(1_000_000));
            assert!(out.hit, "block {} must hit after restore", 1 + i * sets);
        }
    }
}
