//! Miss-status holding registers (MSHRs).
//!
//! The paper's L1 data cache has 8 MSHRs (Table 1): up to eight distinct
//! block misses may be outstanding; further misses to an already-pending
//! block merge into the existing entry, and misses beyond the MSHR count
//! stall until an entry frees.

use simbase::{BlockAddr, Cycle};

/// Outcome of presenting a miss to the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated; the miss must be sent onward.
    Allocated,
    /// The block is already pending; this access completes when the
    /// earlier miss fills, at the returned time.
    Merged(Cycle),
    /// All entries are busy; the access must wait until the returned time
    /// (when the earliest entry retires) and retry.
    Full(Cycle),
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    block: BlockAddr,
    fill_at: Cycle,
}

/// A fixed-capacity MSHR file.
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<Entry>,
    capacity: usize,
    merges: u64,
    stalls: u64,
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one entry");
        MshrFile {
            entries: Vec::with_capacity(capacity),
            capacity,
            merges: 0,
            stalls: 0,
        }
    }

    /// Retires every entry whose fill time is at or before `now`.
    pub fn expire(&mut self, now: Cycle) {
        self.entries.retain(|e| e.fill_at > now);
    }

    /// Presents a miss on `block` at time `now`.
    ///
    /// On [`MshrOutcome::Allocated`] the caller must later call
    /// [`MshrFile::set_fill_time`] once the lower-level latency is known.
    pub fn on_miss(&mut self, block: BlockAddr, now: Cycle) -> MshrOutcome {
        self.expire(now);
        if let Some(e) = self.entries.iter().find(|e| e.block == block) {
            self.merges += 1;
            return MshrOutcome::Merged(e.fill_at);
        }
        if self.entries.len() >= self.capacity {
            self.stalls += 1;
            let earliest = self
                .entries
                .iter()
                .map(|e| e.fill_at)
                .min()
                .expect("full file is non-empty");
            return MshrOutcome::Full(earliest);
        }
        self.entries.push(Entry {
            block,
            // Placeholder until the lower level reports the fill time; an
            // entry with fill_at == now will expire on the next call, so
            // the caller must set the real time promptly.
            fill_at: now,
        });
        MshrOutcome::Allocated
    }

    /// Records when the outstanding miss on `block` will fill.
    ///
    /// # Panics
    ///
    /// Panics if `block` has no outstanding entry.
    pub fn set_fill_time(&mut self, block: BlockAddr, fill_at: Cycle) {
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.block == block)
            .expect("set_fill_time on unknown block");
        e.fill_at = fill_at;
    }

    /// Drops every outstanding entry and zeroes the merge/stall counters.
    /// Used at the warm-up drain barrier: the measured phase starts from a
    /// quiesced machine with no in-flight misses.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.merges = 0;
        self.stalls = 0;
    }

    /// Number of currently outstanding misses.
    pub fn outstanding(&self) -> usize {
        self.entries.len()
    }

    /// Total merged (secondary) misses observed.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Total structural stalls (file full) observed.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    #[test]
    fn allocate_then_merge() {
        let mut m = MshrFile::new(8);
        assert_eq!(m.on_miss(blk(1), Cycle::new(0)), MshrOutcome::Allocated);
        m.set_fill_time(blk(1), Cycle::new(100));
        assert_eq!(
            m.on_miss(blk(1), Cycle::new(5)),
            MshrOutcome::Merged(Cycle::new(100))
        );
        assert_eq!(m.merges(), 1);
        assert_eq!(m.outstanding(), 1);
    }

    #[test]
    fn fills_expire() {
        let mut m = MshrFile::new(2);
        m.on_miss(blk(1), Cycle::new(0));
        m.set_fill_time(blk(1), Cycle::new(50));
        m.expire(Cycle::new(50));
        assert_eq!(m.outstanding(), 0);
        // A new miss on the same block allocates afresh.
        assert_eq!(m.on_miss(blk(1), Cycle::new(51)), MshrOutcome::Allocated);
    }

    #[test]
    fn full_file_reports_earliest_retirement() {
        let mut m = MshrFile::new(2);
        m.on_miss(blk(1), Cycle::new(0));
        m.set_fill_time(blk(1), Cycle::new(30));
        m.on_miss(blk(2), Cycle::new(0));
        m.set_fill_time(blk(2), Cycle::new(80));
        assert_eq!(
            m.on_miss(blk(3), Cycle::new(1)),
            MshrOutcome::Full(Cycle::new(30))
        );
        assert_eq!(m.stalls(), 1);
        // After the earliest entry expires there is room again.
        assert_eq!(m.on_miss(blk(3), Cycle::new(30)), MshrOutcome::Allocated);
    }

    #[test]
    fn eight_mshrs_allow_eight_outstanding() {
        let mut m = MshrFile::new(8);
        for i in 0..8 {
            assert_eq!(m.on_miss(blk(i), Cycle::new(0)), MshrOutcome::Allocated);
            m.set_fill_time(blk(i), Cycle::new(1000));
        }
        assert!(matches!(
            m.on_miss(blk(8), Cycle::new(1)),
            MshrOutcome::Full(_)
        ));
        assert_eq!(m.outstanding(), 8);
    }

    #[test]
    fn clear_drops_entries_and_counters() {
        let mut m = MshrFile::new(2);
        m.on_miss(blk(1), Cycle::new(0));
        m.set_fill_time(blk(1), Cycle::new(100));
        m.on_miss(blk(1), Cycle::new(1)); // merge
        m.on_miss(blk(2), Cycle::new(1));
        m.set_fill_time(blk(2), Cycle::new(100));
        m.on_miss(blk(3), Cycle::new(2)); // stall
        m.clear();
        assert_eq!(m.outstanding(), 0);
        assert_eq!(m.merges(), 0);
        assert_eq!(m.stalls(), 0);
        assert_eq!(m.on_miss(blk(1), Cycle::new(3)), MshrOutcome::Allocated);
    }

    #[test]
    #[should_panic(expected = "unknown block")]
    fn set_fill_time_unknown_panics() {
        let mut m = MshrFile::new(2);
        m.set_fill_time(blk(9), Cycle::new(1));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_capacity_panics() {
        let _ = MshrFile::new(0);
    }
}
