//! The seam between the core-side memory system and the lower-level cache
//! under study.
//!
//! The paper evaluates three lower-level organizations behind identical
//! L1s: the conventional L2/L3 hierarchy (base case), D-NUCA, and
//! NuRAPID. All three implement [`LowerCache`] so the same CPU model
//! drives each one.

use simbase::{AccessKind, BlockAddr, Cycle};

/// Result of a lower-level cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerOutcome {
    /// When the requested block is available at the L1 fill port.
    pub complete_at: Cycle,
    /// Whether the access hit somewhere on chip (any level below L1).
    pub hit: bool,
}

/// A lower-level cache organization (everything between the L1s and main
/// memory).
pub trait LowerCache {
    /// Performs an access to `block` (in the lower cache's own block
    /// framing) starting at `now`, returning when it completes.
    fn access(&mut self, block: BlockAddr, kind: AccessKind, now: Cycle) -> LowerOutcome;

    /// Total accesses presented to this cache.
    fn accesses(&self) -> u64;

    /// Accesses that missed on chip and went to memory.
    fn misses(&self) -> u64;

    /// Block size of this cache in bytes.
    fn block_bytes(&self) -> u64;

    /// Applies the architectural effects of an access — fills, recency
    /// updates, placement, demotions, victim writebacks — without timing.
    /// Used by the warm-up fast-forward path.
    ///
    /// The default presents the access at cycle zero through the timed
    /// path, which is architecturally equivalent because every
    /// organization's state transitions are independent of `now`;
    /// implementations override this with a leaner path that skips
    /// latency math, port scheduling, and counters.
    fn warm_access(&mut self, block: BlockAddr, kind: AccessKind) {
        let _ = self.access(block, kind, Cycle::ZERO);
    }

    /// Miss ratio (0.0 when no accesses have occurred).
    fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial LowerCache for exercising the trait's provided methods.
    struct Fixed {
        accesses: u64,
        misses: u64,
    }

    impl LowerCache for Fixed {
        fn access(&mut self, _block: BlockAddr, _kind: AccessKind, now: Cycle) -> LowerOutcome {
            self.accesses += 1;
            LowerOutcome {
                complete_at: now + 10,
                hit: true,
            }
        }
        fn accesses(&self) -> u64 {
            self.accesses
        }
        fn misses(&self) -> u64 {
            self.misses
        }
        fn block_bytes(&self) -> u64 {
            128
        }
    }

    #[test]
    fn miss_ratio_handles_zero_accesses() {
        let f = Fixed {
            accesses: 0,
            misses: 0,
        };
        assert_eq!(f.miss_ratio(), 0.0);
    }

    #[test]
    fn miss_ratio_divides() {
        let f = Fixed {
            accesses: 8,
            misses: 2,
        };
        assert_eq!(f.miss_ratio(), 0.25);
    }

    #[test]
    fn access_advances_counters() {
        let mut f = Fixed {
            accesses: 0,
            misses: 0,
        };
        let out = f.access(BlockAddr::from_index(1), AccessKind::Read, Cycle::new(5));
        assert_eq!(out.complete_at, Cycle::new(15));
        assert!(out.hit);
        assert_eq!(f.accesses(), 1);
    }
}
