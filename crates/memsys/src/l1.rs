//! L1 instruction and data caches plus the MSHR front end.
//!
//! Table 1: both L1s are 64-KB 2-way with 32-B blocks and a 3-cycle
//! pipelined hit; the data cache has 8 MSHRs. L1 misses are converted to
//! the lower cache's 128-B block framing. The real CPU demand on the
//! lower-level cache is filtered through these structures, which is the
//! paper's argument (problem 4) that lower-level bandwidth demand is low.

use crate::lower::LowerCache;
use crate::mshr::{MshrFile, MshrOutcome};
use crate::replacement::PolicyKind;
use crate::setassoc::SetAssocCache;
use simbase::rng::SimRng;
use simbase::stats::Counter;
use simbase::{AccessKind, Addr, BlockAddr, BlockGeometry, Capacity, Cycle};
use simtel::TelemetrySink;

/// L1 configuration.
#[derive(Debug, Clone, Copy)]
pub struct L1Params {
    /// Capacity (64 KB in the paper).
    pub capacity: Capacity,
    /// Associativity (2 in the paper).
    pub assoc: u32,
    /// Block size in bytes (32 in the paper).
    pub block_bytes: u64,
    /// Hit latency in cycles (3 in the paper).
    pub hit_latency: u64,
    /// Number of MSHRs (8 for the data cache).
    pub mshrs: usize,
}

impl L1Params {
    /// The paper's L1 configuration (Table 1).
    pub fn micro2003() -> Self {
        L1Params {
            capacity: Capacity::from_kib(64),
            assoc: 2,
            block_bytes: 32,
            hit_latency: 3,
            mshrs: 8,
        }
    }
}

/// Outcome of a data access through the L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataOutcome {
    /// When the load value is available (or the store is complete in L1).
    pub complete_at: Cycle,
    /// Whether the access hit in the L1.
    pub l1_hit: bool,
}

/// The core-side memory system: L1 I/D caches and MSHRs in front of a
/// pluggable lower-level cache.
///
/// # Examples
///
/// ```
/// use memsys::hierarchy::BaseHierarchy;
/// use memsys::l1::CoreMemSystem;
/// use simbase::{AccessKind, Addr, Cycle};
///
/// let mut mem = CoreMemSystem::micro2003(BaseHierarchy::micro2003());
/// mem.data_access(Addr::new(0x1000), AccessKind::Read, Cycle::ZERO);
/// // Same 32-B line: a 3-cycle L1 hit.
/// let out = mem.data_access(Addr::new(0x1008), AccessKind::Read, Cycle::new(100));
/// assert!(out.l1_hit);
/// assert_eq!(out.complete_at, Cycle::new(103));
/// ```
#[derive(Debug)]
pub struct CoreMemSystem<L> {
    icache: SetAssocCache,
    dcache: SetAssocCache,
    dmshr: MshrFile,
    lower: L,
    l1_geom: BlockGeometry,
    lower_geom: BlockGeometry,
    hit_latency: u64,
    i_accesses: Counter,
    i_hits: Counter,
    d_accesses: Counter,
    d_hits: Counter,
    d_writebacks: Counter,
    sink: TelemetrySink,
}

impl<L: LowerCache> CoreMemSystem<L> {
    /// Builds the core memory system with the paper's L1 parameters over
    /// `lower`.
    pub fn micro2003(lower: L) -> Self {
        Self::new(L1Params::micro2003(), lower, SimRng::seeded(0x4c31))
    }

    /// Builds the core memory system with explicit L1 parameters.
    pub fn new(params: L1Params, lower: L, mut rng: SimRng) -> Self {
        let lower_block = lower.block_bytes();
        assert!(
            lower_block >= params.block_bytes,
            "lower-level blocks must be at least L1-sized"
        );
        CoreMemSystem {
            icache: SetAssocCache::new(
                params.capacity,
                params.block_bytes,
                params.assoc,
                PolicyKind::Lru,
                rng.fork(1),
            ),
            dcache: SetAssocCache::new(
                params.capacity,
                params.block_bytes,
                params.assoc,
                PolicyKind::Lru,
                rng.fork(2),
            ),
            dmshr: MshrFile::new(params.mshrs),
            lower,
            l1_geom: BlockGeometry::new(params.block_bytes),
            lower_geom: BlockGeometry::new(lower_block),
            hit_latency: params.hit_latency,
            i_accesses: Counter::new(),
            i_hits: Counter::new(),
            d_accesses: Counter::new(),
            d_hits: Counter::new(),
            d_writebacks: Counter::new(),
            sink: TelemetrySink::disabled(),
        }
    }

    /// Attaches a telemetry sink: MSHR structural stalls are recorded as
    /// cycle-stamped spans plus a stall-cycle histogram.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.sink = sink;
    }

    /// Converts an L1 (32-B) block to the lower cache's (128-B) framing.
    fn to_lower_block(&self, l1_block: BlockAddr) -> BlockAddr {
        let addr = self.l1_geom.base_of(l1_block);
        self.lower_geom.block_of(addr)
    }

    /// Instruction fetch of the block containing `pc`; returns when the
    /// fetch completes.
    pub fn fetch(&mut self, pc: Addr, now: Cycle) -> Cycle {
        self.i_accesses.inc();
        let block = self.l1_geom.block_of(pc);
        if self.icache.access(block, AccessKind::Read).is_hit() {
            self.i_hits.inc();
            return now + self.hit_latency;
        }
        let out = self
            .lower
            .access(self.to_lower_block(block), AccessKind::Read, now + self.hit_latency);
        // Instruction lines are never dirty; evictions are silent.
        let _ = self.icache.fill(block, false);
        out.complete_at
    }

    /// Data access (load or store) to `addr`; returns the completion time
    /// and whether the L1 hit.
    pub fn data_access(&mut self, addr: Addr, kind: AccessKind, now: Cycle) -> DataOutcome {
        self.d_accesses.inc();
        let block = self.l1_geom.block_of(addr);
        if self.dcache.access(block, kind).is_hit() {
            self.d_hits.inc();
            return DataOutcome {
                complete_at: now + self.hit_latency,
                l1_hit: true,
            };
        }
        // L1 miss: go through the MSHRs. The MSHR file shapes only *when*
        // the miss issues and completes; merged misses are still presented
        // to the lower level and refill the L1 below, so cache contents
        // stay a pure function of the access sequence (the warm-up
        // fast-forward relies on exactly this).
        let mut issue_at = now + self.hit_latency;
        let mut merged_fill = None;
        loop {
            match self.dmshr.on_miss(block, issue_at) {
                MshrOutcome::Allocated => break,
                MshrOutcome::Merged(fill_at) => {
                    merged_fill = Some(fill_at);
                    break;
                }
                MshrOutcome::Full(retry_at) => {
                    // Structural stall: wait for the earliest entry.
                    if self.sink.enabled() {
                        let stall = (retry_at + 1).saturating_since(issue_at);
                        self.sink.count("memsys.mshr_stalls", 1);
                        self.sink.observe("memsys.mshr_stall_cycles", stall);
                        self.sink.span("memsys", "mshr_stall", issue_at.raw(), stall);
                    }
                    issue_at = retry_at + 1;
                }
            }
        }
        let out = self
            .lower
            .access(self.to_lower_block(block), kind, issue_at);
        if merged_fill.is_none() {
            self.dmshr.set_fill_time(block, out.complete_at);
        }
        // Fill the L1 (write-allocate); spill any dirty victim.
        if let Some(ev) = self.dcache.fill(block, kind.is_write()) {
            if ev.dirty {
                self.d_writebacks.inc();
                let _ = self.lower.access(
                    self.to_lower_block(ev.block),
                    AccessKind::Write,
                    out.complete_at,
                );
            }
        }
        DataOutcome {
            // A merged miss completes when the earlier miss's fill arrives.
            complete_at: merged_fill.map_or(out.complete_at, |f| f.max(issue_at)),
            l1_hit: false,
        }
    }

    /// Warm-up instruction fetch: the architectural effects of
    /// [`CoreMemSystem::fetch`] — icache recency, lower-level access, fill
    /// — without timing, counters, or telemetry.
    pub fn warm_fetch(&mut self, pc: Addr) {
        let block = self.l1_geom.block_of(pc);
        if self.icache.access(block, AccessKind::Read).is_hit() {
            return;
        }
        self.lower.warm_access(self.to_lower_block(block), AccessKind::Read);
        let _ = self.icache.fill(block, false);
    }

    /// Warm-up data access: the architectural effects of
    /// [`CoreMemSystem::data_access`] without the MSHR timing machinery
    /// (merged and stalled misses are presented to the lower level by the
    /// timed path too, so skipping the MSHRs preserves the lower-level
    /// access sequence exactly).
    pub fn warm_data_access(&mut self, addr: Addr, kind: AccessKind) {
        let block = self.l1_geom.block_of(addr);
        if self.dcache.access(block, kind).is_hit() {
            return;
        }
        self.lower.warm_access(self.to_lower_block(block), kind);
        if let Some(ev) = self.dcache.fill(block, kind.is_write()) {
            if ev.dirty {
                self.lower
                    .warm_access(self.to_lower_block(ev.block), AccessKind::Write);
            }
        }
    }

    /// Drops every L1 data-cache line covered by one lower-level block —
    /// the invalidation-lite sharing model: when another core writes a
    /// shared block, this core's private copies vanish without a
    /// writeback (their dirt, if any, is considered absorbed by the
    /// writer's lower-level update). The I-cache is untouched: code is
    /// read-only in the trace model. Returns how many lines were dropped.
    pub fn invalidate_lower_block(&mut self, lower_block: BlockAddr) -> u32 {
        let base = self.lower_geom.base_of(lower_block);
        let lines = self.lower_geom.block_bytes() / self.l1_geom.block_bytes();
        let mut dropped = 0;
        for i in 0..lines {
            let line = self.l1_geom.block_of(base.offset(i * self.l1_geom.block_bytes()));
            if self.dcache.invalidate(line).is_some() {
                dropped += 1;
            }
        }
        dropped
    }

    /// Warm-up drain barrier: forgets in-flight timing state (outstanding
    /// MSHR entries) so the measured phase starts from a quiesced machine
    /// whose behavior is fully determined by architectural state. The
    /// lower level drains its own timing state separately.
    pub fn drain_timing(&mut self) {
        self.dmshr.clear();
    }

    /// Serializes the L1 architectural state (both directories). The lower
    /// level serializes itself separately.
    pub fn save_l1_state(&self, e: &mut simbase::snapshot::Encoder) {
        self.icache.save_state(e);
        self.dcache.save_state(e);
    }

    /// Restores state written by [`CoreMemSystem::save_l1_state`].
    pub fn load_l1_state(
        &mut self,
        d: &mut simbase::snapshot::Decoder<'_>,
    ) -> Result<(), simbase::snapshot::SnapshotError> {
        self.icache.load_state(d)?;
        self.dcache.load_state(d)
    }

    /// The lower-level cache under study.
    pub fn lower(&self) -> &L {
        &self.lower
    }

    /// Mutable access to the lower-level cache.
    pub fn lower_mut(&mut self) -> &mut L {
        &mut self.lower
    }

    /// Consumes the system, returning the lower-level cache.
    pub fn into_lower(self) -> L {
        self.lower
    }

    /// Instruction-fetch accesses.
    pub fn i_accesses(&self) -> u64 {
        self.i_accesses.get()
    }

    /// Instruction-fetch L1 hits.
    pub fn i_hits(&self) -> u64 {
        self.i_hits.get()
    }

    /// Data accesses.
    pub fn d_accesses(&self) -> u64 {
        self.d_accesses.get()
    }

    /// Data L1 hits.
    pub fn d_hits(&self) -> u64 {
        self.d_hits.get()
    }

    /// Dirty L1 lines written back to the lower cache.
    pub fn d_writebacks(&self) -> u64 {
        self.d_writebacks.get()
    }

    /// Combined L1 accesses (for energy accounting).
    pub fn l1_accesses(&self) -> u64 {
        self.i_accesses.get() + self.d_accesses.get()
    }

    /// Zeroes the L1 counters (contents and MSHR state are kept). Used
    /// after warm-up.
    pub fn reset_stats(&mut self) {
        self.i_accesses = Counter::new();
        self.i_hits = Counter::new();
        self.d_accesses = Counter::new();
        self.d_hits = Counter::new();
        self.d_writebacks = Counter::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::LowerOutcome;

    /// Lower level with fixed latency that records presented accesses.
    #[derive(Debug)]
    struct Probe {
        latency: u64,
        log: Vec<(BlockAddr, AccessKind)>,
    }

    impl Probe {
        fn new(latency: u64) -> Self {
            Probe {
                latency,
                log: Vec::new(),
            }
        }
    }

    impl LowerCache for Probe {
        fn access(&mut self, block: BlockAddr, kind: AccessKind, now: Cycle) -> LowerOutcome {
            self.log.push((block, kind));
            LowerOutcome {
                complete_at: now + self.latency,
                hit: true,
            }
        }
        fn accesses(&self) -> u64 {
            self.log.len() as u64
        }
        fn misses(&self) -> u64 {
            0
        }
        fn block_bytes(&self) -> u64 {
            128
        }
    }

    fn sys() -> CoreMemSystem<Probe> {
        CoreMemSystem::micro2003(Probe::new(14))
    }

    #[test]
    fn l1_hit_is_three_cycles() {
        let mut s = sys();
        s.data_access(Addr::new(0x100), AccessKind::Read, Cycle::ZERO);
        let out = s.data_access(Addr::new(0x104), AccessKind::Read, Cycle::new(10));
        assert!(out.l1_hit, "same 32-B block must hit");
        assert_eq!(out.complete_at, Cycle::new(13));
        assert_eq!(s.d_hits(), 1);
    }

    #[test]
    fn l1_miss_latency_includes_l1_lookup_plus_lower() {
        let mut s = sys();
        let out = s.data_access(Addr::new(0x100), AccessKind::Read, Cycle::ZERO);
        assert!(!out.l1_hit);
        assert_eq!(out.complete_at, Cycle::new(3 + 14));
    }

    #[test]
    fn lower_sees_128b_blocks() {
        let mut s = sys();
        s.data_access(Addr::new(0x100), AccessKind::Read, Cycle::ZERO);
        // 0x100 >> 7 == 2.
        assert_eq!(s.lower().log[0].0, BlockAddr::from_index(2));
    }

    #[test]
    fn adjacent_l1_blocks_in_same_lower_block_are_separate_misses() {
        let mut s = sys();
        s.data_access(Addr::new(0x100), AccessKind::Read, Cycle::ZERO);
        s.data_access(Addr::new(0x120), AccessKind::Read, Cycle::new(100));
        assert_eq!(s.lower().accesses(), 2, "32-B framing, no spatial merge");
    }

    #[test]
    fn back_to_back_same_block_second_hits_l1() {
        let mut s = sys();
        // Fills are architecturally instantaneous, so an immediate re-access
        // of the same L1 block is an L1 hit, not a merge.
        s.data_access(Addr::new(0x100), AccessKind::Read, Cycle::ZERO);
        let out = s.data_access(Addr::new(0x100), AccessKind::Read, Cycle::new(1));
        assert!(out.l1_hit);
        assert_eq!(s.lower().accesses(), 1);
        assert!(out.complete_at.raw() <= 17);
    }

    #[test]
    fn merged_miss_is_architecturally_a_miss_but_keeps_merged_timing() {
        let mut s = sys();
        // A misses at t=0 (MSHR entry fills at t=17); B and C then evict A
        // from its 2-way set while that entry is still in flight.
        let stride = 1024 * 32;
        s.data_access(Addr::new(0x40), AccessKind::Read, Cycle::ZERO);
        s.data_access(Addr::new(0x40 + stride), AccessKind::Read, Cycle::new(1));
        s.data_access(Addr::new(0x40 + 2 * stride), AccessKind::Read, Cycle::new(2));
        // A again before t=17: merges into the outstanding entry for timing,
        // but is still presented to the lower level and refills the L1.
        let out = s.data_access(Addr::new(0x40), AccessKind::Read, Cycle::new(3));
        assert!(!out.l1_hit);
        assert_eq!(out.complete_at, Cycle::new(17), "completes at the merged fill time");
        assert_eq!(s.lower().accesses(), 4, "merged miss still reaches the lower level");
        let out = s.data_access(Addr::new(0x40), AccessKind::Read, Cycle::new(30));
        assert!(out.l1_hit, "the merged miss must have refilled the line");
    }

    #[test]
    fn warm_paths_build_identical_architectural_state() {
        // Drive one system through the timed path and a twin through the
        // warm path; contents, recency, and dirt must match exactly.
        let mut timed = sys();
        let mut warm = sys();
        let stride = 1024 * 32;
        let seq: &[(u64, AccessKind)] = &[
            (0x40, AccessKind::Write),
            (0x40 + stride, AccessKind::Read),
            (0x40 + 2 * stride, AccessKind::Read), // evicts dirty 0x40
            (0x40, AccessKind::Read),              // merged miss + refill
            (0x1000, AccessKind::Write),
            (0x1008, AccessKind::Read),
        ];
        for (i, &(a, k)) in seq.iter().enumerate() {
            timed.data_access(Addr::new(a), k, Cycle::new(i as u64));
            warm.warm_data_access(Addr::new(a), k);
            timed.fetch(Addr::new(0x2000 + a), Cycle::new(i as u64));
            warm.warm_fetch(Addr::new(0x2000 + a));
        }
        assert_eq!(
            timed.lower().log,
            warm.lower().log,
            "lower level must see the same access sequence"
        );
        // Replaying the sequence cold on both: identical hit patterns.
        for &(a, k) in seq {
            let t = timed.data_access(Addr::new(a), k, Cycle::new(1000));
            let w = warm.data_access(Addr::new(a), k, Cycle::new(1000));
            assert_eq!(t.l1_hit, w.l1_hit, "addr {a:#x}");
        }
    }

    #[test]
    fn l1_state_roundtrips_through_snapshot() {
        use simbase::snapshot::{Decoder, Encoder};
        let mut s = sys();
        let stride = 1024 * 32;
        for (i, a) in [0x40u64, 0x40 + stride, 0x80, 0x2000].into_iter().enumerate() {
            s.data_access(Addr::new(a), AccessKind::Write, Cycle::new(i as u64 * 10));
            s.fetch(Addr::new(a), Cycle::new(i as u64 * 10));
        }
        let mut e = Encoder::new();
        s.save_l1_state(&mut e);
        let bytes = e.into_bytes();
        let mut fresh = sys();
        let mut d = Decoder::new(&bytes);
        fresh.load_l1_state(&mut d).unwrap();
        d.finish().unwrap();
        for a in [0x40u64, 0x40 + stride, 0x80, 0x2000] {
            assert!(
                fresh.data_access(Addr::new(a), AccessKind::Read, Cycle::ZERO).l1_hit,
                "addr {a:#x} must be resident after restore"
            );
            fresh.fetch(Addr::new(a), Cycle::ZERO);
        }
        assert_eq!(fresh.i_hits(), 4, "icache contents restored");
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut s = sys();
        // 64KB 2-way 32B: 1024 sets. Write a block, then evict it with two
        // conflicting fills.
        let stride = 1024 * 32;
        s.data_access(Addr::new(0x40), AccessKind::Write, Cycle::ZERO);
        s.data_access(Addr::new(0x40 + stride), AccessKind::Read, Cycle::new(100));
        s.data_access(Addr::new(0x40 + 2 * stride), AccessKind::Read, Cycle::new(200));
        assert_eq!(s.d_writebacks(), 1);
        assert!(
            s.lower().log.iter().any(|&(_, k)| k.is_write()),
            "writeback must reach the lower cache as a write"
        );
    }

    #[test]
    fn invalidate_lower_block_drops_covered_dcache_lines_only() {
        let mut s = sys();
        // Four 32-B lines inside the 128-B lower block at 0x100..0x180,
        // one line outside it, and the I-cache line for the same range.
        for a in [0x100u64, 0x120, 0x140, 0x160, 0x200] {
            s.data_access(Addr::new(a), AccessKind::Write, Cycle::ZERO);
        }
        s.fetch(Addr::new(0x100), Cycle::ZERO);
        let lower = BlockGeometry::new(128).block_of(Addr::new(0x100));
        assert_eq!(s.invalidate_lower_block(lower), 4);
        // Idempotent: nothing left to drop.
        assert_eq!(s.invalidate_lower_block(lower), 0);
        for a in [0x100u64, 0x120, 0x140, 0x160] {
            assert!(
                !s.data_access(Addr::new(a), AccessKind::Read, Cycle::ZERO).l1_hit,
                "line {a:#x} must be gone"
            );
        }
        assert!(
            s.data_access(Addr::new(0x200), AccessKind::Read, Cycle::ZERO).l1_hit,
            "uncovered line survives"
        );
        s.fetch(Addr::new(0x104), Cycle::ZERO);
        assert_eq!(s.i_hits(), 1, "icache is untouched by data invalidation");
    }

    #[test]
    fn fetch_hits_after_first_fill() {
        let mut s = sys();
        let t1 = s.fetch(Addr::new(0x2000), Cycle::ZERO);
        assert_eq!(t1, Cycle::new(17));
        let t2 = s.fetch(Addr::new(0x2004), Cycle::new(20));
        assert_eq!(t2, Cycle::new(23), "same line: 3-cycle hit");
        assert_eq!(s.i_hits(), 1);
        assert_eq!(s.i_accesses(), 2);
    }

    #[test]
    fn icache_and_dcache_are_independent() {
        let mut s = sys();
        s.fetch(Addr::new(0x3000), Cycle::ZERO);
        let out = s.data_access(Addr::new(0x3000), AccessKind::Read, Cycle::new(50));
        assert!(!out.l1_hit, "I-fill must not warm the D-cache");
    }

    #[test]
    fn l1_accesses_sums_both_sides() {
        let mut s = sys();
        s.fetch(Addr::new(0), Cycle::ZERO);
        s.data_access(Addr::new(0), AccessKind::Read, Cycle::ZERO);
        assert_eq!(s.l1_accesses(), 2);
    }

    #[test]
    #[should_panic(expected = "at least L1-sized")]
    fn lower_blocks_must_cover_l1_blocks() {
        #[derive(Debug)]
        struct Tiny;
        impl LowerCache for Tiny {
            fn access(&mut self, _b: BlockAddr, _k: AccessKind, now: Cycle) -> LowerOutcome {
                LowerOutcome {
                    complete_at: now,
                    hit: true,
                }
            }
            fn accesses(&self) -> u64 {
                0
            }
            fn misses(&self) -> u64 {
                0
            }
            fn block_bytes(&self) -> u64 {
                16
            }
        }
        let _ = CoreMemSystem::new(L1Params::micro2003(), Tiny, SimRng::seeded(0));
    }
}
