//! Replacement policies for set-associative structures.
//!
//! The paper uses true LRU for *data replacement* (choosing the block to
//! evict from a set, Section 2.4.2) and notes that true LRU over thousands
//! of frames is impractical for *distance replacement*, motivating random
//! selection with promotion to compensate. This module provides the
//! per-set policies (true LRU, tree pseudo-LRU, random); the d-group-scale
//! victim selectors live with the NuRAPID cache itself.

use crate::packed_lru::LruTable;
use simbase::rng::SimRng;
use simbase::snapshot::{Decoder, Encoder, SnapshotError};

/// Which victim-selection policy a [`SetPolicy`] applies within a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// True least-recently-used: O(assoc) state per set.
    Lru,
    /// Tree pseudo-LRU: one bit per internal node, O(assoc) bits total.
    /// Requires power-of-two associativity.
    TreePlru,
    /// Uniform random victim.
    Random,
}

/// Per-set replacement state for a cache with fixed associativity.
#[derive(Debug, Clone)]
pub enum SetPolicy {
    /// Recency order per set, nibble-packed into one `u64` per set when
    /// `assoc <= 16` (see [`crate::packed_lru`]).
    Lru { order: LruTable },
    /// PLRU tree bits per set (assoc-1 bits packed into a u32).
    TreePlru { bits: Vec<u32>, assoc: u32 },
    /// Random selection with a deterministic stream.
    Random { rng: SimRng, assoc: u32 },
}

impl SetPolicy {
    /// Creates policy state for `sets` sets of `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if `assoc` is 0, exceeds 255, or (for [`PolicyKind::TreePlru`])
    /// is not a power of two.
    pub fn new(kind: PolicyKind, sets: usize, assoc: u32, rng: SimRng) -> Self {
        assert!(assoc > 0 && assoc <= 255, "associativity {assoc} out of range");
        match kind {
            PolicyKind::Lru => SetPolicy::Lru { order: LruTable::new(sets, assoc) },
            PolicyKind::TreePlru => {
                assert!(
                    assoc.is_power_of_two(),
                    "tree PLRU requires power-of-two associativity, got {assoc}"
                );
                SetPolicy::TreePlru {
                    bits: vec![0; sets],
                    assoc,
                }
            }
            PolicyKind::Random => SetPolicy::Random { rng, assoc },
        }
    }

    /// Records a use of `way` in `set` (moves it to MRU).
    #[inline]
    pub fn touch(&mut self, set: usize, way: u32) {
        match self {
            SetPolicy::Lru { order } => order.touch(set, way),
            SetPolicy::TreePlru { bits, assoc } => {
                // Walk from root to the leaf for `way`, setting each bit to
                // point *away* from the touched way.
                let mut node = 0u32; // index within the implicit tree
                let mut lo = 0u32;
                let mut hi = *assoc;
                let b = &mut bits[set];
                // Bit convention: 1 means the next victim lies in the LEFT
                // subtree, 0 means the RIGHT subtree.
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    if way < mid {
                        *b &= !(1 << node); // touched left -> victim right
                        hi = mid;
                        node = 2 * node + 1;
                    } else {
                        *b |= 1 << node; // touched right -> victim left
                        lo = mid;
                        node = 2 * node + 2;
                    }
                }
            }
            SetPolicy::Random { .. } => {}
        }
    }

    /// Chooses a victim way in `set` without updating recency state.
    #[inline]
    pub fn victim(&mut self, set: usize) -> u32 {
        match self {
            SetPolicy::Lru { order } => order.victim(set),
            SetPolicy::TreePlru { bits, assoc } => {
                let mut node = 0u32;
                let mut lo = 0u32;
                let mut hi = *assoc;
                let b = bits[set];
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    if b & (1 << node) != 0 {
                        hi = mid;
                        node = 2 * node + 1;
                    } else {
                        lo = mid;
                        node = 2 * node + 2;
                    }
                }
                lo
            }
            SetPolicy::Random { rng, assoc } => rng.below(*assoc as u64) as u32,
        }
    }

    /// Serializes the replacement state: recency orders for LRU, tree bits
    /// for PLRU, the RNG stream position for random (the draw sequence is
    /// architectural — it decides victims).
    pub fn save_state(&self, e: &mut Encoder) {
        match self {
            SetPolicy::Lru { order } => order.save_state(e),
            SetPolicy::TreePlru { bits, .. } => e.put_u32_slice(bits),
            SetPolicy::Random { rng, .. } => {
                for w in rng.state() {
                    e.put_u64(w);
                }
            }
        }
    }

    /// Restores state written by [`SetPolicy::save_state`] into a policy of
    /// the same kind and geometry.
    pub fn load_state(&mut self, d: &mut Decoder<'_>) -> Result<(), SnapshotError> {
        match self {
            SetPolicy::Lru { order } => order.load_state(d),
            SetPolicy::TreePlru { bits, .. } => {
                let loaded = d.u32_slice()?;
                if loaded.len() != bits.len() {
                    return Err(SnapshotError::Malformed("PLRU set count mismatch"));
                }
                *bits = loaded;
                Ok(())
            }
            SetPolicy::Random { rng, .. } => {
                let s = [d.u64()?, d.u64()?, d.u64()?, d.u64()?];
                *rng = SimRng::from_state(s);
                Ok(())
            }
        }
    }

    /// True-LRU position of `way` within `set` (0 = MRU); only meaningful
    /// for [`PolicyKind::Lru`].
    ///
    /// # Panics
    ///
    /// Panics for non-LRU policies.
    pub fn lru_position(&self, set: usize, way: u32) -> usize {
        match self {
            SetPolicy::Lru { order } => order.position_of(set, way),
            _ => panic!("lru_position is only defined for the LRU policy"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seeded(1)
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut p = SetPolicy::new(PolicyKind::Lru, 1, 4, rng());
        // Touch 0,1,2,3 in order: LRU is 0.
        for w in 0..4 {
            p.touch(0, w);
        }
        assert_eq!(p.victim(0), 0);
        p.touch(0, 0);
        assert_eq!(p.victim(0), 1);
    }

    #[test]
    fn lru_positions_track_recency() {
        let mut p = SetPolicy::new(PolicyKind::Lru, 1, 4, rng());
        for w in [2u32, 0, 3] {
            p.touch(0, w);
        }
        assert_eq!(p.lru_position(0, 3), 0);
        assert_eq!(p.lru_position(0, 0), 1);
        assert_eq!(p.lru_position(0, 2), 2);
        assert_eq!(p.lru_position(0, 1), 3);
    }

    #[test]
    fn lru_sets_are_independent() {
        let mut p = SetPolicy::new(PolicyKind::Lru, 2, 2, rng());
        p.touch(0, 1);
        assert_eq!(p.victim(0), 0);
        assert_eq!(p.victim(1), 1, "set 1 untouched: initial order preserved");
    }

    #[test]
    fn tree_plru_never_evicts_most_recent() {
        let mut p = SetPolicy::new(PolicyKind::TreePlru, 1, 8, rng());
        for w in 0..8u32 {
            p.touch(0, w);
            assert_ne!(p.victim(0), w, "PLRU must not pick the way just touched");
        }
    }

    #[test]
    fn tree_plru_cycles_through_ways() {
        // Repeatedly touch the victim: every way must eventually be chosen.
        let mut p = SetPolicy::new(PolicyKind::TreePlru, 1, 4, rng());
        let mut seen = [false; 4];
        for _ in 0..16 {
            let v = p.victim(0);
            seen[v as usize] = true;
            p.touch(0, v);
        }
        assert!(seen.iter().all(|&s| s), "seen={seen:?}");
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn tree_plru_rejects_non_power_of_two() {
        let _ = SetPolicy::new(PolicyKind::TreePlru, 1, 6, rng());
    }

    #[test]
    fn random_victims_cover_all_ways() {
        let mut p = SetPolicy::new(PolicyKind::Random, 1, 4, rng());
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[p.victim(0) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_is_deterministic_given_seed() {
        let mut a = SetPolicy::new(PolicyKind::Random, 1, 8, SimRng::seeded(9));
        let mut b = SetPolicy::new(PolicyKind::Random, 1, 8, SimRng::seeded(9));
        for _ in 0..50 {
            assert_eq!(a.victim(0), b.victim(0));
        }
    }

    #[test]
    #[should_panic(expected = "only defined for the LRU policy")]
    fn lru_position_panics_for_random() {
        let p = SetPolicy::new(PolicyKind::Random, 1, 4, rng());
        let _ = p.lru_position(0, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_assoc_panics() {
        let _ = SetPolicy::new(PolicyKind::Lru, 1, 0, rng());
    }

    #[test]
    fn random_state_roundtrip_resumes_the_draw_stream() {
        let mut p = SetPolicy::new(PolicyKind::Random, 1, 8, SimRng::seeded(7));
        for _ in 0..13 {
            p.victim(0);
        }
        let mut e = Encoder::new();
        p.save_state(&mut e);
        let bytes = e.into_bytes();
        let mut restored = SetPolicy::new(PolicyKind::Random, 1, 8, SimRng::seeded(7));
        let mut d = Decoder::new(&bytes);
        restored.load_state(&mut d).unwrap();
        d.finish().unwrap();
        for _ in 0..50 {
            assert_eq!(restored.victim(0), p.victim(0));
        }
    }

    #[test]
    fn plru_state_roundtrips() {
        let mut p = SetPolicy::new(PolicyKind::TreePlru, 2, 8, rng());
        for w in [0u32, 3, 5, 1] {
            p.touch(0, w);
            p.touch(1, 7 - w);
        }
        let mut e = Encoder::new();
        p.save_state(&mut e);
        let bytes = e.into_bytes();
        let mut restored = SetPolicy::new(PolicyKind::TreePlru, 2, 8, rng());
        let mut d = Decoder::new(&bytes);
        restored.load_state(&mut d).unwrap();
        assert_eq!(restored.victim(0), p.victim(0));
        assert_eq!(restored.victim(1), p.victim(1));
    }
}
