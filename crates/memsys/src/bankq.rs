//! Per-bank contention: a history-based queue model for the shared
//! lower-level cache (DESIGN.md §14).
//!
//! Each bank keeps a short history of **busy windows** — intervals during
//! which its data array is occupied serving earlier accesses. A new
//! access arriving at cycle `t` is slotted into the earliest gap that
//! fits the bank's bandwidth-derived service time (`block_bytes /
//! bytes_per_cycle`); the cycles between arrival and the slot's start are
//! the **queue delay**, charged on top of the organization's geometry
//! latencies and bounded by `max_delay` so one pathological burst cannot
//! stall a requestor forever. This is the Sniper `NucaCache` idiom
//! (history-list queue model + `getRoundedLatency(8 * block_size)`
//! processing time), reduced to what a deterministic single-thread
//! simulator needs: no wall clock, no floating point, bounded memory.
//!
//! The model is **timing-only** state: [`BankQueues::drain`] forgets all
//! busy windows at the warm-up drain barrier, exactly like MSHRs and port
//! schedules, so checkpoints never serialize it.

use simbase::{BlockAddr, Cycle};
use std::collections::VecDeque;

/// Busy windows remembered per bank. Older windows are trimmed first;
/// with back-to-back traffic adjacent windows merge, so in practice the
/// list stays short.
const MAX_WINDOWS: usize = 8;

/// Bandwidth/bound parameters for one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankQueueParams {
    /// Cycles the data array is busy per access (bandwidth-derived).
    pub service_cycles: u64,
    /// Upper bound on the queue delay charged to any single access.
    pub max_delay: u64,
}

impl BankQueueParams {
    /// The paper-era defaults: a 16-byte/cycle data array (so a 128-B
    /// block occupies its bank for 8 cycles) and a 64-cycle delay bound.
    pub fn micro2003(block_bytes: u64) -> Self {
        BankQueueParams {
            service_cycles: (block_bytes / 16).max(1),
            max_delay: 64,
        }
    }
}

/// One bank's busy-window history.
#[derive(Debug, Clone)]
pub struct BankQueue {
    params: BankQueueParams,
    /// Sorted, non-overlapping `(start, end)` busy intervals.
    windows: VecDeque<(u64, u64)>,
    accesses: u64,
    conflicts: u64,
    stall_cycles: u64,
}

impl BankQueue {
    /// An idle bank.
    pub fn new(params: BankQueueParams) -> Self {
        assert!(params.service_cycles > 0, "a bank cannot serve in zero cycles");
        BankQueue {
            params,
            windows: VecDeque::with_capacity(MAX_WINDOWS + 1),
            accesses: 0,
            conflicts: 0,
            stall_cycles: 0,
        }
    }

    /// Occupies the bank for one access arriving at `now`; returns the
    /// queue delay (0 on an idle bank) charged to this access.
    pub fn occupy(&mut self, now: Cycle) -> u64 {
        let now = now.raw();
        self.accesses += 1;
        // Expire history that ends at or before the arrival.
        while self.windows.front().is_some_and(|&(_, end)| end <= now) {
            self.windows.pop_front();
        }
        // Earliest feasible start: slide past every window the service
        // interval cannot fit in front of.
        let service = self.params.service_cycles;
        let mut start = now;
        let mut idx = self.windows.len();
        for (i, &(w_start, w_end)) in self.windows.iter().enumerate() {
            if start + service <= w_start {
                idx = i;
                break;
            }
            if w_end > start {
                start = w_end;
            }
        }
        let delay = (start - now).min(self.params.max_delay);
        if delay > 0 {
            self.conflicts += 1;
            self.stall_cycles += delay;
        }
        // Record the busy window at its uncapped position (the bank really
        // is occupied then) and merge with touching neighbors.
        self.windows.insert(idx, (start, start + service));
        self.merge_around(idx);
        while self.windows.len() > MAX_WINDOWS {
            self.windows.pop_front();
        }
        delay
    }

    /// Merges the window at `idx` with neighbors it touches or overlaps.
    fn merge_around(&mut self, idx: usize) {
        // Merge forward.
        while idx + 1 < self.windows.len() && self.windows[idx].1 >= self.windows[idx + 1].0 {
            let next = self.windows.remove(idx + 1).expect("bounded index");
            self.windows[idx].1 = self.windows[idx].1.max(next.1);
        }
        // Merge backward.
        if idx > 0 && self.windows[idx - 1].1 >= self.windows[idx].0 {
            let cur = self.windows.remove(idx).expect("bounded index");
            self.windows[idx - 1].1 = self.windows[idx - 1].1.max(cur.1);
        }
    }

    /// Accesses that found the bank busy.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Total queue-delay cycles charged.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Total accesses through this bank.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Forgets all busy windows (the warm-up drain barrier).
    pub fn drain(&mut self) {
        self.windows.clear();
    }

    /// Zeroes the contention counters.
    pub fn reset_stats(&mut self) {
        self.accesses = 0;
        self.conflicts = 0;
        self.stall_cycles = 0;
    }
}

/// The bank array in front of a shared organization: block index modulo
/// bank count picks the bank, mirroring the address-interleaved bank maps
/// of the multibanked NUCA designs.
#[derive(Debug, Clone)]
pub struct BankQueues {
    banks: Vec<BankQueue>,
}

impl BankQueues {
    /// `n_banks` idle banks with identical parameters.
    pub fn new(n_banks: usize, params: BankQueueParams) -> Self {
        assert!(n_banks > 0, "need at least one bank");
        BankQueues {
            banks: vec![BankQueue::new(params); n_banks],
        }
    }

    /// The bank serving `block`.
    pub fn bank_of(&self, block: BlockAddr) -> usize {
        (block.index() % self.banks.len() as u64) as usize
    }

    /// Charges one access to `block` arriving at `now`; returns its queue
    /// delay.
    pub fn occupy(&mut self, block: BlockAddr, now: Cycle) -> u64 {
        let b = self.bank_of(block);
        self.banks[b].occupy(now)
    }

    /// Number of banks.
    pub fn len(&self) -> usize {
        self.banks.len()
    }

    /// Always false: the constructor rejects zero banks.
    pub fn is_empty(&self) -> bool {
        self.banks.is_empty()
    }

    /// Accesses that found their bank busy, summed over banks.
    pub fn conflicts(&self) -> u64 {
        self.banks.iter().map(BankQueue::conflicts).sum()
    }

    /// Queue-delay cycles charged, summed over banks.
    pub fn stall_cycles(&self) -> u64 {
        self.banks.iter().map(BankQueue::stall_cycles).sum()
    }

    /// Forgets every bank's busy windows (drain barrier).
    pub fn drain(&mut self) {
        for b in &mut self.banks {
            b.drain();
        }
    }

    /// Zeroes every bank's contention counters.
    pub fn reset_stats(&mut self) {
        for b in &mut self.banks {
            b.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(service: u64, max_delay: u64) -> BankQueue {
        BankQueue::new(BankQueueParams {
            service_cycles: service,
            max_delay,
        })
    }

    #[test]
    fn idle_bank_charges_nothing() {
        let mut b = q(8, 64);
        assert_eq!(b.occupy(Cycle::new(100)), 0);
        assert_eq!(b.conflicts(), 0);
        assert_eq!(b.stall_cycles(), 0);
    }

    #[test]
    fn back_to_back_accesses_queue_behind_the_service_window() {
        let mut b = q(8, 64);
        assert_eq!(b.occupy(Cycle::new(0)), 0); // busy [0, 8)
        assert_eq!(b.occupy(Cycle::new(0)), 8); // waits for the window
        assert_eq!(b.occupy(Cycle::new(0)), 16);
        assert_eq!(b.conflicts(), 2);
        assert_eq!(b.stall_cycles(), 24);
    }

    #[test]
    fn delay_is_bounded() {
        let mut b = q(10, 15);
        for _ in 0..50 {
            assert!(b.occupy(Cycle::new(0)) <= 15);
        }
    }

    #[test]
    fn a_gap_in_the_history_is_reused() {
        let mut b = q(4, 64);
        assert_eq!(b.occupy(Cycle::new(0)), 0); // [0, 4)
        assert_eq!(b.occupy(Cycle::new(20)), 0); // [20, 24)
        // Arrives at 8: fits entirely inside the [4, 20) gap.
        assert_eq!(b.occupy(Cycle::new(8)), 0);
        assert_eq!(b.conflicts(), 0);
    }

    #[test]
    fn expired_windows_are_forgotten() {
        let mut b = q(8, 64);
        b.occupy(Cycle::new(0));
        assert_eq!(b.occupy(Cycle::new(1000)), 0);
    }

    #[test]
    fn drain_forgets_busy_windows_but_not_stats() {
        let mut b = q(8, 64);
        b.occupy(Cycle::new(0));
        b.occupy(Cycle::new(0));
        b.drain();
        assert_eq!(b.occupy(Cycle::new(0)), 0, "drained bank is idle");
        assert_eq!(b.conflicts(), 1, "drain keeps counters");
        b.reset_stats();
        assert_eq!((b.conflicts(), b.stall_cycles(), b.accesses()), (0, 0, 0));
    }

    #[test]
    fn banks_are_independent_and_block_mapped() {
        let mut banks = BankQueues::new(4, BankQueueParams::micro2003(128));
        let b0 = BlockAddr::from_index(0);
        let b1 = BlockAddr::from_index(1);
        let b4 = BlockAddr::from_index(4);
        assert_eq!(banks.bank_of(b0), banks.bank_of(b4));
        assert_ne!(banks.bank_of(b0), banks.bank_of(b1));
        assert_eq!(banks.occupy(b0, Cycle::new(0)), 0);
        assert_eq!(banks.occupy(b1, Cycle::new(0)), 0, "different bank is idle");
        assert!(banks.occupy(b4, Cycle::new(0)) > 0, "same bank is busy");
        assert_eq!(banks.conflicts(), 1);
        assert!(banks.stall_cycles() > 0);
    }

    #[test]
    fn micro2003_parameters_are_bandwidth_derived() {
        let p = BankQueueParams::micro2003(128);
        assert_eq!(p.service_cycles, 8, "128 B at 16 B/cycle");
        assert_eq!(p.max_delay, 64);
    }
}
