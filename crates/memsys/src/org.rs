//! The organization plugin seam: every lower-level cache the experiments
//! harness can drive implements [`Organization`].
//!
//! [`super::lower::LowerCache`] is the narrow per-access interface the CPU
//! model needs. [`Organization`] is the *lifecycle* contract layered on
//! top of it — everything the run machinery does to a cache besides
//! accessing it: pre-filling to steady-state occupancy, crossing the
//! warm-up drain barrier (DESIGN.md §11), attaching telemetry for the
//! measured window, round-tripping architectural state through the
//! checkpoint codec, and summarizing the measured phase into the common
//! [`OrgReport`] the tables are rendered from.
//!
//! The experiments runner holds a `Box<dyn Organization>` and never
//! matches on the concrete type: adding a new organization means
//! implementing this trait and registering a constructor — no change to
//! the run loop, the checkpoint plumbing, or the report renderers
//! (DESIGN.md §12 walks through adding a plugin).

use crate::lower::{LowerCache, LowerOutcome};
use simbase::snapshot::{Decoder, Encoder, SnapshotError};
use simbase::{AccessKind, BlockAddr, Cycle, EnergyNj};
use simtel::TelemetrySink;

/// The measured-phase summary every organization reduces to: the common
/// denominator of the report tables. Quantities an organization does not
/// have are zero/empty (the base hierarchy has no d-groups, so its
/// `group_fracs` is empty and `dgroup_accesses`/`swaps` are 0).
#[derive(Debug, Clone, PartialEq)]
pub struct OrgReport {
    /// Demand accesses presented to the organization.
    pub l2_accesses: u64,
    /// Demand accesses that missed on chip.
    pub l2_misses: u64,
    /// Fraction of demand accesses hitting each d-group / bank position
    /// (fastest first; empty for organizations without distance groups).
    pub group_fracs: Vec<f64>,
    /// Fraction of demand accesses that missed.
    pub miss_frac: f64,
    /// Total data-array (d-group or bank) accesses including swap and
    /// search traffic.
    pub dgroup_accesses: u64,
    /// Block movements (promotions + demotions or bubble swaps).
    pub swaps: u64,
    /// Off-chip accesses (reads + writebacks) — prices memory energy.
    pub memory_accesses: u64,
    /// Dynamic energy of the organization over the measured phase.
    pub l2_energy: EnergyNj,
}

/// A pluggable lower-level cache organization: the per-access
/// [`LowerCache`] interface plus the lifecycle hooks the experiments
/// harness drives.
///
/// Contract (enforced for every implementation by
/// `tests/organization_conformance.rs`):
///
/// * construction + the same access trace ⇒ bit-identical outcomes and
///   [`OrgReport`]s (no hidden global state, no wall-clock, no unseeded
///   randomness);
/// * [`save_state`](Organization::save_state) then
///   [`load_state`](Organization::load_state) into a freshly constructed
///   twin reproduces the uninterrupted run bit for bit — the snapshot
///   covers *architectural* state only, so it must be taken at the drain
///   barrier (after [`drain_timing`](Organization::drain_timing));
/// * [`reset_stats`](Organization::reset_stats) zeroes every counter
///   that feeds [`report`](Organization::report) without touching
///   architectural state;
/// * the steady-state access path performs no heap allocation.
pub trait Organization: LowerCache {
    /// Fills the cache to steady-state occupancy with placeholder blocks
    /// so a measured run never starts from an empty (all-compulsory-miss)
    /// array.
    fn prefill(&mut self);

    /// Zeroes every statistic feeding [`Organization::report`]. Crossed
    /// at the drain barrier so the report covers the measured window
    /// only.
    fn reset_stats(&mut self);

    /// Attaches a telemetry sink for the measured phase; `snap_every`
    /// requests periodic progress snapshots (0 disables them;
    /// organizations without periodic snapshots ignore it).
    fn set_telemetry(&mut self, sink: &TelemetrySink, snap_every: u64);

    /// Clears every piece of timing state (port schedules, bank
    /// occupancy, memory queues) without touching architectural state.
    fn drain_timing(&mut self);

    /// Serializes the full architectural state into `e` (checkpoint
    /// payload; see [`simbase::snapshot`]).
    fn save_state(&self, e: &mut Encoder);

    /// Restores the state written by [`Organization::save_state`] into a
    /// compatibly configured instance.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] if the payload is truncated, corrupt,
    /// or was written by an incompatible geometry.
    fn load_state(&mut self, d: &mut Decoder) -> Result<(), SnapshotError>;

    /// Reduces the counters accumulated since the last
    /// [`Organization::reset_stats`] to the common report row.
    fn report(&self) -> OrgReport;

    /// The [`MainMemory`](crate::memory::MainMemory) backing this
    /// organization, if it has one — the attachment point of the L4 DRAM
    /// cache (`--l4`). Defaults to `None` for organizations without a
    /// DRAM channel of their own.
    fn main_memory(&self) -> Option<&crate::memory::MainMemory> {
        None
    }

    /// Mutable twin of [`Organization::main_memory`].
    fn main_memory_mut(&mut self) -> Option<&mut crate::memory::MainMemory> {
        None
    }
}

/// A boxed organization is itself a [`LowerCache`], so the generic CPU /
/// L1 stack (`CoreMemSystem<L>`) drives `Box<dyn Organization>` exactly
/// like a concrete cache. Every method forwards — including
/// [`LowerCache::warm_access`], so the fast-forward warm-up reaches each
/// organization's lean functional path rather than the trait default.
impl LowerCache for Box<dyn Organization> {
    fn access(&mut self, block: BlockAddr, kind: AccessKind, now: Cycle) -> LowerOutcome {
        (**self).access(block, kind, now)
    }

    fn accesses(&self) -> u64 {
        (**self).accesses()
    }

    fn misses(&self) -> u64 {
        (**self).misses()
    }

    fn block_bytes(&self) -> u64 {
        (**self).block_bytes()
    }

    fn warm_access(&mut self, block: BlockAddr, kind: AccessKind) {
        (**self).warm_access(block, kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal organization: direct-mapped over 4 blocks, flat latency.
    struct Toy {
        blocks: [u64; 4],
        accesses: u64,
        misses: u64,
    }

    impl Toy {
        fn new() -> Self {
            Toy {
                blocks: [u64::MAX; 4],
                accesses: 0,
                misses: 0,
            }
        }
    }

    impl LowerCache for Toy {
        fn access(&mut self, block: BlockAddr, _kind: AccessKind, now: Cycle) -> LowerOutcome {
            self.accesses += 1;
            let slot = (block.index() % 4) as usize;
            let hit = self.blocks[slot] == block.index();
            if !hit {
                self.misses += 1;
                self.blocks[slot] = block.index();
            }
            LowerOutcome {
                complete_at: now + if hit { 10 } else { 100 },
                hit,
            }
        }
        fn accesses(&self) -> u64 {
            self.accesses
        }
        fn misses(&self) -> u64 {
            self.misses
        }
        fn block_bytes(&self) -> u64 {
            128
        }
    }

    impl Organization for Toy {
        fn prefill(&mut self) {
            for (i, b) in self.blocks.iter_mut().enumerate() {
                *b = i as u64;
            }
        }
        fn reset_stats(&mut self) {
            self.accesses = 0;
            self.misses = 0;
        }
        fn set_telemetry(&mut self, _sink: &TelemetrySink, _snap_every: u64) {}
        fn drain_timing(&mut self) {}
        fn save_state(&self, e: &mut Encoder) {
            e.put_u64_slice(&self.blocks);
        }
        fn load_state(&mut self, d: &mut Decoder) -> Result<(), SnapshotError> {
            let blocks = d.u64_slice()?;
            self.blocks.copy_from_slice(&blocks);
            Ok(())
        }
        fn report(&self) -> OrgReport {
            OrgReport {
                l2_accesses: self.accesses,
                l2_misses: self.misses,
                group_fracs: Vec::new(),
                miss_frac: self.misses as f64 / self.accesses.max(1) as f64,
                dgroup_accesses: 0,
                swaps: 0,
                memory_accesses: self.misses,
                l2_energy: EnergyNj::ZERO,
            }
        }
    }

    #[test]
    fn boxed_organization_is_a_lower_cache() {
        let mut boxed: Box<dyn Organization> = Box::new(Toy::new());
        boxed.prefill();
        let hit = boxed.access(BlockAddr::from_index(2), AccessKind::Read, Cycle::ZERO);
        assert!(hit.hit, "prefilled slot must hit through the box");
        let miss = boxed.access(BlockAddr::from_index(6), AccessKind::Read, hit.complete_at);
        assert!(!miss.hit);
        assert_eq!(boxed.accesses(), 2);
        assert_eq!(boxed.misses(), 1);
        assert_eq!(boxed.block_bytes(), 128);
        let rep = boxed.report();
        assert_eq!((rep.l2_accesses, rep.l2_misses), (2, 1));
    }

    #[test]
    fn boxed_warm_access_reaches_the_implementation() {
        let mut boxed: Box<dyn Organization> = Box::new(Toy::new());
        boxed.warm_access(BlockAddr::from_index(3), AccessKind::Write);
        assert_eq!(boxed.accesses(), 1, "warm access must forward, not vanish");
    }

    #[test]
    fn snapshot_round_trips_through_the_trait() {
        let mut a: Box<dyn Organization> = Box::new(Toy::new());
        a.access(BlockAddr::from_index(9), AccessKind::Read, Cycle::ZERO);
        let mut e = Encoder::new();
        a.save_state(&mut e);
        let bytes = e.into_bytes();

        let mut b: Box<dyn Organization> = Box::new(Toy::new());
        let mut d = Decoder::new(&bytes);
        b.load_state(&mut d).expect("round trip");
        d.finish().expect("no trailing bytes");
        let out = b.access(BlockAddr::from_index(9), AccessKind::Read, Cycle::ZERO);
        assert!(out.hit, "restored twin must hold the installed block");
    }
}
