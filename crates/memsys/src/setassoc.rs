//! A generic set-associative cache tag store.
//!
//! Used directly for the L1s and the conventional L2/L3, and as the
//! centralized tag array of NuRAPID (which extends each entry with a
//! forward pointer) and the per-bank tag arrays of D-NUCA.

use crate::replacement::{PolicyKind, SetPolicy};
use simbase::rng::SimRng;
use simbase::snapshot::{Decoder, Encoder, SnapshotError};
use simbase::{AccessKind, BlockAddr, Capacity};

/// Location of a block within the cache: `(set, way)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WayRef {
    /// Set index.
    pub set: usize,
    /// Way within the set.
    pub way: u32,
}

/// Result of a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The block is present at this location.
    Hit(WayRef),
    /// The block is absent.
    Miss,
}

impl Lookup {
    /// True for [`Lookup::Hit`].
    pub const fn is_hit(self) -> bool {
        matches!(self, Lookup::Hit(_))
    }
}

/// A block displaced by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The displaced block.
    pub block: BlockAddr,
    /// Whether the displaced block was dirty (needs writeback).
    pub dirty: bool,
    /// Where the displaced block lived.
    pub from: WayRef,
}

/// Per-line status bits, packed into one byte in the [`SetAssocCache`]
/// flags arena.
const VALID: u8 = 1 << 0;
const DIRTY: u8 = 1 << 1;

/// A set-associative cache directory with writeback dirty tracking.
///
/// This structure tracks *presence* (tags), not data contents or timing;
/// timing is layered on by the owning cache model.
///
/// Layout (DESIGN.md §9): struct-of-arrays — one flat `Vec<u64>` of block
/// indices and one flat `Vec<u8>` of valid/dirty flags, both row-major by
/// set — so a set probe is a short contiguous scan of `assoc` u64s, and
/// set selection is a single mask (set counts are asserted power-of-two).
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    blocks: Vec<u64>, // sets * assoc block indices, row-major by set
    flags: Vec<u8>,   // parallel VALID | DIRTY bits
    policy: SetPolicy,
    sets: usize,
    assoc: u32,
    set_mask: u64, // sets - 1
}

impl SetAssocCache {
    /// Builds a cache directory of `capacity` with `block_bytes` blocks and
    /// `assoc` ways, using `policy` for victim selection within sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible into
    /// a power-of-two number of sets).
    pub fn new(
        capacity: Capacity,
        block_bytes: u64,
        assoc: u32,
        policy: PolicyKind,
        rng: SimRng,
    ) -> Self {
        assert!(assoc > 0, "associativity must be positive");
        let blocks = capacity.bytes() / block_bytes;
        assert!(
            blocks.is_multiple_of(assoc as u64),
            "capacity must divide into whole sets"
        );
        let sets = (blocks / assoc as u64) as usize;
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two, got {sets}"
        );
        SetAssocCache {
            blocks: vec![u64::MAX; sets * assoc as usize],
            flags: vec![0; sets * assoc as usize],
            policy: SetPolicy::new(policy, sets, assoc, rng),
            sets,
            assoc,
            set_mask: sets as u64 - 1,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Set index for `block`.
    #[inline]
    pub fn set_of(&self, block: BlockAddr) -> usize {
        (block.index() & self.set_mask) as usize
    }

    #[inline]
    fn slot(&self, r: WayRef) -> usize {
        r.set * self.assoc as usize + r.way as usize
    }

    /// Looks up `block` without changing any state (a pure probe).
    #[inline]
    pub fn probe(&self, block: BlockAddr) -> Lookup {
        let set = self.set_of(block);
        let base = set * self.assoc as usize;
        let idx = block.index();
        for way in 0..self.assoc {
            let i = base + way as usize;
            if self.flags[i] & VALID != 0 && self.blocks[i] == idx {
                return Lookup::Hit(WayRef { set, way });
            }
        }
        Lookup::Miss
    }

    /// Looks up `block`; on a hit, updates recency and (for writes) the
    /// dirty bit.
    #[inline]
    pub fn access(&mut self, block: BlockAddr, kind: AccessKind) -> Lookup {
        match self.probe(block) {
            Lookup::Hit(r) => {
                self.policy.touch(r.set, r.way);
                if kind.is_write() {
                    let i = self.slot(r);
                    self.flags[i] |= DIRTY;
                }
                Lookup::Hit(r)
            }
            Lookup::Miss => Lookup::Miss,
        }
    }

    /// Fills `block` into its set, evicting a victim if the set is full.
    /// The filled block becomes MRU; `dirty` seeds its dirty bit
    /// (write-allocate stores fill dirty).
    ///
    /// Returns the eviction, if any. Filling a block that is already
    /// present is a logic error and panics.
    pub fn fill(&mut self, block: BlockAddr, dirty: bool) -> Option<Eviction> {
        // The caller owns the probe-then-fill protocol; re-probing here is
        // redundant work on the hot path, so it is a debug-only guard.
        debug_assert!(
            !self.probe(block).is_hit(),
            "fill of already-present block {block}"
        );
        let set = self.set_of(block);
        let base = set * self.assoc as usize;
        // Prefer an invalid way (first in way order, matching the scan the
        // AoS implementation performed).
        let mut target = None;
        for way in 0..self.assoc {
            if self.flags[base + way as usize] & VALID == 0 {
                target = Some(way);
                break;
            }
        }
        let (way, evicted) = match target {
            Some(way) => (way, None),
            None => {
                let way = self.policy.victim(set);
                let i = base + way as usize;
                (
                    way,
                    Some(Eviction {
                        block: BlockAddr::from_index(self.blocks[i]),
                        dirty: self.flags[i] & DIRTY != 0,
                        from: WayRef { set, way },
                    }),
                )
            }
        };
        let i = base + way as usize;
        self.blocks[i] = block.index();
        self.flags[i] = VALID | if dirty { DIRTY } else { 0 };
        self.policy.touch(set, way);
        evicted
    }

    /// Invalidates `block` if present, returning whether it was dirty.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<bool> {
        match self.probe(block) {
            Lookup::Hit(r) => {
                let i = self.slot(r);
                let dirty = self.flags[i] & DIRTY != 0;
                self.blocks[i] = u64::MAX;
                self.flags[i] = 0;
                Some(dirty)
            }
            Lookup::Miss => None,
        }
    }

    /// Serializes the full directory state: tags, valid/dirty flags, and
    /// replacement state.
    pub fn save_state(&self, e: &mut Encoder) {
        e.put_u64_slice(&self.blocks);
        e.put_u8_slice(&self.flags);
        self.policy.save_state(e);
    }

    /// Restores state written by [`SetAssocCache::save_state`] into a cache
    /// of identical geometry and policy kind.
    pub fn load_state(&mut self, d: &mut Decoder<'_>) -> Result<(), SnapshotError> {
        let blocks = d.u64_slice()?;
        let flags = d.u8_slice()?;
        if blocks.len() != self.blocks.len() || flags.len() != self.flags.len() {
            return Err(SnapshotError::Malformed("cache geometry mismatch"));
        }
        self.blocks = blocks;
        self.flags = flags;
        self.policy.load_state(d)
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.flags.iter().filter(|&&f| f & VALID != 0).count()
    }

    /// The block resident at `r`, if any.
    pub fn block_at(&self, r: WayRef) -> Option<BlockAddr> {
        let i = self.slot(r);
        (self.flags[i] & VALID != 0).then(|| BlockAddr::from_index(self.blocks[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(cap_kib: u64, assoc: u32) -> SetAssocCache {
        SetAssocCache::new(
            Capacity::from_kib(cap_kib),
            64,
            assoc,
            PolicyKind::Lru,
            SimRng::seeded(1),
        )
    }

    fn blk(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    #[test]
    fn geometry() {
        let c = cache(64, 2); // 64KB / 64B / 2-way = 512 sets
        assert_eq!(c.sets(), 512);
        assert_eq!(c.assoc(), 2);
        assert_eq!(c.set_of(blk(513)), 1);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = cache(64, 2);
        assert_eq!(c.access(blk(7), AccessKind::Read), Lookup::Miss);
        assert_eq!(c.fill(blk(7), false), None);
        assert!(c.access(blk(7), AccessKind::Read).is_hit());
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn conflicting_fills_evict_lru() {
        let mut c = cache(64, 2);
        let s = c.sets() as u64;
        // Three blocks in the same set of a 2-way cache.
        c.fill(blk(0), false);
        c.fill(blk(s), false);
        c.access(blk(0), AccessKind::Read); // 0 becomes MRU; LRU is s
        let ev = c.fill(blk(2 * s), false).expect("must evict");
        assert_eq!(ev.block, blk(s));
        assert!(!ev.dirty);
        assert!(c.probe(blk(0)).is_hit());
        assert!(!c.probe(blk(s)).is_hit());
    }

    #[test]
    fn write_sets_dirty_and_eviction_reports_it() {
        let mut c = cache(64, 2);
        let s = c.sets() as u64;
        c.fill(blk(0), false);
        c.access(blk(0), AccessKind::Write);
        c.fill(blk(s), false);
        c.access(blk(s), AccessKind::Read); // 0 is LRU now
        let ev = c.fill(blk(2 * s), false).expect("evicts block 0");
        assert_eq!(ev.block, blk(0));
        assert!(ev.dirty, "written block must evict dirty");
    }

    #[test]
    fn fill_dirty_seeds_dirty_bit() {
        let mut c = cache(64, 2);
        c.fill(blk(0), true);
        assert_eq!(c.invalidate(blk(0)), Some(true));
    }

    #[test]
    #[should_panic(expected = "already-present")]
    fn double_fill_panics() {
        let mut c = cache(64, 2);
        c.fill(blk(1), false);
        c.fill(blk(1), false);
    }

    #[test]
    fn invalidate_returns_dirtiness() {
        let mut c = cache(64, 2);
        c.fill(blk(3), true);
        assert_eq!(c.invalidate(blk(3)), Some(true));
        assert_eq!(c.invalidate(blk(3)), None);
        assert!(!c.probe(blk(3)).is_hit());
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn probe_does_not_disturb_recency() {
        let mut c = cache(64, 2);
        let s = c.sets() as u64;
        c.fill(blk(0), false);
        c.fill(blk(s), false); // LRU = 0
        let _ = c.probe(blk(0)); // pure probe: 0 stays LRU
        let ev = c.fill(blk(2 * s), false).unwrap();
        assert_eq!(ev.block, blk(0));
    }

    #[test]
    fn block_at_reports_contents() {
        let mut c = cache(64, 2);
        c.fill(blk(9), false);
        let r = match c.probe(blk(9)) {
            Lookup::Hit(r) => r,
            Lookup::Miss => panic!("expected hit"),
        };
        assert_eq!(c.block_at(r), Some(blk(9)));
        assert_eq!(c.block_at(WayRef { set: r.set, way: 1 - r.way }), None);
    }

    #[test]
    fn fills_prefer_invalid_ways() {
        let mut c = cache(64, 4);
        let s = c.sets() as u64;
        for i in 0..4 {
            assert_eq!(c.fill(blk(i * s), false), None, "way {i} should be free");
        }
        assert!(c.fill(blk(4 * s), false).is_some());
    }

    #[test]
    fn state_roundtrip_preserves_contents_dirt_and_recency() {
        let mut c = cache(64, 2);
        let s = c.sets() as u64;
        c.fill(blk(0), false);
        c.fill(blk(s), true);
        c.access(blk(0), AccessKind::Write); // 0 dirty + MRU; s is LRU
        let mut e = Encoder::new();
        c.save_state(&mut e);
        let bytes = e.into_bytes();
        let mut fresh = cache(64, 2);
        let mut d = Decoder::new(&bytes);
        fresh.load_state(&mut d).unwrap();
        d.finish().unwrap();
        assert!(fresh.probe(blk(0)).is_hit());
        assert!(fresh.probe(blk(s)).is_hit());
        let ev = fresh.fill(blk(2 * s), false).expect("full set evicts");
        assert_eq!(ev.block, blk(s), "restored recency must pick the same victim");
        assert!(ev.dirty, "restored dirty bit");
        assert_eq!(fresh.invalidate(blk(0)), Some(true));
    }

    #[test]
    fn load_rejects_mismatched_geometry() {
        let c = cache(64, 2);
        let mut e = Encoder::new();
        c.save_state(&mut e);
        let bytes = e.into_bytes();
        let mut other = cache(64, 4);
        let mut d = Decoder::new(&bytes);
        assert!(other.load_state(&mut d).is_err());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        let _ = SetAssocCache::new(
            Capacity::from_bytes(3 * 64 * 2),
            64,
            2,
            PolicyKind::Lru,
            SimRng::seeded(1),
        );
    }
}
