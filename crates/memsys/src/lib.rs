//! Memory-system substrate for the NuRAPID reproduction.
//!
//! This crate provides everything below the processor core that is *not*
//! the paper's contribution: generic set-associative cache structures with
//! pluggable [`replacement`] policies, [`mshr`]s for miss-level
//! parallelism, a [`memory`] model matching Table 1 (130 cycles + 4 cycles
//! per 8 bytes), the [`l1`] instruction and data caches, and the
//! conventional L2/L3 [`hierarchy`] the paper uses as its base case.
//!
//! The seam between the core-side memory system and the lower-level cache
//! under study is the [`lower::LowerCache`] trait: the base hierarchy, the
//! NuRAPID cache, and the D-NUCA cache all implement it, so the same CPU
//! and L1 models drive every configuration in the evaluation.
//!
//! # Examples
//!
//! ```
//! use memsys::hierarchy::BaseHierarchy;
//! use memsys::lower::LowerCache;
//! use simbase::{AccessKind, BlockAddr, Cycle};
//!
//! let mut base = BaseHierarchy::micro2003();
//! let out = base.access(BlockAddr::from_index(42), AccessKind::Read, Cycle::ZERO);
//! assert!(!out.hit); // cold miss goes to memory
//! ```

pub mod bankq;
pub mod chash;
pub mod dramcache;
pub mod hierarchy;
pub mod l1;
pub mod lower;
pub mod memory;
pub mod mshr;
pub mod naive;
pub mod org;
pub mod packed_lru;
pub mod replacement;
pub mod setassoc;
