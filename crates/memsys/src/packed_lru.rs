//! Packed per-set LRU recency state (DESIGN.md §9).
//!
//! For associativities up to 16 the full MRU→LRU order of a set fits in a
//! single `u64`: nibble `i` (counting from the least-significant end) holds
//! the way id at recency position `i`, so nibble 0 is the MRU way and
//! nibble `assoc-1` is the LRU victim. A touch is a constant number of
//! shift/mask operations — no loops, no branches on the position — and a
//! victim read is a single shift. Wider sets fall back to the simple
//! `Vec<u8>` order the packed form replaces; the differential suite in
//! `tests/differential.rs` pins the two representations to each other.
//!
//! Encoding invariant: each word is a permutation of `0..assoc` (one nibble
//! per way), which is what makes the SWAR search in [`nibble_pos`] exact —
//! the searched way always occurs, and the classic
//! `(x - 0x1111..) & !x & 0x8888..` zero-nibble detector only produces
//! false positives *above* the first genuine match, never below it, so
//! `trailing_zeros` lands on the true position.

use simbase::snapshot::{Decoder, Encoder, SnapshotError};

/// Seed word: nibble `i` = way `i`, i.e. ways in MRU→LRU order
/// `0, 1, .., 15`. Masked down to `assoc` nibbles at init, this is exactly
/// the `[0, 1, .., assoc-1]` starting order of the naive `Vec` form.
const IDENTITY: u64 = 0xFEDC_BA98_7654_3210;
/// One per nibble; multiplied by a way id to broadcast it across the word.
const LANES: u64 = 0x1111_1111_1111_1111;
/// High bit of each nibble, for the SWAR zero-nibble detector.
const HIGHS: u64 = 0x8888_8888_8888_8888;

/// Recency position of `way` inside a packed order word.
///
/// `word` must be a permutation of `0..assoc` nibbles containing `way`;
/// the caller (this module) guarantees it.
#[inline(always)]
fn nibble_pos(word: u64, way: u32) -> u32 {
    let x = word ^ LANES.wrapping_mul(way as u64);
    let zeros = x.wrapping_sub(LANES) & !x & HIGHS;
    zeros.trailing_zeros() >> 2
}

/// Move the nibble at position `p` to position 0, shifting positions
/// `0..p` up by one nibble. Shift amounts are kept ≤ 60 by splitting the
/// `4 * (p + 1)` shift in two, so `p == 15` stays well-defined.
#[inline(always)]
fn touch_word(word: u64, p: u32, way: u32) -> u64 {
    let above = (((word >> (4 * p)) >> 4) << (4 * p)) << 4;
    let below = word & ((1u64 << (4 * p)) - 1);
    above | (below << 4) | way as u64
}

#[derive(Debug, Clone)]
enum Repr {
    /// One order word per set; valid for `assoc <= 16`.
    Packed { words: Vec<u64> },
    /// MRU→LRU way list per set, for wider associativities.
    Wide { order: Vec<Vec<u8>> },
}

/// Per-set true-LRU order for a whole cache, packed when it fits.
#[derive(Debug, Clone)]
pub struct LruTable {
    repr: Repr,
    assoc: u32,
}

impl LruTable {
    /// Builds the table with every set in way order `0, 1, .., assoc-1`
    /// (way 0 MRU, way `assoc-1` LRU), matching the naive `Vec` layout.
    ///
    /// # Panics
    /// Panics if `assoc` is 0 or exceeds 255.
    pub fn new(sets: usize, assoc: u32) -> Self {
        assert!(
            (1..=255).contains(&assoc),
            "associativity must be in 1..=255, got {assoc}"
        );
        let repr = if assoc <= 16 {
            let mask = if assoc == 16 { u64::MAX } else { (1u64 << (4 * assoc)) - 1 };
            Repr::Packed { words: vec![IDENTITY & mask; sets] }
        } else {
            Repr::Wide { order: vec![(0..assoc as u8).collect(); sets] }
        };
        Self { repr, assoc }
    }

    /// Number of ways tracked per set.
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Marks `way` most-recently used in `set`.
    #[inline]
    pub fn touch(&mut self, set: usize, way: u32) {
        debug_assert!(way < self.assoc, "way {way} out of range");
        match &mut self.repr {
            Repr::Packed { words } => {
                let w = words[set];
                words[set] = touch_word(w, nibble_pos(w, way), way);
            }
            Repr::Wide { order } => {
                let o = &mut order[set];
                let pos = o
                    .iter()
                    .position(|&w| w as u32 == way)
                    .expect("way must exist in LRU order");
                let w = o.remove(pos);
                o.insert(0, w);
            }
        }
    }

    /// The least-recently-used way of `set` (the eviction victim).
    #[inline]
    pub fn victim(&self, set: usize) -> u32 {
        match &self.repr {
            Repr::Packed { words } => ((words[set] >> (4 * (self.assoc - 1))) & 0xF) as u32,
            Repr::Wide { order } => *order[set].last().expect("non-empty set") as u32,
        }
    }

    /// Recency position of `way` in `set`: 0 = MRU, `assoc-1` = LRU.
    #[inline]
    pub fn position_of(&self, set: usize, way: u32) -> usize {
        debug_assert!(way < self.assoc, "way {way} out of range");
        match &self.repr {
            Repr::Packed { words } => nibble_pos(words[set], way) as usize,
            Repr::Wide { order } => order[set]
                .iter()
                .position(|&w| w as u32 == way)
                .expect("way must exist in LRU order"),
        }
    }

    /// Serializes the recency state. The representation tag guards against
    /// loading a packed snapshot into a wide table (or vice versa), which
    /// can only happen if the geometries differ.
    pub fn save_state(&self, e: &mut Encoder) {
        match &self.repr {
            Repr::Packed { words } => {
                e.put_u8(0);
                e.put_u64_slice(words);
            }
            Repr::Wide { order } => {
                e.put_u8(1);
                e.put_len(order.len());
                for o in order {
                    e.put_u8_slice(o);
                }
            }
        }
    }

    /// Restores state written by [`LruTable::save_state`] into a table of
    /// identical geometry. Value-level integrity (each word a permutation)
    /// is guaranteed by the container checksum, not re-validated here.
    pub fn load_state(&mut self, d: &mut Decoder<'_>) -> Result<(), SnapshotError> {
        match (&mut self.repr, d.u8()?) {
            (Repr::Packed { words }, 0) => {
                let loaded = d.u64_slice()?;
                if loaded.len() != words.len() {
                    return Err(SnapshotError::Malformed("LRU set count mismatch"));
                }
                *words = loaded;
                Ok(())
            }
            (Repr::Wide { order }, 1) => {
                if d.len()? != order.len() {
                    return Err(SnapshotError::Malformed("LRU set count mismatch"));
                }
                for o in order.iter_mut() {
                    let loaded = d.u8_slice()?;
                    if loaded.len() != o.len() {
                        return Err(SnapshotError::Malformed("LRU order length mismatch"));
                    }
                    *o = loaded;
                }
                Ok(())
            }
            _ => Err(SnapshotError::Malformed("LRU representation mismatch")),
        }
    }

    /// The way at recency position `pos` in `set` (0 = MRU). Test/debug
    /// helper; the hot path never needs an arbitrary position read.
    pub fn way_at(&self, set: usize, pos: usize) -> u32 {
        assert!(pos < self.assoc as usize, "position {pos} out of range");
        match &self.repr {
            Repr::Packed { words } => ((words[set] >> (4 * pos)) & 0xF) as u32,
            Repr::Wide { order } => order[set][pos] as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order_of(t: &LruTable, set: usize) -> Vec<u32> {
        (0..t.assoc() as usize).map(|p| t.way_at(set, p)).collect()
    }

    #[test]
    fn initial_order_is_way_ascending() {
        let t = LruTable::new(2, 4);
        assert_eq!(order_of(&t, 0), vec![0, 1, 2, 3]);
        assert_eq!(t.victim(1), 3);
    }

    #[test]
    fn touch_moves_to_mru_and_preserves_permutation() {
        let mut t = LruTable::new(1, 4);
        t.touch(0, 2);
        assert_eq!(order_of(&t, 0), vec![2, 0, 1, 3]);
        t.touch(0, 3);
        assert_eq!(order_of(&t, 0), vec![3, 2, 0, 1]);
        t.touch(0, 3);
        assert_eq!(order_of(&t, 0), vec![3, 2, 0, 1]);
        assert_eq!(t.victim(0), 1);
        assert_eq!(t.position_of(0, 3), 0);
        assert_eq!(t.position_of(0, 1), 3);
    }

    #[test]
    fn full_width_16_ways_round_trip() {
        let mut t = LruTable::new(1, 16);
        assert_eq!(t.victim(0), 15);
        t.touch(0, 15);
        assert_eq!(t.victim(0), 14);
        assert_eq!(t.position_of(0, 15), 0);
        t.touch(0, 0);
        assert_eq!(order_of(&t, 0)[..3], [0, 15, 1]);
    }

    #[test]
    fn wide_fallback_matches_packed_semantics() {
        let mut t = LruTable::new(1, 20);
        t.touch(0, 17);
        assert_eq!(t.way_at(0, 0), 17);
        assert_eq!(t.victim(0), 19);
        assert_eq!(t.position_of(0, 17), 0);
    }

    #[test]
    fn sets_are_independent() {
        let mut t = LruTable::new(2, 8);
        t.touch(0, 5);
        assert_eq!(t.way_at(0, 0), 5);
        assert_eq!(t.way_at(1, 0), 0);
    }

    #[test]
    #[should_panic(expected = "associativity")]
    fn zero_assoc_panics() {
        let _ = LruTable::new(1, 0);
    }

    #[test]
    fn state_roundtrips_both_representations() {
        for assoc in [4u32, 20] {
            let mut t = LruTable::new(3, assoc);
            t.touch(0, 2);
            t.touch(1, 3);
            t.touch(2, 1);
            let mut e = Encoder::new();
            t.save_state(&mut e);
            let bytes = e.into_bytes();
            let mut fresh = LruTable::new(3, assoc);
            let mut d = Decoder::new(&bytes);
            fresh.load_state(&mut d).unwrap();
            d.finish().unwrap();
            for set in 0..3 {
                assert_eq!(order_of(&fresh, set), order_of(&t, set), "assoc {assoc} set {set}");
            }
        }
    }

    #[test]
    fn load_rejects_geometry_mismatch() {
        let t = LruTable::new(2, 4);
        let mut e = Encoder::new();
        t.save_state(&mut e);
        let bytes = e.into_bytes();
        // Wrong set count.
        let mut d = Decoder::new(&bytes);
        assert!(LruTable::new(4, 4).load_state(&mut d).is_err());
        // Wrong representation (wide vs packed).
        let mut d = Decoder::new(&bytes);
        assert!(LruTable::new(2, 20).load_state(&mut d).is_err());
    }
}
