//! Consistent-hashing bank map for the resizable L4 DRAM cache.
//!
//! The L4 tier (DESIGN.md §15) spreads blocks over a set of DRAM banks
//! that can grow and shrink mid-run. A modulo map would move nearly every
//! block on a resize; this map hashes each bank into `vnodes_per_bank`
//! positions on a 64-bit ring (virtual nodes, after the hardware
//! consistent-hashing scheme of Chang et al., arXiv 1602.00722) and sends
//! a block to the first virtual node clockwise from its own hash. Adding
//! `k` banks to `n` then moves only the keys landing on the new banks'
//! virtual nodes (expected fraction `k / (n + k)`); removing `k` banks
//! moves only the keys those banks owned (expected fraction `k / n`).
//! Every other key keeps its owner bit-for-bit — the property suite in
//! `tests/chash_props.rs` pins both the bound and the stability.
//!
//! Bank ids are allocated monotonically and never reused, so a bank that
//! was retired and a bank added later can never be confused in snapshots
//! or telemetry. Lookup is allocation-free (one binary search); resizes
//! rebuild the ring and may allocate, which is fine — only the settled
//! steady state must be allocation-free (`tests/no_alloc.rs`).

use simbase::snapshot::{Decoder, Encoder, SnapshotError};

/// SplitMix64 finalizer: the avalanche mix behind every ring position
/// and key hash. Stable forever — ring layout is architectural state.
#[inline(always)]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Banks entering and leaving the map in one [`BankMap::resize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResizeDelta {
    /// Bank ids added (fresh, never-used ids), ascending.
    pub added: Vec<u32>,
    /// Bank ids retired (the most recently added live banks), ascending.
    pub retired: Vec<u32>,
}

/// The consistent-hashing map from block addresses to live bank ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankMap {
    seed: u64,
    vnodes_per_bank: u32,
    /// Next bank id to allocate; ids are monotonic and never reused.
    next_bank: u32,
    /// Live bank ids, ascending.
    banks: Vec<u32>,
    /// `(position, bank)` sorted ascending — the ring.
    ring: Vec<(u64, u32)>,
}

impl BankMap {
    /// Builds a map over banks `0..n_banks`.
    ///
    /// # Panics
    ///
    /// Panics if `n_banks` or `vnodes_per_bank` is zero.
    pub fn new(n_banks: u32, vnodes_per_bank: u32, seed: u64) -> Self {
        assert!(n_banks > 0, "a bank map needs at least one bank");
        assert!(vnodes_per_bank > 0, "virtual node count must be positive");
        let mut map = BankMap {
            seed,
            vnodes_per_bank,
            next_bank: n_banks,
            banks: (0..n_banks).collect(),
            ring: Vec::new(),
        };
        map.rebuild_ring();
        map
    }

    /// Position of one virtual node on the ring.
    fn vnode_pos(&self, bank: u32, replica: u32) -> u64 {
        mix64(self.seed ^ mix64(((bank as u64) << 32) | replica as u64))
    }

    /// Rebuilds the sorted ring from the live bank set. The ring is a
    /// pure function of `(seed, vnodes_per_bank, banks)`, so rebuilding
    /// from scratch and incremental insertion agree exactly.
    fn rebuild_ring(&mut self) {
        self.ring.clear();
        self.ring.reserve(self.banks.len() * self.vnodes_per_bank as usize);
        for &bank in &self.banks {
            for replica in 0..self.vnodes_per_bank {
                self.ring.push((self.vnode_pos(bank, replica), bank));
            }
        }
        self.ring.sort_unstable();
    }

    /// Hash of one block key on the ring. Resizes never change it, which
    /// is what makes unmoved-key lookups stable across a resize.
    #[inline]
    pub fn key_hash(&self, block: u64) -> u64 {
        mix64(block ^ self.seed.rotate_left(17))
    }

    /// The live bank owning `block`: the first virtual node clockwise
    /// from the block's hash. Allocation-free.
    #[inline]
    pub fn lookup(&self, block: u64) -> u32 {
        let h = self.key_hash(block);
        let i = self.ring.partition_point(|&(pos, _)| pos < h);
        if i == self.ring.len() { self.ring[0].1 } else { self.ring[i].1 }
    }

    /// Number of live banks.
    pub fn n_banks(&self) -> u32 {
        self.banks.len() as u32
    }

    /// Live bank ids, ascending.
    pub fn bank_ids(&self) -> &[u32] {
        &self.banks
    }

    /// One past the highest bank id ever allocated (for sizing per-bank
    /// tables indexed by id).
    pub fn id_bound(&self) -> u32 {
        self.next_bank
    }

    /// Grows or shrinks the live bank set to `target` banks. Growth adds
    /// fresh ids; shrinking retires the most recently added banks first
    /// (LIFO), so the surviving set is a prefix of history and resizes
    /// compose deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `target` is zero.
    pub fn resize(&mut self, target: u32) -> ResizeDelta {
        assert!(target > 0, "cannot shrink the L4 to zero banks");
        let n = self.banks.len() as u32;
        let mut delta = ResizeDelta { added: Vec::new(), retired: Vec::new() };
        if target > n {
            for _ in n..target {
                delta.added.push(self.next_bank);
                self.banks.push(self.next_bank);
                self.next_bank += 1;
            }
        } else if target < n {
            delta.retired = self.banks.split_off(target as usize);
        }
        if delta.added.is_empty() && delta.retired.is_empty() {
            return delta;
        }
        self.rebuild_ring();
        delta
    }

    /// Serializes the architectural map state. The ring is derived and
    /// rebuilt on load; geometry (`seed`, `vnodes_per_bank`) is written
    /// so a snapshot can never silently cross configurations.
    pub fn save_state(&self, e: &mut Encoder) {
        e.put_u64(self.seed);
        e.put_u32(self.vnodes_per_bank);
        e.put_u32(self.next_bank);
        e.put_u32_slice(&self.banks);
    }

    /// Restores state written by [`BankMap::save_state`] into a map of
    /// identical geometry.
    pub fn load_state(&mut self, d: &mut Decoder<'_>) -> Result<(), SnapshotError> {
        if d.u64()? != self.seed {
            return Err(SnapshotError::Malformed("bank-map seed mismatch"));
        }
        if d.u32()? != self.vnodes_per_bank {
            return Err(SnapshotError::Malformed("bank-map vnode-count mismatch"));
        }
        let next_bank = d.u32()?;
        let banks = d.u32_slice()?;
        if banks.is_empty() || banks.iter().any(|&b| b >= next_bank) {
            return Err(SnapshotError::Malformed("bank-map id set inconsistent"));
        }
        self.next_bank = next_bank;
        self.banks = banks;
        self.rebuild_ring();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 0x1602_0072_2;

    fn moved_fraction(before: &BankMap, after: &BankMap, keys: u64) -> f64 {
        let moved = (0..keys).filter(|&k| before.lookup(k) != after.lookup(k)).count();
        moved as f64 / keys as f64
    }

    #[test]
    fn lookup_is_deterministic_and_in_range() {
        let map = BankMap::new(8, 32, SEED);
        for k in 0..10_000u64 {
            let b = map.lookup(k);
            assert!(map.bank_ids().contains(&b), "bank {b} not live");
            assert_eq!(b, map.lookup(k));
        }
    }

    #[test]
    fn every_bank_owns_some_keys() {
        let map = BankMap::new(8, 32, SEED);
        let mut owned = vec![0u64; 8];
        for k in 0..100_000u64 {
            owned[map.lookup(k) as usize] += 1;
        }
        for (b, &n) in owned.iter().enumerate() {
            assert!(n > 0, "bank {b} owns no keys");
        }
    }

    #[test]
    fn grow_moves_roughly_the_minimal_fraction() {
        let before = BankMap::new(8, 64, SEED);
        let mut after = before.clone();
        let delta = after.resize(12);
        assert_eq!(delta.added, vec![8, 9, 10, 11]);
        assert!(delta.retired.is_empty());
        let f = moved_fraction(&before, &after, 100_000);
        // Expected 4/12 = 0.333; virtual-node variance stays well inside 1.6x.
        assert!(f > 0.0 && f < 0.334 * 1.6, "grow moved fraction {f}");
        // Moved keys must land exactly on the new banks.
        for k in 0..100_000u64 {
            if before.lookup(k) != after.lookup(k) {
                assert!(after.lookup(k) >= 8, "key {k} moved to an old bank");
            }
        }
    }

    #[test]
    fn shrink_moves_only_keys_of_retired_banks() {
        let before = BankMap::new(8, 64, SEED);
        let mut after = before.clone();
        let delta = after.resize(6);
        assert_eq!(delta.retired, vec![6, 7]);
        for k in 0..100_000u64 {
            if before.lookup(k) != after.lookup(k) {
                assert!(before.lookup(k) >= 6, "stable key {k} moved");
            } else {
                assert!(before.lookup(k) < 6, "retired bank still owns key {k}");
            }
        }
    }

    #[test]
    fn shrink_then_grow_allocates_fresh_ids() {
        let mut map = BankMap::new(4, 16, SEED);
        let d1 = map.resize(2);
        assert_eq!(d1.retired, vec![2, 3]);
        let d2 = map.resize(4);
        assert_eq!(d2.added, vec![4, 5], "retired ids must never be reused");
        assert_eq!(map.bank_ids(), &[0, 1, 4, 5]);
        assert_eq!(map.id_bound(), 6);
    }

    #[test]
    fn noop_resize_changes_nothing() {
        let mut map = BankMap::new(4, 16, SEED);
        let before = map.clone();
        let d = map.resize(4);
        assert!(d.added.is_empty() && d.retired.is_empty());
        assert_eq!(map, before);
    }

    #[test]
    fn state_roundtrips_through_snapshot() {
        let mut map = BankMap::new(8, 32, SEED);
        map.resize(3);
        map.resize(10);
        let mut e = Encoder::new();
        map.save_state(&mut e);
        let bytes = e.into_bytes();
        let mut fresh = BankMap::new(8, 32, SEED);
        let mut d = Decoder::new(&bytes);
        fresh.load_state(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(fresh, map);
        for k in 0..10_000u64 {
            assert_eq!(fresh.lookup(k), map.lookup(k));
        }
    }

    #[test]
    fn load_rejects_wrong_geometry() {
        let map = BankMap::new(4, 16, SEED);
        let mut e = Encoder::new();
        map.save_state(&mut e);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(BankMap::new(4, 16, SEED ^ 1).load_state(&mut d).is_err());
        let mut d = Decoder::new(&bytes);
        assert!(BankMap::new(4, 32, SEED).load_state(&mut d).is_err());
    }

    #[test]
    #[should_panic(expected = "zero banks")]
    fn resize_to_zero_panics() {
        BankMap::new(2, 4, SEED).resize(0);
    }
}
