//! Naive reference implementations: the pre-flat-arena cache structures,
//! kept verbatim as differential-testing oracles (DESIGN.md §9).
//!
//! The optimized [`crate::setassoc::SetAssocCache`] and
//! [`crate::packed_lru::LruTable`] must be *observably identical* to these
//! — same hit/miss results, same victims, same evictions, same dirty bits
//! — for every access stream. `tests/differential.rs` at the workspace
//! root enforces that with randomized simkit properties; these types are
//! `pub` (not `#[cfg(test)]`) solely so those integration tests can see
//! them. Nothing on the simulation hot path uses this module.
//!
//! Do not "improve" this code: its value is that it is the obviously
//! correct array-of-structs / `Vec` implementation the optimized forms are
//! measured against.

use crate::replacement::PolicyKind;
use crate::setassoc::{Eviction, Lookup, WayRef};
use simbase::rng::SimRng;
use simbase::{AccessKind, BlockAddr, Capacity};

/// Naive per-set LRU recency order: `order[set]` lists ways MRU→LRU in a
/// `Vec<u8>`, updated by remove + insert. The oracle for
/// [`crate::packed_lru::LruTable`].
#[derive(Debug, Clone)]
pub struct NaiveLru {
    order: Vec<Vec<u8>>,
}

impl NaiveLru {
    /// Every set starts in way order `0, 1, .., assoc-1` (way 0 MRU).
    pub fn new(sets: usize, assoc: u32) -> Self {
        assert!((1..=255).contains(&assoc), "associativity out of range");
        NaiveLru { order: (0..sets).map(|_| (0..assoc as u8).collect()).collect() }
    }

    /// Moves `way` to MRU.
    pub fn touch(&mut self, set: usize, way: u32) {
        let o = &mut self.order[set];
        let pos = o.iter().position(|&w| w as u32 == way).expect("way must exist in LRU order");
        let w = o.remove(pos);
        o.insert(0, w);
    }

    /// The LRU way (eviction victim).
    pub fn victim(&self, set: usize) -> u32 {
        *self.order[set].last().expect("non-empty set") as u32
    }

    /// Recency position of `way` (0 = MRU).
    pub fn position_of(&self, set: usize, way: u32) -> usize {
        self.order[set].iter().position(|&w| w as u32 == way).expect("way must exist")
    }

    /// The way at recency position `pos` (0 = MRU).
    pub fn way_at(&self, set: usize, pos: usize) -> u32 {
        self.order[set][pos] as u32
    }
}

/// Naive per-set replacement state: the pre-rewrite `SetPolicy`, with the
/// LRU variant storing explicit MRU→LRU `Vec`s.
#[derive(Debug, Clone)]
pub enum NaiveSetPolicy {
    /// Recency order per set as plain `Vec`s.
    Lru(NaiveLru),
    /// PLRU tree bits per set.
    TreePlru { bits: Vec<u32>, assoc: u32 },
    /// Random selection with a deterministic stream.
    Random { rng: SimRng, assoc: u32 },
}

impl NaiveSetPolicy {
    /// Mirrors `SetPolicy::new`.
    pub fn new(kind: PolicyKind, sets: usize, assoc: u32, rng: SimRng) -> Self {
        assert!(assoc > 0 && assoc <= 255, "associativity {assoc} out of range");
        match kind {
            PolicyKind::Lru => NaiveSetPolicy::Lru(NaiveLru::new(sets, assoc)),
            PolicyKind::TreePlru => {
                assert!(assoc.is_power_of_two(), "tree PLRU requires power-of-two associativity");
                NaiveSetPolicy::TreePlru { bits: vec![0; sets], assoc }
            }
            PolicyKind::Random => NaiveSetPolicy::Random { rng, assoc },
        }
    }

    /// Records a use of `way` in `set`.
    pub fn touch(&mut self, set: usize, way: u32) {
        match self {
            NaiveSetPolicy::Lru(l) => l.touch(set, way),
            NaiveSetPolicy::TreePlru { bits, assoc } => {
                let mut node = 0u32;
                let mut lo = 0u32;
                let mut hi = *assoc;
                let b = &mut bits[set];
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    if way < mid {
                        *b &= !(1 << node);
                        hi = mid;
                        node = 2 * node + 1;
                    } else {
                        *b |= 1 << node;
                        lo = mid;
                        node = 2 * node + 2;
                    }
                }
            }
            NaiveSetPolicy::Random { .. } => {}
        }
    }

    /// Chooses a victim way in `set`.
    pub fn victim(&mut self, set: usize) -> u32 {
        match self {
            NaiveSetPolicy::Lru(l) => l.victim(set),
            NaiveSetPolicy::TreePlru { bits, assoc } => {
                let mut node = 0u32;
                let mut lo = 0u32;
                let mut hi = *assoc;
                let b = bits[set];
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    if b & (1 << node) != 0 {
                        hi = mid;
                        node = 2 * node + 1;
                    } else {
                        lo = mid;
                        node = 2 * node + 2;
                    }
                }
                lo
            }
            NaiveSetPolicy::Random { rng, assoc } => rng.below(*assoc as u64) as u32,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    block: BlockAddr,
    valid: bool,
    dirty: bool,
}

const INVALID: Line = Line { block: BlockAddr::from_index(u64::MAX), valid: false, dirty: false };

/// The pre-rewrite array-of-structs set-associative directory, preserved
/// as the oracle for [`crate::setassoc::SetAssocCache`]. Same public
/// protocol: probe / access / fill / invalidate with identical victim
/// choices and eviction reports.
#[derive(Debug, Clone)]
pub struct NaiveSetAssocCache {
    lines: Vec<Line>, // sets * assoc, row-major by set
    policy: NaiveSetPolicy,
    sets: usize,
    assoc: u32,
}

impl NaiveSetAssocCache {
    /// Mirrors `SetAssocCache::new`, including all geometry panics.
    pub fn new(
        capacity: Capacity,
        block_bytes: u64,
        assoc: u32,
        policy: PolicyKind,
        rng: SimRng,
    ) -> Self {
        assert!(assoc > 0, "associativity must be positive");
        let blocks = capacity.bytes() / block_bytes;
        assert!(blocks.is_multiple_of(assoc as u64), "capacity must divide into whole sets");
        let sets = (blocks / assoc as u64) as usize;
        assert!(sets.is_power_of_two(), "set count must be a power of two, got {sets}");
        NaiveSetAssocCache {
            lines: vec![INVALID; sets * assoc as usize],
            policy: NaiveSetPolicy::new(policy, sets, assoc, rng),
            sets,
            assoc,
        }
    }

    /// Set index for `block` (explicit modulo, as before the rewrite).
    pub fn set_of(&self, block: BlockAddr) -> usize {
        (block.index() % self.sets as u64) as usize
    }

    fn line(&self, r: WayRef) -> &Line {
        &self.lines[r.set * self.assoc as usize + r.way as usize]
    }

    fn line_mut(&mut self, r: WayRef) -> &mut Line {
        &mut self.lines[r.set * self.assoc as usize + r.way as usize]
    }

    /// Pure lookup.
    pub fn probe(&self, block: BlockAddr) -> Lookup {
        let set = self.set_of(block);
        for way in 0..self.assoc {
            let l = self.line(WayRef { set, way });
            if l.valid && l.block == block {
                return Lookup::Hit(WayRef { set, way });
            }
        }
        Lookup::Miss
    }

    /// Lookup with recency/dirty update on hit.
    pub fn access(&mut self, block: BlockAddr, kind: AccessKind) -> Lookup {
        match self.probe(block) {
            Lookup::Hit(r) => {
                self.policy.touch(r.set, r.way);
                if kind.is_write() {
                    self.line_mut(r).dirty = true;
                }
                Lookup::Hit(r)
            }
            Lookup::Miss => Lookup::Miss,
        }
    }

    /// Fill with first-invalid-way preference, then policy victim.
    pub fn fill(&mut self, block: BlockAddr, dirty: bool) -> Option<Eviction> {
        assert!(!self.probe(block).is_hit(), "fill of already-present block {block}");
        let set = self.set_of(block);
        let mut target = None;
        for way in 0..self.assoc {
            if !self.line(WayRef { set, way }).valid {
                target = Some(WayRef { set, way });
                break;
            }
        }
        let (r, evicted) = match target {
            Some(r) => (r, None),
            None => {
                let way = self.policy.victim(set);
                let r = WayRef { set, way };
                let old = *self.line(r);
                (r, Some(Eviction { block: old.block, dirty: old.dirty, from: r }))
            }
        };
        *self.line_mut(r) = Line { block, valid: true, dirty };
        self.policy.touch(r.set, r.way);
        evicted
    }

    /// Invalidates `block` if present, returning whether it was dirty.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<bool> {
        match self.probe(block) {
            Lookup::Hit(r) => {
                let dirty = self.line(r).dirty;
                *self.line_mut(r) = INVALID;
                Some(dirty)
            }
            Lookup::Miss => None,
        }
    }

    /// Number of valid lines.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// The block resident at `r`, if any.
    pub fn block_at(&self, r: WayRef) -> Option<BlockAddr> {
        let l = self.line(r);
        l.valid.then_some(l.block)
    }
}
