//! Straight-line reference twin of the L4 DRAM cache.
//!
//! Same specification as [`L4DramCache`](super::L4DramCache), written
//! with the most obvious data structures available: an unsorted virtual
//! node list scanned linearly per lookup, per-set way vectors with an
//! explicit MRU→LRU order list, and a tag cache of `Option` slots. No
//! sorted ring, no flat tag arena, no packed LRU words, no dirty
//! bitmaps. The differential suite (`tests/differential.rs`) drives this
//! twin and the fast tier through identical access sequences — including
//! sequences straddling live resizes — and requires bit-identical
//! completion cycles, statistics, and resident/dirty state.
//!
//! The hash functions ([`mix64`](crate::chash::mix64) and the key/vnode
//! mixing) are shared with the fast path on purpose: they are the
//! *specification* of block placement, not an optimization over it.

use crate::chash::mix64;
use crate::memory::MainMemory;
use simbase::{BlockAddr, Cycle};

use super::{L4Config, L4Stats};

/// One way of a naive set: `(block index, dirty)`.
type NaiveWay = Option<(u64, bool)>;

/// One set: the ways plus an explicit recency order (MRU first).
#[derive(Debug, Clone)]
struct NaiveSet {
    ways: Vec<NaiveWay>,
    /// Way indices MRU→LRU; starts `0, 1, .., assoc-1` like `LruTable`.
    order: Vec<u8>,
}

impl NaiveSet {
    fn new(assoc: u32) -> Self {
        NaiveSet {
            ways: vec![None; assoc as usize],
            order: (0..assoc as u8).collect(),
        }
    }

    fn touch(&mut self, way: usize) {
        let pos = self.order.iter().position(|&w| w as usize == way).expect("way in order");
        let w = self.order.remove(pos);
        self.order.insert(0, w);
    }

    fn victim(&self) -> usize {
        *self.order.last().expect("non-empty set") as usize
    }
}

/// One naive bank: a vector of sets.
#[derive(Debug, Clone)]
struct NaiveBank {
    sets: Vec<NaiveSet>,
}

/// The reference L4: same config, stats, and timing contract as the
/// fast [`L4DramCache`](super::L4DramCache).
#[derive(Debug, Clone)]
pub struct NaiveL4 {
    cfg: L4Config,
    sets_per_bank: usize,
    /// Unsorted `(position, bank)` virtual nodes of the live banks.
    vnodes: Vec<(u64, u32)>,
    /// Live bank ids in insertion order (ascending by construction).
    live: Vec<u32>,
    /// Next bank id to allocate (monotonic, never reused).
    next_bank: u32,
    /// Bank storage indexed by id; retired slots are `None`.
    banks: Vec<Option<NaiveBank>>,
    /// Direct-mapped tag-cache slots holding `(bank, set)` keys.
    tag_cache: Vec<Option<u64>>,
    free_at: Cycle,
    stats: L4Stats,
}

impl NaiveL4 {
    /// Builds the reference tier with every configured bank empty.
    pub fn new(cfg: L4Config) -> Self {
        let sets = (cfg.bank_blocks / cfg.assoc as u64) as usize;
        let live: Vec<u32> = (0..cfg.n_banks).collect();
        let mut naive = NaiveL4 {
            sets_per_bank: sets,
            vnodes: Vec::new(),
            live: live.clone(),
            next_bank: cfg.n_banks,
            banks: live
                .iter()
                .map(|_| Some(NaiveBank { sets: (0..sets).map(|_| NaiveSet::new(cfg.assoc)).collect() }))
                .collect(),
            tag_cache: vec![None; cfg.tag_cache_entries as usize],
            free_at: Cycle::ZERO,
            stats: L4Stats::default(),
            cfg,
        };
        naive.rebuild_vnodes();
        naive
    }

    fn rebuild_vnodes(&mut self) {
        self.vnodes.clear();
        for &bank in &self.live {
            for replica in 0..self.cfg.vnodes_per_bank {
                let pos = mix64(self.cfg.hash_seed ^ mix64(((bank as u64) << 32) | replica as u64));
                self.vnodes.push((pos, bank));
            }
        }
    }

    /// The owning bank of `key`: the smallest `(position, bank)` virtual
    /// node at or clockwise of the key's hash, wrapping to the global
    /// minimum — a linear scan over the unsorted node list.
    fn lookup(&self, key: u64) -> u32 {
        let h = mix64(key ^ self.cfg.hash_seed.rotate_left(17));
        let successor = self.vnodes.iter().filter(|&&(pos, _)| pos >= h).min();
        match successor {
            Some(&(_, bank)) => bank,
            None => self.vnodes.iter().min().expect("non-empty ring").1,
        }
    }

    fn set_of(&self, key: u64) -> usize {
        (key % self.sets_per_bank as u64) as usize
    }

    /// Event counters since the last [`NaiveL4::reset_stats`].
    pub fn stats(&self) -> L4Stats {
        self.stats
    }

    /// Zeroes the event counters.
    pub fn reset_stats(&mut self) {
        self.stats = L4Stats::default();
    }

    /// Drains timing-only state (channel occupancy, tag cache).
    pub fn drain_timing(&mut self) {
        self.free_at = Cycle::ZERO;
        self.tag_cache.iter_mut().for_each(|e| *e = None);
    }

    /// Live bank count.
    pub fn n_banks(&self) -> u32 {
        self.live.len() as u32
    }

    fn resolve_tags(&mut self, bank: u32, set: usize, now: Cycle) -> Cycle {
        let key = ((bank as u64) << 32) | set as u64;
        let idx = (mix64(key) & (self.tag_cache.len() as u64 - 1)) as usize;
        if self.tag_cache[idx] == Some(key) {
            self.stats.tag_cache_hits += 1;
            now + self.cfg.tag_sram_latency
        } else {
            self.tag_cache[idx] = Some(key);
            self.stats.tag_probes += 1;
            let start = now.max(self.free_at);
            self.free_at = start + self.cfg.cycles_per_8b;
            start + self.cfg.tag_probe_latency
        }
    }

    fn probe(&self, bank: u32, set: usize, key: u64) -> Option<usize> {
        let sets = &self.banks[bank as usize].as_ref().expect("live bank").sets;
        sets[set].ways.iter().position(|w| matches!(w, Some((k, _)) if *k == key))
    }

    fn data_burst(&mut self, at: Cycle, bytes: u64) -> Cycle {
        let start = at.max(self.free_at);
        let burst = self.cfg.cycles_per_8b * bytes.div_ceil(8);
        self.free_at = start + burst;
        start + self.cfg.base_latency + burst
    }

    fn install(
        &mut self,
        bank: u32,
        set: usize,
        key: u64,
        dirty: bool,
        at: Cycle,
        bytes: u64,
        dram: &mut MainMemory,
    ) -> Cycle {
        let s = &mut self.banks[bank as usize].as_mut().expect("live bank").sets[set];
        let way = s.victim();
        let victim_dirty = matches!(s.ways[way], Some((_, true)));
        s.ways[way] = Some((key, dirty));
        s.touch(way);
        if victim_dirty {
            self.stats.writebacks += 1;
            let _ = dram.channel_transfer(bytes, at);
        }
        let start = at.max(self.free_at);
        let burst = self.cfg.cycles_per_8b * bytes.div_ceil(8);
        self.free_at = start + burst;
        start + self.cfg.base_latency + burst
    }

    /// Reference twin of [`L4DramCache::fill`](super::L4DramCache::fill).
    pub fn fill(&mut self, block: BlockAddr, bytes: u64, now: Cycle, dram: &mut MainMemory) -> Cycle {
        self.stats.accesses += 1;
        let key = block.index();
        let bank = self.lookup(key);
        let set = self.set_of(key);
        let tag_done = self.resolve_tags(bank, set, now);
        match self.probe(bank, set, key) {
            Some(way) => {
                self.stats.hits += 1;
                self.banks[bank as usize].as_mut().expect("live bank").sets[set].touch(way);
                self.data_burst(tag_done, bytes)
            }
            None => {
                self.stats.misses += 1;
                let arrival = dram.channel_transfer(bytes, tag_done);
                let _ = self.install(bank, set, key, false, arrival, bytes, dram);
                self.stats.fills += 1;
                arrival
            }
        }
    }

    /// Reference twin of
    /// [`L4DramCache::writeback`](super::L4DramCache::writeback).
    pub fn writeback(
        &mut self,
        block: BlockAddr,
        bytes: u64,
        now: Cycle,
        dram: &mut MainMemory,
    ) -> Cycle {
        self.stats.accesses += 1;
        let key = block.index();
        let bank = self.lookup(key);
        let set = self.set_of(key);
        let tag_done = self.resolve_tags(bank, set, now);
        match self.probe(bank, set, key) {
            Some(way) => {
                self.stats.hits += 1;
                let s = &mut self.banks[bank as usize].as_mut().expect("live bank").sets[set];
                s.ways[way] = Some((key, true));
                s.touch(way);
                self.data_burst(tag_done, bytes)
            }
            None => {
                self.stats.misses += 1;
                self.stats.dirty_fills += 1;
                self.install(bank, set, key, true, tag_done, bytes, dram)
            }
        }
    }

    /// Reference twin of
    /// [`L4DramCache::warm_fill`](super::L4DramCache::warm_fill).
    pub fn warm_fill(&mut self, block: BlockAddr) {
        self.warm(block, false);
    }

    /// Reference twin of
    /// [`L4DramCache::warm_writeback`](super::L4DramCache::warm_writeback).
    pub fn warm_writeback(&mut self, block: BlockAddr) {
        self.warm(block, true);
    }

    fn warm(&mut self, block: BlockAddr, dirty: bool) {
        let key = block.index();
        let bank = self.lookup(key);
        let set = self.set_of(key);
        match self.probe(bank, set, key) {
            Some(way) => {
                let s = &mut self.banks[bank as usize].as_mut().expect("live bank").sets[set];
                if dirty {
                    s.ways[way] = Some((key, true));
                }
                s.touch(way);
            }
            None => {
                let s = &mut self.banks[bank as usize].as_mut().expect("live bank").sets[set];
                let way = s.victim();
                s.ways[way] = Some((key, dirty));
                s.touch(way);
            }
        }
    }

    /// Reference twin of
    /// [`L4DramCache::resize`](super::L4DramCache::resize): LIFO bank
    /// retirement with an eager dirty flush, fresh monotonic ids on
    /// growth, tag cache cleared.
    pub fn resize(&mut self, target: u32, now: Cycle, dram: &mut MainMemory) -> Cycle {
        assert!(target > 0, "cannot shrink the L4 to zero banks");
        self.stats.resizes += 1;
        let mut done = now;
        while (self.live.len() as u32) > target {
            let id = self.live.pop().expect("non-empty");
            let bank = self.banks[id as usize].take().expect("retired bank was live");
            for set in &bank.sets {
                for way in &set.ways {
                    if matches!(way, Some((_, true))) {
                        self.stats.resize_writebacks += 1;
                        done = dram.channel_transfer(self.cfg.block_bytes, now);
                    }
                }
            }
        }
        while (self.live.len() as u32) < target {
            let id = self.next_bank;
            self.next_bank += 1;
            self.live.push(id);
            if self.banks.len() <= id as usize {
                self.banks.resize_with(id as usize + 1, || None);
            }
            self.banks[id as usize] = Some(NaiveBank {
                sets: (0..self.sets_per_bank).map(|_| NaiveSet::new(self.cfg.assoc)).collect(),
            });
        }
        self.rebuild_vnodes();
        self.tag_cache.iter_mut().for_each(|e| *e = None);
        done
    }

    /// Whether `block` is resident in the bank the map names today.
    pub fn resident(&self, block: BlockAddr) -> bool {
        let key = block.index();
        self.probe(self.lookup(key), self.set_of(key), key).is_some()
    }

    /// Whether `block` is resident and dirty.
    pub fn is_dirty(&self, block: BlockAddr) -> bool {
        let key = block.index();
        let (bank, set) = (self.lookup(key), self.set_of(key));
        match self.probe(bank, set, key) {
            Some(way) => matches!(
                self.banks[bank as usize].as_ref().expect("live bank").sets[set].ways[way],
                Some((_, true))
            ),
            None => false,
        }
    }
}
