//! The L4 DRAM-cache tier: tags-in-DRAM with an SRAM tag cache, resizable
//! via a consistent-hashing bank map (DESIGN.md §15).
//!
//! Sits between every lower-level [`Organization`](crate::org::Organization)
//! and main memory, attached through
//! [`MainMemory::attach_l4`](crate::memory::MainMemory::attach_l4). Block
//! fills and dirty writebacks consult the L4 before the DRAM channel:
//!
//! 1. **Bank map** — [`chash::BankMap`](crate::chash::BankMap) names the
//!    one bank that may hold the block; a resize moves only the minimal
//!    key fraction, so live grow/shrink needs no flush.
//! 2. **Tag resolution** — tags live in DRAM rows (TDRAM, arXiv
//!    2404.14617). A small SRAM tag cache of recently probed sets answers
//!    residency in `tag_sram_latency` cycles; a tag-cache miss pays the
//!    DRAM tag-probe round trip and a beat of tag bandwidth.
//! 3. **Data** — an L4 hit bursts the block over the (fast) L4 channel;
//!    a miss fetches from DRAM cut-through and installs, writing back a
//!    dirty victim behind the fill.
//!
//! State split: the resident-tag directory, dirty bits, per-set LRU, and
//! the bank map are **architectural** — the warm-up path takes identical
//! transitions and the whole set enters warm-up checkpoints. The tag
//! cache and both channels' occupancy are **timing-only** — drained at
//! the warm-up barrier and cleared by a resize, never serialized.
//!
//! Resize protocol: growing adds fresh banks; blocks whose map entry
//! moved leave orphan copies behind that age out via normal LRU
//! replacement. Shrinking retires the youngest banks: their dirty blocks
//! are written back through the DRAM channel at resize time (the
//! bandwidth transient the `dram` experiment measures) and their clean
//! blocks simply miss on next access — the resident set drains lazily
//! through tag-probe misses, never an eager migration.
//!
//! The straight-line reference twin lives in [`naive`]; the differential
//! suite in `tests/differential.rs` pins the two bit-for-bit.

pub mod naive;

use crate::chash::BankMap;
use crate::memory::MainMemory;
use crate::packed_lru::LruTable;
use simbase::snapshot::{Decoder, Encoder, SnapshotError};
use simbase::{BlockAddr, Cycle};
use simtel::{l4names, TelemetrySink};

/// Sentinel for an empty tag frame (never a real block index).
const INVALID: u64 = u64::MAX;

/// Section framing of the L4 slice inside a warm-up checkpoint, so an
/// L4-enabled blob can never silently decode into an L4-disabled run.
const L4_SNAPSHOT_MAGIC: u64 = 0x4c34_4452_414d_2431; // "L4DRAM$1"

/// Version of the L4 snapshot section layout.
pub const L4_SNAPSHOT_VERSION: u32 = 1;

/// Configuration of the L4 tier. Geometry and hashing fields are
/// architectural (they enter the warm-up digest); the latency and
/// tag-cache fields are timing-only; `resizes` applies to the measured
/// phase only and enters the run digest but never the warm-up digest.
#[derive(Debug, Clone, PartialEq)]
pub struct L4Config {
    /// Initial number of DRAM-cache banks.
    pub n_banks: u32,
    /// Block frames per bank (`sets * assoc`).
    pub bank_blocks: u64,
    /// Associativity of each bank's sets.
    pub assoc: u32,
    /// Virtual nodes per bank on the consistent-hash ring.
    pub vnodes_per_bank: u32,
    /// Seed of the bank map's hash.
    pub hash_seed: u64,
    /// Block size in bytes (matches the organizations' 128-B blocks).
    pub block_bytes: u64,
    /// Latency of a residency answer from the SRAM tag cache.
    pub tag_sram_latency: u64,
    /// Latency of a tags-in-DRAM probe on a tag-cache miss.
    pub tag_probe_latency: u64,
    /// Base latency of an L4 data access.
    pub base_latency: u64,
    /// L4 channel burst rate (cycles per 8 bytes).
    pub cycles_per_8b: u64,
    /// Direct-mapped SRAM tag-cache entries (power of two).
    pub tag_cache_entries: u32,
    /// Measured-phase resize schedule: `(op index, target banks)`,
    /// ascending by op index.
    pub resizes: Vec<(u64, u32)>,
}

impl L4Config {
    /// The default tier: 8 banks x 32768 blocks x 128 B = 32 MB, 8-way,
    /// roughly half the paper-era DRAM round trip on a hit (TDRAM-style
    /// in-package channel), no resize schedule. The capacity is 4x the
    /// 8-MB L2 it backs on purpose: a DRAM cache no bigger than the
    /// SRAM tier above it holds the same working set and never hits —
    /// at 32 MB it retains the hot blocks the streaming region evicts
    /// from the L2, and a shrink to half the banks drops below a SPEC-
    /// sized stream footprint, which is what makes resize transients
    /// visible at all.
    pub fn tdram() -> Self {
        L4Config {
            n_banks: 8,
            bank_blocks: 32768,
            assoc: 8,
            vnodes_per_bank: 32,
            hash_seed: 0x7d2a_4d16_0200_0722,
            block_bytes: 128,
            tag_sram_latency: 4,
            tag_probe_latency: 36,
            base_latency: 60,
            cycles_per_8b: 2,
            tag_cache_entries: 1024,
            resizes: Vec::new(),
        }
    }

    /// Attaches a measured-phase resize schedule.
    pub fn with_resizes(mut self, resizes: Vec<(u64, u32)>) -> Self {
        self.resizes = resizes;
        self
    }

    /// Sets the frames (`sets * assoc`) per bank.
    fn sets_per_bank(&self) -> usize {
        (self.bank_blocks / self.assoc as u64) as usize
    }
}

/// Event counters of the L4 tier, split so [`energy`] can price fill,
/// writeback, and tag traffic separately (Banshee-style bandwidth
/// accounting, arXiv 1704.02677). All zeroed at the warm-up barrier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L4Stats {
    /// Block requests (fills + writebacks) reaching the tier.
    pub accesses: u64,
    /// Requests resident in their bank.
    pub hits: u64,
    /// Requests not resident.
    pub misses: u64,
    /// Blocks installed from DRAM on a fill miss.
    pub fills: u64,
    /// Blocks write-allocated by a writeback miss (no DRAM fetch: the
    /// incoming block is whole).
    pub dirty_fills: u64,
    /// Dirty L4 victims written back to DRAM.
    pub writebacks: u64,
    /// Tags-in-DRAM probes (tag-cache misses).
    pub tag_probes: u64,
    /// Residency answered by the SRAM tag cache.
    pub tag_cache_hits: u64,
    /// Dirty blocks flushed to DRAM when their bank retired.
    pub resize_writebacks: u64,
    /// Resize events applied.
    pub resizes: u64,
}

impl L4Stats {
    /// Full blocks crossing the DRAM channel: fill fetches, victim
    /// writebacks, and retirement flushes.
    pub fn dram_blocks(&self) -> u64 {
        self.fills + self.writebacks + self.resize_writebacks
    }

    /// Field-wise `self - earlier`: the events of a window given
    /// cumulative counters sampled at its two ends.
    pub fn minus(&self, earlier: &L4Stats) -> L4Stats {
        L4Stats {
            accesses: self.accesses - earlier.accesses,
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            fills: self.fills - earlier.fills,
            dirty_fills: self.dirty_fills - earlier.dirty_fills,
            writebacks: self.writebacks - earlier.writebacks,
            tag_probes: self.tag_probes - earlier.tag_probes,
            tag_cache_hits: self.tag_cache_hits - earlier.tag_cache_hits,
            resize_writebacks: self.resize_writebacks - earlier.resize_writebacks,
            resizes: self.resizes - earlier.resizes,
        }
    }
}

/// One bank's resident-tag directory: flat tags, a dirty bitmap, and the
/// packed per-set LRU shared with the on-chip directories.
#[derive(Debug, Clone)]
struct BankDir {
    /// Block index per frame (`set * assoc + way`); [`INVALID`] = empty.
    tags: Vec<u64>,
    /// One dirty bit per frame.
    dirty: Vec<u64>,
    lru: LruTable,
}

impl BankDir {
    fn new(sets: usize, assoc: u32) -> Self {
        let frames = sets * assoc as usize;
        BankDir {
            tags: vec![INVALID; frames],
            dirty: vec![0u64; frames.div_ceil(64)],
            lru: LruTable::new(sets, assoc),
        }
    }

    #[inline]
    fn is_dirty(&self, frame: usize) -> bool {
        self.dirty[frame / 64] >> (frame % 64) & 1 == 1
    }

    #[inline]
    fn set_dirty(&mut self, frame: usize, dirty: bool) {
        let bit = 1u64 << (frame % 64);
        if dirty {
            self.dirty[frame / 64] |= bit;
        } else {
            self.dirty[frame / 64] &= !bit;
        }
    }
}

/// The timing-only SRAM tag cache: direct-mapped over `(bank, set)`
/// keys. A hit means the set's DRAM tags are mirrored on chip, so
/// residency resolves without the tag-probe round trip.
#[derive(Debug, Clone)]
struct TagCache {
    entries: Vec<u64>,
    mask: u64,
}

impl TagCache {
    fn new(n: u32) -> Self {
        assert!(n.is_power_of_two(), "tag cache entries must be a power of two");
        TagCache { entries: vec![INVALID; n as usize], mask: n as u64 - 1 }
    }

    /// True on a hit; a miss installs the key (the DRAM probe the miss
    /// triggers refreshes the mirrored set).
    #[inline]
    fn probe_and_fill(&mut self, bank: u32, set: usize) -> bool {
        let key = ((bank as u64) << 32) | set as u64;
        let idx = (crate::chash::mix64(key) & self.mask) as usize;
        if self.entries[idx] == key {
            true
        } else {
            self.entries[idx] = key;
            false
        }
    }

    fn clear(&mut self) {
        self.entries.iter_mut().for_each(|e| *e = INVALID);
    }
}

/// The L4 DRAM cache. Constructed from an [`L4Config`] and attached to a
/// [`MainMemory`]; all timed entry points take the backing DRAM channel
/// explicitly so the two tiers share one deterministic clock domain.
#[derive(Debug, Clone)]
pub struct L4DramCache {
    cfg: L4Config,
    sets_per_bank: usize,
    map: BankMap,
    /// Directories indexed by bank id; `None` = retired or never built.
    /// Invariant: `banks.len() == map.id_bound()` and `banks[id]` is
    /// `Some` iff `id` is live in the map.
    banks: Vec<Option<BankDir>>,
    tag_cache: TagCache,
    /// L4 channel occupancy (timing-only).
    free_at: Cycle,
    stats: L4Stats,
    sink: TelemetrySink,
}

impl L4DramCache {
    /// Builds the tier with every configured bank empty.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry (zero banks/assoc, `bank_blocks`
    /// not a multiple of `assoc`, non-power-of-two tag cache).
    pub fn new(cfg: L4Config) -> Self {
        assert!(cfg.n_banks > 0 && cfg.assoc > 0, "degenerate L4 geometry");
        assert_eq!(cfg.bank_blocks % cfg.assoc as u64, 0, "bank_blocks must divide by assoc");
        let sets = cfg.sets_per_bank();
        let map = BankMap::new(cfg.n_banks, cfg.vnodes_per_bank, cfg.hash_seed);
        let banks = (0..cfg.n_banks).map(|_| Some(BankDir::new(sets, cfg.assoc))).collect();
        let tag_cache = TagCache::new(cfg.tag_cache_entries);
        L4DramCache {
            sets_per_bank: sets,
            map,
            banks,
            tag_cache,
            free_at: Cycle::ZERO,
            stats: L4Stats::default(),
            sink: TelemetrySink::disabled(),
            cfg,
        }
    }

    /// The configuration this tier was built with.
    pub fn config(&self) -> &L4Config {
        &self.cfg
    }

    /// Event counters since the last [`L4DramCache::reset_stats`].
    pub fn stats(&self) -> L4Stats {
        self.stats
    }

    /// Live bank count.
    pub fn n_banks(&self) -> u32 {
        self.map.n_banks()
    }

    /// Attaches a telemetry sink (resize events and per-access counts).
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.sink = sink;
    }

    /// Zeroes the event counters (resident state is kept).
    pub fn reset_stats(&mut self) {
        self.stats = L4Stats::default();
    }

    /// Warm-up drain barrier: forgets channel occupancy and the SRAM tag
    /// cache — both timing-only, so architectural state cannot change.
    pub fn drain_timing(&mut self) {
        self.free_at = Cycle::ZERO;
        self.tag_cache.clear();
    }

    #[inline]
    fn set_of(&self, key: u64) -> usize {
        (key % self.sets_per_bank as u64) as usize
    }

    /// Resolves residency knowledge for `(bank, set)`: SRAM tag-cache
    /// hit, or a tags-in-DRAM probe (one 8-byte beat of L4 bandwidth).
    fn resolve_tags(&mut self, bank: u32, set: usize, now: Cycle) -> Cycle {
        if self.tag_cache.probe_and_fill(bank, set) {
            self.stats.tag_cache_hits += 1;
            now + self.cfg.tag_sram_latency
        } else {
            self.stats.tag_probes += 1;
            let start = now.max(self.free_at);
            self.free_at = start + self.cfg.cycles_per_8b;
            start + self.cfg.tag_probe_latency
        }
    }

    /// The resident way of `key` in `(bank, set)`, if any.
    fn probe_way(&self, bank: u32, set: usize, key: u64) -> Option<u32> {
        let dir = self.banks[bank as usize].as_ref().expect("live bank");
        let assoc = self.cfg.assoc as usize;
        let base = set * assoc;
        (0..assoc).find(|&w| dir.tags[base + w] == key).map(|w| w as u32)
    }

    /// A data burst on the L4 channel starting no earlier than `at`.
    fn data_burst(&mut self, at: Cycle, bytes: u64) -> Cycle {
        let start = at.max(self.free_at);
        let burst = self.cfg.cycles_per_8b * bytes.div_ceil(8);
        self.free_at = start + burst;
        start + self.cfg.base_latency + burst
    }

    /// Installs `key` over the set's LRU victim, writing a dirty victim
    /// back to DRAM behind the incoming data. Returns when the install
    /// write completes on the L4 channel.
    fn install(
        &mut self,
        bank: u32,
        set: usize,
        key: u64,
        dirty: bool,
        at: Cycle,
        bytes: u64,
        dram: &mut MainMemory,
    ) -> Cycle {
        let assoc = self.cfg.assoc;
        let dir = self.banks[bank as usize].as_mut().expect("live bank");
        let way = dir.lru.victim(set);
        let frame = set * assoc as usize + way as usize;
        let victim_dirty = dir.tags[frame] != INVALID && dir.is_dirty(frame);
        dir.tags[frame] = key;
        dir.set_dirty(frame, dirty);
        dir.lru.touch(set, way);
        if victim_dirty {
            self.stats.writebacks += 1;
            let _ = dram.channel_transfer(bytes, at);
        }
        let start = at.max(self.free_at);
        let burst = self.cfg.cycles_per_8b * bytes.div_ceil(8);
        self.free_at = start + burst;
        start + self.cfg.base_latency + burst
    }

    /// A block fill requested by the organization's miss path. Returns
    /// when the data reaches the requester (cut-through on an L4 miss:
    /// the install write completes behind the returned cycle).
    pub fn fill(&mut self, block: BlockAddr, bytes: u64, now: Cycle, dram: &mut MainMemory) -> Cycle {
        self.stats.accesses += 1;
        let key = block.index();
        let bank = self.map.lookup(key);
        let set = self.set_of(key);
        let tag_done = self.resolve_tags(bank, set, now);
        let done = if let Some(way) = self.probe_way(bank, set, key) {
            self.stats.hits += 1;
            let dir = self.banks[bank as usize].as_mut().expect("live bank");
            dir.lru.touch(set, way);
            self.data_burst(tag_done, bytes)
        } else {
            self.stats.misses += 1;
            let arrival = dram.channel_transfer(bytes, tag_done);
            let _ = self.install(bank, set, key, false, arrival, bytes, dram);
            self.stats.fills += 1;
            arrival
        };
        if self.sink.enabled() {
            self.sink.count(l4names::ACCESSES, 1);
        }
        done
    }

    /// A dirty-block writeback from the organization. Write-allocates on
    /// a miss (the incoming block is whole, so no DRAM fetch). Returns
    /// when the write retires on the L4 channel.
    pub fn writeback(
        &mut self,
        block: BlockAddr,
        bytes: u64,
        now: Cycle,
        dram: &mut MainMemory,
    ) -> Cycle {
        self.stats.accesses += 1;
        let key = block.index();
        let bank = self.map.lookup(key);
        let set = self.set_of(key);
        let tag_done = self.resolve_tags(bank, set, now);
        let done = if let Some(way) = self.probe_way(bank, set, key) {
            self.stats.hits += 1;
            let assoc = self.cfg.assoc as usize;
            let dir = self.banks[bank as usize].as_mut().expect("live bank");
            dir.set_dirty(set * assoc + way as usize, true);
            dir.lru.touch(set, way);
            self.data_burst(tag_done, bytes)
        } else {
            self.stats.misses += 1;
            self.stats.dirty_fills += 1;
            self.install(bank, set, key, true, tag_done, bytes, dram)
        };
        if self.sink.enabled() {
            self.sink.count(l4names::ACCESSES, 1);
        }
        done
    }

    /// Warm-up twin of [`L4DramCache::fill`]: identical architectural
    /// transitions (residency, dirty bits, LRU), no timing, counters, or
    /// tag-cache traffic.
    pub fn warm_fill(&mut self, block: BlockAddr) {
        let key = block.index();
        let bank = self.map.lookup(key);
        let set = self.set_of(key);
        match self.probe_way(bank, set, key) {
            Some(way) => {
                let dir = self.banks[bank as usize].as_mut().expect("live bank");
                dir.lru.touch(set, way);
            }
            None => self.warm_install(bank, set, key, false),
        }
    }

    /// Warm-up twin of [`L4DramCache::writeback`].
    pub fn warm_writeback(&mut self, block: BlockAddr) {
        let key = block.index();
        let bank = self.map.lookup(key);
        let set = self.set_of(key);
        match self.probe_way(bank, set, key) {
            Some(way) => {
                let assoc = self.cfg.assoc as usize;
                let dir = self.banks[bank as usize].as_mut().expect("live bank");
                dir.set_dirty(set * assoc + way as usize, true);
                dir.lru.touch(set, way);
            }
            None => self.warm_install(bank, set, key, true),
        }
    }

    /// Architectural slice of [`L4DramCache::install`]: same victim, same
    /// replacement; the dirty victim's writeback is bandwidth only.
    fn warm_install(&mut self, bank: u32, set: usize, key: u64, dirty: bool) {
        let assoc = self.cfg.assoc;
        let dir = self.banks[bank as usize].as_mut().expect("live bank");
        let way = dir.lru.victim(set);
        let frame = set * assoc as usize + way as usize;
        dir.tags[frame] = key;
        dir.set_dirty(frame, dirty);
        dir.lru.touch(set, way);
    }

    /// Applies a live resize to `target` banks (measured phase only).
    /// Retiring banks flush their dirty blocks through the DRAM channel
    /// back-to-back — the bandwidth transient — and free their storage;
    /// new banks start empty. The SRAM tag cache is cleared (bank
    /// ownership changed under it). Returns when the last flush block
    /// retires (`now` if nothing flushed).
    pub fn resize(&mut self, target: u32, now: Cycle, dram: &mut MainMemory) -> Cycle {
        self.stats.resizes += 1;
        let delta = self.map.resize(target);
        let mut done = now;
        let mut flushed = 0u64;
        for &id in &delta.retired {
            let dir = self.banks[id as usize].take().expect("retired bank was live");
            for frame in 0..dir.tags.len() {
                if dir.tags[frame] != INVALID && dir.is_dirty(frame) {
                    flushed += 1;
                    done = dram.channel_transfer(self.cfg.block_bytes, now);
                }
            }
        }
        self.stats.resize_writebacks += flushed;
        for &id in &delta.added {
            if self.banks.len() <= id as usize {
                self.banks.resize_with(id as usize + 1, || None);
            }
            self.banks[id as usize] = Some(BankDir::new(self.sets_per_bank, self.cfg.assoc));
        }
        self.tag_cache.clear();
        if self.sink.enabled() {
            self.sink.count(l4names::RESIZES, 1);
            self.sink.count(l4names::RESIZE_WRITEBACKS, flushed);
            self.sink.counter_track("l4", "n_banks", now.raw(), target as u64);
        }
        done
    }

    /// Whether `block` is resident (in the bank the map names today).
    pub fn resident(&self, block: BlockAddr) -> bool {
        let key = block.index();
        let bank = self.map.lookup(key);
        self.probe_way(bank, self.set_of(key), key).is_some()
    }

    /// Whether `block` is resident and dirty.
    pub fn is_dirty(&self, block: BlockAddr) -> bool {
        let key = block.index();
        let bank = self.map.lookup(key);
        let set = self.set_of(key);
        match self.probe_way(bank, set, key) {
            Some(way) => {
                let dir = self.banks[bank as usize].as_ref().expect("live bank");
                dir.is_dirty(set * self.cfg.assoc as usize + way as usize)
            }
            None => false,
        }
    }

    /// Serializes the architectural state as a framed section: magic,
    /// layout version, bank map, then each bank slot's directory.
    pub fn save_state(&self, e: &mut Encoder) {
        e.put_u64(L4_SNAPSHOT_MAGIC);
        e.put_u32(L4_SNAPSHOT_VERSION);
        self.map.save_state(e);
        e.put_len(self.banks.len());
        for slot in &self.banks {
            match slot {
                None => e.put_u8(0),
                Some(dir) => {
                    e.put_u8(1);
                    e.put_u64_slice(&dir.tags);
                    e.put_u64_slice(&dir.dirty);
                    dir.lru.save_state(e);
                }
            }
        }
    }

    /// Restores state written by [`L4DramCache::save_state`] into a tier
    /// of identical geometry.
    pub fn load_state(&mut self, d: &mut Decoder<'_>) -> Result<(), SnapshotError> {
        if d.u64()? != L4_SNAPSHOT_MAGIC {
            return Err(SnapshotError::Malformed("not an L4 snapshot section"));
        }
        if d.u32()? != L4_SNAPSHOT_VERSION {
            return Err(SnapshotError::Malformed("L4 snapshot version skew"));
        }
        self.map.load_state(d)?;
        let slots = d.len()?;
        if slots != self.map.id_bound() as usize {
            return Err(SnapshotError::Malformed("L4 bank slot count mismatch"));
        }
        let frames = self.sets_per_bank * self.cfg.assoc as usize;
        let mut banks = Vec::with_capacity(slots);
        for id in 0..slots {
            let live = self.map.bank_ids().binary_search(&(id as u32)).is_ok();
            match d.u8()? {
                0 if !live => banks.push(None),
                1 if live => {
                    let tags = d.u64_slice()?;
                    let dirty = d.u64_slice()?;
                    if tags.len() != frames || dirty.len() != frames.div_ceil(64) {
                        return Err(SnapshotError::Malformed("L4 bank geometry mismatch"));
                    }
                    let mut lru = LruTable::new(self.sets_per_bank, self.cfg.assoc);
                    lru.load_state(d)?;
                    banks.push(Some(BankDir { tags, dirty, lru }));
                }
                _ => return Err(SnapshotError::Malformed("L4 bank liveness disagrees with map")),
            }
        }
        self.banks = banks;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    fn small() -> L4Config {
        L4Config {
            n_banks: 4,
            bank_blocks: 64,
            assoc: 4,
            vnodes_per_bank: 16,
            tag_cache_entries: 64,
            ..L4Config::tdram()
        }
    }

    fn tier() -> (L4DramCache, MainMemory) {
        (L4DramCache::new(small()), MainMemory::micro2003())
    }

    #[test]
    fn cold_fill_misses_then_hits_faster_than_dram() {
        let (mut l4, mut dram) = tier();
        let miss = l4.fill(blk(7), 128, Cycle::ZERO, &mut dram);
        // Tag probe (36) then the 194-cycle DRAM fetch.
        assert_eq!(miss, Cycle::new(36 + 194));
        let hit = l4.fill(blk(7), 128, Cycle::new(10_000), &mut dram);
        // Tag probe again (different arrival cleared nothing, but the
        // direct-mapped entry holds this set): SRAM answer + L4 burst.
        assert_eq!(hit, Cycle::new(10_000 + 4 + 60 + 32));
        assert_eq!(l4.stats().hits, 1);
        assert_eq!(l4.stats().misses, 1);
        assert_eq!(l4.stats().tag_cache_hits, 1);
        assert_eq!(l4.stats().tag_probes, 1);
    }

    #[test]
    fn writeback_write_allocates_and_dirties() {
        let (mut l4, mut dram) = tier();
        l4.writeback(blk(9), 128, Cycle::ZERO, &mut dram);
        assert!(l4.resident(blk(9)));
        assert!(l4.is_dirty(blk(9)));
        assert_eq!(l4.stats().dirty_fills, 1);
        assert_eq!(l4.stats().fills, 0, "write-allocate fetches nothing");
    }

    #[test]
    fn dirty_victim_writes_back_to_dram() {
        let (mut l4, mut dram) = tier();
        // 4 banks x 16 sets: find 5 blocks sharing one (bank, set).
        let mut colliders = Vec::new();
        let (b0, s0) = {
            let key = 0u64;
            (l4.map.lookup(key), l4.set_of(key))
        };
        let mut k = 0u64;
        while colliders.len() < 5 {
            if l4.map.lookup(k) == b0 && l4.set_of(k) == s0 {
                colliders.push(k);
            }
            k += 1;
        }
        let mut t = Cycle::ZERO;
        for &c in &colliders {
            t = l4.writeback(blk(c), 128, t, &mut dram) + 1;
        }
        assert_eq!(l4.stats().writebacks, 1, "5th dirty install evicts a dirty victim");
        assert!(!l4.resident(blk(colliders[0])), "LRU victim left");
    }

    #[test]
    fn warm_and_timed_paths_build_identical_state() {
        let (mut timed, mut dram) = tier();
        let mut warm = L4DramCache::new(small());
        let ops: Vec<(u64, bool)> =
            (0..600).map(|i| (i * 37 % 512, i % 3 == 0)).collect();
        let mut t = Cycle::ZERO;
        for &(b, wb) in &ops {
            if wb {
                t = timed.writeback(blk(b), 128, t, &mut dram) + 1;
                warm.warm_writeback(blk(b));
            } else {
                t = timed.fill(blk(b), 128, t, &mut dram) + 1;
                warm.warm_fill(blk(b));
            }
        }
        for id in 0..4usize {
            let (a, b) = (timed.banks[id].as_ref().unwrap(), warm.banks[id].as_ref().unwrap());
            assert_eq!(a.tags, b.tags, "bank {id} tags diverged");
            assert_eq!(a.dirty, b.dirty, "bank {id} dirty bits diverged");
        }
    }

    #[test]
    fn shrink_flushes_dirty_blocks_and_grow_starts_empty() {
        let (mut l4, mut dram) = tier();
        let mut t = Cycle::ZERO;
        for b in 0..256u64 {
            t = l4.writeback(blk(b), 128, t, &mut dram) + 1;
        }
        let resident_before: u64 = (0..256).filter(|&b| l4.resident(blk(b))).count() as u64;
        let busy_before = dram.busy_cycles();
        let done = l4.resize(2, Cycle::new(1_000_000), &mut dram);
        assert!(l4.stats().resize_writebacks > 0, "retired banks held dirty blocks");
        assert!(done > Cycle::new(1_000_000), "flush occupies the DRAM channel");
        assert!(dram.busy_cycles() > busy_before);
        assert_eq!(l4.n_banks(), 2);
        let resident_after: u64 = (0..256).filter(|&b| l4.resident(blk(b))).count() as u64;
        assert!(resident_after < resident_before, "retired banks' blocks miss now");

        let flushed = l4.stats().resize_writebacks;
        l4.resize(6, Cycle::new(2_000_000), &mut dram);
        assert_eq!(l4.stats().resize_writebacks, flushed, "grow flushes nothing");
        assert_eq!(l4.n_banks(), 6);
        assert_eq!(l4.map.bank_ids(), &[0, 1, 4, 5, 6, 7]);
    }

    #[test]
    fn state_roundtrips_through_snapshot_across_a_resize() {
        let (mut l4, mut dram) = tier();
        let mut t = Cycle::ZERO;
        for b in 0..200u64 {
            t = l4.fill(blk(b * 3), 128, t, &mut dram) + 1;
        }
        l4.resize(2, t, &mut dram);
        l4.resize(5, t, &mut dram);
        for b in 0..50u64 {
            t = l4.writeback(blk(b * 7), 128, t, &mut dram) + 1;
        }
        let mut e = Encoder::new();
        l4.save_state(&mut e);
        let bytes = e.into_bytes();
        let mut fresh = L4DramCache::new(small());
        let mut d = Decoder::new(&bytes);
        fresh.load_state(&mut d).unwrap();
        d.finish().unwrap();
        for b in 0..600u64 {
            assert_eq!(fresh.resident(blk(b)), l4.resident(blk(b)), "block {b}");
            assert_eq!(fresh.is_dirty(blk(b)), l4.is_dirty(blk(b)), "block {b} dirty");
        }
        assert_eq!(fresh.n_banks(), 5);
    }

    #[test]
    fn snapshot_rejects_version_skew_and_wrong_magic() {
        let (l4, _) = tier();
        let mut e = Encoder::new();
        l4.save_state(&mut e);
        let mut bytes = e.into_bytes();
        // Version field sits right after the 8-byte magic.
        bytes[8] ^= 1;
        let mut fresh = L4DramCache::new(small());
        let mut d = Decoder::new(&bytes);
        assert_eq!(
            fresh.load_state(&mut d),
            Err(SnapshotError::Malformed("L4 snapshot version skew"))
        );
        let mut bytes2 = {
            let mut e = Encoder::new();
            l4.save_state(&mut e);
            e.into_bytes()
        };
        bytes2[0] ^= 0xff;
        let mut d = Decoder::new(&bytes2);
        assert_eq!(
            fresh.load_state(&mut d),
            Err(SnapshotError::Malformed("not an L4 snapshot section"))
        );
    }

    #[test]
    fn drain_clears_timing_but_not_contents() {
        let (mut l4, mut dram) = tier();
        l4.fill(blk(1), 128, Cycle::ZERO, &mut dram);
        let probes = l4.stats().tag_probes;
        l4.drain_timing();
        assert!(l4.resident(blk(1)));
        assert_eq!(l4.free_at, Cycle::ZERO);
        // The tag cache was cleared: the next access probes DRAM again.
        l4.fill(blk(1), 128, Cycle::new(500), &mut dram);
        assert_eq!(l4.stats().tag_probes, probes + 1);
    }
}
