//! Main-memory model.
//!
//! Table 1: memory latency is 130 cycles plus 4 cycles per 8 bytes
//! transferred. For the evaluation's 128-B blocks that is 130 + 64 = 194
//! cycles per block fill. A single channel serializes transfers, so
//! back-to-back misses queue behind one another's burst.

use crate::dramcache::{L4DramCache, L4Stats};
use simbase::snapshot::{Decoder, Encoder, SnapshotError};
use simbase::stats::Counter;
use simbase::{BlockAddr, Cycle, EnergyNj};
use simtel::TelemetrySink;

/// The off-chip memory channel, optionally fronted by an L4 DRAM cache
/// ([`crate::dramcache`]). With no L4 attached, the block entry points
/// ([`MainMemory::fill_block`] / [`MainMemory::writeback_block`]) are
/// exactly [`MainMemory::access`] — a strict passthrough.
#[derive(Debug, Clone)]
pub struct MainMemory {
    base_latency: u64,
    cycles_per_8b: u64,
    channel_free_at: Cycle,
    accesses: Counter,
    busy_cycles: u64,
    sink: TelemetrySink,
    l4: Option<Box<L4DramCache>>,
}

impl MainMemory {
    /// The paper's memory: 130 cycles + 4 cycles per 8 bytes.
    pub fn micro2003() -> Self {
        Self::new(130, 4)
    }

    /// Creates a memory with explicit latency parameters.
    pub fn new(base_latency: u64, cycles_per_8b: u64) -> Self {
        MainMemory {
            base_latency,
            cycles_per_8b,
            channel_free_at: Cycle::ZERO,
            accesses: Counter::new(),
            busy_cycles: 0,
            sink: TelemetrySink::disabled(),
            l4: None,
        }
    }

    /// Attaches a telemetry sink: every access records its round-trip
    /// latency (a histogram sample plus a cycle-stamped span).
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        if let Some(l4) = &mut self.l4 {
            l4.set_telemetry(sink.clone());
        }
        self.sink = sink;
    }

    /// Interposes an L4 DRAM cache between block requests and the
    /// channel.
    pub fn attach_l4(&mut self, l4: L4DramCache) {
        self.l4 = Some(Box::new(l4));
    }

    /// The attached L4 tier, if any.
    pub fn l4(&self) -> Option<&L4DramCache> {
        self.l4.as_deref()
    }

    /// Mutable access to the attached L4 tier, if any.
    pub fn l4_mut(&mut self) -> Option<&mut L4DramCache> {
        self.l4.as_deref_mut()
    }

    /// Event counters of the attached L4 tier, if any.
    pub fn l4_stats(&self) -> Option<L4Stats> {
        self.l4.as_deref().map(L4DramCache::stats)
    }

    /// Latency in cycles to transfer `bytes` once the channel is free.
    pub fn transfer_latency(&self, bytes: u64) -> u64 {
        self.base_latency + self.cycles_per_8b * bytes.div_ceil(8)
    }

    /// Requests a `bytes`-sized transfer at `now`; returns the completion
    /// time, accounting for channel contention. Goes straight to the
    /// channel — the L4, if any, is consulted only by the block entry
    /// points below.
    pub fn access(&mut self, bytes: u64, now: Cycle) -> Cycle {
        self.accesses.inc();
        self.channel_transfer(bytes, now)
    }

    /// A block fill from the organization's miss path. With an L4
    /// attached the tier is consulted first; without one this is exactly
    /// [`MainMemory::access`]. The `accesses` counter counts every
    /// request either way, so organization-level miss statistics are
    /// identical with the L4 on or off — the tier changes only timing
    /// and energy.
    pub fn fill_block(&mut self, block: BlockAddr, bytes: u64, now: Cycle) -> Cycle {
        match self.l4.take() {
            None => self.access(bytes, now),
            Some(mut l4) => {
                self.accesses.inc();
                let done = l4.fill(block, bytes, now, self);
                self.l4 = Some(l4);
                done
            }
        }
    }

    /// A dirty-block writeback from the organization. Same passthrough
    /// and counting contract as [`MainMemory::fill_block`].
    pub fn writeback_block(&mut self, block: BlockAddr, bytes: u64, now: Cycle) -> Cycle {
        match self.l4.take() {
            None => self.access(bytes, now),
            Some(mut l4) => {
                self.accesses.inc();
                let done = l4.writeback(block, bytes, now, self);
                self.l4 = Some(l4);
                done
            }
        }
    }

    /// Warm-up twin of [`MainMemory::fill_block`]: updates L4 resident
    /// state with no timing or counters. No-op without an L4.
    pub fn warm_fill(&mut self, block: BlockAddr) {
        if let Some(l4) = &mut self.l4 {
            l4.warm_fill(block);
        }
    }

    /// Warm-up twin of [`MainMemory::writeback_block`].
    pub fn warm_writeback(&mut self, block: BlockAddr) {
        if let Some(l4) = &mut self.l4 {
            l4.warm_writeback(block);
        }
    }

    /// Resizes the attached L4 to `target` banks (see
    /// [`L4DramCache::resize`]). Returns when the retirement flush
    /// clears the channel, or `now` with no L4 attached.
    pub fn resize_l4(&mut self, target: u32, now: Cycle) -> Cycle {
        match self.l4.take() {
            None => now,
            Some(mut l4) => {
                let done = l4.resize(target, now, self);
                self.l4 = Some(l4);
                done
            }
        }
    }

    /// Serializes the L4's architectural state, writing nothing when no
    /// L4 is attached — L4-off snapshots keep their historical bytes.
    pub fn save_l4_state(&self, e: &mut Encoder) {
        if let Some(l4) = &self.l4 {
            l4.save_state(e);
        }
    }

    /// Restores state written by [`MainMemory::save_l4_state`]. With no
    /// L4 attached this consumes nothing, so an L4-enabled snapshot fed
    /// to an L4-disabled run leaves trailing bytes for the decoder's
    /// `finish` to reject, and the reverse truncates.
    pub fn load_l4_state(&mut self, d: &mut Decoder<'_>) -> Result<(), SnapshotError> {
        match &mut self.l4 {
            None => Ok(()),
            Some(l4) => l4.load_state(d),
        }
    }

    /// The raw channel: a `bytes`-sized transfer at `now`, without
    /// touching the request counter. Shared by [`MainMemory::access`]
    /// and the L4's fetch/writeback/flush paths, so both tiers queue on
    /// one deterministic channel clock.
    pub(crate) fn channel_transfer(&mut self, bytes: u64, now: Cycle) -> Cycle {
        let start = now.max(self.channel_free_at);
        let burst = self.cycles_per_8b * bytes.div_ceil(8);
        let done = start + self.base_latency + burst;
        // The channel is occupied for the burst portion only; the access
        // latency (row activation etc.) overlaps with other requests.
        self.channel_free_at = start + burst;
        self.busy_cycles += burst;
        if self.sink.enabled() {
            let rt = done.saturating_since(now);
            self.sink.observe("dram.round_trip_cycles", rt);
            self.sink.count("dram.accesses", 1);
            self.sink.span("dram", "round_trip", now.raw(), rt);
        }
        done
    }

    /// Total accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses.get()
    }

    /// Zeroes the access and busy counters (channel timing state is kept).
    pub fn reset_counters(&mut self) {
        self.accesses = Counter::new();
        self.busy_cycles = 0;
        if let Some(l4) = &mut self.l4 {
            l4.reset_stats();
        }
    }

    /// Warm-up drain barrier: forgets channel occupancy so the measured
    /// phase starts from an idle channel at cycle zero. The channel holds
    /// no architectural state, so this cannot change cache contents; the
    /// L4's timing-only state (its channel and SRAM tag cache) drains
    /// with it.
    pub fn drain_timing(&mut self) {
        self.channel_free_at = Cycle::ZERO;
        if let Some(l4) = &mut self.l4 {
            l4.drain_timing();
        }
    }

    /// Total cycles the channel spent bursting data.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Energy of one off-chip block transfer (DRAM access estimate; the
    /// paper reports cache energy, memory energy only matters for the
    /// full-processor energy-delay figure).
    pub fn access_energy(&self) -> EnergyNj {
        EnergyNj::new(30.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_block_fill_is_194_cycles() {
        let m = MainMemory::micro2003();
        assert_eq!(m.transfer_latency(128), 194);
        assert_eq!(m.transfer_latency(8), 134);
    }

    #[test]
    fn uncontended_access_completes_at_now_plus_latency() {
        let mut m = MainMemory::micro2003();
        let done = m.access(128, Cycle::new(10));
        assert_eq!(done, Cycle::new(10 + 194));
        assert_eq!(m.accesses(), 1);
    }

    #[test]
    fn back_to_back_bursts_queue() {
        let mut m = MainMemory::micro2003();
        let d1 = m.access(128, Cycle::new(0));
        let d2 = m.access(128, Cycle::new(0));
        assert_eq!(d1, Cycle::new(194));
        // Second access starts its burst after the first burst (64 cycles).
        assert_eq!(d2, Cycle::new(64 + 194));
        assert_eq!(m.busy_cycles(), 128);
    }

    #[test]
    fn idle_channel_does_not_delay_later_access() {
        let mut m = MainMemory::micro2003();
        m.access(128, Cycle::new(0));
        let d = m.access(128, Cycle::new(10_000));
        assert_eq!(d, Cycle::new(10_000 + 194));
    }

    #[test]
    fn partial_words_round_up() {
        let m = MainMemory::micro2003();
        assert_eq!(m.transfer_latency(1), 134);
        assert_eq!(m.transfer_latency(9), 138);
    }

    #[test]
    fn block_entry_points_are_plain_accesses_without_an_l4() {
        let mut a = MainMemory::micro2003();
        let mut b = MainMemory::micro2003();
        for i in 0..20u64 {
            let now = Cycle::new(i * 37);
            let via_block = if i % 3 == 0 {
                a.writeback_block(BlockAddr::from_index(i), 128, now)
            } else {
                a.fill_block(BlockAddr::from_index(i), 128, now)
            };
            assert_eq!(via_block, b.access(128, now));
        }
        assert_eq!(a.accesses(), b.accesses());
        assert_eq!(a.busy_cycles(), b.busy_cycles());
        // Warm twins and snapshot hooks are no-ops with no L4.
        a.warm_fill(BlockAddr::from_index(1));
        a.warm_writeback(BlockAddr::from_index(1));
        let mut e = Encoder::new();
        a.save_l4_state(&mut e);
        assert!(e.into_bytes().is_empty(), "no L4, no snapshot bytes");
    }

    #[test]
    fn l4_counts_every_request_but_filters_dram_traffic() {
        use crate::dramcache::L4Config;
        let mut m = MainMemory::micro2003();
        m.attach_l4(L4DramCache::new(L4Config::tdram()));
        let d1 = m.fill_block(BlockAddr::from_index(5), 128, Cycle::ZERO);
        let d2 = m.fill_block(BlockAddr::from_index(5), 128, Cycle::new(5_000));
        // Both requests count as accesses (org stats are L4-invariant)...
        assert_eq!(m.accesses(), 2);
        // ...but only the miss touched the DRAM channel.
        assert_eq!(m.busy_cycles(), 64);
        assert!(d2.saturating_since(Cycle::new(5_000)) < d1.raw());
        let stats = m.l4_stats().unwrap();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }
}
