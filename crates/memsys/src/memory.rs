//! Main-memory model.
//!
//! Table 1: memory latency is 130 cycles plus 4 cycles per 8 bytes
//! transferred. For the evaluation's 128-B blocks that is 130 + 64 = 194
//! cycles per block fill. A single channel serializes transfers, so
//! back-to-back misses queue behind one another's burst.

use simbase::stats::Counter;
use simbase::{Cycle, EnergyNj};
use simtel::TelemetrySink;

/// The off-chip memory channel.
#[derive(Debug, Clone)]
pub struct MainMemory {
    base_latency: u64,
    cycles_per_8b: u64,
    channel_free_at: Cycle,
    accesses: Counter,
    busy_cycles: u64,
    sink: TelemetrySink,
}

impl MainMemory {
    /// The paper's memory: 130 cycles + 4 cycles per 8 bytes.
    pub fn micro2003() -> Self {
        Self::new(130, 4)
    }

    /// Creates a memory with explicit latency parameters.
    pub fn new(base_latency: u64, cycles_per_8b: u64) -> Self {
        MainMemory {
            base_latency,
            cycles_per_8b,
            channel_free_at: Cycle::ZERO,
            accesses: Counter::new(),
            busy_cycles: 0,
            sink: TelemetrySink::disabled(),
        }
    }

    /// Attaches a telemetry sink: every access records its round-trip
    /// latency (a histogram sample plus a cycle-stamped span).
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.sink = sink;
    }

    /// Latency in cycles to transfer `bytes` once the channel is free.
    pub fn transfer_latency(&self, bytes: u64) -> u64 {
        self.base_latency + self.cycles_per_8b * bytes.div_ceil(8)
    }

    /// Requests a `bytes`-sized transfer at `now`; returns the completion
    /// time, accounting for channel contention.
    pub fn access(&mut self, bytes: u64, now: Cycle) -> Cycle {
        self.accesses.inc();
        let start = now.max(self.channel_free_at);
        let burst = self.cycles_per_8b * bytes.div_ceil(8);
        let done = start + self.base_latency + burst;
        // The channel is occupied for the burst portion only; the access
        // latency (row activation etc.) overlaps with other requests.
        self.channel_free_at = start + burst;
        self.busy_cycles += burst;
        if self.sink.enabled() {
            let rt = done.saturating_since(now);
            self.sink.observe("dram.round_trip_cycles", rt);
            self.sink.count("dram.accesses", 1);
            self.sink.span("dram", "round_trip", now.raw(), rt);
        }
        done
    }

    /// Total accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses.get()
    }

    /// Zeroes the access and busy counters (channel timing state is kept).
    pub fn reset_counters(&mut self) {
        self.accesses = Counter::new();
        self.busy_cycles = 0;
    }

    /// Warm-up drain barrier: forgets channel occupancy so the measured
    /// phase starts from an idle channel at cycle zero. The channel holds
    /// no architectural state, so this cannot change cache contents.
    pub fn drain_timing(&mut self) {
        self.channel_free_at = Cycle::ZERO;
    }

    /// Total cycles the channel spent bursting data.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Energy of one off-chip block transfer (DRAM access estimate; the
    /// paper reports cache energy, memory energy only matters for the
    /// full-processor energy-delay figure).
    pub fn access_energy(&self) -> EnergyNj {
        EnergyNj::new(30.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_block_fill_is_194_cycles() {
        let m = MainMemory::micro2003();
        assert_eq!(m.transfer_latency(128), 194);
        assert_eq!(m.transfer_latency(8), 134);
    }

    #[test]
    fn uncontended_access_completes_at_now_plus_latency() {
        let mut m = MainMemory::micro2003();
        let done = m.access(128, Cycle::new(10));
        assert_eq!(done, Cycle::new(10 + 194));
        assert_eq!(m.accesses(), 1);
    }

    #[test]
    fn back_to_back_bursts_queue() {
        let mut m = MainMemory::micro2003();
        let d1 = m.access(128, Cycle::new(0));
        let d2 = m.access(128, Cycle::new(0));
        assert_eq!(d1, Cycle::new(194));
        // Second access starts its burst after the first burst (64 cycles).
        assert_eq!(d2, Cycle::new(64 + 194));
        assert_eq!(m.busy_cycles(), 128);
    }

    #[test]
    fn idle_channel_does_not_delay_later_access() {
        let mut m = MainMemory::micro2003();
        m.access(128, Cycle::new(0));
        let d = m.access(128, Cycle::new(10_000));
        assert_eq!(d, Cycle::new(10_000 + 194));
    }

    #[test]
    fn partial_words_round_up() {
        let m = MainMemory::micro2003();
        assert_eq!(m.transfer_latency(1), 134);
        assert_eq!(m.transfer_latency(9), 138);
    }
}
