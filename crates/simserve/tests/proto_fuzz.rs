//! Protocol fuzzing: the parser (and the live server) must answer every
//! byte sequence a client can send with a structured error or a valid
//! response — never a panic, never a hang, never a desynchronized
//! connection. The unit tests in `simserve::proto` pin the specific
//! error codes; these properties cover the input space between them.

use simbase::json::Json;
use simkit::prop::{any_u8, checker, range_u64, select, vec_of, Checker};
use simserve::proto::{self, ErrCode, PROTO_VERSION};
use simserve::{ScaleName, ServeConfig, Server, Service, SweepReq};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use workloads::profiles::by_name;

fn fprop(name: &str) -> Checker {
    checker(name).cases(256).corpus(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/proto-regressions.txt"
    ))
}

/// 1. Arbitrary bytes never panic the parser, and every rejection is a
/// structured failure with a stable code.
#[test]
fn arbitrary_bytes_never_panic_the_parser() {
    let gen = vec_of(any_u8(), 0, 512);
    fprop("arbitrary_bytes_never_panic_the_parser").check(&gen, |bytes| {
        let line = String::from_utf8_lossy(bytes);
        if let Err((_, fail)) = proto::parse_request(&line) {
            assert!(!fail.code.as_str().is_empty());
        }
    });
}

/// 2. Any strict prefix of a valid frame is rejected (truncated JSON can
/// never parse as a complete request), and the full frame still parses.
#[test]
fn truncated_frames_are_rejected() {
    let frames = vec![
        r#"{"v":1,"id":12,"op":"sweep","exp":"fig4","scale":"full","tsv":true,"watch":true}"#,
        r#"{"v":1,"id":3,"op":"status","digest":"00112233445566778899aabbccddeeff"}"#,
        r#"{"v":1,"id":9,"op":"hello"}"#,
    ];
    let gen = (select(frames), range_u64(0, 1 << 32));
    fprop("truncated_frames_are_rejected").check(&gen, |(frame, cut_seed)| {
        // Truncate on a char boundary strictly inside the frame.
        let cut = 1 + (cut_seed % (frame.len() as u64 - 1)) as usize;
        let (_, fail) =
            proto::parse_request(&frame[..cut]).expect_err("truncated frame parsed");
        assert_eq!(fail.code, ErrCode::BadJson, "cut at {cut}: {}", &frame[..cut]);
        proto::parse_request(frame).expect("the full frame must still parse");
    });
}

/// 3. Version skew in an otherwise valid frame is always `bad-version`
/// and always echoes the request id, for any id and any wrong version.
#[test]
fn version_skew_is_always_structured() {
    let gen = (range_u64(0, u64::MAX), range_u64(0, u64::MAX));
    fprop("version_skew_is_always_structured").check(&gen, |(id, v)| {
        if *v == PROTO_VERSION {
            return;
        }
        let frame = format!(r#"{{"v":{v},"id":{id},"op":"ping"}}"#);
        let (got_id, fail) = proto::parse_request(&frame).expect_err("skew must fail");
        assert_eq!(fail.code, ErrCode::BadVersion);
        assert_eq!(got_id, *id, "the request id must be echoed");
    });
}

/// 4. Type confusion in any field of a sweep request is rejected with a
/// structured error, never accepted with a silently-wrong value.
#[test]
fn type_confused_fields_are_rejected() {
    let bad_values = vec!["7", "true", "null", "[1]", "{}", "1.5"];
    let fields = vec!["exp", "scale", "tsv", "watch"];
    let gen = (select(fields), select(bad_values));
    fprop("type_confused_fields_are_rejected").check(&gen, |(field, value)| {
        // Booleans are valid for tsv/watch; skip the combinations that
        // are actually well-typed.
        if (*field == "tsv" || *field == "watch") && *value == "true" {
            return;
        }
        let frame = format!(r#"{{"v":1,"id":1,"op":"sweep","{field}":{value}}}"#);
        let (id, fail) = proto::parse_request(&frame).expect_err("must reject");
        assert_eq!(id, 1);
        assert_eq!(fail.code, ErrCode::BadRequest, "{frame}");
    });
}

/// 5. Live-socket fuzz: a connection fed random garbage lines answers
/// each with exactly one error frame and stays usable — a valid ping
/// afterwards still gets its pong, and the server drains cleanly.
#[test]
fn live_server_survives_garbage_and_resyncs() {
    let service = Service::new(ServeConfig {
        threads: 1,
        apps: vec![by_name("galgel").expect("in roster")],
        quiet: true,
        ..ServeConfig::default()
    })
    .expect("service");
    let server = Server::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let stopper = server.stopper();
    let handle = std::thread::spawn(move || server.run());

    let gen = vec_of(vec_of(any_u8(), 0, 200), 1, 8);
    checker("live_server_survives_garbage_and_resyncs").cases(16).check(&gen, |lines| {
        let stream = TcpStream::connect(&addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        for bytes in lines {
            // Strip newlines so each write is exactly one frame; a blank
            // line is a keep-alive the server ignores.
            let mut line: Vec<u8> =
                bytes.iter().copied().filter(|&b| b != b'\n' && b != b'\r').collect();
            let expect_reply = !line.is_empty();
            line.push(b'\n');
            writer.write_all(&line).expect("write");
            if expect_reply {
                let mut reply = String::new();
                reader.read_line(&mut reply).expect("read");
                let v = simbase::json::parse(reply.trim_end())
                    .expect("every reply is valid JSON");
                assert!(v.field("ok").and_then(Json::as_bool).is_some(), "{reply}");
            }
        }
        // The connection resyncs: a valid ping still answers.
        writer.write_all(b"{\"v\":1,\"id\":77,\"op\":\"ping\"}\n").expect("write");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read");
        assert!(reply.contains("\"ok\":true") && reply.contains("\"id\":77"), "{reply}");
    });

    stopper.stop();
    handle.join().expect("no panic").expect("clean drain");
    drop(service);
}

/// 6. The client-side frame builder and the parser agree for every
/// representable sweep request (round-trip property).
#[test]
fn builder_parser_round_trip() {
    let exps = vec!["all", "table2", "fig4", "fig9", "orgs"];
    let gen = (
        select(exps),
        select(vec![ScaleName::Quick, ScaleName::Full]),
        select(vec![false, true]),
        select(vec![false, true]),
        range_u64(0, u64::MAX),
    );
    fprop("builder_parser_round_trip").check(&gen, |(exp, scale, tsv, watch, id)| {
        let req = SweepReq {
            exp: exp.to_string(),
            scale: *scale,
            tsv: *tsv,
            cores: u64::from(*id % 9 == 0) * 4,
            watch: *watch,
            l4: *id % 3 == 0,
            sample: *id % 5 == 0,
            intervals: *id % 64 + 1,
        };
        let frame = proto::request_frame(
            *id,
            "sweep",
            vec![
                ("exp", Json::Str(req.exp.clone())),
                ("scale", Json::Str(req.scale.as_str().into())),
                ("tsv", Json::Bool(req.tsv)),
                ("cores", Json::U64(req.cores)),
                ("watch", Json::Bool(req.watch)),
                ("l4", Json::Bool(req.l4)),
                ("sample", Json::Bool(req.sample)),
                ("intervals", Json::U64(req.intervals)),
            ],
        );
        let (got_id, got) = proto::parse_request(&frame).expect("round trip");
        assert_eq!(got_id, *id);
        assert_eq!(got, proto::Request::Sweep(req));
    });
}
