//! End-to-end daemon tests over real sockets: protocol round trips,
//! cross-client coalescing, progress streaming, error resync, and the
//! drain contract (every admitted request answered, then a clean exit).

use simbase::json::Json;
use simserve::{
    Client, ClientError, ScaleName, ServeConfig, Server, Service, Stopper, SweepReq,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use workloads::profiles::by_name;

fn tiny_config() -> ServeConfig {
    ServeConfig {
        threads: 2,
        apps: vec![by_name("galgel").expect("in roster"), by_name("wupwise").expect("in roster")],
        quick: experiments::Scale { warmup: 1_000, measure: 2_000 },
        full: experiments::Scale { warmup: 2_000, measure: 4_000 },
        quiet: true,
        ..ServeConfig::default()
    }
}

struct Daemon {
    addr: String,
    stopper: Stopper,
    service: Arc<Service>,
    handle: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl Daemon {
    fn start(cfg: ServeConfig) -> Daemon {
        let service = Service::new(cfg).expect("service");
        let server = Server::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        let addr = server.local_addr().expect("addr").to_string();
        let stopper = server.stopper();
        let handle = std::thread::spawn(move || server.run());
        Daemon { addr, stopper, service, handle: Some(handle) }
    }

    fn join(mut self) {
        self.stopper.stop();
        self.handle
            .take()
            .expect("not yet joined")
            .join()
            .expect("server thread panicked")
            .expect("server run failed");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            self.stopper.stop();
            let _ = h.join();
        }
    }
}

fn table_req() -> SweepReq {
    SweepReq {
        exp: "table2".into(),
        scale: ScaleName::Quick,
        tsv: false,
        cores: 0,
        watch: false,
        l4: false,
        sample: false,
        intervals: 1,
    }
}

#[test]
fn hello_ping_and_stats_round_trip() {
    let daemon = Daemon::start(tiny_config());
    let mut client = Client::connect(&daemon.addr).expect("connect");
    client.ping().expect("ping");
    let (server_id, proto) = client.hello().expect("hello");
    assert_eq!(server_id, simserve::proto::SERVER_ID);
    assert_eq!(proto, simserve::PROTO_VERSION);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.field("requests").and_then(Json::as_u64), Some(0));
    assert_eq!(stats.field("draining").and_then(Json::as_bool), Some(false));
    daemon.join();
}

#[test]
fn served_report_matches_the_in_process_renderer() {
    let cfg = tiny_config();
    let expected = {
        let sweep = experiments::exps::Sweep::with_apps(cfg.quick, cfg.apps.clone())
            .with_threads(2);
        experiments::repro::render_selection(&["table2"], &sweep, false)
    };
    let daemon = Daemon::start(cfg);
    let mut client = Client::connect(&daemon.addr).expect("connect");
    let out = client.sweep(&table_req()).expect("sweep");
    assert!(out.fresh);
    assert_eq!(out.report, expected, "served report must be byte-identical");

    // Same request again: coalesced onto the stored rendering.
    let again = client.sweep(&table_req()).expect("second sweep");
    assert!(!again.fresh);
    assert_eq!(again.digest, out.digest);
    assert_eq!(again.report, expected);
    assert_eq!(daemon.service.reports_computed(), 1);
    assert_eq!(daemon.service.reports_coalesced(), 1);
    daemon.join();
}

#[test]
fn submit_status_report_lifecycle() {
    let daemon = Daemon::start(tiny_config());
    let mut client = Client::connect(&daemon.addr).expect("connect");
    assert_eq!(client.status(&"0".repeat(32)).expect("status"), "unknown");
    let (digest, _state) = client.submit(&table_req()).expect("submit");
    // Poll until the async worker finishes.
    let mut state = client.status(&digest).expect("status");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while state != "done" {
        assert!(std::time::Instant::now() < deadline, "submit never completed");
        std::thread::sleep(std::time::Duration::from_millis(10));
        state = client.status(&digest).expect("status");
    }
    let report = client.report(&digest).expect("report");
    assert!(report.contains("Table 2"));
    daemon.join();
}

#[test]
fn watch_streams_progress_events() {
    let daemon = Daemon::start(tiny_config());
    let mut client = Client::connect(&daemon.addr).expect("connect");
    let req =
        SweepReq { exp: "fig4".into(), watch: true, ..table_req() };
    let mut events = Vec::new();
    let out = client
        .sweep_watch(&req, |e| {
            events.push((
                e.field("label").and_then(Json::as_str).unwrap_or("").to_string(),
                e.field("kind").and_then(Json::as_str).unwrap_or("").to_string(),
            ));
        })
        .expect("sweep");
    assert!(out.fresh);
    // fig4 needs sa4+nf4 over two apps: four jobs, each at least
    // queued/started/finished.
    assert!(events.len() >= 12, "expected a full event stream, got {events:?}");
    assert!(events.iter().any(|(label, kind)| label == "nf4/galgel" && kind == "finished"));
    daemon.join();
}

#[test]
fn structured_errors_and_resync() {
    let daemon = Daemon::start(tiny_config());
    let mut client = Client::connect(&daemon.addr).expect("connect");

    let err = client
        .sweep(&SweepReq { exp: "fig99".into(), ..table_req() })
        .expect_err("unknown experiment");
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, "bad-request"),
        other => panic!("expected server error, got {other}"),
    }
    let err = client.report(&"ab".repeat(16)).expect_err("unknown digest");
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, "not-found"),
        other => panic!("expected server error, got {other}"),
    }
    // The connection survives structured errors.
    client.ping().expect("ping after errors");
    daemon.join();
}

#[test]
fn raw_garbage_gets_error_frames_and_the_connection_survives() {
    let daemon = Daemon::start(tiny_config());
    let stream = TcpStream::connect(&daemon.addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();

    // Malformed JSON → bad-json.
    writer.write_all(b"this is not json\n").expect("write");
    line.clear();
    reader.read_line(&mut line).expect("read");
    assert!(line.contains("\"ok\":false") && line.contains("bad-json"), "{line}");

    // Version skew → bad-version, echoing the request id.
    writer.write_all(b"{\"v\":9,\"id\":42,\"op\":\"ping\"}\n").expect("write");
    line.clear();
    reader.read_line(&mut line).expect("read");
    assert!(line.contains("\"id\":42") && line.contains("bad-version"), "{line}");

    // Oversized frame → oversized-frame, then the stream resyncs.
    let huge = format!("{{\"pad\":\"{}\"}}\n", "x".repeat(simserve::MAX_FRAME * 2));
    writer.write_all(huge.as_bytes()).expect("write");
    line.clear();
    reader.read_line(&mut line).expect("read");
    assert!(line.contains("oversized-frame"), "{line}");

    // A valid ping still works on the same connection.
    writer.write_all(b"{\"v\":1,\"id\":7,\"op\":\"ping\"}\n").expect("write");
    line.clear();
    reader.read_line(&mut line).expect("read");
    assert!(line.contains("\"ok\":true") && line.contains("\"id\":7"), "{line}");
    daemon.join();
}

#[test]
fn drain_finishes_inflight_then_exits_cleanly() {
    let mut daemon = Daemon::start(tiny_config());
    let mut client = Client::connect(&daemon.addr).expect("connect");
    let out = client.sweep(&table_req()).expect("sweep");
    client.drain().expect("drain acknowledged");

    // After the drain ack, already-finished work is still fetchable on
    // this connection until the server closes it, but new sweeps on a
    // fresh connection are refused (connection or request level).
    let refused = match Client::connect(&daemon.addr) {
        Err(_) => true, // listener already refusing
        Ok(mut c) => c.sweep(&table_req()).is_err(),
    };
    assert!(refused, "new work must be refused during drain");

    // run() returns Ok(()) — the exit-code-0 contract.
    let handle = daemon.handle.take().expect("running");
    handle.join().expect("no panic").expect("clean exit");
    assert!(!out.report.is_empty());
}
