//! The simserve wire protocol: versioned JSON-lines frames.
//!
//! One frame is one JSON object on one LF-terminated line, at most
//! [`MAX_FRAME`] bytes including the newline. Requests carry a protocol
//! version `v`, a client-chosen correlation id `id` (echoed verbatim on
//! every response to that request), and an operation `op`; responses are
//! `"ok":true` frames or structured `"ok":false` errors with a stable
//! machine-readable [`ErrCode`]. The full frame and field reference
//! lives in DESIGN.md §13.
//!
//! Everything in this module is pure — parsing and rendering only, no
//! sockets — so the fuzz suite (`tests/proto_fuzz.rs`) can hammer it
//! directly: malformed JSON, truncated frames, version skew, and
//! type-confused fields must all come back as [`Fail`] values, never a
//! panic.

use simbase::json::{self, Json};

/// Protocol version spoken by this build. Requests with any other `v`
/// are rejected with [`ErrCode::BadVersion`] before their op is looked
/// at, so a version-skewed client gets a structured error it can parse,
/// not a confusing op-level failure.
pub const PROTO_VERSION: u64 = 1;

/// Maximum frame size in bytes (including the terminating newline).
/// Larger frames are rejected with [`ErrCode::OversizedFrame`]; the
/// server discards input up to the next newline and keeps the
/// connection usable.
pub const MAX_FRAME: usize = 64 * 1024;

/// Server identification string sent in `hello` responses.
pub const SERVER_ID: &str = "simserve/0.1.0";

/// Machine-readable error codes (the `code` field of error frames).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// The frame is not valid JSON, or not a JSON object.
    BadJson,
    /// The `v` field is missing, mistyped, or not [`PROTO_VERSION`].
    BadVersion,
    /// A field is missing, mistyped, or out of range for its op.
    BadRequest,
    /// The `op` field names no known operation.
    UnknownOp,
    /// The frame exceeded [`MAX_FRAME`] bytes.
    OversizedFrame,
    /// The server is draining and accepts no new sweep work.
    Draining,
    /// The referenced digest is unknown to the server.
    NotFound,
    /// The referenced digest is still computing.
    Pending,
    /// The async submit queue is full; retry later or use blocking
    /// `sweep`.
    Overloaded,
}

impl ErrCode {
    /// The stable wire spelling of this code.
    pub const fn as_str(self) -> &'static str {
        match self {
            ErrCode::BadJson => "bad-json",
            ErrCode::BadVersion => "bad-version",
            ErrCode::BadRequest => "bad-request",
            ErrCode::UnknownOp => "unknown-op",
            ErrCode::OversizedFrame => "oversized-frame",
            ErrCode::Draining => "draining",
            ErrCode::NotFound => "not-found",
            ErrCode::Pending => "pending",
            ErrCode::Overloaded => "overloaded",
        }
    }
}

/// A structured failure: the error code plus a human-readable message.
/// Rendered on the wire by [`error_frame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fail {
    /// Machine-readable code.
    pub code: ErrCode,
    /// Human-readable detail (never needed to dispatch on).
    pub msg: String,
}

impl Fail {
    /// Shorthand constructor.
    pub fn new(code: ErrCode, msg: impl Into<String>) -> Fail {
        Fail { code, msg: msg.into() }
    }
}

/// Which reproduction scale a sweep request runs at. The daemon maps
/// each name to a concrete `experiments::Scale` from its configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleName {
    /// The reduced test scale (`Scale::quick` by default).
    Quick,
    /// The full reproduction scale (`Scale::full` by default).
    Full,
}

impl ScaleName {
    /// The wire spelling.
    pub const fn as_str(self) -> &'static str {
        match self {
            ScaleName::Quick => "quick",
            ScaleName::Full => "full",
        }
    }
}

/// Parameters of a sweep request (shared by the blocking `sweep` op and
/// the asynchronous `submit` op).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepReq {
    /// Experiment selector: `"all"` or one experiment id.
    pub exp: String,
    /// Scale to run at.
    pub scale: ScaleName,
    /// Render TSV where an experiment has a TSV form.
    pub tsv: bool,
    /// Core-count restriction for the `cmp` experiment: `0` means the
    /// server's default sweep (2/4/8 cores), `1..=8` restricts `cmp` to
    /// that single core count. Other experiments ignore it, but it is
    /// always part of the report identity.
    pub cores: u64,
    /// Stream progress events while the sweep computes (only honored by
    /// the blocking `sweep` op).
    pub watch: bool,
    /// Attach the L4 DRAM-cache tier to every run (the `repro --l4`
    /// flag). Part of the report identity: an L4 report never aliases
    /// the plain one.
    pub l4: bool,
    /// Run every application sweep in sampled mode (the `repro --sample`
    /// flag): periodic detailed windows with functional fast-forward
    /// between them. Part of the report identity — a sampled estimate
    /// never aliases a full-detail report.
    pub sample: bool,
    /// Interval-parallel split factor for sampled runs (the `repro
    /// --intervals` flag): `1..=64`, defaulting to 1 (a single serial
    /// interval). Always part of the report identity, though it only
    /// changes how a sampled run is scheduled, never its numbers.
    pub intervals: u64,
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Server identification and capabilities.
    Hello,
    /// Blocking sweep: coalesced, computed (or joined) and answered with
    /// the full report.
    Sweep(SweepReq),
    /// Asynchronous sweep: enqueue and return the digest immediately.
    Submit(SweepReq),
    /// Non-blocking state probe for a submitted digest.
    Status {
        /// The 32-hex-digit report digest.
        digest: String,
    },
    /// Fetch the finished report for a digest.
    Report {
        /// The 32-hex-digit report digest.
        digest: String,
    },
    /// Server counters.
    Stats,
    /// Graceful drain: finish in-flight work, reject new sweeps, exit 0.
    Drain,
    /// Drain, but abandon queued (not yet started) async submissions.
    Shutdown,
}

/// Parses one request frame. On success returns the correlation id and
/// the request; on failure, the best-effort correlation id (0 when the
/// frame was too broken to recover one) and the structured failure to
/// send back.
pub fn parse_request(line: &str) -> Result<(u64, Request), (u64, Fail)> {
    if line.len() > MAX_FRAME {
        return Err((0, Fail::new(ErrCode::OversizedFrame, format!("frame exceeds {MAX_FRAME} bytes"))));
    }
    let v = match json::parse(line.trim_end_matches(['\r', '\n'])) {
        Ok(v) => v,
        Err(e) => return Err((0, Fail::new(ErrCode::BadJson, e))),
    };
    if !matches!(v, Json::Obj(_)) {
        return Err((0, Fail::new(ErrCode::BadJson, "frame is not a JSON object")));
    }
    // Recover the correlation id first so every later error can echo it.
    let id = match v.field("id") {
        None => 0,
        Some(f) => match f.as_u64() {
            Some(id) => id,
            None => return Err((0, Fail::new(ErrCode::BadRequest, "\"id\" must be an unsigned integer"))),
        },
    };
    match v.field("v").and_then(Json::as_u64) {
        Some(PROTO_VERSION) => {}
        Some(other) => {
            return Err((
                id,
                Fail::new(
                    ErrCode::BadVersion,
                    format!("protocol version {other} not supported (speak v{PROTO_VERSION})"),
                ),
            ))
        }
        None => {
            return Err((
                id,
                Fail::new(ErrCode::BadVersion, format!("missing or mistyped \"v\" (speak v{PROTO_VERSION})")),
            ))
        }
    }
    let op = match v.field("op").and_then(Json::as_str) {
        Some(op) => op,
        None => return Err((id, Fail::new(ErrCode::BadRequest, "missing or mistyped \"op\""))),
    };
    let req = match op {
        "ping" => Request::Ping,
        "hello" => Request::Hello,
        "sweep" => Request::Sweep(sweep_req(&v).map_err(|f| (id, f))?),
        "submit" => Request::Submit(sweep_req(&v).map_err(|f| (id, f))?),
        "status" => Request::Status { digest: digest_field(&v).map_err(|f| (id, f))? },
        "report" => Request::Report { digest: digest_field(&v).map_err(|f| (id, f))? },
        "stats" => Request::Stats,
        "drain" => Request::Drain,
        "shutdown" => Request::Shutdown,
        other => return Err((id, Fail::new(ErrCode::UnknownOp, format!("unknown op {other:?}")))),
    };
    Ok((id, req))
}

fn sweep_req(v: &Json) -> Result<SweepReq, Fail> {
    let exp = match v.field("exp") {
        None => "all".to_string(),
        Some(Json::Str(s)) => s.clone(),
        Some(_) => return Err(Fail::new(ErrCode::BadRequest, "\"exp\" must be a string")),
    };
    let scale = match v.field("scale") {
        None => ScaleName::Quick,
        Some(Json::Str(s)) if s == "quick" => ScaleName::Quick,
        Some(Json::Str(s)) if s == "full" => ScaleName::Full,
        Some(_) => {
            return Err(Fail::new(ErrCode::BadRequest, "\"scale\" must be \"quick\" or \"full\""))
        }
    };
    let cores = match v.field("cores") {
        None => 0,
        Some(f) => match f.as_u64() {
            Some(n) if n <= 8 => n,
            _ => {
                return Err(Fail::new(
                    ErrCode::BadRequest,
                    "\"cores\" must be an integer between 0 and 8",
                ))
            }
        },
    };
    let intervals = match v.field("intervals") {
        None => 1,
        Some(f) => match f.as_u64() {
            Some(n) if (1..=64).contains(&n) => n,
            _ => {
                return Err(Fail::new(
                    ErrCode::BadRequest,
                    "\"intervals\" must be an integer between 1 and 64",
                ))
            }
        },
    };
    Ok(SweepReq {
        exp,
        scale,
        tsv: bool_field(v, "tsv")?,
        cores,
        watch: bool_field(v, "watch")?,
        l4: bool_field(v, "l4")?,
        sample: bool_field(v, "sample")?,
        intervals,
    })
}

fn bool_field(v: &Json, name: &str) -> Result<bool, Fail> {
    match v.field(name) {
        None => Ok(false),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(Fail::new(ErrCode::BadRequest, format!("{name:?} must be a boolean"))),
    }
}

fn digest_field(v: &Json) -> Result<String, Fail> {
    match v.field("digest") {
        Some(Json::Str(s))
            if s.len() == 32 && s.bytes().all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase()) =>
        {
            Ok(s.clone())
        }
        Some(Json::Str(_)) => {
            Err(Fail::new(ErrCode::BadRequest, "\"digest\" must be 32 lowercase hex digits"))
        }
        _ => Err(Fail::new(ErrCode::BadRequest, "missing or mistyped \"digest\"")),
    }
}

// ---------------------------------------------------------------------------
// Frame builders (requests and responses share the envelope shape)
// ---------------------------------------------------------------------------

/// Builds a request frame (client side): the envelope plus op-specific
/// fields, newline-terminated.
pub fn request_frame(id: u64, op: &str, fields: Vec<(&str, Json)>) -> String {
    let mut pairs = vec![
        ("v", Json::U64(PROTO_VERSION)),
        ("id", Json::U64(id)),
        ("op", Json::Str(op.to_string())),
    ];
    pairs.extend(fields);
    let mut line = Json::obj(pairs).render();
    line.push('\n');
    line
}

/// Builds a success response frame, newline-terminated.
pub fn ok_frame(id: u64, op: &str, fields: Vec<(&str, Json)>) -> String {
    let mut pairs = vec![
        ("v", Json::U64(PROTO_VERSION)),
        ("id", Json::U64(id)),
        ("ok", Json::Bool(true)),
        ("op", Json::Str(op.to_string())),
    ];
    pairs.extend(fields);
    let mut line = Json::obj(pairs).render();
    line.push('\n');
    line
}

/// Builds an error response frame, newline-terminated.
pub fn error_frame(id: u64, fail: &Fail) -> String {
    let mut line = Json::obj(vec![
        ("v", Json::U64(PROTO_VERSION)),
        ("id", Json::U64(id)),
        ("ok", Json::Bool(false)),
        ("code", Json::Str(fail.code.as_str().to_string())),
        ("error", Json::Str(fail.msg.clone())),
    ])
    .render();
    line.push('\n');
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(line: &str) -> (u64, Request) {
        parse_request(line).expect("parses")
    }

    #[test]
    fn minimal_ops_parse() {
        assert_eq!(parse_ok(r#"{"v":1,"id":7,"op":"ping"}"#), (7, Request::Ping));
        assert_eq!(parse_ok(r#"{"v":1,"op":"stats"}"#), (0, Request::Stats));
        assert_eq!(parse_ok(r#"{"v":1,"id":1,"op":"drain"}"#), (1, Request::Drain));
        assert_eq!(parse_ok(r#"{"v":1,"id":1,"op":"shutdown"}"#), (1, Request::Shutdown));
    }

    #[test]
    fn sweep_defaults_and_fields() {
        let (_, req) = parse_ok(r#"{"v":1,"id":3,"op":"sweep"}"#);
        assert_eq!(
            req,
            Request::Sweep(SweepReq {
                exp: "all".into(),
                scale: ScaleName::Quick,
                tsv: false,
                cores: 0,
                watch: false,
                l4: false,
                sample: false,
                intervals: 1
            })
        );
        let (_, req) = parse_ok(
            r#"{"v":1,"id":3,"op":"sweep","exp":"fig9","scale":"full","tsv":true,"cores":4,"watch":true,"l4":true,"sample":true,"intervals":8}"#,
        );
        assert_eq!(
            req,
            Request::Sweep(SweepReq {
                exp: "fig9".into(),
                scale: ScaleName::Full,
                tsv: true,
                cores: 4,
                watch: true,
                l4: true,
                sample: true,
                intervals: 8
            })
        );
        let (_, fail) = parse_request(r#"{"v":1,"id":3,"op":"sweep","l4":"yes"}"#)
            .expect_err("mistyped l4 must fail");
        assert_eq!(fail.code, ErrCode::BadRequest);
    }

    #[test]
    fn cores_field_is_bounded() {
        for n in [0u64, 1, 8] {
            let (_, req) = parse_ok(&format!(r#"{{"v":1,"id":1,"op":"sweep","cores":{n}}}"#));
            assert!(matches!(req, Request::Sweep(s) if s.cores == n));
        }
        for bad in [
            r#"{"v":1,"id":1,"op":"sweep","cores":9}"#,
            r#"{"v":1,"id":1,"op":"sweep","cores":"4"}"#,
            r#"{"v":1,"id":1,"op":"sweep","cores":-1}"#,
        ] {
            let (_, fail) = parse_request(bad).expect_err("must fail");
            assert_eq!(fail.code, ErrCode::BadRequest, "{bad}");
        }
    }

    #[test]
    fn sample_and_intervals_fields_are_validated() {
        let (_, req) = parse_ok(r#"{"v":1,"id":1,"op":"sweep","sample":true}"#);
        assert!(matches!(req, Request::Sweep(s) if s.sample && s.intervals == 1));
        for n in [1u64, 2, 64] {
            let (_, req) = parse_ok(&format!(
                r#"{{"v":1,"id":1,"op":"submit","sample":true,"intervals":{n}}}"#
            ));
            assert!(matches!(req, Request::Submit(s) if s.intervals == n));
        }
        for bad in [
            r#"{"v":1,"id":1,"op":"sweep","intervals":0}"#,
            r#"{"v":1,"id":1,"op":"sweep","intervals":65}"#,
            r#"{"v":1,"id":1,"op":"sweep","intervals":"4"}"#,
            r#"{"v":1,"id":1,"op":"sweep","intervals":-2}"#,
            r#"{"v":1,"id":1,"op":"sweep","sample":"yes"}"#,
        ] {
            let (_, fail) = parse_request(bad).expect_err("must fail");
            assert_eq!(fail.code, ErrCode::BadRequest, "{bad}");
        }
    }

    #[test]
    fn version_skew_is_a_structured_error_with_the_request_id() {
        for bad in [
            r#"{"v":2,"id":9,"op":"ping"}"#,
            r#"{"v":0,"id":9,"op":"ping"}"#,
            r#"{"id":9,"op":"ping"}"#,
            r#"{"v":"1","id":9,"op":"ping"}"#,
        ] {
            let (id, fail) = parse_request(bad).expect_err("version skew must fail");
            assert_eq!(id, 9, "{bad}");
            assert_eq!(fail.code, ErrCode::BadVersion, "{bad}");
        }
    }

    #[test]
    fn malformed_frames_are_bad_json() {
        for bad in ["", "{", "not json", "[1,2]", "42", "\"str\"", "{\"v\":1,"] {
            let (_, fail) = parse_request(bad).expect_err("must fail");
            assert_eq!(fail.code, ErrCode::BadJson, "{bad:?}");
        }
    }

    #[test]
    fn bad_fields_are_bad_request() {
        for bad in [
            r#"{"v":1,"id":"x","op":"ping"}"#,
            r#"{"v":1,"id":1}"#,
            r#"{"v":1,"id":1,"op":7}"#,
            r#"{"v":1,"id":1,"op":"sweep","exp":7}"#,
            r#"{"v":1,"id":1,"op":"sweep","scale":"tiny"}"#,
            r#"{"v":1,"id":1,"op":"sweep","tsv":"yes"}"#,
            r#"{"v":1,"id":1,"op":"status"}"#,
            r#"{"v":1,"id":1,"op":"report","digest":"XYZ"}"#,
            r#"{"v":1,"id":1,"op":"report","digest":"ABCDEF00112233445566778899aabbcc"}"#,
        ] {
            let (_, fail) = parse_request(bad).expect_err("must fail");
            assert_eq!(fail.code, ErrCode::BadRequest, "{bad}");
        }
        let (_, fail) =
            parse_request(r#"{"v":1,"id":1,"op":"frobnicate"}"#).expect_err("must fail");
        assert_eq!(fail.code, ErrCode::UnknownOp);
    }

    #[test]
    fn digest_field_accepts_exact_lowercase_hex() {
        let d = "00112233445566778899aabbccddeeff";
        let (_, req) = parse_ok(&format!(r#"{{"v":1,"id":1,"op":"status","digest":"{d}"}}"#));
        assert_eq!(req, Request::Status { digest: d.into() });
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let huge = format!(r#"{{"v":1,"id":1,"op":"ping","pad":"{}"}}"#, "x".repeat(MAX_FRAME));
        let (_, fail) = parse_request(&huge).expect_err("must fail");
        assert_eq!(fail.code, ErrCode::OversizedFrame);
    }

    #[test]
    fn frames_roundtrip_through_the_builders() {
        let line = request_frame(5, "sweep", vec![("exp", Json::Str("fig4".into()))]);
        assert!(line.ends_with('\n'));
        let (id, req) = parse_ok(&line);
        assert_eq!(id, 5);
        assert!(matches!(req, Request::Sweep(s) if s.exp == "fig4"));

        let ok = ok_frame(5, "pong", vec![]);
        let v = json::parse(ok.trim_end()).expect("valid");
        assert_eq!(v.field("ok"), Some(&Json::Bool(true)));

        let err = error_frame(5, &Fail::new(ErrCode::Draining, "drain in progress"));
        let v = json::parse(err.trim_end()).expect("valid");
        assert_eq!(v.field("ok"), Some(&Json::Bool(false)));
        assert_eq!(v.field("code").and_then(Json::as_str), Some("draining"));
    }
}
