//! simserve — the resident sweep-serving daemon.
//!
//! `repro` answers one invocation and exits; every process pays the
//! full warm-up and sweep cost even when another process just computed
//! the identical report. simserve keeps the expensive state resident:
//! one daemon process owns the run stores, the warm-up checkpoint
//! store, and a digest-keyed report store, and any number of clients
//! talk to it over a versioned JSON-lines TCP protocol (DESIGN.md §13).
//! Identical requests from different clients — or from the same client
//! racing itself — coalesce onto **one** computation (cross-process
//! single-flight), and every client receives the byte-identical report
//! text that `repro` would have printed.
//!
//! The crate splits along the natural seams:
//!
//! - [`proto`] — pure parsing/rendering of the wire protocol; no
//!   sockets, so the fuzz suite can hammer it directly.
//! - [`service`] — the resident state: sweeps, report store,
//!   single-flight counters, drain bookkeeping.
//! - [`server`] — the connection supervisor: accept loop, per-
//!   connection reader/writer threads, bounded queues, graceful drain.
//! - [`client`] — a blocking client used by `repro --connect`, the
//!   `loadgen` load harness, and CI.
//!
//! Everything is hermetic std: no external dependencies, no async
//! runtime — bounded `sync_channel` queues, short read timeouts, and
//! plain threads are enough for the daemon's concurrency shape (tens of
//! connections, not tens of thousands).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;
pub mod service;

pub use client::{Client, ClientError, SweepOutcome};
pub use proto::{ErrCode, Fail, Request, ScaleName, SweepReq, MAX_FRAME, PROTO_VERSION};
pub use server::{Server, Stopper};
pub use service::{ServeConfig, Service, SweepDone};
