//! A blocking client for the simserve protocol.
//!
//! One [`Client`] owns one connection and speaks strictly
//! request/response: each call writes one frame, then reads until the
//! response with the matching correlation id arrives, handing any
//! interleaved `"op":"event"` progress frames to the caller's callback.
//! The `repro --connect` mode, the `loadgen` harness, and the CI
//! end-to-end step are all built on this type, so a protocol change
//! breaks loudly in-tree before it can break a real client.

use crate::proto::{self, SweepReq};
use simbase::json::{self, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write).
    Io(std::io::Error),
    /// The server sent something that is not a valid response frame.
    Protocol(String),
    /// The server answered with a structured error frame.
    Server {
        /// Machine-readable code (an [`crate::proto::ErrCode`] spelling).
        code: String,
        /// Human-readable detail.
        msg: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server { code, msg } => write!(f, "server error [{code}]: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// The result of a blocking sweep call.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Report digest (usable with `status`/`report`).
    pub digest: String,
    /// True when this request performed the rendering server-side.
    pub fresh: bool,
    /// Progress events the server dropped because this client's queue
    /// was full (only ever non-zero for `watch` requests).
    pub events_dropped: u64,
    /// The report text, byte-identical to `repro`'s stdout for the same
    /// selection.
    pub report: String,
}

/// A blocking simserve connection.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a daemon at `addr` (host:port).
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer, next_id: 1 })
    }

    /// One request/response round trip; interleaved event frames go to
    /// `on_event`.
    fn call(
        &mut self,
        op: &str,
        fields: Vec<(&str, Json)>,
        mut on_event: impl FnMut(&Json),
    ) -> Result<Json, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = proto::request_frame(id, op, fields);
        self.writer.write_all(frame.as_bytes())?;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(ClientError::Protocol(
                    "server closed the connection mid-call".into(),
                ));
            }
            let v = json::parse(line.trim_end()).map_err(ClientError::Protocol)?;
            if v.field("op").and_then(Json::as_str) == Some("event") {
                on_event(&v);
                continue;
            }
            match v.field("id").and_then(Json::as_u64) {
                Some(got) if got == id => {}
                got => {
                    return Err(ClientError::Protocol(format!(
                        "correlation mismatch: sent id {id}, got {got:?}"
                    )))
                }
            }
            return match v.field("ok") {
                Some(Json::Bool(true)) => Ok(v),
                Some(Json::Bool(false)) => Err(ClientError::Server {
                    code: v
                        .field("code")
                        .and_then(Json::as_str)
                        .unwrap_or("unknown")
                        .to_string(),
                    msg: v
                        .field("error")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                }),
                _ => Err(ClientError::Protocol("response has no boolean \"ok\"".into())),
            };
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport, protocol, or server failure — as for
    /// every method below.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call("ping", vec![], |_| {}).map(|_| ())
    }

    /// Server identification: `(server id, protocol version)`.
    ///
    /// # Errors
    ///
    /// See [`Client::ping`].
    pub fn hello(&mut self) -> Result<(String, u64), ClientError> {
        let v = self.call("hello", vec![], |_| {})?;
        Ok((
            str_field(&v, "server")?,
            v.field("proto")
                .and_then(Json::as_u64)
                .ok_or_else(|| ClientError::Protocol("hello has no \"proto\"".into()))?,
        ))
    }

    /// Blocking sweep without progress streaming.
    ///
    /// # Errors
    ///
    /// See [`Client::ping`].
    pub fn sweep(&mut self, req: &SweepReq) -> Result<SweepOutcome, ClientError> {
        self.sweep_watch(req, |_| {})
    }

    /// Blocking sweep; progress event frames are handed to `on_event` as
    /// they arrive (only streamed when `req.watch` is set).
    ///
    /// # Errors
    ///
    /// See [`Client::ping`].
    pub fn sweep_watch(
        &mut self,
        req: &SweepReq,
        on_event: impl FnMut(&Json),
    ) -> Result<SweepOutcome, ClientError> {
        let v = self.call("sweep", sweep_fields(req), on_event)?;
        Ok(SweepOutcome {
            digest: str_field(&v, "digest")?,
            fresh: v.field("fresh").and_then(Json::as_bool).unwrap_or(false),
            events_dropped: v.field("events_dropped").and_then(Json::as_u64).unwrap_or(0),
            report: str_field(&v, "report")?,
        })
    }

    /// Asynchronous sweep: `(digest, state)` where state is `"queued"`,
    /// `"running"`, or `"done"`.
    ///
    /// # Errors
    ///
    /// See [`Client::ping`].
    pub fn submit(&mut self, req: &SweepReq) -> Result<(String, String), ClientError> {
        let v = self.call("submit", sweep_fields(req), |_| {})?;
        Ok((str_field(&v, "digest")?, str_field(&v, "state")?))
    }

    /// Non-blocking digest state: `"unknown"`, `"running"`, or `"done"`.
    ///
    /// # Errors
    ///
    /// See [`Client::ping`].
    pub fn status(&mut self, digest: &str) -> Result<String, ClientError> {
        let v = self.call("status", vec![("digest", Json::Str(digest.into()))], |_| {})?;
        str_field(&v, "state")
    }

    /// Fetches a finished report by digest.
    ///
    /// # Errors
    ///
    /// See [`Client::ping`]; notably `Server` with code `pending` while
    /// the digest is still computing.
    pub fn report(&mut self, digest: &str) -> Result<String, ClientError> {
        let v = self.call("report", vec![("digest", Json::Str(digest.into()))], |_| {})?;
        str_field(&v, "report")
    }

    /// Server counters, as the raw response frame.
    ///
    /// # Errors
    ///
    /// See [`Client::ping`].
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.call("stats", vec![], |_| {})
    }

    /// Graceful drain: in-flight work finishes, the server exits 0.
    ///
    /// # Errors
    ///
    /// See [`Client::ping`].
    pub fn drain(&mut self) -> Result<(), ClientError> {
        self.call("drain", vec![], |_| {}).map(|_| ())
    }

    /// Drain, abandoning queued-but-unstarted async submissions.
    ///
    /// # Errors
    ///
    /// See [`Client::ping`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.call("shutdown", vec![], |_| {}).map(|_| ())
    }
}

fn sweep_fields(req: &SweepReq) -> Vec<(&'static str, Json)> {
    vec![
        ("exp", Json::Str(req.exp.clone())),
        ("scale", Json::Str(req.scale.as_str().into())),
        ("tsv", Json::Bool(req.tsv)),
        ("cores", Json::U64(req.cores)),
        ("watch", Json::Bool(req.watch)),
        ("l4", Json::Bool(req.l4)),
        ("sample", Json::Bool(req.sample)),
        ("intervals", Json::U64(req.intervals)),
    ]
}

fn str_field(v: &Json, name: &str) -> Result<String, ClientError> {
    v.field(name)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ClientError::Protocol(format!("response has no string {name:?}")))
}
