//! The TCP connection supervisor.
//!
//! One [`Server`] owns a listener and a registry of live connections.
//! Each accepted connection gets two threads: a **reader** that parses
//! frames, dispatches ops against the shared [`Service`], and decides
//! what to send; and a **writer** that drains a bounded response queue
//! onto the socket. Splitting the two means a blocking sweep on the
//! reader never stops progress events from flowing out, and a client
//! that stops reading applies backpressure to its own queue instead of
//! wedging a worker.
//!
//! Everything polls: the accept loop and the per-connection reads run
//! with short timeouts and check stop/close flags between attempts, so a
//! drain never needs to interrupt a blocked syscall. The drain sequence
//! is strictly ordered — reject new work, finish admitted work, flush
//! every queued response, then close sockets — which is what lets the
//! load test assert "no lost or duplicated responses" over a shutdown.

use crate::proto::{
    self, ErrCode, Fail, Request, MAX_FRAME, PROTO_VERSION, SERVER_ID,
};
use crate::service::Service;
use experiments::repro::EXPERIMENTS;
use simbase::json::Json;
use simsched::progress::{Event, EventKind, Observer, Outcome};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Poll interval of the accept loop.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// Read timeout between close-flag checks on a connection.
const READ_POLL: Duration = Duration::from_millis(200);
/// How long a final response may wait for queue space before the
/// connection is declared wedged and dropped.
const SEND_DEADLINE: Duration = Duration::from_secs(5);
/// Socket write timeout; a peer that stops draining its receive buffer
/// for this long loses the connection.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

enum WriteCmd {
    Line(String),
    Close,
}

struct Conn {
    id: u64,
    closing: AtomicBool,
    done: AtomicBool,
}

struct ConnHandle {
    conn: Arc<Conn>,
    reader: std::thread::JoinHandle<()>,
    writer: std::thread::JoinHandle<()>,
}

/// A bound, not-yet-running daemon. [`Server::run`] blocks the calling
/// thread until a client's `drain`/`shutdown` completes (or
/// [`Server::stopper`] fires) and returns `Ok(())` on a clean exit —
/// process exit code 0 is the drain contract.
pub struct Server {
    service: Arc<Service>,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    next_conn: u64,
    conns: Vec<ConnHandle>,
}

/// A handle that stops a running [`Server`] from another thread (tests
/// and in-process benches; clients use the `drain` op).
#[derive(Clone)]
pub struct Stopper {
    stop: Arc<AtomicBool>,
}

impl Stopper {
    /// Requests a drain-and-stop, as if a client had sent `drain`.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

impl Server {
    /// Binds the listener. `addr` is host:port; port 0 picks a free port
    /// (report the real one with [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(service: Arc<Service>, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            service,
            listener,
            stop: Arc::new(AtomicBool::new(false)),
            next_conn: 0,
            conns: Vec::new(),
        })
    }

    /// The bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates the OS error if the socket has no local address.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A remote stop handle.
    pub fn stopper(&self) -> Stopper {
        Stopper { stop: Arc::clone(&self.stop) }
    }

    /// Serves until stopped, then drains: finish every admitted request,
    /// flush every queued response, join all threads, write telemetry.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O errors (not per-connection ones, which
    /// only close their connection).
    pub fn run(mut self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let console = self.service.console().clone();
        console.status(&format!(
            "[simserve] listening on {} (proto v{PROTO_VERSION})",
            self.local_addr()?
        ));
        while !self.stop.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    // A connection accepted mid-drain would only ever see
                    // rejections; refuse it outright.
                    if self.service.draining() {
                        drop(stream);
                        continue;
                    }
                    let id = self.next_conn;
                    self.next_conn += 1;
                    console.status(&format!("[simserve] conn {id} from {peer}"));
                    match spawn_conn(Arc::clone(&self.service), Arc::clone(&self.stop), stream, id)
                    {
                        Ok(handle) => self.conns.push(handle),
                        Err(e) => {
                            console.status(&format!("[simserve] conn {id} setup failed: {e}"))
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                    self.reap();
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Drain, in order: no new work (the flag is already up or goes up
        // now), admitted work finishes, queued responses flush, sockets
        // close, stores settle.
        self.service.begin_drain(false);
        console.status("[simserve] draining: waiting for in-flight requests");
        self.service.wait_idle();
        for c in &self.conns {
            c.conn.closing.store(true, Ordering::SeqCst);
        }
        for c in self.conns.drain(..) {
            let _ = c.reader.join();
            let _ = c.writer.join();
        }
        self.service.close();
        console.status("[simserve] drained; exiting");
        Ok(())
    }

    /// Joins connections whose threads have finished.
    fn reap(&mut self) {
        if self.conns.iter().any(|c| c.conn.done.load(Ordering::SeqCst)) {
            for c in std::mem::take(&mut self.conns) {
                if c.conn.done.load(Ordering::SeqCst) {
                    let _ = c.reader.join();
                    let _ = c.writer.join();
                } else {
                    self.conns.push(c);
                }
            }
        }
    }
}

fn spawn_conn(
    service: Arc<Service>,
    stop: Arc<AtomicBool>,
    stream: TcpStream,
    id: u64,
) -> std::io::Result<ConnHandle> {
    stream.set_read_timeout(Some(READ_POLL))?;
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    let write_stream = stream.try_clone()?;
    let conn = Arc::new(Conn {
        id,
        closing: AtomicBool::new(false),
        done: AtomicBool::new(false),
    });
    let (tx, rx) = std::sync::mpsc::sync_channel::<WriteCmd>(
        service.config().write_queue.max(1),
    );
    let writer = {
        let conn = Arc::clone(&conn);
        std::thread::spawn(move || write_loop(write_stream, rx, &conn))
    };
    let reader = {
        let conn = Arc::clone(&conn);
        std::thread::spawn(move || {
            read_loop(&service, &stop, stream, &conn, &tx);
            // Whatever ended the loop (EOF, error, close flag), flush the
            // queue and release the writer. `send` (not `try_send`) so
            // already-queued responses are not lost; the writer always
            // drains to `Close`.
            let _ = tx.send(WriteCmd::Close);
            conn.done.store(true, Ordering::SeqCst);
        })
    };
    Ok(ConnHandle { conn, reader, writer })
}

fn write_loop(mut stream: TcpStream, rx: Receiver<WriteCmd>, conn: &Conn) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            WriteCmd::Line(line) => {
                if stream.write_all(line.as_bytes()).is_err() {
                    // Peer gone or wedged past WRITE_TIMEOUT: stop the
                    // reader too, then keep consuming (and discarding)
                    // until Close so senders never block forever.
                    conn.closing.store(true, Ordering::SeqCst);
                    while let Ok(cmd) = rx.recv() {
                        if matches!(cmd, WriteCmd::Close) {
                            return;
                        }
                    }
                    return;
                }
            }
            WriteCmd::Close => {
                let _ = stream.flush();
                let _ = stream.shutdown(std::net::Shutdown::Both);
                return;
            }
        }
    }
}

/// What one attempt to read a frame produced.
enum Frame {
    /// A complete line (newline stripped).
    Line(String),
    /// A line longer than [`MAX_FRAME`]; the excess was discarded and
    /// the stream is resynchronized at the next line.
    Oversized,
    /// Connection over: EOF, hard error, idle timeout, or close flag.
    Gone,
}

/// Bounded line reader: accumulates at most [`MAX_FRAME`] bytes looking
/// for a newline, discards oversized lines to the next newline, polls
/// the close flag between reads, and enforces the idle timeout.
struct FrameReader<'a> {
    stream: TcpStream,
    conn: &'a Conn,
    buf: Vec<u8>,
    idle_timeout: Duration,
}

impl FrameReader<'_> {
    fn next(&mut self) -> Frame {
        let mut discarding = false;
        let mut last_activity = Instant::now();
        let mut chunk = [0u8; 4096];
        loop {
            // Serve a buffered line first.
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let rest = self.buf.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                if discarding {
                    return Frame::Oversized;
                }
                return match String::from_utf8(line) {
                    // Invalid UTF-8 can't be a valid frame; let the
                    // parser produce the structured bad-json error.
                    Err(_) => Frame::Line("\u{fffd}".into()),
                    Ok(s) => Frame::Line(s),
                };
            }
            if self.buf.len() > MAX_FRAME {
                // Too long with no newline yet: drop what we have and
                // keep discarding until the line ends.
                discarding = true;
                self.buf.clear();
            }
            if self.conn.closing.load(Ordering::SeqCst) {
                return Frame::Gone;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Frame::Gone,
                Ok(n) => {
                    last_activity = Instant::now();
                    if discarding {
                        // Keep only anything after a newline.
                        match chunk[..n].iter().position(|&b| b == b'\n') {
                            Some(pos) => {
                                self.buf.extend_from_slice(&chunk[pos + 1..n]);
                                return Frame::Oversized;
                            }
                            None => continue,
                        }
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
                {
                    if last_activity.elapsed() > self.idle_timeout {
                        return Frame::Gone;
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return Frame::Gone,
            }
        }
    }
}

/// Enqueues a response the connection must not lose: waits up to
/// [`SEND_DEADLINE`] for queue space, then gives up on the connection.
/// Returns false when the connection should close.
fn send_response(tx: &SyncSender<WriteCmd>, conn: &Conn, line: String) -> bool {
    let deadline = Instant::now() + SEND_DEADLINE;
    let mut cmd = WriteCmd::Line(line);
    loop {
        match tx.try_send(cmd) {
            Ok(()) => return true,
            Err(TrySendError::Disconnected(_)) => return false,
            Err(TrySendError::Full(back)) => {
                if conn.closing.load(Ordering::SeqCst) || Instant::now() > deadline {
                    conn.closing.store(true, Ordering::SeqCst);
                    return false;
                }
                cmd = back;
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// A progress observer that streams events into the connection's write
/// queue as best-effort `"op":"event"` frames, dropping (and counting)
/// when the queue is full — a slow watcher loses events, never stalls
/// the sweep workers.
fn event_observer(
    tx: SyncSender<WriteCmd>,
    id: u64,
    dropped: Arc<AtomicU64>,
) -> Observer {
    Arc::new(move |e: &Event| {
        let mut fields = vec![("label", Json::Str(e.label.clone()))];
        match e.kind {
            EventKind::Queued => fields.push(("kind", Json::Str("queued".into()))),
            EventKind::Started => fields.push(("kind", Json::Str("started".into()))),
            EventKind::Finished { outcome, wall_ns } => {
                fields.push(("kind", Json::Str("finished".into())));
                let outcome = match outcome {
                    Outcome::Simulated => "simulated",
                    Outcome::Shared => "shared",
                    Outcome::Resumed => "resumed",
                };
                fields.push(("outcome", Json::Str(outcome.into())));
                fields.push(("wall_ns", Json::U64(wall_ns)));
            }
        }
        let frame = proto::ok_frame(id, "event", fields);
        if tx.try_send(WriteCmd::Line(frame)).is_err() {
            dropped.fetch_add(1, Ordering::Relaxed);
        }
    })
}

fn read_loop(
    service: &Arc<Service>,
    stop: &Arc<AtomicBool>,
    stream: TcpStream,
    conn: &Arc<Conn>,
    tx: &SyncSender<WriteCmd>,
) {
    let console = service.console().clone().with_tag(&format!("[conn {}]", conn.id));
    let mut frames = FrameReader {
        stream,
        conn,
        buf: Vec::new(),
        idle_timeout: service.config().idle_timeout,
    };
    loop {
        let line = match frames.next() {
            Frame::Line(line) => line,
            Frame::Oversized => {
                let fail = Fail::new(
                    ErrCode::OversizedFrame,
                    format!("frame exceeds {MAX_FRAME} bytes"),
                );
                if !send_response(tx, conn, proto::error_frame(0, &fail)) {
                    return;
                }
                continue;
            }
            Frame::Gone => return,
        };
        if line.is_empty() {
            continue; // blank keep-alive lines are fine
        }
        let (id, req) = match proto::parse_request(&line) {
            Ok(ok) => ok,
            Err((id, fail)) => {
                if !send_response(tx, conn, proto::error_frame(id, &fail)) {
                    return;
                }
                continue;
            }
        };
        let response = dispatch(service, stop, tx, &console, id, req);
        if !send_response(tx, conn, response) {
            return;
        }
    }
}

fn dispatch(
    service: &Arc<Service>,
    stop: &Arc<AtomicBool>,
    tx: &SyncSender<WriteCmd>,
    console: &simtel::Console,
    id: u64,
    req: Request,
) -> String {
    match req {
        Request::Ping => proto::ok_frame(id, "pong", vec![]),
        Request::Hello => proto::ok_frame(
            id,
            "hello",
            vec![
                ("server", Json::Str(SERVER_ID.into())),
                ("proto", Json::U64(PROTO_VERSION)),
                ("apps", Json::U64(service.config().apps.len() as u64)),
                (
                    "experiments",
                    Json::Arr(
                        EXPERIMENTS.iter().map(|&(id, _)| Json::Str(id.into())).collect(),
                    ),
                ),
            ],
        ),
        Request::Sweep(sr) => {
            console.status(&format!(
                "[simserve] sweep {} ({}{})",
                sr.exp,
                sr.scale.as_str(),
                if sr.tsv { ", tsv" } else { "" }
            ));
            service.enter_request();
            let dropped = Arc::new(AtomicU64::new(0));
            let token = sr.watch.then(|| {
                service
                    .hub()
                    .subscribe(event_observer(tx.clone(), id, Arc::clone(&dropped)))
            });
            let outcome = service.sweep(&sr);
            if let Some(token) = token {
                service.hub().unsubscribe(token);
            }
            service.note_events_dropped(dropped.load(Ordering::Relaxed));
            service.exit_request();
            match outcome {
                Ok(done) => proto::ok_frame(
                    id,
                    "sweep",
                    vec![
                        ("digest", Json::Str(done.digest.hex())),
                        ("fresh", Json::Bool(done.fresh)),
                        ("events_dropped", Json::U64(dropped.load(Ordering::Relaxed))),
                        ("report", Json::Str((*done.report).clone())),
                    ],
                ),
                Err(fail) => proto::error_frame(id, &fail),
            }
        }
        Request::Submit(sr) => match service.submit(&sr) {
            Ok((digest, state)) => proto::ok_frame(
                id,
                "submit",
                vec![
                    ("digest", Json::Str(digest.hex())),
                    ("state", Json::Str(state.into())),
                ],
            ),
            Err(fail) => proto::error_frame(id, &fail),
        },
        Request::Status { digest } => proto::ok_frame(
            id,
            "status",
            vec![
                ("digest", Json::Str(digest.clone())),
                ("state", Json::Str(service.status_of(&digest).into())),
            ],
        ),
        Request::Report { digest } => match service.report_of(&digest) {
            Ok(report) => proto::ok_frame(
                id,
                "report",
                vec![
                    ("digest", Json::Str(digest)),
                    ("report", Json::Str((*report).clone())),
                ],
            ),
            Err(fail) => proto::error_frame(id, &fail),
        },
        Request::Stats => proto::ok_frame(id, "stats", service.stats_fields()),
        Request::Drain => {
            console.status("[simserve] drain requested");
            service.begin_drain(false);
            stop.store(true, Ordering::SeqCst);
            proto::ok_frame(id, "drain", vec![("draining", Json::Bool(true))])
        }
        Request::Shutdown => {
            console.status("[simserve] shutdown requested");
            service.begin_drain(true);
            stop.store(true, Ordering::SeqCst);
            proto::ok_frame(id, "shutdown", vec![("draining", Json::Bool(true))])
        }
    }
}
