//! The sweep service: process-wide stores, cross-client single-flight,
//! and drain bookkeeping.
//!
//! A [`Service`] owns what used to die with every `repro` process: the
//! run store (one `Sweep` per scale, each with its own single-flight
//! `RunStore` over the simsched pool), the warm-up `CheckpointStore`,
//! and a **report store** keyed by the digest of the whole request
//! (experiment selection + scale + rendering mode). Any number of
//! clients asking for the same report share exactly one rendering — the
//! winner computes, everyone else blocks on the single-flight entry and
//! receives the same `Arc<String>` — and distinct reports still share
//! their underlying runs through the sweeps' stores. The
//! `computed`/`coalesced` counters are the observable proof: a load test
//! can assert that a thousand duplicate requests incremented `computed`
//! exactly once.
//!
//! Drain discipline: once [`Service::begin_drain`] runs, new sweep work
//! is rejected with [`ErrCode::Draining`](crate::proto::ErrCode) while
//! everything already admitted (blocking sweeps *and* queued async
//! submissions) finishes and is answered; [`Service::wait_idle`] blocks
//! until that point. `shutdown` additionally abandons queued-but-
//! unstarted submissions.

use crate::proto::{ErrCode, Fail, ScaleName, SweepReq};
use experiments::checkpoint::CheckpointStore;
use experiments::exps::Sweep;
use experiments::repro::{render_selection, render_selection_cores, resolve_ids};
use experiments::{L4Config, SampleSpec, Scale};
use simbase::digest::{Digest, Hasher128};
use simbase::json::Json;
use simsched::progress::Hub;
use simsched::store::{EntryState, RunStore};
use simtel::{Console, Telemetry};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use workloads::profiles::{BenchProfile, ROSTER};

/// Daemon configuration. [`ServeConfig::default`] serves the paper's
/// full 15-application roster at the canonical quick/full scales; tests
/// shrink `apps` and the scales to keep wall time down.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads per sweep pool.
    pub threads: usize,
    /// Application roster every sweep runs over.
    pub apps: Vec<BenchProfile>,
    /// The scale served for `"scale":"quick"` requests.
    pub quick: Scale,
    /// The scale served for `"scale":"full"` requests.
    pub full: Scale,
    /// Run-artifact directory (resume + append), as `repro --artifacts`.
    pub artifacts: Option<PathBuf>,
    /// Warm-up checkpoint directory, as `repro --checkpoints`.
    pub checkpoints: Option<PathBuf>,
    /// Byte budget for the checkpoint directory, as `repro
    /// --simchk-prune`: beyond it, least-recently-used `.simchk` files
    /// are evicted after each fresh publish. `None` keeps everything.
    pub simchk_budget: Option<u64>,
    /// Telemetry export directory; written when the server stops.
    pub telemetry: Option<PathBuf>,
    /// Threads servicing asynchronous `submit` requests.
    pub submit_workers: usize,
    /// Bound of the async submit queue; a full queue rejects `submit`
    /// with `overloaded` (backpressure instead of unbounded memory).
    pub submit_queue: usize,
    /// Bound of each connection's response queue.
    pub write_queue: usize,
    /// Per-connection idle timeout; connections silent for longer are
    /// closed.
    pub idle_timeout: Duration,
    /// Suppress stderr status lines.
    pub quiet: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            apps: ROSTER.to_vec(),
            quick: Scale::quick(),
            full: Scale::full(),
            artifacts: None,
            checkpoints: None,
            simchk_budget: None,
            telemetry: None,
            submit_workers: 2,
            submit_queue: 256,
            write_queue: 64,
            idle_timeout: Duration::from_secs(300),
            quiet: false,
        }
    }
}

/// Result of a blocking sweep request.
#[derive(Debug, Clone)]
pub struct SweepDone {
    /// The report digest (also the `status`/`report` key).
    pub digest: Digest,
    /// The rendered report, byte-identical to `repro`'s stdout for the
    /// same selection/scale/mode.
    pub report: Arc<String>,
    /// True when this request performed the rendering; false when it was
    /// coalesced onto another client's in-flight or finished computation.
    pub fresh: bool,
}

/// The resident sweep service. Shared across connection threads as
/// `Arc<Service>`.
pub struct Service {
    cfg: ServeConfig,
    quick: Sweep,
    full: Sweep,
    quick_l4: Sweep,
    full_l4: Sweep,
    hub: Arc<Hub>,
    telemetry: Option<Arc<Telemetry>>,
    console: Console,
    // One checkpoint store shared by every sweep (resident and
    // ephemeral), so `stats` reports daemon-wide hit/miss/prune
    // counters and the prune budget is enforced once, not per sweep.
    simchk: Option<Arc<CheckpointStore>>,
    started: Instant,
    reports: RunStore<u128, String>,
    requests: AtomicU64,
    computed: AtomicU64,
    coalesced: AtomicU64,
    events_dropped: AtomicU64,
    draining: AtomicBool,
    abandon_queued: AtomicBool,
    inflight: Mutex<u64>,
    idle_cv: Condvar,
    submit_tx: Mutex<Option<SyncSender<SweepReq>>>,
    submit_rx: Mutex<Option<Receiver<SweepReq>>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Service {
    /// Builds the service: one sweep per scale (both observed by the
    /// progress [`Hub`]), optional artifact/checkpoint/telemetry stores,
    /// and the async submit worker pool.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from opening the artifact or checkpoint
    /// directories.
    pub fn new(cfg: ServeConfig) -> std::io::Result<Arc<Service>> {
        let hub = Hub::new();
        let telemetry = cfg.telemetry.as_ref().map(|_| Arc::new(Telemetry::from_env()));
        let mut console = Console::from_env(cfg.quiet);
        if let Some(tel) = &telemetry {
            console = console.with_mirror(Arc::clone(tel));
        }
        let simchk = match &cfg.checkpoints {
            Some(dir) => {
                Some(Arc::new(CheckpointStore::open(dir)?.with_budget(cfg.simchk_budget)))
            }
            None => None,
        };
        let make_sweep = |scale: Scale, l4: Option<L4Config>| -> std::io::Result<Sweep> {
            let mut sweep = Sweep::with_apps(scale, cfg.apps.clone())
                .with_threads(cfg.threads)
                .with_observer(hub.observer())
                .with_l4(l4);
            if let Some(dir) = &cfg.artifacts {
                sweep = sweep.with_artifacts(dir)?;
            }
            if let Some(store) = &simchk {
                sweep = sweep.with_checkpoint_store(Arc::clone(store));
            }
            if let Some(tel) = &telemetry {
                sweep = sweep.with_telemetry(Arc::clone(tel));
            }
            Ok(sweep)
        };
        let (tx, rx) = sync_channel(cfg.submit_queue.max(1));
        let service = Arc::new(Service {
            quick: make_sweep(cfg.quick, None)?,
            full: make_sweep(cfg.full, None)?,
            // The L4-enabled twins share the artifact and checkpoint
            // directories: every store is digest-keyed and the L4 enters
            // both digests, so the families can never alias. They are
            // built lazily in the sense that an unused sweep owns no
            // runs — only `"l4":true` requests populate them.
            quick_l4: make_sweep(cfg.quick, Some(L4Config::tdram()))?,
            full_l4: make_sweep(cfg.full, Some(L4Config::tdram()))?,
            hub,
            telemetry,
            console,
            simchk,
            started: Instant::now(),
            reports: RunStore::new(),
            requests: AtomicU64::new(0),
            computed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            events_dropped: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            abandon_queued: AtomicBool::new(false),
            inflight: Mutex::new(0),
            idle_cv: Condvar::new(),
            submit_tx: Mutex::new(Some(tx)),
            submit_rx: Mutex::new(Some(rx)),
            workers: Mutex::new(Vec::new()),
            cfg,
        });
        service.spawn_submit_workers();
        Ok(service)
    }

    fn spawn_submit_workers(self: &Arc<Self>) {
        let rx = Arc::new(Mutex::new(
            self.submit_rx.lock().expect("service poisoned").take().expect("rx taken once"),
        ));
        let mut workers = self.workers.lock().expect("service poisoned");
        for _ in 0..self.cfg.submit_workers.max(1) {
            let me = Arc::clone(self);
            let rx = Arc::clone(&rx);
            workers.push(std::thread::spawn(move || loop {
                // Holding the lock across `recv` serializes the *claim*,
                // not the compute: the winner drops the guard before
                // rendering, so idle workers immediately contend for the
                // next job.
                let job = {
                    let guard = rx.lock().expect("submit rx poisoned");
                    guard.recv()
                };
                match job {
                    Ok(req) => {
                        if !me.abandon_queued.load(Ordering::SeqCst) {
                            // Validation already happened at submit time;
                            // a failure here would be a logic error, but
                            // a worker must never die over one request.
                            let _ = me.compute(&req);
                        }
                        me.exit_request();
                    }
                    Err(_) => return, // channel closed: server stopping
                }
            }));
        }
    }

    /// The daemon configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The progress hub; connections subscribe per-request observers.
    pub fn hub(&self) -> &Arc<Hub> {
        &self.hub
    }

    /// The status console (quiet- and telemetry-aware).
    pub fn console(&self) -> &Console {
        &self.console
    }

    /// The telemetry collector, when configured.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    fn sweep_for(&self, scale: ScaleName, l4: bool) -> (&Sweep, Scale) {
        match (scale, l4) {
            (ScaleName::Quick, false) => (&self.quick, self.cfg.quick),
            (ScaleName::Full, false) => (&self.full, self.cfg.full),
            (ScaleName::Quick, true) => (&self.quick_l4, self.cfg.quick),
            (ScaleName::Full, true) => (&self.full_l4, self.cfg.full),
        }
    }

    /// The report digest for a validated request: a structural hash of
    /// the experiment ids (in rendering order), the concrete scale, the
    /// rendering mode, the `cmp` core restriction, the L4 flag, and the
    /// sampling regime (`sample` + `intervals`). Duplicate requests from
    /// any number of clients map to one digest and therefore one
    /// rendering; a `--cores 4` report can never collide with the
    /// default 2/4/8 sweep, nor an `--l4` report with the plain one,
    /// nor a sampled estimate with a full-detail report.
    fn report_digest(ids: &[&str], scale: Scale, req: &SweepReq) -> Digest {
        let mut h = Hasher128::new();
        h.write_str("simserve-report-v1");
        h.write_u64(ids.len() as u64);
        for id in ids {
            h.write_str(id);
        }
        h.write_u64(scale.warmup);
        h.write_u64(scale.measure);
        h.write_bool(req.tsv);
        h.write_u64(req.cores);
        h.write_bool(req.l4);
        h.write_bool(req.sample);
        h.write_u64(req.intervals);
        h.digest()
    }

    fn resolve(&self, req: &SweepReq) -> Result<(Vec<&'static str>, Digest), Fail> {
        let ids = resolve_ids(&req.exp).ok_or_else(|| {
            Fail::new(ErrCode::BadRequest, format!("unknown experiment {:?}", req.exp))
        })?;
        let (_, scale) = self.sweep_for(req.scale, req.l4);
        let digest = Service::report_digest(&ids, scale, req);
        Ok((ids, digest))
    }

    /// Builds the per-request sweep for a sampled report: same apps,
    /// threads, progress hub, telemetry, artifact directory, and
    /// (crucially) the same shared [`CheckpointStore`] as the resident
    /// sweeps, plus the scale's default [`SampleSpec`] and the request's
    /// interval split. Ephemeral because `intervals` is per-request;
    /// run-level reuse across requests still happens through the shared
    /// artifact and checkpoint stores, and duplicate requests coalesce
    /// at the report layer before ever reaching this.
    fn sampled_sweep(&self, scale: ScaleName, l4: bool, intervals: u64) -> std::io::Result<Sweep> {
        let (_, concrete) = self.sweep_for(scale, l4);
        let mut sweep = Sweep::with_apps(concrete, self.cfg.apps.clone())
            .with_threads(self.cfg.threads)
            .with_observer(self.hub.observer())
            .with_l4(l4.then(L4Config::tdram))
            .with_sample(Some(SampleSpec::for_scale(concrete)))
            .with_intervals(intervals);
        if let Some(dir) = &self.cfg.artifacts {
            sweep = sweep.with_artifacts(dir)?;
        }
        if let Some(store) = &self.simchk {
            sweep = sweep.with_checkpoint_store(Arc::clone(store));
        }
        if let Some(tel) = &self.telemetry {
            sweep = sweep.with_telemetry(Arc::clone(tel));
        }
        Ok(sweep)
    }

    /// Validates a sweep request without running it: returns the digest
    /// it would compute under.
    pub fn digest_of(&self, req: &SweepReq) -> Result<Digest, Fail> {
        self.resolve(req).map(|(_, d)| d)
    }

    /// Runs (or joins) a sweep request. This is the blocking `sweep` op:
    /// rejected while draining, otherwise coalesced by digest across all
    /// clients and answered with the shared report.
    ///
    /// # Errors
    ///
    /// [`ErrCode::Draining`] while draining, [`ErrCode::BadRequest`] for
    /// an unknown experiment selector.
    pub fn sweep(&self, req: &SweepReq) -> Result<SweepDone, Fail> {
        if self.draining() {
            return Err(Fail::new(ErrCode::Draining, "server is draining; no new sweeps"));
        }
        self.compute(req)
    }

    /// The compute path shared by blocking sweeps and the submit
    /// workers. Deliberately does **not** check the draining flag: work
    /// admitted before the drain began must finish.
    fn compute(&self, req: &SweepReq) -> Result<SweepDone, Fail> {
        let (ids, digest) = self.resolve(req)?;
        let sampled = match req.sample {
            true => Some(self.sampled_sweep(req.scale, req.l4, req.intervals).map_err(|e| {
                Fail::new(ErrCode::BadRequest, format!("cannot open run stores: {e}"))
            })?),
            false => None,
        };
        let (resident, _) = self.sweep_for(req.scale, req.l4);
        let sweep = sampled.as_ref().unwrap_or(resident);
        self.requests.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();
        let mut fresh = false;
        let report = self.reports.get_or_compute(digest.raw(), || {
            fresh = true;
            match req.cores {
                0 => render_selection(&ids, sweep, req.tsv),
                n => render_selection_cores(&ids, sweep, req.tsv, &[n as u32]),
            }
        });
        if fresh {
            self.computed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
        }
        let wall = t0.elapsed();
        if let Some(tel) = &self.telemetry {
            tel.wall_span("simserve", &format!("sweep {} {}", req.exp, digest.hex()), wall.as_nanos() as u64);
        }
        if fresh {
            self.console.status(&format!(
                "[simserve] computed {} ({}, {}) in {:.2}s -> {}",
                req.exp,
                req.scale.as_str(),
                if req.tsv { "tsv" } else { "text" },
                wall.as_secs_f64(),
                digest.hex()
            ));
        }
        Ok(SweepDone { digest, report, fresh })
    }

    /// Enqueues a sweep for asynchronous computation (the `submit` op)
    /// and returns its digest plus the state the request left it in:
    /// `"done"` (already computed), `"running"` (already in flight), or
    /// `"queued"`.
    ///
    /// # Errors
    ///
    /// [`ErrCode::Draining`] while draining, [`ErrCode::Overloaded`]
    /// when the bounded submit queue is full, [`ErrCode::BadRequest`]
    /// for an unknown experiment selector.
    pub fn submit(&self, req: &SweepReq) -> Result<(Digest, &'static str), Fail> {
        if self.draining() {
            return Err(Fail::new(ErrCode::Draining, "server is draining; no new sweeps"));
        }
        let (_, digest) = self.resolve(req)?;
        match self.reports.status(&digest.raw()) {
            Some(EntryState::Done) => return Ok((digest, "done")),
            Some(EntryState::Running) => return Ok((digest, "running")),
            None => {}
        }
        self.enter_request();
        let tx = self.submit_tx.lock().expect("service poisoned");
        let Some(tx) = tx.as_ref() else {
            self.exit_request();
            return Err(Fail::new(ErrCode::Draining, "server is stopping"));
        };
        match tx.try_send(req.clone()) {
            Ok(()) => Ok((digest, "queued")),
            Err(TrySendError::Full(_)) => {
                self.exit_request();
                Err(Fail::new(
                    ErrCode::Overloaded,
                    format!("submit queue full ({} pending)", self.cfg.submit_queue),
                ))
            }
            Err(TrySendError::Disconnected(_)) => {
                self.exit_request();
                Err(Fail::new(ErrCode::Draining, "server is stopping"))
            }
        }
    }

    /// Non-blocking state of a report digest: `"unknown"`, `"running"`,
    /// or `"done"`.
    pub fn status_of(&self, hex: &str) -> &'static str {
        match Digest::from_hex(hex).and_then(|d| self.reports.status(&d.raw())) {
            Some(EntryState::Done) => "done",
            Some(EntryState::Running) => "running",
            None => "unknown",
        }
    }

    /// Fetches a finished report by digest.
    ///
    /// # Errors
    ///
    /// [`ErrCode::Pending`] while the digest is still computing,
    /// [`ErrCode::NotFound`] for a digest the server has never seen.
    pub fn report_of(&self, hex: &str) -> Result<Arc<String>, Fail> {
        let Some(digest) = Digest::from_hex(hex) else {
            return Err(Fail::new(ErrCode::BadRequest, "digest is not 32 hex digits"));
        };
        match self.reports.status(&digest.raw()) {
            Some(EntryState::Done) => {
                Ok(self.reports.get(&digest.raw()).expect("status said done"))
            }
            Some(EntryState::Running) => {
                Err(Fail::new(ErrCode::Pending, "report is still computing"))
            }
            None => Err(Fail::new(ErrCode::NotFound, "no such report digest")),
        }
    }

    /// Server counters for the `stats` op, as response fields.
    pub fn stats_fields(&self) -> Vec<(&'static str, Json)> {
        vec![
            ("requests", Json::U64(self.requests.load(Ordering::Relaxed))),
            ("reports_computed", Json::U64(self.computed.load(Ordering::Relaxed))),
            ("reports_coalesced", Json::U64(self.coalesced.load(Ordering::Relaxed))),
            ("reports", Json::U64(self.reports.completed() as u64)),
            // Each scale's totals cover the plain sweep and its L4 twin.
            ("runs_quick", Json::U64((self.quick.runs() + self.quick_l4.runs()) as u64)),
            ("simulated_quick", Json::U64(self.quick.simulated() + self.quick_l4.simulated())),
            ("runs_full", Json::U64((self.full.runs() + self.full_l4.runs()) as u64)),
            ("simulated_full", Json::U64(self.full.simulated() + self.full_l4.simulated())),
            ("inflight", Json::U64(*self.inflight.lock().expect("service poisoned"))),
            ("watchers", Json::U64(self.hub.subscribers() as u64)),
            ("events_dropped", Json::U64(self.events_dropped.load(Ordering::Relaxed))),
            // Checkpoint-store traffic across every sweep sharing the
            // daemon's store; all zero when no --checkpoints directory
            // is configured.
            ("simchk_hits", Json::U64(self.simchk.as_ref().map_or(0, |s| s.hits()))),
            ("simchk_misses", Json::U64(self.simchk.as_ref().map_or(0, |s| s.misses()))),
            ("simchk_pruned", Json::U64(self.simchk.as_ref().map_or(0, |s| s.pruned()))),
            ("uptime_ms", Json::U64(self.started.elapsed().as_millis() as u64)),
            ("draining", Json::Bool(self.draining())),
        ]
    }

    /// The daemon-wide checkpoint store, when a checkpoint directory is
    /// configured. Every resident and per-request sweep shares it.
    pub fn checkpoint_store(&self) -> Option<&Arc<CheckpointStore>> {
        self.simchk.as_ref()
    }

    /// Folds one connection's dropped-progress-event count into the
    /// server-lifetime total surfaced by `stats` as `events_dropped`.
    /// Called by the connection handler after it unsubscribes its watch
    /// observer, so the aggregate is exact once a request is answered.
    pub fn note_events_dropped(&self, n: u64) {
        if n > 0 {
            self.events_dropped.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Total progress events dropped across all watch connections (the
    /// `events_dropped` stats field).
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped.load(Ordering::Relaxed)
    }

    /// Number of distinct reports rendered so far.
    pub fn reports_computed(&self) -> u64 {
        self.computed.load(Ordering::Relaxed)
    }

    /// Number of requests answered by coalescing onto an existing
    /// rendering.
    pub fn reports_coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Marks the start of a tracked request (drain waits for its end).
    pub fn enter_request(&self) {
        *self.inflight.lock().expect("service poisoned") += 1;
    }

    /// Marks the end of a tracked request.
    pub fn exit_request(&self) {
        let mut n = self.inflight.lock().expect("service poisoned");
        *n = n.checked_sub(1).expect("exit_request without enter_request");
        if *n == 0 {
            self.idle_cv.notify_all();
        }
    }

    /// True once a drain or shutdown has begun.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Begins a drain: new sweep/submit work is rejected from this call
    /// on. With `abandon_queued`, async submissions still waiting in the
    /// queue are skipped instead of computed (`shutdown` semantics).
    pub fn begin_drain(&self, abandon_queued: bool) {
        if abandon_queued {
            self.abandon_queued.store(true, Ordering::SeqCst);
        }
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Blocks until every tracked request has finished.
    pub fn wait_idle(&self) {
        let mut n = self.inflight.lock().expect("service poisoned");
        while *n > 0 {
            n = self.idle_cv.wait(n).expect("service poisoned");
        }
    }

    /// Stops the submit workers (idempotent): closes the queue and joins
    /// them. Queued jobs are still honored unless `begin_drain(true)`
    /// marked them abandoned.
    pub fn close(&self) {
        drop(self.submit_tx.lock().expect("service poisoned").take());
        let workers = std::mem::take(&mut *self.workers.lock().expect("service poisoned"));
        for w in workers {
            let _ = w.join();
        }
        if let (Some(dir), Some(tel)) = (&self.cfg.telemetry, &self.telemetry) {
            match tel.write_all(dir) {
                Ok(()) => self.console.status(&format!(
                    "[simserve] telemetry -> {}/{{metrics,trace,wall}}.json",
                    dir.display()
                )),
                Err(e) => self
                    .console
                    .status(&format!("[simserve] cannot write telemetry to {dir:?}: {e}")),
            }
        }
    }
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("apps", &self.cfg.apps.len())
            .field("threads", &self.cfg.threads)
            .field("reports", &self.reports.completed())
            .field("draining", &self.draining())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::profiles::by_name;

    fn tiny_config() -> ServeConfig {
        ServeConfig {
            threads: 2,
            apps: vec![by_name("galgel").expect("in roster"), by_name("wupwise").expect("in roster")],
            quick: Scale { warmup: 1_000, measure: 2_000 },
            full: Scale { warmup: 2_000, measure: 4_000 },
            quiet: true,
            ..ServeConfig::default()
        }
    }

    fn table_req() -> SweepReq {
        // table2/table4 need no runs at all, so service-level tests stay
        // fast even in debug builds.
        SweepReq {
            exp: "table2".into(),
            scale: ScaleName::Quick,
            tsv: false,
            cores: 0,
            watch: false,
            l4: false,
            sample: false,
            intervals: 1,
        }
    }

    #[test]
    fn duplicate_sweeps_coalesce_onto_one_rendering() {
        let svc = Service::new(tiny_config()).expect("service");
        let a = svc.sweep(&table_req()).expect("first sweep");
        assert!(a.fresh);
        let b = svc.sweep(&table_req()).expect("second sweep");
        assert!(!b.fresh);
        assert_eq!(a.digest, b.digest);
        assert!(Arc::ptr_eq(&a.report, &b.report), "must share one rendering");
        assert_eq!((svc.reports_computed(), svc.reports_coalesced()), (1, 1));
        svc.close();
    }

    #[test]
    fn reports_match_the_in_process_renderer_byte_for_byte() {
        let cfg = tiny_config();
        let expected = {
            let sweep = Sweep::with_apps(cfg.quick, cfg.apps.clone()).with_threads(2);
            render_selection(&["table2"], &sweep, false)
        };
        let svc = Service::new(cfg).expect("service");
        let done = svc.sweep(&table_req()).expect("sweep");
        assert_eq!(*done.report, expected);
        svc.close();
    }

    #[test]
    fn distinct_requests_get_distinct_digests() {
        let svc = Service::new(tiny_config()).expect("service");
        let d1 = svc.digest_of(&table_req()).expect("digest");
        let d2 = svc
            .digest_of(&SweepReq { exp: "table4".into(), ..table_req() })
            .expect("digest");
        let d3 = svc
            .digest_of(&SweepReq { scale: ScaleName::Full, ..table_req() })
            .expect("digest");
        let d4 = svc.digest_of(&SweepReq { tsv: true, ..table_req() }).expect("digest");
        let d5 = svc.digest_of(&SweepReq { cores: 4, ..table_req() }).expect("digest");
        let d6 = svc.digest_of(&SweepReq { l4: true, ..table_req() }).expect("digest");
        let d7 = svc.digest_of(&SweepReq { sample: true, ..table_req() }).expect("digest");
        let d8 = svc
            .digest_of(&SweepReq { sample: true, intervals: 4, ..table_req() })
            .expect("digest");
        let all = [d1, d2, d3, d4, d5, d6, d7, d8];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
        svc.close();
    }

    #[test]
    fn dram_selector_resolves_and_separates_by_l4() {
        let svc = Service::new(tiny_config()).expect("service");
        let dram = SweepReq { exp: "dram".into(), l4: true, ..table_req() };
        let d1 = svc.digest_of(&dram).expect("dram resolves");
        let d2 = svc.digest_of(&SweepReq { l4: false, ..dram }).expect("digest");
        assert_ne!(d1, d2, "the l4 flag is part of the report identity");
        svc.close();
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("simserve-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn sampled_sweeps_compute_through_the_shared_checkpoint_store() {
        let dir = temp_dir("sampled");
        let cfg = ServeConfig { checkpoints: Some(dir.clone()), ..tiny_config() };
        let svc = Service::new(cfg).expect("service");
        let sampled = SweepReq { exp: "fig4".into(), sample: true, intervals: 2, ..table_req() };
        let full = SweepReq { exp: "fig4".into(), ..table_req() };
        let a = svc.sweep(&sampled).expect("sampled sweep");
        let b = svc.sweep(&full).expect("full sweep");
        assert_ne!(a.digest, b.digest, "sampled reports never alias full ones");
        assert_ne!(*a.report, *b.report, "a sampled estimate is not the full table");
        // The per-request sampled sweep used the daemon's store: its
        // warm-up/interval snapshots show up in the daemon-wide stats.
        let field = |name: &str| {
            svc.stats_fields()
                .iter()
                .find(|(k, _)| *k == name)
                .and_then(|(_, v)| v.as_u64())
                .unwrap_or_else(|| panic!("stats field {name}"))
        };
        assert!(field("simchk_misses") > 0, "sampled runs publish checkpoints");
        // The full sweep shares the same scale, apps, and warm-up
        // digests, so at least its warm-up checkpoints come back as
        // store hits rather than recomputations.
        assert!(field("simchk_hits") > 0, "the resident sweep reuses them");
        let _ = field("simchk_pruned");
        let _ = field("uptime_ms");
        // Identical sampled requests coalesce onto the one rendering.
        let c = svc.sweep(&sampled).expect("repeat sampled sweep");
        assert!(!c.fresh);
        assert_eq!(c.digest, a.digest);
        svc.close();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_experiment_is_bad_request() {
        let svc = Service::new(tiny_config()).expect("service");
        let err = svc
            .sweep(&SweepReq { exp: "fig99".into(), ..table_req() })
            .expect_err("unknown exp");
        assert_eq!(err.code, ErrCode::BadRequest);
        svc.close();
    }

    #[test]
    fn drain_rejects_new_work_but_status_still_serves() {
        let svc = Service::new(tiny_config()).expect("service");
        let done = svc.sweep(&table_req()).expect("sweep before drain");
        svc.begin_drain(false);
        let err = svc.sweep(&table_req()).expect_err("must reject during drain");
        assert_eq!(err.code, ErrCode::Draining);
        let err = svc.submit(&table_req()).expect_err("must reject during drain");
        assert_eq!(err.code, ErrCode::Draining);
        // Read-only ops keep working so clients can fetch what finished.
        assert_eq!(svc.status_of(&done.digest.hex()), "done");
        assert_eq!(*svc.report_of(&done.digest.hex()).expect("still served"), *done.report);
        svc.wait_idle();
        svc.close();
    }

    #[test]
    fn submit_then_status_then_report() {
        let svc = Service::new(tiny_config()).expect("service");
        assert_eq!(svc.status_of(&"0".repeat(32)), "unknown");
        let (digest, _state) = svc.submit(&table_req()).expect("submit");
        // Wait for the async worker to finish, then fetch.
        svc.wait_idle();
        assert_eq!(svc.status_of(&digest.hex()), "done");
        let report = svc.report_of(&digest.hex()).expect("done");
        assert!(report.contains("Table 2"));
        // Re-submitting a finished digest reports done without queueing.
        let (d2, state) = svc.submit(&table_req()).expect("resubmit");
        assert_eq!((d2, state), (digest, "done"));
        svc.wait_idle();
        svc.close();
    }

    #[test]
    fn events_dropped_aggregates_across_connections() {
        let svc = Service::new(tiny_config()).expect("service");
        assert_eq!(svc.events_dropped(), 0);
        let has_field = |svc: &Service| {
            svc.stats_fields()
                .iter()
                .find(|(k, _)| *k == "events_dropped")
                .map(|(_, v)| v.clone())
        };
        assert_eq!(has_field(&svc), Some(Json::U64(0)));
        svc.note_events_dropped(0); // no-op
        svc.note_events_dropped(3);
        svc.note_events_dropped(2);
        assert_eq!(svc.events_dropped(), 5);
        assert_eq!(has_field(&svc), Some(Json::U64(5)));
        svc.close();
    }

    #[test]
    fn report_of_unknown_digest_is_not_found() {
        let svc = Service::new(tiny_config()).expect("service");
        let err = svc.report_of(&"ab".repeat(16)).expect_err("unknown");
        assert_eq!(err.code, ErrCode::NotFound);
        let err = svc.report_of("zz").expect_err("malformed");
        assert_eq!(err.code, ErrCode::BadRequest);
        svc.close();
    }
}
