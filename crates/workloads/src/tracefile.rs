//! Compact binary trace recording and replay.
//!
//! Synthetic generation is cheap, but recorded traces make runs exactly
//! repeatable across generator changes and let external traces (e.g.
//! converted SimpleScalar EIO traces) drive the same simulators. Each
//! micro-op encodes to a fixed 20-byte record.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use cpu::uop::{MicroOp, OpClass, TraceSource};
use simbase::Addr;

/// Bytes per encoded micro-op.
pub const RECORD_BYTES: usize = 20;

const FLAG_TAKEN: u8 = 1 << 0;
const FLAG_HAS_ADDR: u8 = 1 << 1;

fn class_code(c: OpClass) -> u8 {
    match c {
        OpClass::IntAlu => 0,
        OpClass::IntMul => 1,
        OpClass::FpAlu => 2,
        OpClass::FpMul => 3,
        OpClass::Load => 4,
        OpClass::Store => 5,
        OpClass::Branch => 6,
    }
}

fn code_class(code: u8) -> Option<OpClass> {
    Some(match code {
        0 => OpClass::IntAlu,
        1 => OpClass::IntMul,
        2 => OpClass::FpAlu,
        3 => OpClass::FpMul,
        4 => OpClass::Load,
        5 => OpClass::Store,
        6 => OpClass::Branch,
        _ => return None,
    })
}

/// Appends one micro-op to `buf` in the fixed record format.
pub fn write_op(buf: &mut BytesMut, op: &MicroOp) {
    buf.put_u8(class_code(op.class));
    buf.put_u8(op.dep1);
    buf.put_u8(op.dep2);
    let mut flags = 0;
    if op.taken {
        flags |= FLAG_TAKEN;
    }
    if op.mem_addr.is_some() {
        flags |= FLAG_HAS_ADDR;
    }
    buf.put_u8(flags);
    buf.put_u64_le(op.pc.raw());
    buf.put_u64_le(op.mem_addr.map_or(0, Addr::raw));
}

/// Error decoding a trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeTraceError {
    /// The buffer did not hold a whole record.
    Truncated,
    /// An unknown op-class code was encountered.
    BadClass(u8),
}

impl std::fmt::Display for DecodeTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeTraceError::Truncated => write!(f, "trace record truncated"),
            DecodeTraceError::BadClass(c) => write!(f, "unknown op-class code {c}"),
        }
    }
}

impl std::error::Error for DecodeTraceError {}

/// Decodes one micro-op from the front of `buf`.
///
/// # Errors
///
/// Returns [`DecodeTraceError`] if fewer than [`RECORD_BYTES`] remain or
/// the class code is invalid.
pub fn read_op(buf: &mut Bytes) -> Result<MicroOp, DecodeTraceError> {
    if buf.remaining() < RECORD_BYTES {
        return Err(DecodeTraceError::Truncated);
    }
    let code = buf.get_u8();
    let class = code_class(code).ok_or(DecodeTraceError::BadClass(code))?;
    let dep1 = buf.get_u8();
    let dep2 = buf.get_u8();
    let flags = buf.get_u8();
    let pc = Addr::new(buf.get_u64_le());
    let addr_raw = buf.get_u64_le();
    Ok(MicroOp {
        class,
        pc,
        mem_addr: (flags & FLAG_HAS_ADDR != 0).then_some(Addr::new(addr_raw)),
        dep1,
        dep2,
        taken: flags & FLAG_TAKEN != 0,
    })
}

/// Records `n` ops from `src` into a trace buffer.
pub fn record<S: TraceSource>(src: &mut S, n: u64) -> Bytes {
    let mut buf = BytesMut::with_capacity(n as usize * RECORD_BYTES);
    for _ in 0..n {
        write_op(&mut buf, &src.next_op());
    }
    buf.freeze()
}

/// A recorded trace replayed as a [`TraceSource`]; wraps around at the
/// end so it can drive arbitrarily long runs.
#[derive(Debug, Clone)]
pub struct RecordedTrace {
    data: Bytes,
    cursor: Bytes,
}

impl RecordedTrace {
    /// Wraps a trace buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty or not a whole number of records.
    pub fn new(data: Bytes) -> Self {
        assert!(!data.is_empty(), "trace must contain at least one record");
        assert!(
            data.len().is_multiple_of(RECORD_BYTES),
            "trace length {} is not a multiple of the {}-byte record",
            data.len(),
            RECORD_BYTES
        );
        RecordedTrace {
            cursor: data.clone(),
            data,
        }
    }

    /// Number of records in the trace.
    pub fn len(&self) -> usize {
        self.data.len() / RECORD_BYTES
    }

    /// True if the trace holds no records (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl TraceSource for RecordedTrace {
    fn next_op(&mut self) -> MicroOp {
        if self.cursor.remaining() < RECORD_BYTES {
            self.cursor = self.data.clone();
        }
        read_op(&mut self.cursor).expect("validated at construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::profiles::by_name;

    #[test]
    fn roundtrip_preserves_every_field() {
        let mut gen = TraceGenerator::new(by_name("mcf").unwrap(), 3);
        let originals: Vec<MicroOp> = (0..500).map(|_| gen.next_op()).collect();
        let mut buf = BytesMut::new();
        for op in &originals {
            write_op(&mut buf, op);
        }
        let mut bytes = buf.freeze();
        for want in &originals {
            let got = read_op(&mut bytes).expect("whole record");
            assert_eq!(&got, want);
        }
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn record_produces_fixed_size_output() {
        let mut gen = TraceGenerator::new(by_name("swim").unwrap(), 1);
        let trace = record(&mut gen, 100);
        assert_eq!(trace.len(), 100 * RECORD_BYTES);
    }

    #[test]
    fn replay_matches_the_generator() {
        let app = by_name("galgel").unwrap();
        let mut gen = TraceGenerator::new(app, 7);
        let trace = record(&mut gen, 300);
        let mut replay = RecordedTrace::new(trace);
        assert_eq!(replay.len(), 300);
        let mut fresh = TraceGenerator::new(app, 7);
        for i in 0..300 {
            assert_eq!(replay.next_op(), fresh.next_op(), "op {i} diverged");
        }
    }

    #[test]
    fn replay_wraps_around() {
        let mut gen = TraceGenerator::new(by_name("vpr").unwrap(), 9);
        let trace = record(&mut gen, 10);
        let mut replay = RecordedTrace::new(trace);
        let first: Vec<MicroOp> = (0..10).map(|_| replay.next_op()).collect();
        let second: Vec<MicroOp> = (0..10).map(|_| replay.next_op()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn truncated_record_errors() {
        let mut short = Bytes::from_static(&[0u8; RECORD_BYTES - 1]);
        assert_eq!(read_op(&mut short), Err(DecodeTraceError::Truncated));
    }

    #[test]
    fn bad_class_errors() {
        let mut buf = BytesMut::new();
        buf.put_u8(99); // invalid class
        buf.put_slice(&[0u8; RECORD_BYTES - 1]);
        let mut b = buf.freeze();
        assert!(matches!(read_op(&mut b), Err(DecodeTraceError::BadClass(_))));
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn ragged_trace_panics() {
        let _ = RecordedTrace::new(Bytes::from_static(&[0u8; RECORD_BYTES + 3]));
    }

    #[test]
    fn recorded_trace_drives_a_core() {
        use cpu::{CoreParams, OooCore};
        use memsys::hierarchy::BaseHierarchy;
        use memsys::l1::CoreMemSystem;
        let mut gen = TraceGenerator::new(by_name("parser").unwrap(), 5);
        let trace = record(&mut gen, 2_000);
        let mut replay = RecordedTrace::new(trace);
        let mem = CoreMemSystem::micro2003(BaseHierarchy::micro2003());
        let mut core = OooCore::new(CoreParams::micro2003(), mem);
        core.run(&mut replay, 4_000); // wraps once
        assert_eq!(core.instructions(), 4_000);
        assert!(core.cycles() > 0);
    }
}
