//! Compact binary trace recording and replay.
//!
//! Synthetic generation is cheap, but recorded traces make runs exactly
//! repeatable across generator changes and let external traces (e.g.
//! converted SimpleScalar EIO traces) drive the same simulators. Each
//! micro-op encodes to a fixed 20-byte record. Encoding and decoding are
//! hand-rolled over plain byte slices so the format carries no external
//! dependency — the byte layout is pinned by the round-trip tests below.

use cpu::uop::{MicroOp, OpClass, TraceSource};
use simbase::Addr;

/// Bytes per encoded micro-op.
pub const RECORD_BYTES: usize = 20;

const FLAG_TAKEN: u8 = 1 << 0;
const FLAG_HAS_ADDR: u8 = 1 << 1;

fn class_code(c: OpClass) -> u8 {
    match c {
        OpClass::IntAlu => 0,
        OpClass::IntMul => 1,
        OpClass::FpAlu => 2,
        OpClass::FpMul => 3,
        OpClass::Load => 4,
        OpClass::Store => 5,
        OpClass::Branch => 6,
    }
}

fn code_class(code: u8) -> Option<OpClass> {
    Some(match code {
        0 => OpClass::IntAlu,
        1 => OpClass::IntMul,
        2 => OpClass::FpAlu,
        3 => OpClass::FpMul,
        4 => OpClass::Load,
        5 => OpClass::Store,
        6 => OpClass::Branch,
        _ => return None,
    })
}

/// Appends one micro-op to `buf` in the fixed record format:
/// class, dep1, dep2, flags, then little-endian `pc` and `mem_addr`.
pub fn write_op(buf: &mut Vec<u8>, op: &MicroOp) {
    buf.push(class_code(op.class));
    buf.push(op.dep1);
    buf.push(op.dep2);
    let mut flags = 0;
    if op.taken {
        flags |= FLAG_TAKEN;
    }
    if op.mem_addr.is_some() {
        flags |= FLAG_HAS_ADDR;
    }
    buf.push(flags);
    buf.extend_from_slice(&op.pc.raw().to_le_bytes());
    buf.extend_from_slice(&op.mem_addr.map_or(0, Addr::raw).to_le_bytes());
}

/// Error decoding a trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeTraceError {
    /// The buffer did not hold a whole record.
    Truncated,
    /// An unknown op-class code was encountered.
    BadClass(u8),
}

impl std::fmt::Display for DecodeTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeTraceError::Truncated => write!(f, "trace record truncated"),
            DecodeTraceError::BadClass(c) => write!(f, "unknown op-class code {c}"),
        }
    }
}

impl std::error::Error for DecodeTraceError {}

/// Decodes one micro-op from the front of `buf`, advancing it past the
/// record on success.
///
/// # Errors
///
/// Returns [`DecodeTraceError`] if fewer than [`RECORD_BYTES`] remain or
/// the class code is invalid.
pub fn read_op(buf: &mut &[u8]) -> Result<MicroOp, DecodeTraceError> {
    if buf.len() < RECORD_BYTES {
        return Err(DecodeTraceError::Truncated);
    }
    let (record, rest) = buf.split_at(RECORD_BYTES);
    let code = record[0];
    let class = code_class(code).ok_or(DecodeTraceError::BadClass(code))?;
    let dep1 = record[1];
    let dep2 = record[2];
    let flags = record[3];
    let le_u64 = |b: &[u8]| u64::from_le_bytes(b.try_into().expect("8-byte slice"));
    let pc = Addr::new(le_u64(&record[4..12]));
    let addr_raw = le_u64(&record[12..20]);
    *buf = rest;
    Ok(MicroOp {
        class,
        pc,
        mem_addr: (flags & FLAG_HAS_ADDR != 0).then_some(Addr::new(addr_raw)),
        dep1,
        dep2,
        taken: flags & FLAG_TAKEN != 0,
    })
}

/// Records `n` ops from `src` into a trace buffer.
pub fn record<S: TraceSource>(src: &mut S, n: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(n as usize * RECORD_BYTES);
    for _ in 0..n {
        write_op(&mut buf, &src.next_op());
    }
    buf
}

/// A recorded trace replayed as a [`TraceSource`]; wraps around at the
/// end so it can drive arbitrarily long runs.
#[derive(Debug, Clone)]
pub struct RecordedTrace {
    data: Vec<u8>,
    pos: usize,
}

impl RecordedTrace {
    /// Wraps a trace buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty or not a whole number of records.
    pub fn new(data: Vec<u8>) -> Self {
        assert!(!data.is_empty(), "trace must contain at least one record");
        assert!(
            data.len().is_multiple_of(RECORD_BYTES),
            "trace length {} is not a multiple of the {}-byte record",
            data.len(),
            RECORD_BYTES
        );
        RecordedTrace { data, pos: 0 }
    }

    /// Number of records in the trace.
    pub fn len(&self) -> usize {
        self.data.len() / RECORD_BYTES
    }

    /// True if the trace holds no records (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl TraceSource for RecordedTrace {
    fn next_op(&mut self) -> MicroOp {
        if self.data.len() - self.pos < RECORD_BYTES {
            self.pos = 0;
        }
        let mut cursor = &self.data[self.pos..];
        let op = read_op(&mut cursor).expect("validated at construction");
        self.pos += RECORD_BYTES;
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::profiles::by_name;

    #[test]
    fn roundtrip_preserves_every_field() {
        let mut gen = TraceGenerator::new(by_name("mcf").unwrap(), 3);
        let originals: Vec<MicroOp> = (0..500).map(|_| gen.next_op()).collect();
        let mut buf = Vec::new();
        for op in &originals {
            write_op(&mut buf, op);
        }
        let mut cursor = buf.as_slice();
        for want in &originals {
            let got = read_op(&mut cursor).expect("whole record");
            assert_eq!(&got, want);
        }
        assert!(cursor.is_empty());
    }

    #[test]
    fn record_layout_is_pinned() {
        // The byte layout is a file format: freeze it. One load with every
        // field exercised.
        let op = MicroOp {
            class: OpClass::Load,
            pc: Addr::new(0x0102_0304_0506_0708),
            mem_addr: Some(Addr::new(0x1112_1314_1516_1718)),
            dep1: 9,
            dep2: 7,
            taken: true,
        };
        let mut buf = Vec::new();
        write_op(&mut buf, &op);
        assert_eq!(
            buf,
            [
                4, 9, 7, 3, // class=Load, deps, flags=TAKEN|HAS_ADDR
                0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, // pc LE
                0x18, 0x17, 0x16, 0x15, 0x14, 0x13, 0x12, 0x11, // addr LE
            ]
        );
    }

    #[test]
    fn record_produces_fixed_size_output() {
        let mut gen = TraceGenerator::new(by_name("swim").unwrap(), 1);
        let trace = record(&mut gen, 100);
        assert_eq!(trace.len(), 100 * RECORD_BYTES);
    }

    #[test]
    fn replay_matches_the_generator() {
        let app = by_name("galgel").unwrap();
        let mut gen = TraceGenerator::new(app, 7);
        let trace = record(&mut gen, 300);
        let mut replay = RecordedTrace::new(trace);
        assert_eq!(replay.len(), 300);
        let mut fresh = TraceGenerator::new(app, 7);
        for i in 0..300 {
            assert_eq!(replay.next_op(), fresh.next_op(), "op {i} diverged");
        }
    }

    #[test]
    fn replay_wraps_around() {
        let mut gen = TraceGenerator::new(by_name("vpr").unwrap(), 9);
        let trace = record(&mut gen, 10);
        let mut replay = RecordedTrace::new(trace);
        let first: Vec<MicroOp> = (0..10).map(|_| replay.next_op()).collect();
        let second: Vec<MicroOp> = (0..10).map(|_| replay.next_op()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn truncated_record_errors() {
        let short = [0u8; RECORD_BYTES - 1];
        let mut cursor = short.as_slice();
        assert_eq!(read_op(&mut cursor), Err(DecodeTraceError::Truncated));
        // The cursor is left untouched on error.
        assert_eq!(cursor.len(), RECORD_BYTES - 1);
    }

    #[test]
    fn bad_class_errors() {
        let mut buf = vec![99u8]; // invalid class
        buf.extend_from_slice(&[0u8; RECORD_BYTES - 1]);
        let mut cursor = buf.as_slice();
        assert!(matches!(
            read_op(&mut cursor),
            Err(DecodeTraceError::BadClass(99))
        ));
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn ragged_trace_panics() {
        let _ = RecordedTrace::new(vec![0u8; RECORD_BYTES + 3]);
    }

    #[test]
    fn recorded_trace_drives_a_core() {
        use cpu::{CoreParams, OooCore};
        use memsys::hierarchy::BaseHierarchy;
        use memsys::l1::CoreMemSystem;
        let mut gen = TraceGenerator::new(by_name("parser").unwrap(), 5);
        let trace = record(&mut gen, 2_000);
        let mut replay = RecordedTrace::new(trace);
        let mem = CoreMemSystem::micro2003(BaseHierarchy::micro2003());
        let mut core = OooCore::new(CoreParams::micro2003(), mem);
        core.run(&mut replay, 4_000); // wraps once
        assert_eq!(core.instructions(), 4_000);
        assert!(core.cycles() > 0);
    }
}
