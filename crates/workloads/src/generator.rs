//! The trace generator: turns a [`BenchProfile`] into a deterministic
//! micro-op stream.
//!
//! Address streams are a three-component mixture:
//!
//! * **recent-line reuse** — re-touching one of the last few cache lines,
//!   absorbed by the L1 (sets the L2 access rate);
//! * **hot region** — uniform traffic over a multi-megabyte reused
//!   footprint with a skewed inner core, the component whose residency in
//!   the fast d-groups the paper's policies fight over;
//! * **streaming region** — sequential bursts over a large cold footprint
//!   (compulsory L2 misses and d-group pollution).
//!
//! Instruction fetch walks a loop over the profile's code footprint, and
//! branch outcomes are drawn with per-site bias so the hybrid predictor
//! sees realistic (mostly predictable, occasionally not) streams.

use crate::profiles::BenchProfile;
use cpu::uop::{MicroOp, OpClass, TraceSource};
use simbase::rng::SimRng;
use simbase::snapshot::{Decoder, Encoder, SnapshotError};
use simbase::Addr;

/// Virtual-address bases for the three data regions and code.
const CODE_BASE: u64 = 0x0040_0000;
const HOT_BASE: u64 = 0x4000_0000;
const STREAM_BASE: u64 = 0x8000_0000;

/// Recently-touched lines remembered for L1-reuse draws.
const RECENT_LINES: usize = 8;

/// A deterministic micro-op generator for one benchmark.
///
/// # Examples
///
/// ```
/// use workloads::{profiles, TraceGenerator};
/// use cpu::uop::TraceSource;
///
/// let mcf = profiles::by_name("mcf").expect("in the roster");
/// let mut gen = TraceGenerator::new(mcf, 1);
/// let ops: Vec<_> = (0..1000).map(|_| gen.next_op()).collect();
/// // Same profile + seed => the same trace.
/// let mut again = TraceGenerator::new(mcf, 1);
/// assert!(ops.iter().all(|op| *op == again.next_op()));
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: BenchProfile,
    rng: SimRng,
    /// Instruction counter (drives the PC loop and branch placement).
    i: u64,
    /// Instructions in the code loop.
    loop_len: u64,
    /// Ring of recently-touched line addresses.
    recent: [u64; RECENT_LINES],
    recent_n: usize,
    /// Current streaming position (bytes from STREAM_BASE).
    stream_pos: u64,
    /// Remaining lines in the current streaming burst.
    burst_left: u32,
    /// Whether the previous op was a load whose value the next op consumes.
    chain_next: bool,
    /// Remaining blocks of the initialization sweep over the hot region
    /// (programs touch their data structures once while building them;
    /// this also guarantees the hot region is warm before measurement).
    init_left: u64,
    /// Instructions since the last fresh hot-region load (for load-to-load
    /// chaining), saturating at 255.
    since_hot_load: u8,
    /// Whether the generator is inside a burst of new-line accesses.
    /// Memory traffic that escapes the L1 is bursty: programs alternate
    /// compute phases (register/L1 traffic) with data-structure traversal
    /// phases (several new lines close together). Burstiness is what lets
    /// dependent lower-level accesses sit within the 64-entry window.
    in_new_burst: bool,
}

impl TraceGenerator {
    /// Creates a generator for `profile` with the given seed.
    pub fn new(profile: BenchProfile, seed: u64) -> Self {
        let loop_len = (profile.code_footprint.bytes() / 4).max(64);
        TraceGenerator {
            profile,
            rng: SimRng::seeded(seed ^ fxhash(profile.name)),
            i: 0,
            loop_len,
            recent: [HOT_BASE; RECENT_LINES],
            recent_n: 0,
            stream_pos: 0,
            burst_left: 0,
            chain_next: false,
            init_left: profile.hot_footprint.bytes() / 128,
            since_hot_load: u8::MAX,
            in_new_burst: false,
        }
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &BenchProfile {
        &self.profile
    }

    /// Serialises the generator's position in its stream (RNG state and
    /// all mixture-process state). The profile itself is construction
    /// input, not snapshot payload.
    pub fn save_state(&self, e: &mut Encoder) {
        for w in self.rng.state() {
            e.put_u64(w);
        }
        e.put_u64(self.i);
        e.put_u64_slice(&self.recent);
        e.put_u64(self.recent_n as u64);
        e.put_u64(self.stream_pos);
        e.put_u32(self.burst_left);
        e.put_bool(self.chain_next);
        e.put_u64(self.init_left);
        e.put_u8(self.since_hot_load);
        e.put_bool(self.in_new_burst);
    }

    /// Restores state written by [`Self::save_state`] into a generator
    /// built from the same profile and seed.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Malformed`] on a truncated or mismatched
    /// payload.
    pub fn load_state(&mut self, d: &mut Decoder) -> Result<(), SnapshotError> {
        let rng_state = [d.u64()?, d.u64()?, d.u64()?, d.u64()?];
        self.rng = SimRng::from_state(rng_state);
        self.i = d.u64()?;
        let recent = d.u64_slice()?;
        if recent.len() != RECENT_LINES {
            return Err(SnapshotError::Malformed("recent-line ring size mismatch"));
        }
        self.recent.copy_from_slice(&recent);
        self.recent_n = d.u64()? as usize;
        self.stream_pos = d.u64()?;
        self.burst_left = d.u32()?;
        self.chain_next = d.bool()?;
        self.init_left = d.u64()?;
        self.since_hot_load = d.u8()?;
        self.in_new_burst = d.bool()?;
        Ok(())
    }

    fn pc(&self) -> Addr {
        Addr::new(CODE_BASE + (self.i % self.loop_len) * 4)
    }

    fn remember(&mut self, line: u64) {
        self.recent[self.recent_n % RECENT_LINES] = line;
        self.recent_n += 1;
    }

    /// Draws the next data line address (32-B aligned), returning the line
    /// and whether it is a *fresh hot-region* reference (a likely
    /// lower-level-cache access on the program's critical path).
    fn data_line(&mut self) -> (u64, bool) {
        let p = self.profile;
        // Initialization sweep: one touch per 128-B block of the hot
        // region, sequential, at full memory-op rate.
        if self.init_left > 0 {
            let blocks = p.hot_footprint.bytes() / 128;
            let idx = blocks - self.init_left;
            self.init_left -= 1;
            let line = Self::hot_addr(p, idx * 4);
            self.remember(line);
            return (line, false);
        }
        // Two-state burst process with long-run new-line fraction
        // (1 - l1_reuse): reuse runs (L1 hits) alternate with short bursts
        // of new lines (mean burst ~2.9 lines).
        const STAY_IN_BURST: f64 = 0.65;
        if self.in_new_burst {
            if !self.rng.chance(STAY_IN_BURST) {
                self.in_new_burst = false;
            }
        } else {
            let mean_burst = 1.0 / (1.0 - STAY_IN_BURST);
            let enter = (1.0 - p.l1_reuse) / (mean_burst * p.l1_reuse.max(0.01));
            if self.recent_n > 0 && !self.rng.chance(enter) {
                // Stay in the reuse run: L1 hit.
                let k = self.recent_n.min(RECENT_LINES);
                return (self.recent[self.rng.index(k)], false);
            }
            self.in_new_burst = true;
        }
        let (line, fresh_hot) = if self.rng.chance(p.hot_frac) {
            // Hot region: three-tier skew (Zipf-like), so reuse intervals
            // span from tens of thousands of instructions (the inner core,
            // which any organization keeps close) to millions (the outer
            // region, where placement policy decides who wins).
            let lines = p.hot_footprint.bytes() / 32;
            let tier = self.rng.unit();
            let idx = if tier < 0.50 {
                self.rng.below((lines / 16).max(1))
            } else if tier < 0.88 {
                self.rng.below((lines / 4).max(1))
            } else {
                self.rng.below(lines / 2)
            };
            (Self::hot_addr(p, idx), true)
        } else {
            // Streaming: a burst of 128-B-strided touches (one per L2
            // block, the worst case for the lower-level cache), jumping to
            // a random position when the burst ends.
            if self.burst_left == 0 {
                self.burst_left = 1 + self.rng.below(2 * p.spatial_run as u64) as u32;
                let blocks = p.stream_footprint.bytes() / 128;
                self.stream_pos = self.rng.below(blocks) * 128;
            }
            self.burst_left -= 1;
            let line = STREAM_BASE + self.stream_pos;
            self.stream_pos = (self.stream_pos + 128) % p.stream_footprint.bytes();
            (line, false)
        };
        self.remember(line);
        (line, fresh_hot)
    }

    /// Maps a 32-B line index within the hot region to its address.
    ///
    /// The hottest eighth of the region is laid out with *folded* set
    /// bits, concentrating it into ~1/25 as many cache sets (about five
    /// live hot blocks per set). This models the paper's hot sets
    /// (Section 2.1: "the tendency of individual sets to be hot with many
    /// accesses to many ways over a short period") — the pressure that
    /// coupled placement cannot serve from the fastest d-group but
    /// distance-associative placement can.
    fn hot_addr(p: BenchProfile, idx: u64) -> u64 {
        const L2_SETS: u64 = 8192;
        let block = idx / 4;
        let within = idx % 4;
        let region_blocks = p.hot_footprint.bytes() / 128;
        let fold_range = region_blocks / 8;
        if block < fold_range {
            // Fold into `sets` set-residues, keeping blocks distinct.
            let sets = (region_blocks / 40).max(16);
            let aliased = (block % sets) + (block / sets) * L2_SETS;
            HOT_BASE + (aliased * 4 + within) * 32
        } else {
            HOT_BASE + idx * 32
        }
    }

    /// Dependency distance for a register source: short geometric within
    /// the window, or none.
    fn dep(&mut self) -> u8 {
        if self.rng.chance(0.15) {
            0
        } else {
            1 + self.rng.geometric(0.45, 20) as u8
        }
    }
}

fn fxhash(s: &str) -> u64 {
    s.bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
        })
}

impl cpu::uop::TraceCursor for TraceGenerator {
    /// The stream is offset-addressable through its op counter: a
    /// generator restored from [`TraceGenerator::load_state`] reports the
    /// position the snapshot was taken at, so sampled and
    /// interval-parallel runs can fast-forward to absolute trace offsets
    /// without replaying (or even knowing) the prefix.
    fn position(&self) -> u64 {
        self.i
    }
}

impl TraceSource for TraceGenerator {
    fn next_op(&mut self) -> MicroOp {
        self.i += 1;
        let pc = self.pc();
        let p = self.profile;
        self.since_hot_load = self.since_hot_load.saturating_add(1);

        let chained = std::mem::take(&mut self.chain_next);

        // Branch sites are periodic in the loop body.
        if self.i.is_multiple_of(p.branch_every as u64) {
            let mut op = MicroOp::branch(pc, self.rng.chance(p.branch_bias));
            op.dep1 = if chained { 1 } else { self.dep() };
            return op;
        }

        let roll = self.rng.unit();
        if roll < p.load_frac {
            let (line, fresh_hot) = self.data_line();
            let addr = Addr::new(line + self.rng.below(4) * 8);
            let mut op = MicroOp::load(pc, addr, 0);
            // Pointer chasing: this load's address came from a recent load.
            op.dep1 = if self.rng.chance(p.dep_load_frac) {
                1 + self.rng.geometric(0.5, 3) as u8
            } else {
                self.dep()
            };
            // Fresh hot-region loads walk linked/indexed structures: each
            // depends on the previous one (the address came from its
            // value), putting the lower-level cache's hit latency on the
            // program's critical path — the paper's operative assumption.
            if fresh_hot {
                if self.since_hot_load < 60 {
                    op.dep1 = self.since_hot_load;
                }
                self.since_hot_load = 0;
                self.chain_next = true;
            } else if self.rng.chance(p.dep_load_frac) {
                self.chain_next = true;
            }
            op
        } else if roll < p.load_frac + p.store_frac {
            let (line, _) = self.data_line();
            let addr = Addr::new(line + self.rng.below(4) * 8);
            let mut op = MicroOp::store(pc, addr, 0);
            op.dep1 = if chained { 1 } else { self.dep() };
            op
        } else {
            let mut op = MicroOp::alu(pc);
            op.class = if p.fp && self.rng.chance(0.55) {
                if self.rng.chance(0.4) {
                    OpClass::FpMul
                } else {
                    OpClass::FpAlu
                }
            } else if self.rng.chance(0.05) {
                OpClass::IntMul
            } else {
                OpClass::IntAlu
            };
            op.dep1 = if chained { 1 } else { self.dep() };
            op.dep2 = self.dep();
            op
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{by_name, ROSTER};

    fn gen(name: &str) -> TraceGenerator {
        TraceGenerator::new(by_name(name).unwrap(), 1)
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = gen("applu");
        let mut b = gen("applu");
        for _ in 0..1000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn different_apps_produce_different_streams() {
        let mut a = gen("applu");
        let mut b = gen("mcf");
        let same = (0..1000).filter(|_| a.next_op() == b.next_op()).count();
        assert!(same < 100, "streams should diverge, {same} identical");
    }

    #[test]
    fn instruction_mix_tracks_profile() {
        let p = by_name("equake").unwrap();
        let mut g = TraceGenerator::new(p, 3);
        let n = 100_000;
        let mut loads = 0;
        let mut stores = 0;
        let mut branches = 0;
        for _ in 0..n {
            match g.next_op().class {
                OpClass::Load => loads += 1,
                OpClass::Store => stores += 1,
                OpClass::Branch => branches += 1,
                _ => {}
            }
        }
        let lf = loads as f64 / n as f64;
        let sf = stores as f64 / n as f64;
        let bf = branches as f64 / n as f64;
        // Branches displace some of the mix; allow tolerance.
        assert!((lf - p.load_frac).abs() < 0.05, "load frac {lf}");
        assert!((sf - p.store_frac).abs() < 0.04, "store frac {sf}");
        assert!((bf - 1.0 / p.branch_every as f64).abs() < 0.02, "branch frac {bf}");
    }

    #[test]
    fn memory_addresses_stay_in_their_regions() {
        for p in ROSTER {
            let mut g = TraceGenerator::new(p, 9);
            for _ in 0..20_000 {
                let op = g.next_op();
                if let Some(a) = op.mem_addr {
                    let a = a.raw();
                    // The folded hot-set mapping spreads the hottest
                    // eighth over up to 40 set-strides of 8192 blocks.
                    let hot_span = p.hot_footprint.bytes() + 41 * 8192 * 128;
                    let in_hot = (HOT_BASE..HOT_BASE + hot_span).contains(&a);
                    let in_stream = (STREAM_BASE
                        ..STREAM_BASE + p.stream_footprint.bytes() + 32)
                        .contains(&a);
                    assert!(in_hot || in_stream, "{}: stray address {a:#x}", p.name);
                }
            }
        }
    }

    #[test]
    fn pcs_walk_the_code_loop() {
        let p = by_name("gcc").unwrap();
        let mut g = TraceGenerator::new(p, 5);
        let span = p.code_footprint.bytes();
        for _ in 0..10_000 {
            let pc = g.next_op().pc.raw();
            assert!((CODE_BASE..CODE_BASE + span).contains(&pc));
        }
    }

    #[test]
    fn fp_apps_emit_fp_ops() {
        let mut g = gen("swim");
        let fp = (0..10_000)
            .filter(|_| {
                matches!(g.next_op().class, OpClass::FpAlu | OpClass::FpMul)
            })
            .count();
        assert!(fp > 1000, "fp app must emit fp ops, got {fp}");
        let mut g = gen("mcf");
        let fp = (0..10_000)
            .filter(|_| {
                matches!(g.next_op().class, OpClass::FpAlu | OpClass::FpMul)
            })
            .count();
        assert_eq!(fp, 0, "int app must not emit fp ops");
    }

    #[test]
    fn pointer_chasers_chain_dependencies() {
        // mcf's dep_load_frac (0.45) must yield more tightly-dependent
        // loads than swim's (0.06); fresh hot-region loads chain in both.
        let chain_rate = |name: &str| {
            let mut g = gen(name);
            let mut loads = 0;
            let mut chained = 0;
            for _ in 0..50_000 {
                let op = g.next_op();
                if op.class == OpClass::Load {
                    loads += 1;
                    if op.dep1 > 0 && op.dep1 <= 4 {
                        chained += 1;
                    }
                }
            }
            chained as f64 / loads as f64
        };
        let mcf = chain_rate("mcf");
        let swim = chain_rate("swim");
        assert!(mcf > swim + 0.05, "mcf {mcf} vs swim {swim}");
        assert!(mcf > 0.3, "pointer chaser must chain often: {mcf}");
    }

    #[test]
    fn state_roundtrip_resumes_the_exact_stream() {
        for p in ROSTER {
            let mut g = TraceGenerator::new(p, 17);
            for _ in 0..50_000 {
                let _ = g.next_op();
            }
            let mut e = simbase::snapshot::Encoder::new();
            g.save_state(&mut e);
            let bytes = e.into_bytes();

            let mut restored = TraceGenerator::new(p, 17);
            let mut d = simbase::snapshot::Decoder::new(&bytes);
            restored.load_state(&mut d).expect("load");
            d.finish().expect("no trailing bytes");
            for i in 0..20_000 {
                assert_eq!(
                    g.next_op(),
                    restored.next_op(),
                    "{}: op {i} diverged after restore",
                    p.name
                );
            }
        }
    }

    #[test]
    fn position_survives_state_roundtrip() {
        use cpu::uop::TraceCursor;
        let p = by_name("galgel").unwrap();
        let mut g = TraceGenerator::new(p, 17);
        assert_eq!(g.position(), 0);
        for _ in 0..12_345 {
            let _ = g.next_op();
        }
        assert_eq!(g.position(), 12_345);

        let mut e = simbase::snapshot::Encoder::new();
        g.save_state(&mut e);
        let bytes = e.into_bytes();
        let mut restored = TraceGenerator::new(p, 17);
        let mut d = simbase::snapshot::Decoder::new(&bytes);
        restored.load_state(&mut d).expect("load");
        // A restored stream knows the absolute offset its snapshot was
        // taken at — the contract offset-addressed (sampled) runs rely on.
        assert_eq!(restored.position(), 12_345);
        let _ = restored.next_op();
        assert_eq!(restored.position(), 12_346);
    }

    #[test]
    fn streaming_bursts_are_sequential() {
        // With hot_frac forced to 0 and l1_reuse 0, consecutive lines
        // should often differ by exactly 32 bytes.
        let mut p = by_name("swim").unwrap();
        p.hot_frac = 0.0;
        p.l1_reuse = 0.0;
        let mut g = TraceGenerator::new(p, 11);
        let mut prev = None;
        let mut seq = 0;
        let mut total = 0;
        let mut skip_init = 70_000; // skip the initialization sweep
        while skip_init > 0 {
            let op = g.next_op();
            if op.mem_addr.is_some() {
                skip_init -= 1;
            }
        }
        for _ in 0..50_000 {
            let op = g.next_op();
            if let Some(a) = op.mem_addr {
                let line = a.raw() & !31;
                if let Some(pl) = prev {
                    total += 1;
                    if line == pl + 128 || line == pl {
                        seq += 1;
                    }
                }
                prev = Some(line);
            }
        }
        assert!(
            seq as f64 / total as f64 > 0.7,
            "streaming must be mostly sequential: {seq}/{total}"
        );
    }
}
