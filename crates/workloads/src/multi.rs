//! Per-core trace streams for chip-multiprocessor runs.
//!
//! A [`CoreStream`] wraps one [`TraceGenerator`] and gives it a private
//! slice of the address space: every code and data address is offset by
//! `core << PRIVATE_SHIFT`, so two cores running the *same* synthetic
//! benchmark never alias in the shared lower-level cache by accident.
//! A fraction of data accesses (the **shared-region knob**, in per-mille)
//! is instead folded into one common [`SHARED_WINDOW`]-sized region that
//! every core maps identically — the traffic that exercises the
//! invalidation-lite sharing model.
//!
//! **Single-core is a byte-for-byte passthrough**: with `cores == 1` no
//! offset is applied and the decision RNG is never drawn, so a 1-core CMP
//! run consumes exactly the stream a single-core run would.

use crate::generator::TraceGenerator;
use crate::profiles::BenchProfile;
use cpu::uop::{MicroOp, TraceSource};
use simbase::rng::SimRng;
use simbase::snapshot::{Decoder, Encoder, SnapshotError};
use simbase::Addr;

/// Bits of private address space per core; generators stay far below
/// `1 << PRIVATE_SHIFT`, so per-core slices never overlap.
pub const PRIVATE_SHIFT: u32 = 40;

/// Base of the core-shared data region — above every private slice
/// (`8 << 40 < 1 << 46`), so shared and private traffic cannot collide.
pub const SHARED_BASE: u64 = 1 << 46;

/// Size of the shared region every core folds its shared accesses into.
/// A power of two; masking keeps 32-B line alignment intact.
pub const SHARED_WINDOW: u64 = 4 << 20;

/// One core's view of its benchmark trace.
#[derive(Debug)]
pub struct CoreStream {
    gen: TraceGenerator,
    /// Decides per data access whether it targets the shared region.
    /// Drawn only when `cores > 1`, keeping single-core bit-identical.
    share_rng: SimRng,
    core: u32,
    cores: u32,
    shared_milli: u32,
}

impl CoreStream {
    /// A stream for `core` of `cores`, running `profile` seeded from the
    /// run's trace seed. `shared_milli` is the per-mille fraction of data
    /// accesses folded into the shared region (0 = fully private,
    /// multiprogrammed; ignored when `cores == 1`).
    ///
    /// # Panics
    ///
    /// Panics if `core >= cores`, `cores == 0`, or `shared_milli > 1000`.
    pub fn new(profile: BenchProfile, seed: u64, core: u32, cores: u32, shared_milli: u32) -> Self {
        assert!(cores > 0 && core < cores, "core {core} of {cores}");
        assert!(shared_milli <= 1000, "shared_milli is per-mille");
        // Core 0 keeps the seed unchanged (the single-core passthrough);
        // later cores decorrelate so identical profiles do not lockstep.
        let gen_seed = seed ^ (core as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        CoreStream {
            gen: TraceGenerator::new(profile, gen_seed),
            share_rng: SimRng::seeded(seed ^ 0x5348_4152_4544 ^ ((core as u64) << 32)),
            core,
            cores,
            shared_milli,
        }
    }

    /// The wrapped benchmark profile.
    pub fn profile(&self) -> &BenchProfile {
        self.gen.profile()
    }

    /// Maps a generator data address into this core's view: shared-region
    /// fold or private offset.
    fn map_data(&mut self, addr: Addr) -> Addr {
        if self.share_rng.below(1000) < self.shared_milli as u64 {
            Addr::new(SHARED_BASE + (addr.raw() & (SHARED_WINDOW - 1)))
        } else {
            Addr::new(addr.raw() + ((self.core as u64) << PRIVATE_SHIFT))
        }
    }

    /// Serializes generator and decision-RNG state (for CMP warm-up
    /// checkpoints).
    pub fn save_state(&self, e: &mut Encoder) {
        self.gen.save_state(e);
        for w in self.share_rng.state() {
            e.put_u64(w);
        }
    }

    /// Restores state written by [`CoreStream::save_state`].
    pub fn load_state(&mut self, d: &mut Decoder) -> Result<(), SnapshotError> {
        self.gen.load_state(d)?;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = d.u64()?;
        }
        self.share_rng = SimRng::from_state(s);
        Ok(())
    }
}

impl TraceSource for CoreStream {
    fn next_op(&mut self) -> MicroOp {
        let mut op = self.gen.next_op();
        if self.cores > 1 {
            op.pc = Addr::new(op.pc.raw() + ((self.core as u64) << PRIVATE_SHIFT));
            if let Some(addr) = op.mem_addr {
                op.mem_addr = Some(self.map_data(addr));
            }
        }
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    fn profile() -> BenchProfile {
        profiles::by_name("galgel").expect("in the roster")
    }

    #[test]
    fn single_core_is_a_pure_passthrough() {
        let mut plain = TraceGenerator::new(profile(), 7);
        let mut wrapped = CoreStream::new(profile(), 7, 0, 1, 500);
        for _ in 0..5_000 {
            assert_eq!(plain.next_op(), wrapped.next_op());
        }
    }

    #[test]
    fn private_traffic_is_disjoint_across_cores() {
        let mut a = CoreStream::new(profile(), 7, 0, 4, 0);
        let mut b = CoreStream::new(profile(), 7, 1, 4, 0);
        let slice = |addr: u64| addr >> PRIVATE_SHIFT;
        for _ in 0..5_000 {
            let (oa, ob) = (a.next_op(), b.next_op());
            assert_eq!(slice(oa.pc.raw()), 0);
            assert_eq!(slice(ob.pc.raw()), 1);
            if let Some(addr) = oa.mem_addr {
                assert_eq!(slice(addr.raw()), 0, "core 0 stays in slice 0");
            }
            if let Some(addr) = ob.mem_addr {
                assert_eq!(slice(addr.raw()), 1, "core 1 stays in slice 1");
            }
        }
    }

    #[test]
    fn shared_knob_routes_the_expected_fraction() {
        let mut s = CoreStream::new(profile(), 7, 1, 4, 250);
        let (mut shared, mut private) = (0u64, 0u64);
        for _ in 0..40_000 {
            if let Some(addr) = s.next_op().mem_addr {
                if addr.raw() >= SHARED_BASE {
                    assert!(addr.raw() < SHARED_BASE + SHARED_WINDOW);
                    shared += 1;
                } else {
                    private += 1;
                }
            }
        }
        let frac = shared as f64 / (shared + private) as f64;
        assert!((0.2..0.3).contains(&frac), "shared fraction {frac} far from 25%");
    }

    #[test]
    fn cores_overlap_only_in_the_shared_window() {
        let mut a = CoreStream::new(profile(), 7, 0, 2, 300);
        let mut b = CoreStream::new(profile(), 7, 1, 2, 300);
        let collect = |s: &mut CoreStream| {
            let mut set = std::collections::BTreeSet::new();
            for _ in 0..20_000 {
                if let Some(addr) = s.next_op().mem_addr {
                    set.insert(addr.raw() >> 7); // 128-B blocks
                }
            }
            set
        };
        let (sa, sb) = (collect(&mut a), collect(&mut b));
        let mut overlap = sa.intersection(&sb).peekable();
        assert!(overlap.peek().is_some(), "some blocks must be shared");
        assert!(
            sa.intersection(&sb).all(|&blk| blk << 7 >= SHARED_BASE),
            "every overlapping block lies in the shared window"
        );
    }

    #[test]
    fn state_roundtrips_through_snapshot() {
        let mut s = CoreStream::new(profile(), 7, 2, 4, 150);
        for _ in 0..3_000 {
            s.next_op();
        }
        let mut e = Encoder::new();
        s.save_state(&mut e);
        let bytes = e.into_bytes();
        let mut twin = CoreStream::new(profile(), 7, 2, 4, 150);
        let mut d = Decoder::new(&bytes);
        twin.load_state(&mut d).expect("loads");
        d.finish().expect("no trailing bytes");
        for _ in 0..3_000 {
            assert_eq!(s.next_op(), twin.next_op());
        }
    }
}
