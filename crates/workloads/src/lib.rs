//! Synthetic SPEC2K-like workloads (the paper's Table 3 roster).
//!
//! The paper simulates 15 SPEC2K applications with `ref` inputs on
//! SimpleScalar, fast-forwarding 5 billion instructions and running 5
//! billion. Neither SPEC2K binaries nor an Alpha functional simulator are
//! available here, so this crate substitutes **parameterized synthetic
//! trace generators**: each benchmark is described by a
//! [`profiles::BenchProfile`] capturing the statistics the paper's results
//! actually depend on — instruction mix, L2 accesses per kilo-instruction,
//! hot-working-set size relative to the d-group sizes, streaming traffic,
//! pointer-chasing dependence, and branch predictability — and
//! [`generator::TraceGenerator`] turns a profile into a deterministic
//! micro-op stream for the [`cpu`] core model. See DESIGN.md §3 for why
//! this substitution preserves the paper's conclusions.
//!
//! # Examples
//!
//! ```
//! use workloads::{profiles, generator::TraceGenerator};
//! use cpu::uop::TraceSource;
//!
//! let applu = profiles::by_name("applu").expect("in the roster");
//! let mut gen = TraceGenerator::new(applu, 42);
//! let op = gen.next_op();
//! assert!(op.pc.raw() > 0);
//! ```

pub mod generator;
pub mod multi;
pub mod profiles;
pub mod tracefile;

pub use generator::TraceGenerator;
pub use multi::CoreStream;
pub use profiles::{BenchProfile, LoadClass, ROSTER};
