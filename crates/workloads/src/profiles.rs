//! The benchmark roster: per-application statistical profiles.
//!
//! Parameters are calibrated so the full-system simulation lands each
//! application near the paper's Table 3 characterization (base IPC, L2
//! accesses per kilo-instruction, high/low-load class) and so the
//! population's hot working sets straddle the 1-MB / 2-MB / 4-MB d-group
//! sizes the way Figures 7 and 8 require (a substantial drop in
//! fastest-d-group hits between 2-MB and 1-MB d-groups, a small one
//! between 4-MB and 2-MB).

use simbase::Capacity;

/// The paper's split of applications by L2 pressure (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadClass {
    /// Frequent L2 accesses; the class the paper's results focus on.
    HighLoad,
    /// Few L2 accesses; little opportunity for the L2 to matter.
    LowLoad,
}

/// Statistical profile of one synthetic benchmark.
#[derive(Debug, Clone, Copy)]
pub struct BenchProfile {
    /// SPEC2K-style name.
    pub name: &'static str,
    /// High- or low-load class (Table 3).
    pub class: LoadClass,
    /// True for floating-point benchmarks.
    pub fp: bool,
    /// Fraction of instructions that are loads.
    pub load_frac: f64,
    /// Fraction of instructions that are stores.
    pub store_frac: f64,
    /// One branch every `branch_every` instructions.
    pub branch_every: u32,
    /// Per-site branch taken-bias (predictability knob).
    pub branch_bias: f64,
    /// Fraction of new-line draws that reuse a recently touched line
    /// (absorbed by the L1; the main APKI knob).
    pub l1_reuse: f64,
    /// Hot (heavily reused) data footprint.
    pub hot_footprint: Capacity,
    /// Fraction of non-reuse memory accesses that go to the hot region.
    pub hot_frac: f64,
    /// Total streaming footprint (cold, low-reuse traffic).
    pub stream_footprint: Capacity,
    /// Mean consecutive 32-B lines per streaming burst.
    pub spatial_run: u32,
    /// Fraction of loads whose value feeds the next instruction
    /// (pointer-chasing serialization).
    pub dep_load_frac: f64,
    /// Static code footprint (drives L1-I misses).
    pub code_footprint: Capacity,
}

impl BenchProfile {
    /// Fraction of instructions that touch memory.
    pub fn mem_frac(&self) -> f64 {
        self.load_frac + self.store_frac
    }
}

/// Builds the roster entry for `name`, if it is one of the 15 applications.
pub fn by_name(name: &str) -> Option<BenchProfile> {
    ROSTER.iter().copied().find(|p| p.name == name)
}

/// Names of the high-load applications, in the figures' order.
pub fn high_load() -> impl Iterator<Item = BenchProfile> {
    ROSTER.iter().copied().filter(|p| p.class == LoadClass::HighLoad)
}

/// Names of the low-load applications.
pub fn low_load() -> impl Iterator<Item = BenchProfile> {
    ROSTER.iter().copied().filter(|p| p.class == LoadClass::LowLoad)
}

macro_rules! kib {
    ($n:expr) => {
        Capacity::from_kib($n)
    };
}

/// The 15-application roster (Table 3).
///
/// Footprints are chosen so that, like the paper's population: most hot
/// working sets exceed 1 MB (hurting the 8-d-group NuRAPID) but fit in
/// 2 MB (helping the 4-d-group), `art` and `mcf` overflow even 2 MB, and
/// the low-load pair barely touches the L2.
pub const ROSTER: [BenchProfile; 15] = [
    BenchProfile {
        name: "applu",
        class: LoadClass::HighLoad,
        fp: true,
        load_frac: 0.26,
        store_frac: 0.09,
        branch_every: 24,
        branch_bias: 0.97,
        l1_reuse: 0.932,
        hot_footprint: kib!(1792),
        hot_frac: 0.87,
        stream_footprint: kib!(24 * 1024),
        spatial_run: 12,
        dep_load_frac: 0.12,
        code_footprint: kib!(40),
    },
    BenchProfile {
        name: "apsi",
        class: LoadClass::HighLoad,
        fp: true,
        load_frac: 0.25,
        store_frac: 0.10,
        branch_every: 20,
        branch_bias: 0.95,
        l1_reuse: 0.96,
        hot_footprint: kib!(1536),
        hot_frac: 0.88,
        stream_footprint: kib!(16 * 1024),
        spatial_run: 8,
        dep_load_frac: 0.15,
        code_footprint: kib!(48),
    },
    BenchProfile {
        name: "art",
        class: LoadClass::HighLoad,
        fp: true,
        load_frac: 0.30,
        store_frac: 0.07,
        branch_every: 12,
        branch_bias: 0.96,
        l1_reuse: 0.903,
        hot_footprint: kib!(3584),
        hot_frac: 0.85,
        stream_footprint: kib!(4 * 1024),
        spatial_run: 4,
        dep_load_frac: 0.25,
        code_footprint: kib!(24),
    },
    BenchProfile {
        name: "bzip2",
        class: LoadClass::HighLoad,
        fp: false,
        load_frac: 0.24,
        store_frac: 0.11,
        branch_every: 7,
        branch_bias: 0.88,
        l1_reuse: 0.968,
        hot_footprint: kib!(1280),
        hot_frac: 0.89,
        stream_footprint: kib!(8 * 1024),
        spatial_run: 10,
        dep_load_frac: 0.20,
        code_footprint: kib!(32),
    },
    BenchProfile {
        name: "equake",
        class: LoadClass::HighLoad,
        fp: true,
        load_frac: 0.33,
        store_frac: 0.08,
        branch_every: 16,
        branch_bias: 0.96,
        l1_reuse: 0.945,
        hot_footprint: kib!(1920),
        hot_frac: 0.87,
        stream_footprint: kib!(20 * 1024),
        spatial_run: 10,
        dep_load_frac: 0.30,
        code_footprint: kib!(32),
    },
    BenchProfile {
        name: "galgel",
        class: LoadClass::HighLoad,
        fp: true,
        load_frac: 0.29,
        store_frac: 0.07,
        branch_every: 18,
        branch_bias: 0.97,
        l1_reuse: 0.954,
        hot_footprint: kib!(1024),
        hot_frac: 0.9,
        stream_footprint: kib!(6 * 1024),
        spatial_run: 14,
        dep_load_frac: 0.10,
        code_footprint: kib!(40),
    },
    BenchProfile {
        name: "gcc",
        class: LoadClass::HighLoad,
        fp: false,
        load_frac: 0.25,
        store_frac: 0.13,
        branch_every: 5,
        branch_bias: 0.90,
        l1_reuse: 0.97,
        hot_footprint: kib!(1408),
        hot_frac: 0.88,
        stream_footprint: kib!(12 * 1024),
        spatial_run: 6,
        dep_load_frac: 0.22,
        code_footprint: kib!(56),
    },
    BenchProfile {
        name: "mcf",
        class: LoadClass::HighLoad,
        fp: false,
        load_frac: 0.31,
        store_frac: 0.09,
        branch_every: 6,
        branch_bias: 0.92,
        l1_reuse: 0.90,
        hot_footprint: kib!(5120),
        hot_frac: 0.8,
        stream_footprint: kib!(32 * 1024),
        spatial_run: 2,
        dep_load_frac: 0.45,
        code_footprint: kib!(20),
    },
    BenchProfile {
        name: "mgrid",
        class: LoadClass::HighLoad,
        fp: true,
        load_frac: 0.32,
        store_frac: 0.06,
        branch_every: 30,
        branch_bias: 0.98,
        l1_reuse: 0.951,
        hot_footprint: kib!(1664),
        hot_frac: 0.87,
        stream_footprint: kib!(28 * 1024),
        spatial_run: 16,
        dep_load_frac: 0.08,
        code_footprint: kib!(28),
    },
    BenchProfile {
        name: "parser",
        class: LoadClass::HighLoad,
        fp: false,
        load_frac: 0.23,
        store_frac: 0.11,
        branch_every: 6,
        branch_bias: 0.91,
        l1_reuse: 0.957,
        hot_footprint: kib!(1152),
        hot_frac: 0.89,
        stream_footprint: kib!(10 * 1024),
        spatial_run: 4,
        dep_load_frac: 0.35,
        code_footprint: kib!(64),
    },
    BenchProfile {
        name: "swim",
        class: LoadClass::HighLoad,
        fp: true,
        load_frac: 0.28,
        store_frac: 0.10,
        branch_every: 40,
        branch_bias: 0.99,
        l1_reuse: 0.947,
        hot_footprint: kib!(2048),
        hot_frac: 0.84,
        stream_footprint: kib!(30 * 1024),
        spatial_run: 20,
        dep_load_frac: 0.06,
        code_footprint: kib!(16),
    },
    BenchProfile {
        name: "twolf",
        class: LoadClass::HighLoad,
        fp: false,
        load_frac: 0.26,
        store_frac: 0.09,
        branch_every: 7,
        branch_bias: 0.89,
        l1_reuse: 0.953,
        hot_footprint: kib!(1344),
        hot_frac: 0.89,
        stream_footprint: kib!(4 * 1024),
        spatial_run: 3,
        dep_load_frac: 0.28,
        code_footprint: kib!(56),
    },
    BenchProfile {
        name: "vpr",
        class: LoadClass::HighLoad,
        fp: false,
        load_frac: 0.27,
        store_frac: 0.10,
        branch_every: 8,
        branch_bias: 0.90,
        l1_reuse: 0.96,
        hot_footprint: kib!(1216),
        hot_frac: 0.89,
        stream_footprint: kib!(6 * 1024),
        spatial_run: 4,
        dep_load_frac: 0.30,
        code_footprint: kib!(48),
    },
    BenchProfile {
        name: "lucas",
        class: LoadClass::LowLoad,
        fp: true,
        load_frac: 0.22,
        store_frac: 0.08,
        branch_every: 36,
        branch_bias: 0.98,
        l1_reuse: 0.981,
        hot_footprint: kib!(512),
        hot_frac: 0.93,
        stream_footprint: kib!(8 * 1024),
        spatial_run: 24,
        dep_load_frac: 0.05,
        code_footprint: kib!(16),
    },
    BenchProfile {
        name: "wupwise",
        class: LoadClass::LowLoad,
        fp: true,
        load_frac: 0.24,
        store_frac: 0.09,
        branch_every: 28,
        branch_bias: 0.98,
        l1_reuse: 0.987,
        hot_footprint: kib!(640),
        hot_frac: 0.94,
        stream_footprint: kib!(6 * 1024),
        spatial_run: 16,
        dep_load_frac: 0.08,
        code_footprint: kib!(24),
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_has_fifteen_unique_apps() {
        assert_eq!(ROSTER.len(), 15);
        let mut names: Vec<_> = ROSTER.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 15, "names must be unique");
    }

    #[test]
    fn class_split_matches_table3() {
        // 13 high-load, 2 low-load shown; the paper shows a high-load
        // focused subset.
        assert_eq!(high_load().count(), 13);
        assert_eq!(low_load().count(), 2);
    }

    #[test]
    fn by_name_finds_and_rejects() {
        assert!(by_name("mcf").is_some());
        assert!(by_name("doom3").is_none());
        assert_eq!(by_name("applu").unwrap().name, "applu");
    }

    #[test]
    fn fractions_are_sane() {
        for p in ROSTER {
            assert!(p.mem_frac() > 0.2 && p.mem_frac() < 0.5, "{}", p.name);
            assert!(p.branch_bias > 0.5 && p.branch_bias <= 1.0, "{}", p.name);
            assert!(p.l1_reuse >= 0.0 && p.l1_reuse < 1.0, "{}", p.name);
            assert!(p.hot_frac > 0.0 && p.hot_frac <= 1.0, "{}", p.name);
            assert!(p.spatial_run >= 1, "{}", p.name);
        }
    }

    #[test]
    fn hot_footprints_straddle_the_dgroup_sizes() {
        // Figures 7/8 need working sets that mostly exceed 1 MB but fit in
        // 2 MB, with a couple overflowing 2 MB.
        let over_1mb = ROSTER
            .iter()
            .filter(|p| p.hot_footprint.bytes() > 1024 * 1024)
            .count();
        let over_2mb = ROSTER
            .iter()
            .filter(|p| p.hot_footprint.bytes() > 2 * 1024 * 1024)
            .count();
        assert!(over_1mb >= 9, "most hot sets must exceed 1 MB ({over_1mb})");
        assert!((2..=4).contains(&over_2mb), "a few exceed 2 MB ({over_2mb})");
    }

    #[test]
    fn low_load_apps_have_high_l1_reuse() {
        for p in low_load() {
            assert!(p.l1_reuse > 0.9, "{} must rarely reach the L2", p.name);
        }
    }
}
