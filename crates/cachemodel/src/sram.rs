//! SRAM array access-time and energy formulas.
//!
//! Access time of a monolithic (tagless) data array grows superlinearly
//! with capacity — decoder depth, wordline/bitline length, and internal
//! routing all grow — which is why the paper's larger d-groups are slower
//! than NUCA's 64-KB banks even before global wires are counted. Dynamic
//! energy per access is dominated by the fixed cost of reading one 128-B
//! block (senseamps + output drivers) plus a slowly growing decode/select
//! term.

use crate::tech::Tech;
use simbase::Capacity;

/// Reference capacity for the scaling formulas (1 MiB).
const REF_BYTES: f64 = 1024.0 * 1024.0;

/// Internal access time (ps) of a tagless data array of the given capacity:
/// decoder + wordline/bitline + senseamp + internal routing, excluding the
/// global wires to reach the array.
///
/// Calibrated so that, combined with the floorplan route distances, the
/// fastest d-group of the paper's 8/4/2-d-group NuRAPIDs costs 12/14/19
/// cycles (Table 4).
pub fn data_access_ps(capacity: Capacity) -> f64 {
    let x = capacity.bytes() as f64 / REF_BYTES;
    562.0 + 128.0 * x.powf(1.524)
}

/// Dynamic energy (nJ) of one block access to a tagless data array of the
/// given capacity: a fixed block-readout term plus a slowly growing
/// decode/select term.
pub fn data_access_nj(capacity: Capacity) -> f64 {
    let x = capacity.bytes() as f64 / (64.0 * 1024.0);
    0.08 + 0.017 * x.max(1.0).log2()
}

/// Model of a set-associative tag array probed before the data array
/// (sequential tag-data access, paper Section 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TagArray {
    entries: u64,
    entry_bits: u32,
    assoc: u32,
}

impl TagArray {
    /// A tag array covering `cache_capacity` of `block_bytes` blocks with
    /// `assoc` ways and `entry_bits`-bit entries (tag + state + any
    /// pointers).
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or the capacity is not a multiple of
    /// the block size.
    pub fn new(cache_capacity: Capacity, block_bytes: u64, assoc: u32, entry_bits: u32) -> Self {
        assert!(block_bytes > 0 && assoc > 0 && entry_bits > 0, "zero parameter");
        assert!(
            cache_capacity.bytes().is_multiple_of(block_bytes),
            "capacity must be a multiple of the block size"
        );
        TagArray {
            entries: cache_capacity.bytes() / block_bytes,
            entry_bits,
            assoc,
        }
    }

    /// Number of tag entries (one per cache block).
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Total tag storage in bytes.
    pub fn storage_bytes(&self) -> u64 {
        (self.entries * self.entry_bits as u64).div_ceil(8)
    }

    /// Probe latency in ps: decode the set, read all ways, compare.
    ///
    /// Calibrated so the paper's 8-MB, 8-way tag array (64 K entries) costs
    /// 8 cycles at 5 GHz (Table 4's note that NuRAPID latencies "include 8
    /// cycles for the 8-way tag latency").
    pub fn probe_ps(&self) -> f64 {
        let sets = (self.entries / self.assoc as u64).max(1) as f64;
        // decode ~ log2(sets); compare ~ log2(assoc); array access grows
        // with the square root of the storage footprint.
        330.0 + 65.0 * sets.log2() + 120.0 * (self.assoc as f64).log2().max(1.0) / 3.0
            + 6.0 * (self.storage_bytes() as f64 / 1024.0).sqrt()
    }

    /// Probe latency in whole cycles.
    pub fn probe_cycles(&self, tech: &Tech) -> u64 {
        tech.ps_to_cycles(self.probe_ps())
    }

    /// Dynamic energy (nJ) of one probe: reads one set row (`assoc` entries)
    /// and drives the comparators.
    pub fn probe_nj(&self) -> f64 {
        let row_bits = (self.assoc * self.entry_bits) as f64;
        0.02 + 0.00004 * row_bits + 0.004 * (self.storage_bytes() as f64 / (64.0 * 1024.0)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_access_time_grows_superlinearly() {
        let t1 = data_access_ps(Capacity::from_mib(1));
        let t2 = data_access_ps(Capacity::from_mib(2));
        let t4 = data_access_ps(Capacity::from_mib(4));
        assert!(t2 - t1 < t4 - t2, "growth must accelerate: {t1} {t2} {t4}");
        // Calibration anchors (see Table 4 derivation).
        assert!((t1 - 690.0).abs() < 5.0, "t(1MB)={t1}");
        assert!((t2 - 930.0).abs() < 10.0, "t(2MB)={t2}");
        assert!((t4 - 1620.0).abs() < 15.0, "t(4MB)={t4}");
    }

    #[test]
    fn small_bank_is_fast() {
        let t = data_access_ps(Capacity::from_kib(64));
        assert!(t < 600.0, "64KB bank at {t} ps");
    }

    #[test]
    fn data_energy_is_mostly_fixed() {
        let e64k = data_access_nj(Capacity::from_kib(64));
        let e2m = data_access_nj(Capacity::from_mib(2));
        assert!(e2m > e64k);
        assert!(e2m < 2.5 * e64k, "energy must grow slowly: {e64k} vs {e2m}");
    }

    #[test]
    fn paper_tag_array_is_8_cycles() {
        // 8 MB, 128-B blocks, 8-way; 51-bit tag entries plus a 16-bit
        // forward pointer (Section 2.4.3).
        let tag = TagArray::new(Capacity::from_mib(8), 128, 8, 51 + 16);
        assert_eq!(tag.probe_cycles(&Tech::micro2003_70nm()), 8);
        assert_eq!(tag.entries(), 65536);
    }

    #[test]
    fn tag_storage_size_matches_section_243() {
        // Section 2.4.3: 16-bit pointers for an 8-MB/128-B cache amount to
        // 128 KB of forward pointers (64 K entries x 16 bits).
        let tag = TagArray::new(Capacity::from_mib(8), 128, 8, 16);
        assert_eq!(tag.storage_bytes(), 128 * 1024);
    }

    #[test]
    fn small_bank_tag_is_faster_and_cheaper() {
        let big = TagArray::new(Capacity::from_mib(8), 128, 8, 67);
        let small = TagArray::new(Capacity::from_kib(64), 128, 16, 51);
        assert!(small.probe_ps() < big.probe_ps());
        assert!(small.probe_nj() < big.probe_nj());
    }

    #[test]
    fn tag_probe_energy_below_data_access() {
        // Section 1: "the entire tag array is smaller than even one data
        // way" — probing tags must cost less than a data-array access.
        let tag = TagArray::new(Capacity::from_mib(8), 128, 8, 67);
        assert!(tag.probe_nj() < data_access_nj(Capacity::from_mib(1)));
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn tag_rejects_misaligned_capacity() {
        let _ = TagArray::new(Capacity::from_bytes(100), 128, 8, 51);
    }

    #[test]
    #[should_panic(expected = "zero parameter")]
    fn tag_rejects_zero_assoc() {
        let _ = TagArray::new(Capacity::from_mib(1), 128, 0, 51);
    }
}
