//! Derived per-organization latencies and energies: the numbers Table 2 and
//! Table 4 report and the simulators consume.

use crate::sram::{self, TagArray};
use crate::tech::Tech;
use floorplan::banks::BankPlan;
use floorplan::dgroups::DGroupPlan;
use floorplan::LShapeFloorplan;
use simbase::{Capacity, EnergyNj};

/// Block size used in every organization the paper evaluates (128 B).
pub const BLOCK_BYTES: u64 = 128;

/// Tag entry width for NuRAPID: 51-bit tag/state plus a 16-bit forward
/// pointer (Section 2.4.3's fully flexible pointer for an 8-MB/128-B cache).
pub const NURAPID_TAG_ENTRY_BITS: u32 = 51 + 16;

/// The complete physical description of a NuRAPID cache: tag array latency
/// and energy plus per-d-group latency and energy.
#[derive(Debug, Clone)]
pub struct NuRapidGeometry {
    capacity: Capacity,
    assoc: u32,
    tag: TagArray,
    plan: DGroupPlan,
    /// Total (tag + data + route) latency per d-group, in cycles.
    dgroup_latency: Vec<u64>,
    /// Data-array + route energy per d-group access, in nJ.
    dgroup_energy: Vec<EnergyNj>,
    /// Cached tag-array probe latency, in cycles.
    tag_latency: u64,
    /// Cached data-array occupancy per operation, in cycles.
    array_occupancy: u64,
}

impl NuRapidGeometry {
    /// Builds the paper's NuRAPID: `capacity` (8 MB in the evaluation),
    /// 8-way tags, 128-B blocks, `n_dgroups` equal d-groups on the
    /// L-shaped floorplan.
    ///
    /// # Panics
    ///
    /// Panics if `n_dgroups` does not evenly divide the floorplan.
    pub fn micro2003(capacity: Capacity, n_dgroups: usize) -> Self {
        Self::new(Tech::micro2003_70nm(), capacity, 8, n_dgroups)
    }

    /// Builds a NuRAPID geometry with explicit technology and associativity.
    pub fn new(tech: Tech, capacity: Capacity, assoc: u32, n_dgroups: usize) -> Self {
        Self::new_on(tech, &LShapeFloorplan::micro2003(capacity), assoc, n_dgroups)
    }

    /// Builds a NuRAPID geometry over an explicit floorplan (e.g.
    /// [`LShapeFloorplan::rectangular`]).
    pub fn new_on(tech: Tech, fp: &LShapeFloorplan, assoc: u32, n_dgroups: usize) -> Self {
        let capacity = fp.capacity();
        let plan = DGroupPlan::partition(fp, n_dgroups);
        let tag = TagArray::new(capacity, BLOCK_BYTES, assoc, NURAPID_TAG_ENTRY_BITS);
        let tag_ps = tag.probe_ps();
        let data_ps = sram::data_access_ps(plan.dgroup_capacity());
        let data_nj = sram::data_access_nj(plan.dgroup_capacity());
        let mut dgroup_latency = Vec::with_capacity(n_dgroups);
        let mut dgroup_energy = Vec::with_capacity(n_dgroups);
        for g in 0..n_dgroups {
            let mm = plan.route_mm(g);
            dgroup_latency.push(tech.ps_to_cycles(tag_ps + data_ps + tech.route_ps(mm)));
            dgroup_energy.push(EnergyNj::new(data_nj + tech.route_nj(mm)));
        }
        let tag_latency = tag.probe_cycles(&tech);
        let array_occupancy = (tech.ps_to_cycles(data_ps) / 2).max(2);
        NuRapidGeometry {
            capacity,
            assoc,
            tag,
            plan,
            dgroup_latency,
            dgroup_energy,
            tag_latency,
            array_occupancy,
        }
    }

    /// Total cache capacity.
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// Tag-array associativity (data placement is fully distance
    /// associative and has no per-set restriction).
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Number of d-groups.
    pub fn n_dgroups(&self) -> usize {
        self.dgroup_latency.len()
    }

    /// Capacity of each d-group.
    pub fn dgroup_capacity(&self) -> Capacity {
        self.plan.dgroup_capacity()
    }

    /// Block frames per d-group.
    pub fn frames_per_dgroup(&self) -> usize {
        (self.plan.dgroup_capacity().bytes() / BLOCK_BYTES) as usize
    }

    /// Probe latency of the centralized tag array, in cycles.
    pub fn tag_latency_cycles(&self) -> u64 {
        self.tag_latency
    }

    /// Energy of one tag-array probe.
    pub fn tag_energy(&self) -> EnergyNj {
        EnergyNj::new(self.tag.probe_nj())
    }

    /// End-to-end hit latency to d-group `g`: sequential tag access plus
    /// data-array access plus round-trip wires.
    pub fn dgroup_latency_cycles(&self, g: usize) -> u64 {
        self.dgroup_latency[g]
    }

    /// Data-side latency to d-group `g` (excluding the tag probe), used
    /// when a swap touches the data arrays without re-probing the tags.
    pub fn dgroup_data_latency_cycles(&self, g: usize) -> u64 {
        self.dgroup_latency[g] - self.tag_latency_cycles()
    }

    /// Energy of one data access (read or write) to d-group `g`, including
    /// routing but excluding the tag probe.
    pub fn dgroup_access_energy(&self, g: usize) -> EnergyNj {
        self.dgroup_energy[g]
    }

    /// Cycles the data arrays are *occupied* per operation. The d-group is
    /// built from many subarrays (Section 3.3) and accesses are pipelined
    /// across them, so back-to-back operations can overlap everything but
    /// the subarray cycle itself: occupancy is half the internal access
    /// time, floor two cycles. This is what one operation holds the single
    /// port for.
    pub fn array_occupancy_cycles(&self) -> u64 {
        self.array_occupancy
    }

    /// Latency (cycles) of the d-group holding the `mb`-th megabyte
    /// (0-based, nearest-first) — the presentation used by Table 4.
    pub fn latency_of_mb(&self, mb: usize) -> u64 {
        let mb_per_group = self.dgroup_capacity().mib() as usize;
        self.dgroup_latency_cycles(mb / mb_per_group)
    }

    /// The floorplan partition underlying this geometry.
    pub fn plan(&self) -> &DGroupPlan {
        &self.plan
    }
}

/// The physical description of the best-performing D-NUCA: 16-way, 128 ×
/// 64-KB banks, 8 bank positions ("d-groups") per bank set, parallel
/// tag-data access within each bank, switched network between banks.
#[derive(Debug, Clone)]
pub struct DnucaGeometry {
    capacity: Capacity,
    /// Per-bank total access latency (bank + network), nearest-first.
    bank_latency: Vec<u64>,
    /// Per-bank access energy (tag + data + network), nearest-first.
    bank_energy: Vec<EnergyNj>,
    /// Per-bank switched-network hop count, nearest-first.
    bank_hops: Vec<u64>,
    n_bank_positions: usize,
}

impl DnucaGeometry {
    /// Fixed bank access latency in cycles (parallel tag+data of a 64-KB
    /// bank) plus the core's network interface.
    const BANK_BASE_CYCLES: u64 = 5;

    /// Builds the paper's D-NUCA configuration over `capacity` (8 MB in the
    /// evaluation): 128 banks of 64 KB, 8 bank positions per set.
    pub fn micro2003(capacity: Capacity) -> Self {
        Self::new(Tech::micro2003_70nm(), capacity, 128, 8)
    }

    /// The paper's D-NUCA on the "more aggressive, rectangular floorplan"
    /// Section 5.1 says the original NUCA work assumes — bank latencies
    /// come out lower than on the L-shape.
    pub fn micro2003_rectangular(capacity: Capacity) -> Self {
        Self::new_on(
            Tech::micro2003_70nm(),
            &LShapeFloorplan::rectangular(capacity),
            128,
            8,
        )
    }

    /// Builds a D-NUCA geometry with explicit parameters on the L-shaped
    /// floorplan.
    ///
    /// # Panics
    ///
    /// Panics if the bank count does not evenly divide the floorplan or
    /// `n_bank_positions` does not divide `n_banks`.
    pub fn new(tech: Tech, capacity: Capacity, n_banks: usize, n_bank_positions: usize) -> Self {
        Self::new_on(
            tech,
            &LShapeFloorplan::micro2003(capacity),
            n_banks,
            n_bank_positions,
        )
    }

    /// Builds a D-NUCA geometry over an explicit floorplan.
    ///
    /// # Panics
    ///
    /// Panics if the bank count does not evenly divide the floorplan or
    /// `n_bank_positions` does not divide `n_banks`.
    pub fn new_on(
        tech: Tech,
        fp: &LShapeFloorplan,
        n_banks: usize,
        n_bank_positions: usize,
    ) -> Self {
        assert!(
            n_bank_positions > 0 && n_banks.is_multiple_of(n_bank_positions),
            "{n_bank_positions} bank positions must divide {n_banks} banks"
        );
        let capacity = fp.capacity();
        let plan = BankPlan::partition(fp, n_banks);
        let bank_cap = plan.bank_capacity();
        let data_nj = sram::data_access_nj(bank_cap);
        // Each bank has its own small tag array (16 ways of a few sets).
        let bank_tag = TagArray::new(bank_cap, BLOCK_BYTES, 16, 51);
        let mut bank_latency = Vec::with_capacity(n_banks);
        let mut bank_energy = Vec::with_capacity(n_banks);
        let mut bank_hops = Vec::with_capacity(n_banks);
        for b in 0..n_banks {
            let hops = plan.hops(b) as u64;
            bank_latency.push(Self::BANK_BASE_CYCLES + tech.nuca_hop_cycles * hops);
            // 0.08 nJ switch-interface cost even for the closest bank.
            bank_energy.push(EnergyNj::new(
                bank_tag.probe_nj() + data_nj + 0.08 + tech.nuca_hop_nj * hops as f64,
            ));
            bank_hops.push(hops);
        }
        DnucaGeometry {
            capacity,
            bank_latency,
            bank_energy,
            bank_hops,
            n_bank_positions,
        }
    }

    /// Total cache capacity.
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// Number of banks.
    pub fn n_banks(&self) -> usize {
        self.bank_latency.len()
    }

    /// Bank positions per bank set (d-groups per set in the paper's terms).
    pub fn n_bank_positions(&self) -> usize {
        self.n_bank_positions
    }

    /// Number of bank sets (independent columns of banks).
    pub fn n_bank_sets(&self) -> usize {
        self.n_banks() / self.n_bank_positions
    }

    /// Access latency of bank `b` (nearest-first), in cycles.
    pub fn bank_latency_cycles(&self, b: usize) -> u64 {
        self.bank_latency[b]
    }

    /// Access energy of bank `b` (tag + data + network).
    pub fn bank_access_energy(&self, b: usize) -> EnergyNj {
        self.bank_energy[b]
    }

    /// Energy of a *search* of bank `b` that does not return data: the
    /// bank's tag probe plus routing the address over the network. This is
    /// what the non-matching banks of a multicast tag search cost.
    pub fn bank_search_energy(&self, b: usize) -> EnergyNj {
        EnergyNj::new(0.04 + 0.08 * self.bank_hops[b] as f64)
    }

    /// Index of the bank at `position` within bank set `set`
    /// (position 0 = closest). Bank sets interleave across the
    /// nearest-first bank order so every set gets one bank per distance
    /// band.
    pub fn bank_index(&self, set: usize, position: usize) -> usize {
        assert!(set < self.n_bank_sets() && position < self.n_bank_positions);
        position * self.n_bank_sets() + set
    }

    /// `(min, mean, max)` latency over the banks holding the `mb`-th
    /// megabyte (0-based, nearest-first) — Table 4's fourth column.
    pub fn latency_of_mb(&self, mb: usize) -> (u64, f64, u64) {
        let banks_per_mb = self.n_banks() / self.capacity.mib() as usize;
        let s = mb * banks_per_mb;
        let e = s + banks_per_mb;
        let slice = &self.bank_latency[s..e];
        let min = *slice.iter().min().expect("non-empty");
        let max = *slice.iter().max().expect("non-empty");
        let mean = slice.iter().sum::<u64>() as f64 / slice.len() as f64;
        (min, mean, max)
    }
}

/// Energy of one smart-search array access (Table 2: 7-bit partial tags for
/// all 16 ways, 0.19 nJ).
pub fn smart_search_energy() -> EnergyNj {
    EnergyNj::new(0.19)
}

/// Latency of a smart-search array probe in cycles. The array is small
/// (7 bits per block) and sits next to the core, so it resolves in a
/// couple of cycles — fast enough for ss-performance to initiate misses
/// "before accesses to the d-group tag arrays return" (Section 5.4).
pub fn smart_search_latency_cycles() -> u64 {
    2
}

/// Energy of one way-memo table lookup or update. The table holds one
/// way index (5 bits at 18 ways) per set — an order of magnitude narrower
/// than the smart-search array's 7 bits × 16 ways, priced accordingly.
pub fn way_memo_energy() -> EnergyNj {
    EnergyNj::new(0.02)
}

/// Latency of a way-memo table lookup in cycles: a single narrow RAM read
/// next to the controller, resolving faster than the smart-search array.
pub fn way_memo_latency_cycles() -> u64 {
    1
}

/// Energy of decompressing one compressed block on a hit. A BDI/FPC-style
/// decompressor is a few stages of narrow adders and shifters — far
/// cheaper than a bank data access, but not free.
pub fn decompressor_energy() -> EnergyNj {
    EnergyNj::new(0.05)
}

/// Pipeline latency of the block decompressor in cycles (BDI-class
/// designs decompress in 1-2 cycles; FPC in up to 5).
pub fn decompressor_latency_cycles() -> u64 {
    2
}

/// Energy of one L1 access using both ports of the low-latency 64-KB 2-way
/// L1 (Table 2: 0.57 nJ); a single-ported access costs half.
pub fn l1_two_port_energy() -> EnergyNj {
    EnergyNj::new(0.57)
}

/// Energy of one main-memory (off-chip) block transfer. Not part of
/// Table 2; used by the full-system energy accounting with a conventional
/// DRAM-access estimate.
pub fn memory_access_energy() -> EnergyNj {
    EnergyNj::new(30.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo(n: usize) -> NuRapidGeometry {
        NuRapidGeometry::micro2003(Capacity::from_mib(8), n)
    }

    // ---- Table 4 anchors -------------------------------------------------

    #[test]
    fn table4_fastest_dgroup_latencies() {
        // Paper Table 4, first row: 19 / 14 / 12 cycles for the fastest MB
        // of the 2/4/8-d-group NuRAPIDs.
        assert_eq!(geo(2).dgroup_latency_cycles(0), 19);
        assert_eq!(geo(4).dgroup_latency_cycles(0), 14);
        assert_eq!(geo(8).dgroup_latency_cycles(0), 12);
    }

    #[test]
    fn table4_tag_latency_is_8_cycles() {
        for n in [2, 4, 8] {
            assert_eq!(geo(n).tag_latency_cycles(), 8);
        }
    }

    #[test]
    fn table4_slowest_mb_grows_with_dgroup_count() {
        // Paper Section 5.1: "as the number of d-groups increases, the
        // latency of the slowest megabyte increases even as the latency of
        // faster megabytes decreases."
        let slow2 = geo(2).latency_of_mb(7);
        let slow4 = geo(4).latency_of_mb(7);
        let slow8 = geo(8).latency_of_mb(7);
        assert!(slow2 < slow4 && slow4 < slow8, "{slow2} {slow4} {slow8}");
        let fast2 = geo(2).latency_of_mb(0);
        let fast4 = geo(4).latency_of_mb(0);
        let fast8 = geo(8).latency_of_mb(0);
        assert!(fast2 > fast4 && fast4 > fast8);
    }

    #[test]
    fn latencies_monotone_across_dgroups() {
        for n in [2, 4, 8] {
            let g = geo(n);
            for i in 1..n {
                assert!(g.dgroup_latency_cycles(i) > g.dgroup_latency_cycles(i - 1));
            }
        }
    }

    #[test]
    fn latency_of_mb_maps_megabytes_to_groups() {
        let g = geo(4);
        assert_eq!(g.latency_of_mb(0), g.latency_of_mb(1));
        assert_eq!(g.latency_of_mb(2), g.dgroup_latency_cycles(1));
    }

    #[test]
    fn dnuca_mb_averages_track_table4() {
        // Paper Table 4 column 4 averages: 7, 11, 14, 17, 20, 23, 26, 29
        // cycles for MB 1..8. Allow +-2 cycles of model slack.
        let d = DnucaGeometry::micro2003(Capacity::from_mib(8));
        let paper = [7.0, 11.0, 14.0, 17.0, 20.0, 23.0, 26.0, 29.0];
        for (mb, &want) in paper.iter().enumerate() {
            let (_, mean, _) = d.latency_of_mb(mb);
            assert!(
                (mean - want).abs() <= 2.0,
                "MB{}: model {mean:.1} vs paper {want}",
                mb + 1
            );
        }
    }

    #[test]
    fn rectangular_floorplan_lowers_dnuca_latencies() {
        // Section 5.1: D-NUCA's published latencies partly come from a
        // more aggressive rectangular floorplan.
        let ell = DnucaGeometry::micro2003(Capacity::from_mib(8));
        let rect = DnucaGeometry::micro2003_rectangular(Capacity::from_mib(8));
        let mean = |d: &DnucaGeometry| {
            (0..8).map(|mb| d.latency_of_mb(mb).1).sum::<f64>() / 8.0
        };
        assert!(
            mean(&rect) < mean(&ell),
            "rect {} vs L {}",
            mean(&rect),
            mean(&ell)
        );
        // The fastest banks are at least as fast.
        assert!(rect.bank_latency_cycles(0) <= ell.bank_latency_cycles(0));
    }

    #[test]
    fn nurapid_geometry_on_explicit_floorplan() {
        use floorplan::LShapeFloorplan;
        let fp = LShapeFloorplan::rectangular(Capacity::from_mib(8));
        let g = NuRapidGeometry::new_on(Tech::micro2003_70nm(), &fp, 8, 4);
        let ell = NuRapidGeometry::micro2003(Capacity::from_mib(8), 4);
        assert!(g.dgroup_latency_cycles(3) <= ell.dgroup_latency_cycles(3));
    }

    #[test]
    fn dnuca_fastest_banks_beat_nurapid_fastest_dgroup() {
        // Section 5.1: D-NUCA's small close banks are faster than
        // NuRAPID's large d-groups (parallel tag-data, small banks).
        let d = DnucaGeometry::micro2003(Capacity::from_mib(8));
        assert!(d.bank_latency_cycles(0) < geo(8).dgroup_latency_cycles(0));
    }

    // ---- Table 2 anchors -------------------------------------------------

    #[test]
    fn table2_energies_match_paper_within_tolerance() {
        // Paper Table 2 (nJ): tag+access of closest/farthest of 4x2MB:
        // 0.42 / 3.3; closest/farthest of 8x1MB: 0.40 / 4.6.
        let cases = [
            (4usize, 0usize, 0.42),
            (4, 3, 3.3),
            (8, 0, 0.40),
            (8, 7, 4.6),
        ];
        for (n, g, want) in cases {
            let ge = geo(n);
            let got = (ge.tag_energy() + ge.dgroup_access_energy(g)).nj();
            let rel = (got - want).abs() / want;
            assert!(
                rel < 0.30,
                "{n} d-groups, group {g}: model {got:.2} nJ vs paper {want} nJ"
            );
        }
    }

    #[test]
    fn table2_closest_nuca_bank() {
        // Paper Table 2: closest 64-KB NUCA d-group, 0.18 nJ.
        let d = DnucaGeometry::micro2003(Capacity::from_mib(8));
        let got = d.bank_access_energy(0).nj();
        assert!((got - 0.18).abs() / 0.18 < 0.25, "closest bank {got:.3} nJ");
    }

    #[test]
    fn table2_fixed_rows() {
        assert!((smart_search_energy().nj() - 0.19).abs() < 1e-9);
        assert!((l1_two_port_energy().nj() - 0.57).abs() < 1e-9);
        assert!(memory_access_energy().nj() > l1_two_port_energy().nj());
    }

    #[test]
    fn sequential_tag_data_beats_sequential_way_search_energy() {
        // Section 1's argument: if data is in the second way, sequential
        // way search touches 2 tag ways + 2 data ways; sequential tag-data
        // touches the whole tag array once + 1 data way. With our numbers
        // the tag probe must cost less than one extra d-group access.
        let g = geo(4);
        assert!(g.tag_energy().nj() < g.dgroup_access_energy(0).nj());
    }

    // ---- Structure -------------------------------------------------------

    #[test]
    fn frames_per_dgroup() {
        assert_eq!(geo(4).frames_per_dgroup(), 2 * 1024 * 1024 / 128);
        assert_eq!(geo(4).dgroup_capacity(), Capacity::from_mib(2));
        assert_eq!(geo(8).n_dgroups(), 8);
        assert_eq!(geo(8).assoc(), 8);
    }

    #[test]
    fn dgroup_data_latency_excludes_tag() {
        let g = geo(4);
        for i in 0..4 {
            assert_eq!(
                g.dgroup_data_latency_cycles(i) + g.tag_latency_cycles(),
                g.dgroup_latency_cycles(i)
            );
        }
    }

    #[test]
    fn dnuca_bank_set_indexing() {
        let d = DnucaGeometry::micro2003(Capacity::from_mib(8));
        assert_eq!(d.n_banks(), 128);
        assert_eq!(d.n_bank_positions(), 8);
        assert_eq!(d.n_bank_sets(), 16);
        // Position 0 of every bank set is one of the 16 closest banks.
        for set in 0..16 {
            assert!(d.bank_index(set, 0) < 16);
        }
        // Every bank is addressed exactly once.
        let mut seen = [false; 128];
        for set in 0..16 {
            for pos in 0..8 {
                let b = d.bank_index(set, pos);
                assert!(!seen[b]);
                seen[b] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn dnuca_positions_get_monotonically_slower() {
        let d = DnucaGeometry::micro2003(Capacity::from_mib(8));
        for set in 0..d.n_bank_sets() {
            for pos in 1..d.n_bank_positions() {
                let near = d.bank_latency_cycles(d.bank_index(set, pos - 1));
                let far = d.bank_latency_cycles(d.bank_index(set, pos));
                assert!(far >= near, "set {set} pos {pos}");
            }
        }
    }
}
