//! Tag/data access-style energy comparison (paper Section 1).
//!
//! Large caches can probe tags and data in three ways:
//!
//! * **parallel** — probe the tag array and *every* data way at once
//!   (fast, but "considerably high energy");
//! * **sequential way search** — probe (tag way, data way) pairs from the
//!   closest way outward until the block is found (what NUCA's
//!   incremental search does);
//! * **sequential tag-data** — probe the whole tag array once, then
//!   exactly the matching data way (what large caches like the Itanium II
//!   L3 do, and what NuRAPID builds on).
//!
//! The paper's argument: "Because the entire tag array is smaller than
//! even one data way, sequential tag-data access is more energy-efficient
//! than sequential way search if the matching data is not found in the
//! first way." This module prices all three styles with the same array
//! models so that claim is checkable.

use crate::sram::{self, TagArray};
use simbase::{Capacity, EnergyNj};

/// Per-access energies of one n-way cache under the three access styles.
#[derive(Debug, Clone, Copy)]
pub struct AccessStyles {
    /// Energy of probing one way's slice of the tag array.
    tag_way_nj: f64,
    /// Energy of probing the entire tag array (all ways of one set).
    tag_all_nj: f64,
    /// Energy of reading one data way.
    data_way_nj: f64,
    ways: u32,
}

impl AccessStyles {
    /// Models a cache of `capacity` with `assoc` ways and `block_bytes`
    /// blocks.
    ///
    /// # Panics
    ///
    /// Panics if `assoc` is zero.
    pub fn new(capacity: Capacity, block_bytes: u64, assoc: u32) -> Self {
        assert!(assoc > 0, "associativity must be positive");
        let tag = TagArray::new(capacity, block_bytes, assoc, 51);
        let way_capacity = Capacity::from_bytes(capacity.bytes() / assoc as u64);
        let tag_all = tag.probe_nj();
        AccessStyles {
            tag_way_nj: tag_all / assoc as f64,
            tag_all_nj: tag_all,
            data_way_nj: sram::data_access_nj(way_capacity),
            ways: assoc,
        }
    }

    /// Parallel access: the whole tag array plus every data way.
    pub fn parallel(&self) -> EnergyNj {
        EnergyNj::new(self.tag_all_nj + self.data_way_nj * self.ways as f64)
    }

    /// Sequential way search that finds the block in way `found`
    /// (0-based): `found + 1` tag ways and `found + 1` data ways.
    ///
    /// # Panics
    ///
    /// Panics if `found` is out of range.
    pub fn sequential_way_search(&self, found: u32) -> EnergyNj {
        assert!(found < self.ways, "way {found} out of range");
        let probes = (found + 1) as f64;
        EnergyNj::new(probes * (self.tag_way_nj + self.data_way_nj))
    }

    /// Sequential tag-data access: the whole tag array once, then exactly
    /// one data way.
    pub fn sequential_tag_data(&self) -> EnergyNj {
        EnergyNj::new(self.tag_all_nj + self.data_way_nj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn styles() -> AccessStyles {
        // The paper's 8-MB, 8-way, 128-B cache.
        AccessStyles::new(Capacity::from_mib(8), 128, 8)
    }

    #[test]
    fn parallel_access_is_the_most_expensive() {
        let s = styles();
        assert!(s.parallel().nj() > s.sequential_tag_data().nj());
        for w in 0..8 {
            assert!(s.parallel().nj() >= s.sequential_way_search(w).nj());
        }
    }

    #[test]
    fn tag_data_beats_way_search_beyond_the_first_way() {
        // Section 1: "if the data is found in the second way, sequential
        // way accesses two tag ways and two data ways, while sequential
        // tag-data accesses the entire tag array once and one data way."
        let s = styles();
        assert!(
            s.sequential_tag_data().nj() < s.sequential_way_search(1).nj(),
            "tag-data {} vs way-search@2 {}",
            s.sequential_tag_data().nj(),
            s.sequential_way_search(1).nj()
        );
        // And the gap grows with every further way probed.
        for w in 2..8 {
            assert!(s.sequential_tag_data().nj() < s.sequential_way_search(w).nj());
        }
    }

    #[test]
    fn first_way_hit_slightly_favors_way_search() {
        // The one case sequential way search wins: an immediate first-way
        // hit probes only 1/8 of the tag array.
        let s = styles();
        assert!(s.sequential_way_search(0).nj() < s.sequential_tag_data().nj());
    }

    #[test]
    fn tag_array_is_smaller_than_one_data_way() {
        // The premise of the paper's argument.
        let s = styles();
        assert!(s.tag_all_nj < s.data_way_nj);
    }

    #[test]
    fn way_search_energy_is_monotone_in_found_way() {
        let s = styles();
        for w in 1..8 {
            assert!(s.sequential_way_search(w).nj() > s.sequential_way_search(w - 1).nj());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn way_out_of_range_panics() {
        let _ = styles().sequential_way_search(8);
    }
}
