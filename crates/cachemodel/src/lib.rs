//! Cacti-like analytical latency and energy model (paper Section 4).
//!
//! The paper modifies Cacti 3 to (1) treat each d-group as an independent,
//! tagless cache optimized for size and access time, (2) add the wire delay
//! to route around closer d-groups, and (3) optimize the unified tag array
//! for access time. This crate reimplements that methodology as a compact
//! analytical model at the paper's 70 nm / 5 GHz technology point:
//!
//! * [`tech::Tech`] — technology constants (cycle time, wire delay/energy
//!   per mm), calibrated against the paper's published anchor points
//!   (Table 2 energies, Table 4 latencies, the 8-cycle 8-way tag latency);
//! * [`sram`] — access time and dynamic energy of data and tag arrays as a
//!   function of capacity;
//! * [`catalog`] — the derived per-organization numbers the simulators
//!   consume: d-group latencies/energies for 2/4/8-d-group NuRAPID
//!   (Table 4 columns 1–3), D-NUCA per-bank latencies/energies (Table 4
//!   column 4, Table 2 rows 5–7), smart-search and L1 energies.
//!
//! # Examples
//!
//! ```
//! use cachemodel::catalog::NuRapidGeometry;
//! use simbase::Capacity;
//!
//! let geo = NuRapidGeometry::micro2003(Capacity::from_mib(8), 4);
//! // Paper Table 4: the fastest 2-MB d-group of the 4-d-group NuRAPID is
//! // 14 cycles (including the 8-cycle sequential tag access).
//! assert_eq!(geo.dgroup_latency_cycles(0), 14);
//! ```

pub mod access_styles;
pub mod catalog;
pub mod sram;
pub mod tech;

pub use catalog::{DnucaGeometry, NuRapidGeometry};
pub use tech::Tech;
