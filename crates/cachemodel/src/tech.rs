//! Technology constants for the 70 nm / 5 GHz design point.
//!
//! The constants are *calibrated*, not first-principles: like the paper's
//! modified Cacti, the model's free parameters are fit so its outputs land
//! on the published anchor points (8-cycle 8-way tag latency, 14-cycle
//! fastest 2-MB d-group, Table 2 energies), and the formulas then
//! extrapolate to every other configuration the experiments need.

/// Technology parameters used by the array and wire models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tech {
    /// Processor clock frequency in GHz (paper Section 4: 5 GHz).
    pub clock_ghz: f64,
    /// One-way delay of a repeated global wire, ps per mm.
    pub wire_ps_per_mm: f64,
    /// Energy to move an address out and a 128-B block back over global
    /// wires, nJ per mm of (one-way) route distance.
    pub wire_nj_per_mm: f64,
    /// Energy per hop of D-NUCA's switched network (switch traversal plus
    /// inter-switch link, address + data), in nJ.
    pub nuca_hop_nj: f64,
    /// Latency per hop of D-NUCA's switched network, in cycles (switch
    /// arbitration + link, both directions amortized).
    pub nuca_hop_cycles: u64,
}

impl Tech {
    /// The paper's 70 nm, 5 GHz technology point.
    pub const fn micro2003_70nm() -> Self {
        Tech {
            clock_ghz: 5.0,
            wire_ps_per_mm: 250.0,
            wire_nj_per_mm: 0.46,
            nuca_hop_nj: 0.29,
            nuca_hop_cycles: 3,
        }
    }

    /// Clock cycle time in picoseconds.
    pub fn cycle_ps(&self) -> f64 {
        1000.0 / self.clock_ghz
    }

    /// Converts a delay in ps to a (ceiling) number of cycles.
    pub fn ps_to_cycles(&self, ps: f64) -> u64 {
        (ps / self.cycle_ps()).ceil() as u64
    }

    /// Round-trip wire delay in ps for a one-way route of `mm`.
    pub fn route_ps(&self, mm: f64) -> f64 {
        2.0 * mm * self.wire_ps_per_mm
    }

    /// Wire energy in nJ for a route of `mm` (address out + block back).
    pub fn route_nj(&self, mm: f64) -> f64 {
        mm * self.wire_nj_per_mm
    }
}

impl Default for Tech {
    fn default() -> Self {
        Tech::micro2003_70nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_ghz_cycle_is_200ps() {
        let t = Tech::micro2003_70nm();
        assert_eq!(t.cycle_ps(), 200.0);
    }

    #[test]
    fn ps_to_cycles_ceils() {
        let t = Tech::micro2003_70nm();
        assert_eq!(t.ps_to_cycles(0.0), 0);
        assert_eq!(t.ps_to_cycles(1.0), 1);
        assert_eq!(t.ps_to_cycles(200.0), 1);
        assert_eq!(t.ps_to_cycles(201.0), 2);
    }

    #[test]
    fn route_delay_is_round_trip() {
        let t = Tech::micro2003_70nm();
        assert_eq!(t.route_ps(1.0), 500.0);
        assert!((t.route_nj(2.0) - 0.92).abs() < 1e-12);
    }

    #[test]
    fn default_is_the_paper_point() {
        assert_eq!(Tech::default(), Tech::micro2003_70nm());
    }
}
