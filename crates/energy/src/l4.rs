//! Memory-tier energy with an L4 DRAM cache in the path (DESIGN.md §15).
//!
//! Without an L4, every lower-cache miss is one off-chip DRAM block
//! transfer priced at [`CoreEnergyModel::per_memory_access`]
//! (30 nJ). With an L4, the same request stream splits three ways:
//!
//! - **DRAM blocks** — fills, writebacks, and resize flushes that really
//!   cross the channel, still 30 nJ each. An effective L4 shrinks this
//!   count, which is where the tier's energy win comes from.
//! - **L4 data-array accesses** — every request touches a DRAM-cache row
//!   (hit or fill), far cheaper than the off-chip transfer.
//! - **Tag probes** — SRAM tag-cache misses that burst the in-DRAM tag
//!   store; narrow transfers, priced accordingly.
//!
//! The functions here take plain counters (no `memsys` dependency) so
//! the pricing stays a pure table like [`crate::l2`] and [`crate::core`].
//!
//! [`CoreEnergyModel::per_memory_access`]: crate::core::CoreEnergyModel

use simbase::EnergyNj;

/// One off-chip DRAM block transfer — identical to
/// [`crate::core::CoreEnergyModel::micro2003`]'s `per_memory_access`, so
/// an L4 that filters nothing prices exactly like no L4 plus its own
/// access overhead.
pub const DRAM_BLOCK_NJ: f64 = 30.0;

/// One L4 DRAM-cache data-array access (row activation + burst for a
/// 128-B block; on-package DRAM, no off-chip I/O).
pub const L4_ACCESS_NJ: f64 = 6.0;

/// One in-DRAM tag-store probe (narrow 8-B burst on an SRAM tag-cache
/// miss).
pub const TAG_PROBE_NJ: f64 = 2.0;

/// Prices the memory tier of a run: off-chip DRAM block transfers plus
/// the L4's own data-array and tag-probe traffic. Drop-in replacement
/// for [`crate::core::CoreEnergyModel::memory_energy`] when an L4 is
/// attached; with the L4 detached the runner keeps using the plain
/// per-access model and the two agree by construction
/// ([`DRAM_BLOCK_NJ`] = `per_memory_access`).
pub fn memory_energy(dram_blocks: u64, tag_probes: u64, l4_accesses: u64) -> EnergyNj {
    EnergyNj::new(DRAM_BLOCK_NJ) * dram_blocks
        + EnergyNj::new(TAG_PROBE_NJ) * tag_probes
        + EnergyNj::new(L4_ACCESS_NJ) * l4_accesses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::CoreEnergyModel;

    #[test]
    fn dram_block_price_matches_the_no_l4_model() {
        let m = CoreEnergyModel::micro2003();
        assert_eq!(m.memory_energy(7).nj(), (EnergyNj::new(DRAM_BLOCK_NJ) * 7).nj());
    }

    #[test]
    fn components_add_up() {
        let e = memory_energy(2, 3, 5);
        assert_eq!(e.nj(), 2.0 * DRAM_BLOCK_NJ + 3.0 * TAG_PROBE_NJ + 5.0 * L4_ACCESS_NJ);
    }

    #[test]
    fn a_filtering_l4_beats_raw_dram() {
        // 100 requests, 90% L4 hit rate: 10 DRAM blocks + 100 L4 accesses
        // + a handful of tag probes must undercut 100 DRAM blocks.
        let with_l4 = memory_energy(10, 20, 100);
        let without = memory_energy(100, 0, 0);
        assert!(with_l4.nj() < without.nj());
    }
}
