//! Wattch-like processor energy: per-event constants for everything
//! outside the lower-level cache.
//!
//! Wattch charges each pipeline structure per activation; this module
//! collapses those charges into per-committed-event constants calibrated
//! for a 5-GHz, 8-wide core at 70 nm. Only *relative* energy across cache
//! organizations matters for the paper's Figure 11 (energy-delay), and the
//! non-L2 charges below are identical across organizations by
//! construction — exactly as in the paper, where Wattch models the core
//! identically and only the Cacti-derived cache energies differ.

use cpu::CoreResult;
use simbase::EnergyNj;

/// Per-event energy constants (nJ) for the out-of-order engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreEnergyModel {
    /// Fetch/decode/rename/RUU/commit plus clock tree, per committed
    /// instruction.
    pub per_instruction: f64,
    /// Extra per integer ALU/multiply op.
    pub per_int_op: f64,
    /// Extra per floating-point op.
    pub per_fp_op: f64,
    /// Branch predictor + BTB per branch.
    pub per_branch: f64,
    /// Squashed work per misprediction.
    pub per_mispredict: f64,
    /// One L1 port access (half of Table 2's two-port 0.57 nJ).
    pub per_l1_access: f64,
    /// One off-chip DRAM block transfer.
    pub per_memory_access: f64,
}

impl CoreEnergyModel {
    /// The calibrated 70-nm / 5-GHz constants.
    pub fn micro2003() -> Self {
        CoreEnergyModel {
            per_instruction: 1.2,
            per_int_op: 0.4,
            per_fp_op: 0.9,
            per_branch: 0.3,
            per_mispredict: 8.0,
            per_l1_access: 0.285,
            per_memory_access: 30.0,
        }
    }

    /// Core (non-cache) energy of a run.
    pub fn core_energy(&self, r: &CoreResult) -> EnergyNj {
        EnergyNj::new(
            self.per_instruction * r.instructions as f64
                + self.per_int_op * r.int_ops as f64
                + self.per_fp_op * r.fp_ops as f64
                + self.per_branch * r.branches as f64
                + self.per_mispredict * r.mispredicts as f64,
        )
    }

    /// L1 energy given total L1 (I + D) accesses.
    pub fn l1_energy(&self, l1_accesses: u64) -> EnergyNj {
        EnergyNj::new(self.per_l1_access) * l1_accesses
    }

    /// Off-chip energy given total memory accesses.
    pub fn memory_energy(&self, accesses: u64) -> EnergyNj {
        EnergyNj::new(self.per_memory_access) * accesses
    }
}

impl Default for CoreEnergyModel {
    fn default() -> Self {
        Self::micro2003()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> CoreResult {
        CoreResult {
            instructions: 1000,
            cycles: 1500,
            loads: 250,
            stores: 100,
            branches: 120,
            mispredicts: 10,
            int_ops: 400,
            fp_ops: 130,
        }
    }

    #[test]
    fn core_energy_sums_components() {
        let m = CoreEnergyModel::micro2003();
        let e = m.core_energy(&result()).nj();
        let expect = 1.2 * 1000.0 + 0.4 * 400.0 + 0.9 * 130.0 + 0.3 * 120.0 + 8.0 * 10.0;
        assert!((e - expect).abs() < 1e-9);
    }

    #[test]
    fn fp_heavy_runs_cost_more() {
        let m = CoreEnergyModel::micro2003();
        let mut fp = result();
        fp.fp_ops = 500;
        fp.int_ops = 30;
        assert!(m.core_energy(&fp).nj() > m.core_energy(&result()).nj());
    }

    #[test]
    fn l1_energy_is_per_port_access() {
        let m = CoreEnergyModel::micro2003();
        assert!((m.l1_energy(2).nj() - 0.57).abs() < 1e-12);
    }

    #[test]
    fn memory_dwarfs_l1_per_event() {
        let m = CoreEnergyModel::micro2003();
        assert!(m.per_memory_access > 50.0 * m.per_l1_access);
    }

    #[test]
    fn default_is_micro2003() {
        assert_eq!(CoreEnergyModel::default(), CoreEnergyModel::micro2003());
    }
}
