//! Per-organization L2 energy: event counts × Table 2 per-operation
//! energies.

use cachemodel::catalog::{DnucaGeometry, NuRapidGeometry};
use cachemodel::sram::{self, TagArray};
use memsys::hierarchy::BaseHierarchy;
use nuca::DnucaStats;
use nurapid::NuRapidStats;
use simbase::{Capacity, EnergyNj};

/// Dynamic energy of a NuRAPID cache over a run: tag probes and pointer
/// rewrites, plus every d-group read and write (demand, fills, and swap
/// traffic) at that d-group's distance-dependent cost.
///
/// Delegates to [`nurapid::energy::dynamic_energy`] — the formula lives
/// with the cache so it can price itself for
/// [`memsys::org::Organization::report`].
pub fn nurapid_energy(stats: &NuRapidStats, geo: &NuRapidGeometry) -> EnergyNj {
    nurapid::energy::dynamic_energy(stats, geo)
}

/// Dynamic energy of a D-NUCA cache over a run: smart-search probes, full
/// bank accesses (demand, fills, swaps) and tag-only searches, each at
/// the bank's network-distance-dependent cost.
///
/// Delegates to [`nuca::energy::dynamic_energy`].
pub fn dnuca_energy(stats: &DnucaStats, geo: &DnucaGeometry) -> EnergyNj {
    nuca::energy::dynamic_energy(stats, geo)
}

/// Per-access energies of the conventional hierarchy's levels, derived
/// from the same array models (sequential tag-data access in both).
#[derive(Debug, Clone, Copy)]
pub struct BaseLevelEnergies {
    /// One L2 (1-MB, 8-way) access.
    pub l2_nj: f64,
    /// One L3 (8-MB, 8-way) access.
    pub l3_nj: f64,
}

impl BaseLevelEnergies {
    /// The paper's base configuration. The monolithic uniform L3 must
    /// drive worst-case-length wires on every access (that is what makes
    /// NUCA attractive), modeled as the mean subarray route with a
    /// conventional H-tree detour.
    pub fn micro2003() -> Self {
        let tech = cachemodel::Tech::micro2003_70nm();
        let l2_tag = TagArray::new(Capacity::from_mib(1), 128, 8, 51);
        let l3_tag = TagArray::new(Capacity::from_mib(8), 128, 8, 51);
        // Mean route across the whole 8-MB floorplan with H-tree detour.
        let fp = floorplan_mean_route_mm();
        BaseLevelEnergies {
            l2_nj: l2_tag.probe_nj()
                + sram::data_access_nj(Capacity::from_mib(1))
                + tech.route_nj(0.8),
            l3_nj: l3_tag.probe_nj()
                + sram::data_access_nj(Capacity::from_mib(8))
                + tech.route_nj(fp * 1.3),
        }
    }
}

fn floorplan_mean_route_mm() -> f64 {
    let fp = floorplan::LShapeFloorplan::micro2003(Capacity::from_mib(8));
    fp.grid().mean_route_mm(0, fp.n_subarrays())
}

/// Dynamic energy of the conventional L2/L3 hierarchy over a run.
pub fn base_energy(h: &BaseHierarchy) -> EnergyNj {
    let e = BaseLevelEnergies::micro2003();
    EnergyNj::new(e.l2_nj) * h.l2_accesses() + EnergyNj::new(e.l3_nj) * h.l3_accesses()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::lower::LowerCache;
    use nurapid::{NuRapidCache, NuRapidConfig};
    use nuca::{DnucaCache, DnucaConfig, SearchPolicy};
    use simbase::{AccessKind, BlockAddr, Cycle};

    fn drive<C: LowerCache>(c: &mut C, n: u64) {
        let mut t = Cycle::ZERO;
        for i in 0..n {
            let out = c.access(
                BlockAddr::from_index((i * 13) % 4000),
                AccessKind::Read,
                t,
            );
            t = out.complete_at + 20;
        }
    }

    #[test]
    fn nurapid_energy_accumulates_with_traffic() {
        let mut c = NuRapidCache::new(NuRapidConfig::micro2003(4));
        drive(&mut c, 100);
        let e100 = nurapid_energy(c.stats(), c.geometry());
        drive(&mut c, 900);
        let e1000 = nurapid_energy(c.stats(), c.geometry());
        assert!(e100.nj() > 0.0);
        assert!(e1000.nj() > e100.nj() * 5.0);
    }

    #[test]
    fn ss_performance_costs_more_than_ss_energy() {
        // The reason the paper runs D-NUCA's two policies separately:
        // multicast search burns energy on every bank.
        let run = |policy| {
            let mut c = DnucaCache::new(DnucaConfig::micro2003(policy));
            drive(&mut c, 2000);
            dnuca_energy(c.stats(), c.geometry()).nj() / 2000.0
        };
        let perf = run(SearchPolicy::SsPerformance);
        let energy = run(SearchPolicy::SsEnergy);
        assert!(
            perf > 1.5 * energy,
            "ss-performance {perf} nJ/access vs ss-energy {energy}"
        );
    }

    #[test]
    fn nurapid_beats_dnuca_ss_energy_per_access() {
        // The headline: NuRAPID's sequential tag-data access + few swaps
        // must land well below even ss-energy D-NUCA.
        let mut nr = NuRapidCache::new(NuRapidConfig::micro2003(4));
        drive(&mut nr, 3000);
        let nr_e = nurapid_energy(nr.stats(), nr.geometry()).nj() / 3000.0;
        let mut dn = DnucaCache::new(DnucaConfig::micro2003(SearchPolicy::SsEnergy));
        drive(&mut dn, 3000);
        let dn_e = dnuca_energy(dn.stats(), dn.geometry()).nj() / 3000.0;
        assert!(
            nr_e < dn_e,
            "NuRAPID {nr_e} nJ/access must beat D-NUCA ss-energy {dn_e}"
        );
    }

    #[test]
    fn base_levels_are_ordered() {
        let e = BaseLevelEnergies::micro2003();
        assert!(e.l2_nj > 0.0);
        assert!(e.l3_nj > 2.0 * e.l2_nj, "uniform 8-MB L3 must cost much more");
    }

    #[test]
    fn base_energy_counts_both_levels() {
        let mut h = BaseHierarchy::micro2003();
        drive(&mut h, 500);
        let e = base_energy(&h);
        assert!(e.nj() > 0.0);
        // At least one L3 access happened (cold misses), so energy must
        // exceed pure-L2 pricing.
        let just_l2 =
            EnergyNj::new(BaseLevelEnergies::micro2003().l2_nj) * h.l2_accesses();
        assert!(e.nj() > just_l2.nj());
    }
}
