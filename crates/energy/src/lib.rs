//! Energy accounting (paper Section 4, Wattch + modified Cacti).
//!
//! The paper replaces Wattch's cache energy model with Cacti-derived
//! per-operation energies (Table 2) and keeps Wattch for the rest of the
//! processor. This crate does the same: [`l2`] prices every lower-level
//! cache organization's event counts with the [`cachemodel`] energies, and
//! [`core`] charges Wattch-like per-event constants for the out-of-order
//! engine, L1s, and main memory. [`EnergyTally`] aggregates both into the
//! totals behind the paper's two headline energy results: **77% lower L2
//! dynamic energy than D-NUCA** and **7% lower processor energy-delay
//! than both D-NUCA and the conventional hierarchy**.
//!
//! # Examples
//!
//! ```
//! use energy::EnergyTally;
//! use simbase::EnergyNj;
//!
//! let t = EnergyTally {
//!     core: EnergyNj::new(100.0),
//!     l1: EnergyNj::new(20.0),
//!     l2: EnergyNj::new(10.0),
//!     memory: EnergyNj::new(5.0),
//! };
//! assert_eq!(t.total().nj(), 135.0);
//! assert_eq!(t.energy_delay(1_000), 135_000.0);
//! ```

pub mod core;
pub mod l2;
pub mod l4;

use simbase::EnergyNj;

/// Full-system dynamic energy broken down by subsystem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyTally {
    /// Out-of-order engine: fetch/rename/issue/commit, functional units,
    /// branch handling, clock.
    pub core: EnergyNj,
    /// L1 instruction and data caches.
    pub l1: EnergyNj,
    /// The lower-level cache under study (L2, or L2+L3 for the base).
    pub l2: EnergyNj,
    /// Off-chip DRAM accesses.
    pub memory: EnergyNj,
}

impl EnergyTally {
    /// Total dynamic energy.
    pub fn total(&self) -> EnergyNj {
        self.core + self.l1 + self.l2 + self.memory
    }

    /// Energy-delay product in nJ·cycles (the paper's Figure 11 metric;
    /// only relative values matter).
    pub fn energy_delay(&self, cycles: u64) -> f64 {
        self.total().nj() * cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let t = EnergyTally {
            core: EnergyNj::new(1.0),
            l1: EnergyNj::new(2.0),
            l2: EnergyNj::new(3.0),
            memory: EnergyNj::new(4.0),
        };
        assert_eq!(t.total().nj(), 10.0);
        assert_eq!(t.energy_delay(10), 100.0);
    }
}
