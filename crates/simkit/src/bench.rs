//! Wall-clock benchmark harness: warmup + N timed iterations, robust
//! summary statistics, JSON-line output.
//!
//! A bench target is a plain `harness = false` binary:
//!
//! ```no_run
//! let mut b = simkit::bench::BenchRunner::new("components");
//! b.bench("hot_path", 3, 20, || {
//!     std::hint::black_box((0..1000).sum::<u64>())
//! });
//! b.finish();
//! ```
//!
//! Each benchmark prints a human-readable line and a machine-readable JSON
//! line (`{"name":...,"iters":...,"median_ns":...,"p95_ns":...}`). When
//! `SIMKIT_BENCH_DIR` is set, the JSON lines are also appended to
//! `BENCH_<runner>.json` in that directory, one line per benchmark, so a
//! sweep over configurations accumulates a comparable record.
//!
//! `SIMKIT_BENCH_ITERS` overrides every benchmark's iteration count
//! (e.g. `SIMKIT_BENCH_ITERS=1` for a smoke pass in CI).

use std::hint::black_box as std_black_box;
use std::io::Write;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`] so bench files need only simkit.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Summary of one benchmark: nanosecond statistics over the timed
/// iterations.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Benchmark name.
    pub name: String,
    /// Number of timed iterations.
    pub iters: u32,
    /// Fastest iteration.
    pub min_ns: u64,
    /// Arithmetic mean.
    pub mean_ns: u64,
    /// Median (p50).
    pub median_ns: u64,
    /// 95th percentile.
    pub p95_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// Slowest iteration.
    pub max_ns: u64,
}

impl BenchReport {
    /// One JSON object on one line; stable key order.
    pub fn json_line(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"iters\":{},\"min_ns\":{},\"mean_ns\":{},\"median_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
            self.name, self.iters, self.min_ns, self.mean_ns, self.median_ns, self.p95_ns, self.p99_ns, self.max_ns
        )
    }
}

/// Computes the summary over raw per-iteration samples.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn summarize(name: &str, samples: &mut [u64]) -> BenchReport {
    assert!(!samples.is_empty(), "no samples for {name}");
    samples.sort_unstable();
    let n = samples.len();
    let pct = |p: f64| samples[(((n - 1) as f64) * p).round() as usize];
    BenchReport {
        name: name.to_string(),
        iters: n as u32,
        min_ns: samples[0],
        mean_ns: samples.iter().sum::<u64>() / n as u64,
        median_ns: pct(0.5),
        p95_ns: pct(0.95),
        p99_ns: pct(0.99),
        max_ns: samples[n - 1],
    }
}

/// Runs a group of benchmarks and accumulates their reports.
pub struct BenchRunner {
    group: String,
    reports: Vec<BenchReport>,
    filter: Option<String>,
}

impl BenchRunner {
    /// Creates a runner for a named group (conventionally the bench-target
    /// name). Any non-flag CLI argument becomes a substring filter, so
    /// `cargo bench --bench components hot` runs only matching benchmarks.
    pub fn new(group: &str) -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        BenchRunner {
            group: group.to_string(),
            reports: Vec::new(),
            filter,
        }
    }

    /// Times `f`: `warmup` untimed iterations, then `iters` timed ones.
    ///
    /// Returns the report (also retained for [`BenchRunner::finish`]), or
    /// `None` when the benchmark is filtered out.
    pub fn bench<R>(
        &mut self,
        name: &str,
        warmup: u32,
        iters: u32,
        mut f: impl FnMut() -> R,
    ) -> Option<BenchReport> {
        if let Some(fil) = &self.filter {
            if !name.contains(fil.as_str()) {
                return None;
            }
        }
        let iters = env_iters().unwrap_or(iters).max(1);
        for _ in 0..warmup.min(iters) {
            std_black_box(f());
        }
        let mut samples = Vec::with_capacity(iters as usize);
        for _ in 0..iters {
            let t0 = Instant::now();
            std_black_box(f());
            samples.push(t0.elapsed().as_nanos() as u64);
        }
        let report = summarize(name, &mut samples);
        println!(
            "{:40} {:>6} iters  median {:>12}  p95 {:>12}",
            report.name,
            report.iters,
            human_ns(report.median_ns),
            human_ns(report.p95_ns),
        );
        println!("{}", report.json_line());
        self.reports.push(report.clone());
        Some(report)
    }

    /// Records an externally measured report (e.g. per-request latency
    /// percentiles collected by a load-test harness) alongside the
    /// closure-timed benchmarks: printed, retained, and written out by
    /// [`BenchRunner::finish`] exactly like a [`BenchRunner::bench`]
    /// result. Honors the CLI substring filter.
    pub fn record(&mut self, report: BenchReport) -> Option<BenchReport> {
        if let Some(fil) = &self.filter {
            if !report.name.contains(fil.as_str()) {
                return None;
            }
        }
        println!(
            "{:40} {:>6} iters  median {:>12}  p99 {:>12}",
            report.name,
            report.iters,
            human_ns(report.median_ns),
            human_ns(report.p99_ns),
        );
        println!("{}", report.json_line());
        self.reports.push(report.clone());
        Some(report)
    }

    /// Writes the accumulated JSON lines to `BENCH_<group>.json` if
    /// `SIMKIT_BENCH_DIR` is set, and returns the reports.
    pub fn finish(self) -> Vec<BenchReport> {
        if self.reports.is_empty() {
            if let Some(fil) = &self.filter {
                eprintln!(
                    "simkit bench: no benchmark in group '{}' matches filter '{fil}'",
                    self.group
                );
            }
            return self.reports;
        }
        if let Ok(dir) = std::env::var("SIMKIT_BENCH_DIR") {
            let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.group));
            if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(&path)
            {
                for r in &self.reports {
                    let _ = writeln!(file, "{}", r.json_line());
                }
            }
        }
        self.reports
    }
}

fn env_iters() -> Option<u32> {
    std::env::var("SIMKIT_BENCH_ITERS").ok()?.parse().ok()
}

fn human_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns} ns"),
        10_000..=9_999_999 => format!("{:.1} us", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.1} ms", ns as f64 / 1e6),
        _ => format!("{:.2} s", ns as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_orders_statistics() {
        let mut samples = vec![50, 10, 30, 20, 40];
        let r = summarize("s", &mut samples);
        assert_eq!(r.iters, 5);
        assert_eq!(r.min_ns, 10);
        assert_eq!(r.median_ns, 30);
        assert_eq!(r.max_ns, 50);
        assert_eq!(r.mean_ns, 30);
        assert!(r.p95_ns >= r.median_ns);
        assert!(r.p95_ns <= r.max_ns);
    }

    #[test]
    fn json_line_is_one_parseable_object() {
        let mut samples = vec![100, 200, 300];
        let line = summarize("encode", &mut samples).json_line();
        assert!(!line.contains('\n'));
        assert!(line.starts_with('{') && line.ends_with('}'));
        for key in ["\"name\":\"encode\"", "\"iters\":3", "\"median_ns\":200", "\"p95_ns\":"] {
            assert!(line.contains(key), "{line} missing {key}");
        }
    }

    #[test]
    fn bench_produces_monotone_sane_report() {
        let mut b = BenchRunner::new("selftest");
        let r = b
            .bench("spin", 1, 5, || {
                let mut x = 0u64;
                for i in 0..10_000 {
                    x = x.wrapping_add(black_box(i));
                }
                x
            })
            .expect("not filtered");
        assert!(r.min_ns <= r.median_ns);
        assert!(r.median_ns <= r.p95_ns);
        assert!(r.p95_ns <= r.p99_ns);
        assert!(r.p99_ns <= r.max_ns);
        assert!(r.min_ns > 0, "a 10k-add loop cannot take zero time");
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn summarize_rejects_empty() {
        let _ = summarize("empty", &mut []);
    }

    #[test]
    fn unmatched_filter_skips_and_finishes_empty() {
        let mut b = BenchRunner {
            group: "selftest".to_string(),
            reports: Vec::new(),
            filter: Some("no-such-bench".to_string()),
        };
        assert!(b.bench("spin", 0, 1, || 0u64).is_none());
        assert!(b.finish().is_empty());
    }
}
