//! File-based regression corpus for property tests.
//!
//! Two line formats coexist in a corpus file:
//!
//! * **simkit native** — `<property-name> seed=0x<hex> # <shrunk value>`:
//!   written by the runner when a property fails; the seed replays the
//!   exact failing case through the same generator.
//! * **legacy proptest** — `cc <hex-digest> # shrinks to ...`: the format
//!   `proptest` checked into `tests/properties.proptest-regressions`.
//!   The digest no longer maps to a proptest-internal case, so it is
//!   folded into a deterministic 64-bit replay seed: the historical
//!   failure region keeps being probed on every run even though the
//!   original byte-exact case is not recoverable without proptest itself.
//!
//! Lines starting with `#` and blank lines are comments.

use std::fs;
use std::io::Write;
use std::path::Path;

/// Replay seeds stored in `path` that apply to property `name`.
///
/// Legacy `cc` lines carry no property name, so they apply to every
/// property sharing the corpus file (cheap: one extra case each). Missing
/// or unreadable files yield no seeds — a fresh checkout has no corpus.
pub fn seeds_for(path: &Path, name: &str) -> Vec<u64> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("cc ") {
            // Legacy proptest entry: fold the digest into a seed.
            let digest = rest.split_whitespace().next().unwrap_or("");
            if !digest.is_empty() {
                seeds.push(fold_digest(digest));
            }
        } else if let Some((entry_name, rest)) = line.split_once(' ') {
            if entry_name == name {
                if let Some(seed) = parse_seed_field(rest) {
                    seeds.push(seed);
                }
            }
        }
    }
    seeds
}

/// Appends a native-format failure entry; best-effort (ignored on error,
/// e.g. a read-only checkout).
pub fn record_failure(path: &Path, name: &str, seed: u64, shrunk: &str) {
    // Skip duplicates so repeated runs don't grow the file unboundedly.
    if seeds_for(path, name).contains(&seed) {
        return;
    }
    let mut line = format!("{name} seed={seed:#x} # shrinks to {shrunk}");
    line.truncate(400); // keep huge Debug renderings from bloating the file
    let _ = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| writeln!(f, "{line}"));
}

fn parse_seed_field(rest: &str) -> Option<u64> {
    let field = rest.split_whitespace().find_map(|w| w.strip_prefix("seed="))?;
    field
        .strip_prefix("0x")
        .map_or_else(|| field.parse().ok(), |h| u64::from_str_radix(h, 16).ok())
}

/// FNV-1a over the digest string: a stable 64-bit seed per legacy entry.
fn fold_digest(digest: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in digest.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("simkit-corpus-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn parses_native_entries_by_name() {
        let p = tmp("native");
        fs::write(
            &p,
            "# comment\n\
             alpha seed=0x10 # shrinks to [1]\n\
             beta seed=32\n\
             alpha seed=0xff\n",
        )
        .unwrap();
        assert_eq!(seeds_for(&p, "alpha"), vec![0x10, 0xff]);
        assert_eq!(seeds_for(&p, "beta"), vec![32]);
        assert!(seeds_for(&p, "gamma").is_empty());
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn parses_legacy_proptest_entries_for_every_property() {
        let p = tmp("legacy");
        fs::write(
            &p,
            "# Seeds for failure cases proptest has generated in the past.\n\
             cc 587c7486834acea933ffae8602c0863800f5f6b112c5506478e5c59fb866b168 # shrinks to reqs = [(178, 8)]\n",
        )
        .unwrap();
        let a = seeds_for(&p, "anything");
        let b = seeds_for(&p, "else");
        assert_eq!(a.len(), 1);
        assert_eq!(a, b, "legacy entries apply to all properties");
        assert_eq!(
            a[0],
            fold_digest("587c7486834acea933ffae8602c0863800f5f6b112c5506478e5c59fb866b168")
        );
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn record_failure_roundtrips_and_dedups() {
        let p = tmp("record");
        let _ = fs::remove_file(&p);
        record_failure(&p, "gamma", 0xabcd, "[(1, 2)]");
        record_failure(&p, "gamma", 0xabcd, "[(1, 2)]"); // duplicate
        record_failure(&p, "gamma", 7, "[]");
        assert_eq!(seeds_for(&p, "gamma"), vec![0xabcd, 7]);
        let text = fs::read_to_string(&p).unwrap();
        assert_eq!(text.lines().count(), 2, "duplicate was appended:\n{text}");
        assert!(text.contains("shrinks to [(1, 2)]"));
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn missing_file_yields_no_seeds() {
        assert!(seeds_for(Path::new("/nonexistent/corpus"), "x").is_empty());
    }
}
