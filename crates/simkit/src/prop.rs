//! Property-based testing: generators, runner, and greedy shrinking.
//!
//! The engine is deliberately small. A [`Gen`] produces random values and
//! proposes smaller candidates for shrinking; [`Checker`] drives a fixed
//! number of seeded cases through a property closure, catches panics, and
//! on failure shrinks greedily before reporting a replayable seed.
//!
//! Determinism: the base seed for a property is derived from its name, so
//! the same workspace revision always runs the same cases — hermetic CI
//! with no hidden entropy. `SIMKIT_SEED=0x...` replays one specific case;
//! `SIMKIT_CASES=n` changes the case count globally.

use crate::corpus;
use simbase::rng::SimRng;
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// A generator of random test values with optional shrinking.
pub trait Gen {
    /// The value type produced.
    type Value: Clone + std::fmt::Debug;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut SimRng) -> Self::Value;

    /// Proposes strictly "smaller" candidate values derived from `v`.
    ///
    /// The runner tries candidates in order and greedily recurses into the
    /// first one that still fails the property; returning an empty vector
    /// disables shrinking for this generator.
    fn shrink(&self, _v: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Uniform `u64` in `[lo, hi)`; shrinks toward `lo`.
#[derive(Debug, Clone, Copy)]
pub struct U64Range {
    lo: u64,
    hi: u64,
}

/// Uniform draw in `[lo, hi)`.
///
/// # Panics
///
/// Panics if the range is empty.
pub fn range_u64(lo: u64, hi: u64) -> U64Range {
    assert!(lo < hi, "empty range {lo}..{hi}");
    U64Range { lo, hi }
}

impl Gen for U64Range {
    type Value = u64;

    fn generate(&self, rng: &mut SimRng) -> u64 {
        self.lo + rng.below(self.hi - self.lo)
    }

    fn shrink(&self, v: &u64) -> Vec<u64> {
        let v = *v;
        if v == self.lo {
            return Vec::new();
        }
        // A halving ladder from `lo` toward `v`: lo, v - d/2, v - d/4, ...,
        // v - 1. Greedy descent over this list converges to the smallest
        // failing value in O(log d) rounds (binary search on the failure
        // boundary) instead of stepping linearly.
        let mut out = vec![self.lo];
        let mut delta = (v - self.lo) / 2;
        while delta > 0 {
            let cand = v - delta;
            if cand != self.lo {
                out.push(cand);
            }
            delta /= 2;
        }
        out.dedup();
        out
    }
}

/// Uniform `u32` in `[lo, hi)`; shrinks toward `lo`.
#[derive(Debug, Clone, Copy)]
pub struct U32Range(U64Range);

/// Uniform `u32` draw in `[lo, hi)`.
pub fn range_u32(lo: u32, hi: u32) -> U32Range {
    U32Range(range_u64(lo as u64, hi as u64))
}

impl Gen for U32Range {
    type Value = u32;

    fn generate(&self, rng: &mut SimRng) -> u32 {
        self.0.generate(rng) as u32
    }

    fn shrink(&self, v: &u32) -> Vec<u32> {
        self.0.shrink(&(*v as u64)).into_iter().map(|x| x as u32).collect()
    }
}

/// Uniform `u8` in `[lo, hi)`; shrinks toward `lo`.
#[derive(Debug, Clone, Copy)]
pub struct U8Range(U64Range);

/// Uniform `u8` draw in `[lo, hi)`.
pub fn range_u8(lo: u8, hi: u8) -> U8Range {
    U8Range(range_u64(lo as u64, hi as u64))
}

impl Gen for U8Range {
    type Value = u8;

    fn generate(&self, rng: &mut SimRng) -> u8 {
        self.0.generate(rng) as u8
    }

    fn shrink(&self, v: &u8) -> Vec<u8> {
        self.0.shrink(&(*v as u64)).into_iter().map(|x| x as u8).collect()
    }
}

/// Any `u8` (full range); shrinks toward zero.
pub fn any_u8() -> U8Range {
    U8Range(U64Range { lo: 0, hi: 256 })
}

/// Any `u64` (full range); shrinks toward zero.
#[derive(Debug, Clone, Copy)]
pub struct AnyU64;

/// Full-range `u64` draw.
pub fn any_u64() -> AnyU64 {
    AnyU64
}

impl Gen for AnyU64 {
    type Value = u64;

    fn generate(&self, rng: &mut SimRng) -> u64 {
        rng.next_u64()
    }

    fn shrink(&self, v: &u64) -> Vec<u64> {
        if *v == 0 {
            return Vec::new();
        }
        U64Range { lo: 0, hi: u64::MAX }.shrink(v)
    }
}

/// Uniform `bool`; `true` shrinks to `false`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

/// Uniform `bool` draw.
pub fn any_bool() -> AnyBool {
    AnyBool
}

impl Gen for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut SimRng) -> bool {
        rng.below(2) == 1
    }

    fn shrink(&self, v: &bool) -> Vec<bool> {
        if *v {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Uniform choice from a fixed list; shrinks toward earlier entries.
#[derive(Debug, Clone)]
pub struct Select<T> {
    choices: Vec<T>,
}

/// Uniform choice from `choices`.
///
/// # Panics
///
/// Panics if `choices` is empty.
pub fn select<T: Clone + std::fmt::Debug + PartialEq>(choices: Vec<T>) -> Select<T> {
    assert!(!choices.is_empty(), "select requires at least one choice");
    Select { choices }
}

impl<T: Clone + std::fmt::Debug + PartialEq> Gen for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut SimRng) -> T {
        self.choices[rng.index(self.choices.len())].clone()
    }

    fn shrink(&self, v: &T) -> Vec<T> {
        // Earlier list positions are considered simpler.
        match self.choices.iter().position(|c| c == v) {
            Some(0) | None => Vec::new(),
            Some(i) => vec![self.choices[0].clone(), self.choices[i - 1].clone()],
        }
    }
}

/// Vector of values from an element generator, with a length range.
#[derive(Debug, Clone)]
pub struct VecGen<G> {
    elem: G,
    min_len: usize,
    max_len: usize,
}

/// Vector generator: length uniform in `[min_len, max_len)`, elements from
/// `elem`. Shrinks by dropping chunks, dropping single elements, and
/// shrinking individual elements.
///
/// # Panics
///
/// Panics if the length range is empty.
pub fn vec_of<G: Gen>(elem: G, min_len: usize, max_len: usize) -> VecGen<G> {
    assert!(min_len < max_len, "empty length range {min_len}..{max_len}");
    VecGen {
        elem,
        min_len,
        max_len,
    }
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut SimRng) -> Vec<G::Value> {
        let len = self.min_len + rng.index(self.max_len - self.min_len);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, v: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        let n = v.len();
        // Halve: drop the back half, then the front half.
        if n / 2 >= self.min_len && n > self.min_len {
            out.push(v[..n / 2].to_vec());
            out.push(v[n - n / 2..].to_vec());
        }
        // Drop single elements (bounded to keep the candidate list small).
        if n > self.min_len {
            for i in 0..n.min(16) {
                let mut c = v.clone();
                c.remove(i);
                out.push(c);
            }
        }
        // Shrink individual elements in place (positions bounded, but each
        // element's full candidate ladder kept — truncating it would stall
        // greedy descent just short of the failure boundary).
        for i in 0..n.min(8) {
            for cand in self.elem.shrink(&v[i]) {
                let mut c = v.clone();
                c[i] = cand;
                out.push(c);
            }
        }
        out
    }
}

macro_rules! tuple_gen {
    ($($g:ident : $idx:tt),+) => {
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);

            fn generate(&self, rng: &mut SimRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&v.$idx) {
                        let mut c = v.clone();
                        c.$idx = cand;
                        out.push(c);
                    }
                )+
                out
            }
        }
    };
}

tuple_gen!(A: 0, B: 1);
tuple_gen!(A: 0, B: 1, C: 2);
tuple_gen!(A: 0, B: 1, C: 2, D: 3);
tuple_gen!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_gen!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// A property failure, carrying the seed needed to replay it.
#[derive(Debug)]
pub struct PropError {
    /// Property name.
    pub name: String,
    /// Case seed that reproduces the failure.
    pub seed: u64,
    /// Panic message from the property body.
    pub message: String,
    /// Debug rendering of the (shrunk) failing value.
    pub value: String,
}

impl std::fmt::Display for PropError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "property '{}' failed (seed {:#x}): {}\n  failing value: {}\n  replay: SIMKIT_SEED={:#x} cargo test {}",
            self.name, self.seed, self.message, self.value, self.seed, self.name
        )
    }
}

thread_local! {
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

static HOOK_INIT: Once = Once::new();

/// Installs (once) a panic hook that stays silent while the runner probes
/// candidate cases, so shrinking does not spray hundreds of backtraces.
fn init_quiet_hook() {
    HOOK_INIT.call_once(|| {
        let default = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|q| q.get()) {
                default(info);
            }
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `f` with panics captured (and silenced) rather than printed.
fn probe<V, F: Fn(&V)>(f: &F, v: &V) -> Result<(), String> {
    init_quiet_hook();
    QUIET_PANICS.with(|q| q.set(true));
    let r = panic::catch_unwind(AssertUnwindSafe(|| f(v)));
    QUIET_PANICS.with(|q| q.set(false));
    r.map_err(panic_message)
}

/// FNV-1a over the property name: the deterministic base seed.
fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builder for running one property.
pub struct Checker {
    name: String,
    cases: u32,
    max_shrink_steps: u32,
    corpus_paths: Vec<std::path::PathBuf>,
}

/// Starts a property check named `name` (conventionally the test function
/// name, so the printed replay command targets the right test).
pub fn checker(name: &str) -> Checker {
    Checker {
        name: name.to_string(),
        cases: default_cases(),
        max_shrink_steps: 400,
        corpus_paths: Vec::new(),
    }
}

fn default_cases() -> u32 {
    std::env::var("SIMKIT_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

impl Checker {
    /// Sets the number of random cases (default 64, or `SIMKIT_CASES`).
    #[must_use]
    pub fn cases(mut self, n: u32) -> Self {
        // An explicit SIMKIT_CASES wins over per-property counts so one
        // environment variable can dial the whole suite up or down.
        if std::env::var("SIMKIT_CASES").is_err() {
            self.cases = n;
        }
        self
    }

    /// Adds a regression-corpus file whose seeds replay before any random
    /// cases. Both the simkit native format and legacy
    /// `proptest-regressions` files are understood; missing files are
    /// silently skipped (a fresh checkout has no corpus yet).
    #[must_use]
    pub fn corpus(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.corpus_paths.push(path.into());
        self
    }

    /// Runs the property: corpus seeds first, then `cases` random cases.
    ///
    /// # Panics
    ///
    /// Panics with a replayable report if any case fails (after shrinking).
    pub fn check<G: Gen>(self, gen: &G, prop: impl Fn(&G::Value)) {
        if let Err(e) = self.try_check(gen, &prop) {
            // Re-panic with the full replay report as the test failure.
            panic!("[simkit] {e}");
        }
    }

    /// Like [`Checker::check`] but returns the failure instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the first (shrunk) failing case.
    pub fn try_check<G: Gen>(
        &self,
        gen: &G,
        prop: &impl Fn(&G::Value),
    ) -> Result<(), PropError> {
        // Replay mode: SIMKIT_SEED runs exactly one case.
        if let Some(seed) = env_seed() {
            return self.run_case(gen, prop, seed, true);
        }
        // Corpus seeds first: known-bad cases from previous runs.
        for path in &self.corpus_paths {
            for seed in corpus::seeds_for(path, &self.name) {
                self.run_case(gen, prop, seed, false)?;
            }
        }
        // Then the deterministic random sweep.
        let base = name_seed(&self.name);
        for i in 0..self.cases {
            let seed = SimRng::seeded(base.wrapping_add(u64::from(i))).next_u64();
            self.run_case(gen, prop, seed, false)?;
        }
        Ok(())
    }

    fn run_case<G: Gen>(
        &self,
        gen: &G,
        prop: &impl Fn(&G::Value),
        seed: u64,
        replay: bool,
    ) -> Result<(), PropError> {
        let mut rng = SimRng::seeded(seed);
        let value = gen.generate(&mut rng);
        let Err(first_msg) = probe(prop, &value) else {
            return Ok(());
        };
        let (value, message) = if replay {
            (value, first_msg)
        } else {
            self.shrunk(gen, prop, value, first_msg)
        };
        let err = PropError {
            name: self.name.clone(),
            seed,
            message,
            value: format!("{value:?}"),
        };
        // Persist the failing seed so future runs replay it before
        // generating novel cases (mirrors proptest's regression files).
        if let Some(path) = self.corpus_paths.first() {
            corpus::record_failure(path, &self.name, seed, &err.value);
        }
        Err(err)
    }

    /// Greedy shrink: repeatedly move to the first candidate that still
    /// fails, until no candidate fails or the step budget runs out.
    fn shrunk<G: Gen>(
        &self,
        gen: &G,
        prop: &impl Fn(&G::Value),
        mut value: G::Value,
        mut message: String,
    ) -> (G::Value, String) {
        let mut steps = 0;
        'outer: while steps < self.max_shrink_steps {
            for cand in gen.shrink(&value) {
                steps += 1;
                if let Err(msg) = probe(prop, &cand) {
                    value = cand;
                    message = msg;
                    continue 'outer;
                }
                if steps >= self.max_shrink_steps {
                    break;
                }
            }
            break;
        }
        (value, message)
    }
}

fn env_seed() -> Option<u64> {
    let raw = std::env::var("SIMKIT_SEED").ok()?;
    let raw = raw.trim();
    let parsed = raw
        .strip_prefix("0x")
        .map_or_else(|| raw.parse().ok(), |h| u64::from_str_radix(h, 16).ok());
    assert!(parsed.is_some(), "SIMKIT_SEED={raw:?} is not a u64");
    parsed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_passes() {
        checker("passing_property_passes")
            .cases(50)
            .check(&vec_of(range_u64(0, 100), 0, 20), |v| {
                assert!(v.iter().all(|&x| x < 100));
            });
    }

    #[test]
    fn failing_property_shrinks_to_minimal_counterexample() {
        // Property: no element is >= 50. Minimal counterexample under our
        // shrinkers is a single-element vector [50].
        let err = checker("failing_property_shrinks")
            .cases(200)
            .try_check(&vec_of(range_u64(0, 100), 0, 20), &|v: &Vec<u64>| {
                assert!(v.iter().all(|&x| x < 50), "element too big");
            })
            .expect_err("property must fail");
        assert_eq!(err.value, "[50]", "greedy shrink should reach [50]");
        assert!(err.message.contains("element too big"));
    }

    #[test]
    fn tuple_generation_respects_ranges() {
        checker("tuple_generation_respects_ranges")
            .cases(100)
            .check(&(range_u64(5, 10), range_u32(0, 3), any_bool()), |&(a, b, _)| {
                assert!((5..10).contains(&a));
                assert!(b < 3);
            });
    }

    #[test]
    fn select_draws_only_from_choices() {
        checker("select_draws_only_from_choices")
            .cases(60)
            .check(&select(vec![2usize, 4, 8]), |&n| {
                assert!([2, 4, 8].contains(&n));
            });
    }

    #[test]
    fn same_name_generates_identical_cases() {
        // Hermetic determinism: the case stream depends only on the name.
        let log1 = std::cell::RefCell::new(Vec::new());
        checker("stream_determinism").cases(10).check(&range_u64(0, 1000), |&v| {
            log1.borrow_mut().push(v);
        });
        let log2 = std::cell::RefCell::new(Vec::new());
        checker("stream_determinism").cases(10).check(&range_u64(0, 1000), |&v| {
            log2.borrow_mut().push(v);
        });
        assert_eq!(log1.into_inner(), log2.into_inner());
    }

    #[test]
    fn shrink_candidates_stay_in_range() {
        let g = range_u64(10, 100);
        for v in [11u64, 50, 99] {
            for c in g.shrink(&v) {
                assert!((10..100).contains(&c), "candidate {c} escaped range");
                assert!(c < v, "candidate {c} not smaller than {v}");
            }
        }
        assert!(g.shrink(&10).is_empty());
    }

    #[test]
    fn vec_shrink_never_goes_below_min_len() {
        let g = vec_of(range_u64(0, 10), 2, 6);
        let mut rng = SimRng::seeded(1);
        for _ in 0..50 {
            let v = g.generate(&mut rng);
            for c in g.shrink(&v) {
                assert!(c.len() >= 2, "shrunk below min_len: {c:?}");
            }
        }
    }
}
