//! In-tree test and measurement kit for the NuRAPID workspace.
//!
//! The tier-1 gate (`cargo build --release && cargo test -q`) must pass in
//! an environment with **no network access and an empty registry cache**.
//! This crate supplies, with zero external dependencies, the three pieces
//! of machinery the workspace previously pulled from crates.io:
//!
//! * [`prop`] — a property-based testing engine: composable generators,
//!   configurable case counts, greedy shrinking, seed replay through the
//!   `SIMKIT_SEED` environment variable, and a file-based regression
//!   corpus that also ingests legacy `proptest-regressions` files;
//! * [`bench`] — a wall-clock benchmark harness (warmup + N timed
//!   iterations, median/p95/mean), emitting one JSON line per benchmark
//!   compatible with the `BENCH_*.json` convention;
//! * [`corpus`] — parsing and persistence for the regression corpus.
//!
//! Randomness comes from [`simbase::rng::SimRng`] — the same pinned
//! xoshiro256++ stream the simulators use — so a printed case seed is
//! sufficient to replay any failure bit-exactly on any machine.
//!
//! # Replaying a failure
//!
//! When a property fails, the harness shrinks the case and prints:
//!
//! ```text
//! [simkit] property 'port_reservations_are_disjoint' FAILED (case 17, seed 0x1b2a...)
//! [simkit]   shrunk value: [(178, 8), (4282, 1), (161, 18)]
//! [simkit]   replay: SIMKIT_SEED=0x1b2a... cargo test port_reservations_are_disjoint
//! ```
//!
//! Setting `SIMKIT_SEED` reruns exactly that case (and nothing else);
//! `SIMKIT_CASES` overrides the number of random cases for every property.

pub mod bench;
pub mod corpus;
pub mod prop;

pub use bench::{BenchReport, BenchRunner};
pub use prop::{checker, Gen, PropError};
pub use simbase::rng::SimRng;
