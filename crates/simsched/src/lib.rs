//! Deterministic parallel execution subsystem for simulation jobs.
//!
//! `experiments::Sweep` used to run every (application, configuration)
//! pair strictly serially and keep results only in an in-process map.
//! This crate supplies the machinery a production-scale sweep needs,
//! with zero external dependencies (the workspace's hermetic policy):
//!
//! - [`pool`] — a scoped `std::thread` worker pool that executes a batch
//!   of jobs on N threads and returns results **in job order**, so output
//!   is bit-identical regardless of thread count or completion order.
//! - [`store`] — a concurrent, memoizing, **single-flight** run store:
//!   every key is computed exactly once even when many threads request it
//!   concurrently; later requesters block on the first computation
//!   instead of duplicating it.
//! - [`json`] — re-export of [`simbase::json`], the minimal JSON value
//!   model, writer, and parser (integers are preserved as `u64`/`i64`,
//!   so IEEE-754 bit patterns round-trip exactly) used by the artifact
//!   layer and by `simtel`'s exporters.
//! - [`artifact`] — a JSON-lines run manifest keyed by configuration
//!   digest ([`simbase::digest`]): completed runs are appended as they
//!   finish, and a later sweep over the same directory **resumes** by
//!   loading digest-matching records instead of re-simulating.
//! - [`progress`] — structured scheduler events (queued / started /
//!   finished, with per-job wall time and outcome) for the `repro`
//!   binary's live progress display.
//!
//! The crate is generic: it knows nothing about caches or `AppRun`s.
//! `crates/experiments` supplies the job closures and the JSON codec for
//! its result type.
//!
//! # Examples
//!
//! ```
//! use simsched::pool::run_jobs;
//! use simsched::store::RunStore;
//!
//! // Deterministic ordering: results land at their job's index.
//! let squares = run_jobs(4, (0..8).map(|i| move || i * i).collect());
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//!
//! // Single-flight memoization: one computation per key.
//! let store: RunStore<u32, u64> = RunStore::new();
//! let a = store.get_or_compute(7, || 49);
//! let b = store.get_or_compute(7, || unreachable!("cached"));
//! assert_eq!(*a, *b);
//! assert_eq!(store.completed(), 1);
//! ```

pub mod artifact;
pub mod pool;
pub mod progress;
pub mod store;

pub use simbase::json;

pub use artifact::ArtifactStore;
pub use pool::run_jobs;
pub use progress::{Event, EventKind, Hub, Observer, Outcome};
pub use store::{EntryState, RunStore};
