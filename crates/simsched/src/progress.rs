//! Structured scheduler progress events.
//!
//! The scheduler reports what it is doing through an [`Observer`]
//! callback — the `repro` binary installs one that prints live progress
//! to stderr, tests install counters, and headless runs install none.
//! Events are emitted from worker threads, so observers must be
//! `Send + Sync`; the provided [`Counts`] observer is lock-free.

use simtel::{Console, Telemetry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How a finished job obtained its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Freshly simulated in this process.
    Simulated,
    /// Deduplicated against an identical in-process run (single-flight).
    Shared,
    /// Loaded from a digest-matching on-disk artifact.
    Resumed,
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The job entered the queue.
    Queued,
    /// A worker began executing the job.
    Started,
    /// The job finished with the given outcome and wall time.
    Finished {
        /// How the result was obtained.
        outcome: Outcome,
        /// Wall-clock duration of this job on its worker.
        wall_ns: u64,
    },
}

/// One scheduler event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Job label, conventionally `config/app` (e.g. `nf4/galgel`).
    pub label: String,
    /// What happened.
    pub kind: EventKind,
}

/// A scheduler event sink.
pub type Observer = Arc<dyn Fn(&Event) + Send + Sync>;

/// A dynamic fan-out point for scheduler events.
///
/// A `Sweep` accepts exactly one [`Observer`]; long-lived serving layers
/// need to attach and detach listeners while the sweep is running (one
/// per watching client). A `Hub` is installed once as the sweep's
/// observer and forwards every event to the observers currently
/// subscribed. Subscribers must be fast and non-blocking — they run on
/// the worker threads emitting the events (bounded-queue senders that
/// drop on overflow, not blocking writes).
#[derive(Default)]
pub struct Hub {
    subs: std::sync::Mutex<Vec<(u64, Observer)>>,
    next: AtomicU64,
}

impl Hub {
    /// An empty hub.
    pub fn new() -> Arc<Self> {
        Arc::new(Hub::default())
    }

    /// The [`Observer`] to install on the sweep: forwards each event to
    /// every currently subscribed observer, in subscription order.
    pub fn observer(self: &Arc<Self>) -> Observer {
        let me = Arc::clone(self);
        Arc::new(move |e: &Event| {
            // Clone the roster out of the lock so a slow subscriber (or
            // one that re-enters subscribe/unsubscribe) cannot deadlock
            // or serialize the worker threads.
            let subs: Vec<Observer> = me
                .subs
                .lock()
                .expect("hub poisoned")
                .iter()
                .map(|(_, o)| Arc::clone(o))
                .collect();
            for obs in subs {
                obs(e);
            }
        })
    }

    /// Adds an observer; returns a token for [`Hub::unsubscribe`].
    pub fn subscribe(&self, obs: Observer) -> u64 {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        self.subs.lock().expect("hub poisoned").push((id, obs));
        id
    }

    /// Removes a previously subscribed observer. Unknown tokens are
    /// ignored (the subscriber may already have been dropped).
    pub fn unsubscribe(&self, token: u64) {
        self.subs.lock().expect("hub poisoned").retain(|(id, _)| *id != token);
    }

    /// Number of live subscribers.
    pub fn subscribers(&self) -> usize {
        self.subs.lock().expect("hub poisoned").len()
    }
}

impl std::fmt::Debug for Hub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Hub({} subscribers)", self.subscribers())
    }
}

/// A lock-free counting observer for tests and summaries.
#[derive(Debug, Default)]
pub struct Counts {
    /// Jobs queued.
    pub queued: AtomicU64,
    /// Jobs started on a worker.
    pub started: AtomicU64,
    /// Jobs finished by fresh simulation.
    pub simulated: AtomicU64,
    /// Jobs finished by single-flight sharing.
    pub shared: AtomicU64,
    /// Jobs finished from on-disk artifacts.
    pub resumed: AtomicU64,
}

impl Counts {
    /// A fresh counter set.
    pub fn new() -> Arc<Self> {
        Arc::new(Counts::default())
    }

    /// An [`Observer`] that increments these counters.
    pub fn observer(self: &Arc<Self>) -> Observer {
        let me = Arc::clone(self);
        Arc::new(move |e: &Event| {
            let c = match e.kind {
                EventKind::Queued => &me.queued,
                EventKind::Started => &me.started,
                EventKind::Finished { outcome, .. } => match outcome {
                    Outcome::Simulated => &me.simulated,
                    Outcome::Shared => &me.shared,
                    Outcome::Resumed => &me.resumed,
                },
            };
            c.fetch_add(1, Ordering::Relaxed);
        })
    }

    /// Total finished jobs.
    pub fn finished(&self) -> u64 {
        self.simulated.load(Ordering::Relaxed)
            + self.shared.load(Ordering::Relaxed)
            + self.resumed.load(Ordering::Relaxed)
    }
}

/// An [`Observer`] that counts every event, routes progress lines
/// through a [`Console`] (so `--quiet` / `SIMTEL_QUIET` silence stderr
/// without losing the count summary), and — when a telemetry collector
/// is attached — records each simulated job as a wall-clock span on the
/// non-deterministic profiling channel.
pub fn console_observer(
    console: Console,
    counts: Arc<Counts>,
    telemetry: Option<Arc<Telemetry>>,
) -> Observer {
    let counting = counts.observer();
    Arc::new(move |e: &Event| {
        counting(e);
        if let EventKind::Finished { outcome, wall_ns } = e.kind {
            match outcome {
                Outcome::Simulated => {
                    if let Some(tel) = &telemetry {
                        tel.wall_span("simsched", &e.label, wall_ns);
                    }
                    console.status(&format!(
                        "[simsched] done {:<18} {:>7.2}s",
                        e.label,
                        wall_ns as f64 / 1e9
                    ));
                }
                Outcome::Resumed => {
                    console.status(&format!("[simsched] resumed {} from artifact", e.label));
                }
                Outcome::Shared => {}
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_observer_tallies_by_kind() {
        let counts = Counts::new();
        let obs = counts.observer();
        let fire = |kind| {
            obs(&Event {
                label: "nf4/galgel".into(),
                kind,
            })
        };
        fire(EventKind::Queued);
        fire(EventKind::Started);
        fire(EventKind::Finished {
            outcome: Outcome::Simulated,
            wall_ns: 5,
        });
        fire(EventKind::Finished {
            outcome: Outcome::Resumed,
            wall_ns: 1,
        });
        fire(EventKind::Finished {
            outcome: Outcome::Shared,
            wall_ns: 0,
        });
        assert_eq!(counts.queued.load(Ordering::Relaxed), 1);
        assert_eq!(counts.started.load(Ordering::Relaxed), 1);
        assert_eq!(counts.simulated.load(Ordering::Relaxed), 1);
        assert_eq!(counts.resumed.load(Ordering::Relaxed), 1);
        assert_eq!(counts.shared.load(Ordering::Relaxed), 1);
        assert_eq!(counts.finished(), 3);
    }

    #[test]
    fn hub_fans_out_to_current_subscribers_only() {
        let hub = Hub::new();
        let fanned = hub.observer();
        let a = Counts::new();
        let b = Counts::new();
        let event = Event {
            label: "nf4/galgel".into(),
            kind: EventKind::Queued,
        };

        // No subscribers: events are dropped, not buffered.
        fanned(&event);
        let tok_a = hub.subscribe(a.observer());
        fanned(&event);
        let _tok_b = hub.subscribe(b.observer());
        fanned(&event);
        hub.unsubscribe(tok_a);
        fanned(&event);

        assert_eq!(a.queued.load(Ordering::Relaxed), 2);
        assert_eq!(b.queued.load(Ordering::Relaxed), 2);
        assert_eq!(hub.subscribers(), 1);
        // Unknown tokens are a no-op.
        hub.unsubscribe(999);
        assert_eq!(hub.subscribers(), 1);
    }

    #[test]
    fn console_observer_counts_and_mirrors_to_the_wall_channel() {
        let counts = Counts::new();
        let tel = Arc::new(Telemetry::with_params(8, 0));
        let console = Console::new(true).with_mirror(Arc::clone(&tel));
        let obs = console_observer(console, Arc::clone(&counts), Some(Arc::clone(&tel)));
        let fire = |label: &str, outcome| {
            obs(&Event {
                label: label.into(),
                kind: EventKind::Finished { outcome, wall_ns: 2_000_000 },
            })
        };
        fire("nf4/galgel", Outcome::Simulated);
        fire("base/galgel", Outcome::Resumed);
        fire("dm4/galgel", Outcome::Shared);
        assert_eq!(counts.finished(), 3);
        // One wall span (simulated) + two mirrored status marks
        // (done + resumed); shared jobs are silent.
        assert_eq!(tel.wall_events(), 3);
    }
}
