//! Scoped worker pool with deterministic result ordering.
//!
//! [`run_jobs`] executes a batch of independent jobs on up to `threads`
//! OS threads. Workers claim jobs from a shared atomic cursor (so a slow
//! job never stalls the queue behind it) and deposit each result at the
//! job's original index; the returned `Vec` is therefore identical for
//! any thread count, including 1. Panics in a job are propagated to the
//! caller after the scope joins, as with plain `std::thread::scope`.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `jobs` on up to `threads` worker threads and returns their
/// results in job order.
///
/// `threads` is clamped to `[1, jobs.len()]`; passing 1 executes the
/// batch on the calling thread's scope with no queueing overhead beyond
/// the atomic cursor. The closure type is boxed-free: any `FnOnce`
/// returning `T` works.
///
/// # Panics
///
/// If any job panics, the panic is re-raised on the calling thread after
/// all workers have stopped claiming new jobs.
pub fn run_jobs<T, F>(threads: usize, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.clamp(1, n);

    // Job slots: workers `take()` the closure they claimed. Result slots
    // are per-index so completion order cannot permute output order.
    let job_slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let result_slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let mut panic: Option<Box<dyn std::any::Any + Send>> = None;

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| -> Result<(), Box<dyn std::any::Any + Send>> {
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        return Ok(());
                    }
                    let job = job_slots[i]
                        .lock()
                        .expect("job slot poisoned")
                        .take()
                        .expect("job claimed twice");
                    match catch_unwind(AssertUnwindSafe(job)) {
                        Ok(v) => *result_slots[i].lock().expect("result slot poisoned") = Some(v),
                        Err(e) => {
                            // Stop claiming further work and surface the
                            // panic to the caller.
                            cursor.store(n, Ordering::Relaxed);
                            return Err(e);
                        }
                    }
                }
            }));
        }
        for h in handles {
            if let Err(e) = h.join().expect("worker thread itself panicked") {
                panic.get_or_insert(e);
            }
        }
    });

    if let Some(e) = panic {
        resume_unwind(e);
    }
    result_slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("job finished without a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn empty_batch_is_fine() {
        let out: Vec<u32> = run_jobs(4, Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn results_keep_job_order_for_any_thread_count() {
        for threads in [1, 2, 3, 8, 64] {
            let jobs: Vec<_> = (0u64..40)
                .map(|i| {
                    move || {
                        // Skew run times so completion order differs from
                        // submission order under real parallelism.
                        if i % 7 == 0 {
                            std::thread::sleep(std::time::Duration::from_millis(2));
                        }
                        i * 3
                    }
                })
                .collect();
            let out = run_jobs(threads, jobs);
            assert_eq!(out, (0u64..40).map(|i| i * 3).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn flattened_chunk_results_stitch_in_job_order() {
        // The interval-parallel sampling stitch depends on exactly this:
        // each job returns a chunk of consecutive indices, and
        // flattening the job-ordered results reproduces the full
        // sequence for any thread count, even when completion order is
        // scrambled by uneven chunk run times.
        let bounds: [(u64, u64); 5] = [(0, 3), (3, 4), (4, 9), (9, 16), (16, 17)];
        for threads in [1usize, 2, 8] {
            let jobs: Vec<_> = bounds
                .iter()
                .map(|&(lo, hi)| {
                    move || {
                        if lo % 2 == 0 {
                            std::thread::sleep(std::time::Duration::from_millis(2));
                        }
                        (lo..hi).collect::<Vec<u64>>()
                    }
                })
                .collect();
            let out: Vec<u64> = run_jobs(threads, jobs).into_iter().flatten().collect();
            assert_eq!(out, (0u64..17).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let count = AtomicU64::new(0);
        let jobs: Vec<_> = (0..100).map(|_| || count.fetch_add(1, Ordering::SeqCst)).collect();
        let _ = run_jobs(8, jobs);
        assert_eq!(count.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn more_threads_than_jobs_is_clamped() {
        let out = run_jobs(1000, vec![|| 1u8, || 2u8]);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn zero_threads_still_executes() {
        let out = run_jobs(0, vec![|| 41, || 42]);
        assert_eq!(out, vec![41, 42]);
    }

    #[test]
    fn job_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            run_jobs(2, vec![Box::new(|| 1u32) as Box<dyn FnOnce() -> u32 + Send>, Box::new(|| panic!("boom"))]);
        });
        assert!(r.is_err());
    }
}
