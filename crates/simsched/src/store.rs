//! Concurrent memoizing run store with single-flight semantics.
//!
//! A [`RunStore`] maps a key (in practice a configuration digest) to the
//! result of an expensive computation. The contract:
//!
//! - each key is computed **exactly once**, no matter how many threads
//!   request it concurrently;
//! - a requester that loses the race **blocks** until the winner's
//!   computation finishes, then shares the winner's `Arc` — it never
//!   re-runs the job (single-flight);
//! - if the computing thread panics, the in-flight marker is removed and
//!   one blocked waiter retries the computation, so a panic cannot
//!   deadlock the store.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

enum Entry<V> {
    /// A thread is computing this key; waiters sleep on the condvar.
    Running,
    /// The finished value, shared by all requesters.
    Done(Arc<V>),
}

/// Observable lifecycle state of a key (see [`RunStore::status`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// A computation for the key is in flight.
    Running,
    /// The key has a completed value.
    Done,
}

/// A concurrent, memoizing, single-flight map.
pub struct RunStore<K, V> {
    inner: Mutex<HashMap<K, Entry<V>>>,
    wakeup: Condvar,
}

impl<K: Eq + Hash + Clone, V> RunStore<K, V> {
    /// An empty store.
    pub fn new() -> Self {
        RunStore {
            inner: Mutex::new(HashMap::new()),
            wakeup: Condvar::new(),
        }
    }

    /// Returns the cached value for `key`, or computes it with `f`.
    ///
    /// Exactly one invocation of `f` runs per key across all threads;
    /// concurrent requesters block until it completes.
    pub fn get_or_compute(&self, key: K, f: impl FnOnce() -> V) -> Arc<V> {
        let mut map = self.inner.lock().expect("run store poisoned");
        loop {
            match map.get(&key) {
                Some(Entry::Done(v)) => return Arc::clone(v),
                Some(Entry::Running) => {
                    map = self.wakeup.wait(map).expect("run store poisoned");
                }
                None => break,
            }
        }
        map.insert(key.clone(), Entry::Running);
        drop(map);

        // If `f` panics, clear the Running marker so a waiter can retry
        // instead of sleeping forever.
        struct Unflight<'a, K: Eq + Hash, V> {
            store: &'a RunStore<K, V>,
            key: Option<K>,
        }
        impl<K: Eq + Hash, V> Drop for Unflight<'_, K, V> {
            fn drop(&mut self) {
                if let Some(key) = self.key.take() {
                    self.store.inner.lock().expect("run store poisoned").remove(&key);
                    self.store.wakeup.notify_all();
                }
            }
        }
        let mut guard = Unflight { store: self, key: Some(key) };

        let value = Arc::new(f());

        let key = guard.key.take().expect("guard disarmed early");
        std::mem::forget(guard);
        self.inner
            .lock()
            .expect("run store poisoned")
            .insert(key, Entry::Done(Arc::clone(&value)));
        self.wakeup.notify_all();
        value
    }

    /// Returns the cached value for `key` without computing anything.
    /// Does not wait on in-flight computations.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        match self.inner.lock().expect("run store poisoned").get(key) {
            Some(Entry::Done(v)) => Some(Arc::clone(v)),
            _ => None,
        }
    }

    /// Non-blocking state probe for `key`: `None` when the store has
    /// never seen the key, `Some(Running)` while a computation is in
    /// flight, `Some(Done)` once a value is available. Serving layers use
    /// this to answer status queries without joining the single-flight
    /// wait.
    pub fn status(&self, key: &K) -> Option<EntryState> {
        match self.inner.lock().expect("run store poisoned").get(key) {
            Some(Entry::Done(_)) => Some(EntryState::Done),
            Some(Entry::Running) => Some(EntryState::Running),
            None => None,
        }
    }

    /// Inserts an externally produced value (e.g. one loaded from an
    /// artifact manifest). Returns the shared handle. An existing
    /// completed entry is left untouched.
    pub fn insert(&self, key: K, value: V) -> Arc<V> {
        let mut map = self.inner.lock().expect("run store poisoned");
        if let Some(Entry::Done(v)) = map.get(&key) {
            return Arc::clone(v);
        }
        let v = Arc::new(value);
        map.insert(key, Entry::Done(Arc::clone(&v)));
        self.wakeup.notify_all();
        v
    }

    /// Number of completed entries.
    pub fn completed(&self) -> usize {
        self.inner
            .lock()
            .expect("run store poisoned")
            .values()
            .filter(|e| matches!(e, Entry::Done(_)))
            .count()
    }
}

impl<K: Eq + Hash + Clone, V> Default for RunStore<K, V> {
    fn default() -> Self {
        RunStore::new()
    }
}

impl<K, V> std::fmt::Debug for RunStore<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.inner.lock().map(|m| m.len()).unwrap_or(0);
        write!(f, "RunStore({n} entries)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Barrier;

    #[test]
    fn memoizes() {
        let store: RunStore<&str, u64> = RunStore::new();
        assert_eq!(*store.get_or_compute("a", || 1), 1);
        assert_eq!(*store.get_or_compute("a", || panic!("must be cached")), 1);
        assert_eq!(store.completed(), 1);
        assert_eq!(store.get(&"a").as_deref(), Some(&1));
        assert_eq!(store.get(&"b"), None);
    }

    #[test]
    fn concurrent_requests_compute_once() {
        let store: RunStore<u32, u64> = RunStore::new();
        let calls = AtomicU64::new(0);
        let barrier = Barrier::new(8);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    barrier.wait();
                    let v = store.get_or_compute(42, || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window.
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        4242
                    });
                    assert_eq!(*v, 4242);
                });
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1, "single-flight violated");
        assert_eq!(store.completed(), 1);
    }

    #[test]
    fn status_reports_unknown_running_done() {
        let store: RunStore<u32, u64> = RunStore::new();
        assert_eq!(store.status(&7), None);
        let barrier = Barrier::new(2);
        std::thread::scope(|s| {
            s.spawn(|| {
                store.get_or_compute(7, || {
                    barrier.wait();
                    // Keep the key Running until the probe below has run.
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    77
                });
            });
            barrier.wait();
            assert_eq!(store.status(&7), Some(EntryState::Running));
        });
        assert_eq!(store.status(&7), Some(EntryState::Done));
    }

    #[test]
    fn insert_preloads_and_wins_ties() {
        let store: RunStore<u32, u64> = RunStore::new();
        store.insert(1, 10);
        assert_eq!(*store.get_or_compute(1, || panic!("preloaded")), 10);
        // Insert after completion keeps the original.
        let kept = store.insert(1, 99);
        assert_eq!(*kept, 10);
    }

    #[test]
    fn panic_in_computation_releases_the_key() {
        let store: RunStore<u32, u64> = RunStore::new();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.get_or_compute(5, || panic!("first attempt dies"));
        }));
        assert!(r.is_err());
        // The key must be retryable, not wedged as Running.
        assert_eq!(*store.get_or_compute(5, || 55), 55);
    }
}
