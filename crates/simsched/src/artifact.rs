//! JSON-lines run artifacts with digest-keyed resume.
//!
//! An [`ArtifactStore`] owns a directory (conventionally `$SIMSCHED_DIR`)
//! containing a manifest `runs.jsonl`: one JSON object per completed run,
//! appended and flushed as each run finishes, so a killed sweep leaves
//! every *finished* job on disk. Each record carries a `"digest"` field —
//! the [`simbase::digest::Digest`] hex of the full (application,
//! configuration, scale) tuple — plus whatever payload the caller stored.
//!
//! On open, the store indexes every well-formed existing record by
//! digest; a resuming sweep asks [`ArtifactStore::lookup`] before
//! simulating and skips jobs whose digest is already present. Records
//! whose digest no longer matches any requested job (stale scale, edited
//! config) are simply never looked up — resume can only ever *skip*
//! work, not corrupt it. Malformed lines (e.g. a line torn by a kill
//! mid-write) are counted and ignored, not fatal.

use crate::json::{self, Json};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Name of the manifest file inside the artifact directory.
pub const MANIFEST: &str = "runs.jsonl";

/// A durable, append-only store of completed-run records.
#[derive(Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
    writer: Mutex<BufWriter<File>>,
    loaded: Mutex<HashMap<String, Json>>,
    malformed: usize,
}

impl ArtifactStore {
    /// Opens (creating if needed) the artifact directory and loads the
    /// existing manifest into the in-memory index.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let manifest = dir.join(MANIFEST);

        let mut loaded = HashMap::new();
        let mut malformed = 0;
        if manifest.exists() {
            let mut text = String::new();
            File::open(&manifest)?.read_to_string(&mut text)?;
            for line in text.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                match json::parse(line) {
                    Ok(record) => match record.field("digest").and_then(Json::as_str) {
                        Some(d) => {
                            loaded.insert(d.to_string(), record);
                        }
                        None => malformed += 1,
                    },
                    Err(_) => malformed += 1,
                }
            }
        }

        let file = OpenOptions::new().create(true).append(true).open(&manifest)?;
        Ok(ArtifactStore {
            dir,
            writer: Mutex::new(BufWriter::new(file)),
            loaded: Mutex::new(loaded),
            malformed,
        })
    }

    /// The artifact directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of records loaded from a pre-existing manifest.
    pub fn loaded_records(&self) -> usize {
        self.loaded.lock().expect("artifact index poisoned").len()
    }

    /// Number of unparseable manifest lines skipped at open.
    pub fn malformed_lines(&self) -> usize {
        self.malformed
    }

    /// Returns the stored record for `digest`, if one exists.
    pub fn lookup(&self, digest: &str) -> Option<Json> {
        self.loaded
            .lock()
            .expect("artifact index poisoned")
            .get(digest)
            .cloned()
    }

    /// Appends a completed-run record and flushes it to disk.
    ///
    /// The record must be a JSON object; the `"digest"` field is
    /// prepended automatically (callers supply only the payload fields).
    /// The record also enters the in-memory index, so a later `lookup`
    /// within the same process sees it.
    pub fn append(&self, digest: &str, payload: Json) -> std::io::Result<()> {
        let Json::Obj(mut pairs) = payload else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "artifact payload must be a JSON object",
            ));
        };
        pairs.insert(0, ("digest".to_string(), Json::Str(digest.to_string())));
        let record = Json::Obj(pairs);
        let line = record.render();
        {
            let mut w = self.writer.lock().expect("artifact writer poisoned");
            w.write_all(line.as_bytes())?;
            w.write_all(b"\n")?;
            w.flush()?;
        }
        self.loaded
            .lock()
            .expect("artifact index poisoned")
            .insert(digest.to_string(), record);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique scratch directory per test, cleaned up on drop.
    struct Scratch(PathBuf);
    impl Scratch {
        fn new(tag: &str) -> Self {
            static N: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "simsched-test-{}-{tag}-{}",
                std::process::id(),
                N.fetch_add(1, Ordering::SeqCst)
            ));
            Scratch(dir)
        }
    }
    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn append_then_reopen_resumes() {
        let scratch = Scratch::new("roundtrip");
        {
            let store = ArtifactStore::open(&scratch.0).unwrap();
            assert_eq!(store.loaded_records(), 0);
            store
                .append("d1", Json::obj(vec![("x", Json::U64(7))]))
                .unwrap();
            store
                .append("d2", Json::obj(vec![("x", Json::U64(8))]))
                .unwrap();
            // Visible in-process immediately.
            assert_eq!(
                store.lookup("d1").unwrap().field("x").and_then(Json::as_u64),
                Some(7)
            );
        }
        let store = ArtifactStore::open(&scratch.0).unwrap();
        assert_eq!(store.loaded_records(), 2);
        assert_eq!(store.malformed_lines(), 0);
        assert_eq!(
            store.lookup("d2").unwrap().field("x").and_then(Json::as_u64),
            Some(8)
        );
        assert!(store.lookup("d3").is_none());
    }

    #[test]
    fn torn_lines_are_skipped_not_fatal() {
        let scratch = Scratch::new("torn");
        std::fs::create_dir_all(&scratch.0).unwrap();
        std::fs::write(
            scratch.0.join(MANIFEST),
            "{\"digest\":\"ok\",\"x\":1}\n{\"digest\":\"torn\",\"x\"\n{\"no-digest\":1}\n",
        )
        .unwrap();
        let store = ArtifactStore::open(&scratch.0).unwrap();
        assert_eq!(store.loaded_records(), 1);
        assert_eq!(store.malformed_lines(), 2);
        assert!(store.lookup("ok").is_some());
        // Appending after a torn tail still yields parseable lines.
        store.append("new", Json::obj(vec![("x", Json::U64(2))])).unwrap();
        let reopened = ArtifactStore::open(&scratch.0).unwrap();
        assert_eq!(reopened.loaded_records(), 2);
    }

    #[test]
    fn non_object_payload_is_rejected() {
        let scratch = Scratch::new("reject");
        let store = ArtifactStore::open(&scratch.0).unwrap();
        assert!(store.append("d", Json::U64(1)).is_err());
    }
}
