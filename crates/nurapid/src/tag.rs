//! The centralized set-associative tag array with forward pointers.
//!
//! A tag match works exactly as in a conventional set-associative cache
//! with sequential tag-data access, but a successful match additionally
//! returns the entry's **forward pointer** — the (d-group, frame) where the
//! block's data lives (paper Figure 1). Data replacement (eviction) is
//! per-set true LRU (Section 2.4.2).

use memsys::packed_lru::LruTable;
use simbase::snapshot::{Decoder, Encoder, SnapshotError};
use simbase::{AccessKind, BlockAddr};

/// A forward pointer: where a block's data lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FramePtr {
    /// d-group index (0 = fastest).
    pub group: u8,
    /// Frame index within the d-group.
    pub frame: u32,
}

/// A reverse pointer: which tag entry owns a frame (paper Figure 1's
/// "set i way j" annotation on each data frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TagRef {
    /// Set index in the tag array.
    pub set: u32,
    /// Way within the set.
    pub way: u8,
}

/// Result of a tag probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagLookup {
    /// Block present: its location in the tag array and its forward pointer.
    Hit { at: TagRef, ptr: FramePtr },
    /// Block absent.
    Miss,
}

/// The eviction produced by making room for a new tag entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagEviction {
    /// The evicted block.
    pub block: BlockAddr,
    /// Whether it was dirty (needs writeback to memory).
    pub dirty: bool,
    /// The frame its data occupied, which becomes free.
    pub freed: FramePtr,
}

/// Per-entry status and forward pointer packed into one `u64` in the
/// [`TagArray`] metadata arena: bit 63 = valid, bit 62 = dirty, bits
/// 48..56 = d-group, bits 0..32 = frame index.
const META_VALID: u64 = 1 << 63;
const META_DIRTY: u64 = 1 << 62;
const META_GROUP_SHIFT: u32 = 48;
const META_FRAME_MASK: u64 = 0xFFFF_FFFF;

#[inline(always)]
fn pack_ptr(ptr: FramePtr) -> u64 {
    ((ptr.group as u64) << META_GROUP_SHIFT) | ptr.frame as u64
}

#[inline(always)]
fn unpack_ptr(meta: u64) -> FramePtr {
    FramePtr {
        group: (meta >> META_GROUP_SHIFT) as u8,
        frame: (meta & META_FRAME_MASK) as u32,
    }
}

/// The centralized tag array.
///
/// Layout (DESIGN.md §9): struct-of-arrays — a flat `Vec<u64>` of block
/// indices scanned on probes, a parallel `Vec<u64>` packing
/// valid/dirty/forward-pointer per entry, and a nibble-packed
/// [`LruTable`] for per-set data-replacement recency. Set selection is a
/// mask (set counts are asserted power-of-two).
#[derive(Debug, Clone)]
pub struct TagArray {
    blocks: Vec<u64>, // sets * assoc block indices, row-major by set
    meta: Vec<u64>,   // parallel packed valid/dirty/FramePtr
    lru: LruTable,
    sets: usize,
    assoc: u32,
    set_mask: u64,
}

impl TagArray {
    /// Creates a tag array with `sets` sets of `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `assoc` is 0 or > 255.
    pub fn new(sets: usize, assoc: u32) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(assoc > 0 && assoc <= 255, "associativity out of range");
        TagArray {
            blocks: vec![u64::MAX; sets * assoc as usize],
            meta: vec![0; sets * assoc as usize],
            lru: LruTable::new(sets, assoc),
            sets,
            assoc,
            set_mask: sets as u64 - 1,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Set index of `block`.
    #[inline]
    pub fn set_of(&self, block: BlockAddr) -> u32 {
        (block.index() & self.set_mask) as u32
    }

    #[inline(always)]
    fn idx(&self, r: TagRef) -> usize {
        r.set as usize * self.assoc as usize + r.way as usize
    }

    /// Probes the tag array for `block`; on a hit updates per-set LRU and,
    /// for writes, the dirty bit.
    #[inline]
    pub fn access(&mut self, block: BlockAddr, kind: AccessKind) -> TagLookup {
        let set = self.set_of(block);
        let base = set as usize * self.assoc as usize;
        let target = block.index();
        for way in 0..self.assoc as u8 {
            let i = base + way as usize;
            if self.blocks[i] == target && self.meta[i] & META_VALID != 0 {
                if kind.is_write() {
                    self.meta[i] |= META_DIRTY;
                }
                self.lru.touch(set as usize, way as u32);
                return TagLookup::Hit { at: TagRef { set, way }, ptr: unpack_ptr(self.meta[i]) };
            }
        }
        TagLookup::Miss
    }

    /// Pure probe without state updates.
    pub fn probe(&self, block: BlockAddr) -> Option<(TagRef, FramePtr)> {
        let set = self.set_of(block);
        let base = set as usize * self.assoc as usize;
        let target = block.index();
        for way in 0..self.assoc as u8 {
            let i = base + way as usize;
            if self.blocks[i] == target && self.meta[i] & META_VALID != 0 {
                return Some((TagRef { set, way }, unpack_ptr(self.meta[i])));
            }
        }
        None
    }

    /// Allocates a tag entry for `block`, evicting the set's LRU block if
    /// the set is full (conventional data replacement, Section 2.2 step 2).
    ///
    /// The new entry's forward pointer is `ptr` (where the caller will
    /// place the data); `dirty` seeds its dirty bit. Returns the location
    /// of the new entry and any eviction.
    ///
    /// # Panics
    ///
    /// Panics if `block` is already present.
    pub fn allocate(
        &mut self,
        block: BlockAddr,
        ptr: FramePtr,
        dirty: bool,
    ) -> (TagRef, Option<TagEviction>) {
        // The miss path probes before allocating, so re-probing here is
        // redundant hot-path work; keep it as a debug-only guard.
        debug_assert!(
            self.probe(block).is_none(),
            "allocate of already-present block {block}"
        );
        let set = self.set_of(block);
        let base = set as usize * self.assoc as usize;
        // Prefer an invalid way (first in way order).
        let mut target = None;
        for way in 0..self.assoc as u8 {
            if self.meta[base + way as usize] & META_VALID == 0 {
                target = Some(way);
                break;
            }
        }
        let (way, evicted) = match target {
            Some(way) => (way, None),
            None => {
                let way = self.lru.victim(set as usize) as u8;
                let old = self.meta[base + way as usize];
                (
                    way,
                    Some(TagEviction {
                        block: BlockAddr::from_index(self.blocks[base + way as usize]),
                        dirty: old & META_DIRTY != 0,
                        freed: unpack_ptr(old),
                    }),
                )
            }
        };
        let i = base + way as usize;
        self.blocks[i] = block.index();
        self.meta[i] = META_VALID | if dirty { META_DIRTY } else { 0 } | pack_ptr(ptr);
        self.lru.touch(set as usize, way as u32);
        (TagRef { set, way }, evicted)
    }

    /// Rewrites the forward pointer of the entry at `r` (a demotion or
    /// promotion moved its data; paper Figure 2 step 3).
    ///
    /// # Panics
    ///
    /// Panics if `r` names an invalid entry.
    #[inline]
    pub fn set_ptr(&mut self, r: TagRef, ptr: FramePtr) {
        let i = self.idx(r);
        assert!(self.meta[i] & META_VALID != 0, "set_ptr on invalid entry");
        self.meta[i] = (self.meta[i] & (META_VALID | META_DIRTY)) | pack_ptr(ptr);
    }

    /// The forward pointer of the entry at `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` names an invalid entry.
    #[inline]
    pub fn ptr_of(&self, r: TagRef) -> FramePtr {
        let m = self.meta[self.idx(r)];
        assert!(m & META_VALID != 0, "ptr_of on invalid entry");
        unpack_ptr(m)
    }

    /// The block held by the entry at `r`, if valid.
    pub fn block_at(&self, r: TagRef) -> Option<BlockAddr> {
        let i = self.idx(r);
        (self.meta[i] & META_VALID != 0).then(|| BlockAddr::from_index(self.blocks[i]))
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.meta.iter().filter(|&&m| m & META_VALID != 0).count()
    }

    /// Serializes tags, packed metadata (valid/dirty/forward pointers),
    /// and per-set recency.
    pub fn save_state(&self, e: &mut Encoder) {
        e.put_u64_slice(&self.blocks);
        e.put_u64_slice(&self.meta);
        self.lru.save_state(e);
    }

    /// Restores state written by [`TagArray::save_state`] into an array of
    /// identical geometry.
    pub fn load_state(&mut self, d: &mut Decoder<'_>) -> Result<(), SnapshotError> {
        let blocks = d.u64_slice()?;
        let meta = d.u64_slice()?;
        if blocks.len() != self.blocks.len() || meta.len() != self.meta.len() {
            return Err(SnapshotError::Malformed("tag array geometry mismatch"));
        }
        self.blocks = blocks;
        self.meta = meta;
        self.lru.load_state(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    fn fp(group: u8, frame: u32) -> FramePtr {
        FramePtr { group, frame }
    }

    #[test]
    fn allocate_then_hit_returns_forward_pointer() {
        let mut t = TagArray::new(16, 4);
        let (r, ev) = t.allocate(blk(5), fp(0, 99), false);
        assert!(ev.is_none());
        match t.access(blk(5), AccessKind::Read) {
            TagLookup::Hit { at, ptr } => {
                assert_eq!(at, r);
                assert_eq!(ptr, fp(0, 99));
            }
            TagLookup::Miss => panic!("expected hit"),
        }
    }

    #[test]
    fn full_set_evicts_lru() {
        let mut t = TagArray::new(4, 2);
        // Blocks 0, 4, 8 share set 0 in a 4-set array.
        t.allocate(blk(0), fp(0, 0), false);
        t.allocate(blk(4), fp(0, 1), false);
        t.access(blk(0), AccessKind::Read); // 4 becomes LRU
        let (_, ev) = t.allocate(blk(8), fp(0, 2), false);
        let ev = ev.expect("set full");
        assert_eq!(ev.block, blk(4));
        assert_eq!(ev.freed, fp(0, 1), "eviction frees the victim's frame");
        assert!(!ev.dirty);
    }

    #[test]
    fn write_dirties_and_eviction_reports_it() {
        let mut t = TagArray::new(4, 1);
        t.allocate(blk(0), fp(1, 7), false);
        t.access(blk(0), AccessKind::Write);
        let (_, ev) = t.allocate(blk(4), fp(0, 0), false);
        assert!(ev.expect("1-way set").dirty);
    }

    #[test]
    fn allocate_dirty_seeds_dirty_bit() {
        let mut t = TagArray::new(4, 1);
        t.allocate(blk(0), fp(0, 0), true);
        let (_, ev) = t.allocate(blk(4), fp(0, 1), false);
        assert!(ev.expect("evicts").dirty);
    }

    #[test]
    fn set_ptr_redirects_data_location() {
        let mut t = TagArray::new(4, 2);
        let (r, _) = t.allocate(blk(3), fp(0, 10), false);
        t.set_ptr(r, fp(2, 55));
        assert_eq!(t.ptr_of(r), fp(2, 55));
        match t.access(blk(3), AccessKind::Read) {
            TagLookup::Hit { ptr, .. } => assert_eq!(ptr, fp(2, 55)),
            TagLookup::Miss => panic!("expected hit"),
        }
    }

    #[test]
    fn probe_is_pure() {
        let mut t = TagArray::new(4, 2);
        t.allocate(blk(0), fp(0, 0), false);
        t.allocate(blk(4), fp(0, 1), false);
        // probe must not promote block 0 to MRU.
        assert!(t.probe(blk(0)).is_some());
        let (_, ev) = t.allocate(blk(8), fp(0, 2), false);
        assert_eq!(ev.expect("full set").block, blk(0));
    }

    #[test]
    fn block_at_and_occupancy() {
        let mut t = TagArray::new(4, 2);
        assert_eq!(t.occupancy(), 0);
        let (r, _) = t.allocate(blk(9), fp(0, 1), false);
        assert_eq!(t.block_at(r), Some(blk(9)));
        assert_eq!(t.occupancy(), 1);
        assert_eq!(t.block_at(TagRef { set: r.set, way: 1 - r.way }), None);
    }

    #[test]
    #[should_panic(expected = "already-present")]
    fn double_allocate_panics() {
        let mut t = TagArray::new(4, 2);
        t.allocate(blk(1), fp(0, 0), false);
        t.allocate(blk(1), fp(0, 1), false);
    }

    #[test]
    #[should_panic(expected = "invalid entry")]
    fn set_ptr_on_invalid_panics() {
        let mut t = TagArray::new(4, 2);
        t.set_ptr(TagRef { set: 0, way: 0 }, fp(0, 0));
    }

    #[test]
    fn set_mapping_wraps() {
        let t = TagArray::new(8, 2);
        assert_eq!(t.set_of(blk(3)), 3);
        assert_eq!(t.set_of(blk(11)), 3);
    }
}
