//! Event counters and access distributions for NuRAPID.
//!
//! These feed the paper's figures directly: the per-d-group access
//! distribution (Figures 4, 5, 7), swap counts (Section 5.3.2's 2.2×
//! swap comparison), and the event counts the energy model prices
//! (tag probes, d-group reads/writes, memory traffic).

use simbase::stats::{BucketDist, Counter};

/// Statistics of one NuRAPID cache instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NuRapidStats {
    /// Demand accesses per d-group (hits only).
    pub group_hits: BucketDist,
    /// Demand accesses that missed the cache.
    pub misses: Counter,
    /// Total demand accesses.
    pub accesses: Counter,
    /// Tag-array probes (one per demand access).
    pub tag_probes: Counter,
    /// Tag-array pointer rewrites (one per block movement).
    pub tag_writes: Counter,
    /// Data-array reads per d-group (demand + swap traffic).
    pub group_reads: BucketDist,
    /// Data-array writes per d-group (fills + swap traffic).
    pub group_writes: BucketDist,
    /// Blocks promoted toward faster d-groups.
    pub promotions: Counter,
    /// Blocks demoted toward slower d-groups.
    pub demotions: Counter,
    /// Off-chip reads (misses).
    pub memory_reads: Counter,
    /// Off-chip writes (dirty evictions).
    pub writebacks: Counter,
}

impl NuRapidStats {
    /// Creates zeroed statistics for `n_dgroups` d-groups.
    pub fn new(n_dgroups: usize) -> Self {
        NuRapidStats {
            group_hits: BucketDist::new(n_dgroups),
            misses: Counter::new(),
            accesses: Counter::new(),
            tag_probes: Counter::new(),
            tag_writes: Counter::new(),
            group_reads: BucketDist::new(n_dgroups),
            group_writes: BucketDist::new(n_dgroups),
            promotions: Counter::new(),
            demotions: Counter::new(),
            memory_reads: Counter::new(),
            writebacks: Counter::new(),
        }
    }

    /// Number of d-groups.
    pub fn n_dgroups(&self) -> usize {
        self.group_hits.len()
    }

    /// Fraction of all demand accesses that hit in d-group `g`
    /// (the stacked bars of Figures 4, 5, and 7).
    pub fn group_access_frac(&self, g: usize) -> f64 {
        self.group_hits.count(g) as f64 / self.accesses.get().max(1) as f64
    }

    /// Fraction of demand accesses that missed.
    pub fn miss_frac(&self) -> f64 {
        self.misses.frac_of(self.accesses.get())
    }

    /// Total d-group (data-array) accesses: demand reads plus all swap
    /// reads and writes — the quantity the paper reports NuRAPID reduces
    /// by 61% relative to D-NUCA.
    pub fn total_dgroup_accesses(&self) -> u64 {
        self.group_reads.total() + self.group_writes.total()
    }

    /// Total swaps (each promotion or demotion moves one block).
    pub fn total_moves(&self) -> u64 {
        self.promotions.get() + self.demotions.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one_with_misses() {
        let mut s = NuRapidStats::new(4);
        for _ in 0..80 {
            s.accesses.inc();
            s.group_hits.record(0);
        }
        for _ in 0..15 {
            s.accesses.inc();
            s.group_hits.record(2);
        }
        for _ in 0..5 {
            s.accesses.inc();
            s.misses.inc();
        }
        let total: f64 =
            (0..4).map(|g| s.group_access_frac(g)).sum::<f64>() + s.miss_frac();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(s.group_access_frac(0), 0.80);
        assert_eq!(s.miss_frac(), 0.05);
    }

    #[test]
    fn empty_stats_have_zero_fractions() {
        let s = NuRapidStats::new(2);
        assert_eq!(s.group_access_frac(0), 0.0);
        assert_eq!(s.miss_frac(), 0.0);
        assert_eq!(s.total_dgroup_accesses(), 0);
        assert_eq!(s.total_moves(), 0);
        assert_eq!(s.n_dgroups(), 2);
    }

    #[test]
    fn dgroup_accesses_count_reads_and_writes() {
        let mut s = NuRapidStats::new(2);
        s.group_reads.record(0);
        s.group_reads.record(1);
        s.group_writes.record(1);
        assert_eq!(s.total_dgroup_accesses(), 3);
    }
}
