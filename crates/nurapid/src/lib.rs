//! NuRAPID: **N**on-**u**niform access with **R**eplacement **A**nd
//! **P**lacement us**I**ng **D**istance associativity — the paper's
//! contribution.
//!
//! NuRAPID is a large lower-level cache (8 MB, 8-way in the evaluation)
//! whose data placement is decoupled from tag placement:
//!
//! * a centralized, set-associative [`tag::TagArray`] is probed first
//!   (sequential tag-data access); each entry carries a **forward pointer**
//!   naming an arbitrary frame in one of a few large distance-groups;
//! * the [`dgroup::DGroupArray`]s hold the data; each occupied frame
//!   carries a **reverse pointer** back to its tag entry, so a frame can be
//!   demoted to a slower d-group by updating one forward pointer;
//! * *data replacement* (eviction, per-set LRU in the tag array) is fully
//!   decoupled from *distance replacement* (demoting a frame within the
//!   data arrays, random or LRU victim over the entire d-group);
//! * new blocks are placed directly in the **fastest** d-group
//!   (Section 2.1), and the [`policy::PromotionPolicy`] re-promotes blocks
//!   on hits to slower d-groups.
//!
//! [`NuRapidCache`] assembles these pieces behind [`memsys`]'s
//! [`LowerCache`](memsys::lower::LowerCache) interface with the paper's
//! one-ported, non-banked timing: any outstanding swaps must complete
//! before a new access begins (Section 2.3).
//!
//! The [`coupled`] module implements the set-associative-placement
//! ablation of Figure 4: identical machinery, but data placement is
//! coupled to tag placement (each way maps to a fixed d-group).
//!
//! # Examples
//!
//! ```
//! use nurapid::{NuRapidCache, NuRapidConfig};
//! use memsys::lower::LowerCache;
//! use simbase::{AccessKind, BlockAddr, Cycle};
//!
//! let mut cache = NuRapidCache::new(NuRapidConfig::micro2003(4));
//! // Cold miss: goes to memory, then fills the fastest d-group.
//! let miss = cache.access(BlockAddr::from_index(7), AccessKind::Read, Cycle::ZERO);
//! assert!(!miss.hit);
//! // Re-access (after the fill drains): hits in d-group 0 at the paper's
//! // 14-cycle latency.
//! let hit = cache.access(BlockAddr::from_index(7), AccessKind::Read, Cycle::new(1_000));
//! assert!(hit.hit);
//! assert_eq!(hit.complete_at, Cycle::new(1_014));
//! ```

pub mod cache;
pub mod coupled;
pub mod dgroup;
pub mod energy;
pub mod naive;
pub mod pointers;
pub mod policy;
pub mod port;
pub mod stats;
pub mod tag;

pub use cache::{NuRapidCache, NuRapidConfig};
pub use policy::{DistanceVictimPolicy, PromotionPolicy};
pub use stats::NuRapidStats;
