//! Forward/reverse-pointer overhead analysis (paper Section 2.4.3).
//!
//! Fully flexible distance associativity needs a forward pointer wide
//! enough to name any frame in any d-group and a reverse pointer wide
//! enough to name any tag entry. The paper's example: an 8-MB cache with
//! 128-B blocks needs 16-bit pointers (64 K frames), amounting to 256 KB
//! of pointer storage — a 3% overhead against the 5% overhead of the
//! 51-bit tag entries themselves. Restricting each block to a subset of
//! frames within each d-group shrinks the pointers (4 d-groups × 256
//! candidate frames ⇒ 10 bits).

use simbase::Capacity;

/// Pointer sizing for a NuRAPID organization.
///
/// # Examples
///
/// ```
/// use nurapid::pointers::PointerScheme;
/// use simbase::Capacity;
///
/// // The paper's example: 8-MB cache, 128-B blocks, fully flexible
/// // placement needs 16-bit pointers; restricting to 256 frames per
/// // d-group (of 4) shrinks them to 10 bits.
/// let cap = Capacity::from_mib(8);
/// assert_eq!(PointerScheme::flexible(cap, 128, 4).forward_pointer_bits(), 16);
/// assert_eq!(
///     PointerScheme::restricted(cap, 128, 4, 256).forward_pointer_bits(),
///     10
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointerScheme {
    /// Total block frames in the cache.
    pub total_frames: u64,
    /// Number of d-groups.
    pub n_dgroups: u64,
    /// Frames a block may occupy within each d-group (`None` = all).
    pub frames_per_dgroup_restriction: Option<u64>,
}

impl PointerScheme {
    /// Fully flexible placement over `capacity` of `block_bytes` blocks in
    /// `n_dgroups` d-groups.
    pub fn flexible(capacity: Capacity, block_bytes: u64, n_dgroups: u64) -> Self {
        PointerScheme {
            total_frames: capacity.bytes() / block_bytes,
            n_dgroups,
            frames_per_dgroup_restriction: None,
        }
    }

    /// Placement restricted to `frames` candidate frames per d-group
    /// (Section 2.4.3's pointer-shrinking option).
    pub fn restricted(capacity: Capacity, block_bytes: u64, n_dgroups: u64, frames: u64) -> Self {
        assert!(frames.is_power_of_two(), "restriction should be a power of two");
        PointerScheme {
            total_frames: capacity.bytes() / block_bytes,
            n_dgroups,
            frames_per_dgroup_restriction: Some(frames),
        }
    }

    /// Bits per forward pointer: it must select a d-group and a candidate
    /// frame within it.
    pub fn forward_pointer_bits(&self) -> u32 {
        match self.frames_per_dgroup_restriction {
            None => log2_ceil(self.total_frames),
            Some(frames) => log2_ceil(self.n_dgroups) + log2_ceil(frames),
        }
    }

    /// Bits per reverse pointer (one tag entry per frame, so the same
    /// width as a flexible forward pointer).
    pub fn reverse_pointer_bits(&self) -> u32 {
        log2_ceil(self.total_frames)
    }

    /// Total forward-pointer storage in bytes (one per tag entry).
    pub fn forward_storage_bytes(&self) -> u64 {
        self.total_frames * self.forward_pointer_bits() as u64 / 8
    }

    /// Forward-pointer overhead as a fraction of total cache capacity.
    pub fn forward_overhead(&self, capacity: Capacity) -> f64 {
        self.forward_storage_bytes() as f64 / capacity.bytes() as f64
    }
}

fn log2_ceil(x: u64) -> u32 {
    assert!(x > 0, "log2 of zero");
    64 - (x - 1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: Capacity = Capacity::from_mib(8);

    #[test]
    fn paper_example_flexible_pointers_are_16_bits() {
        // Section 2.4.3: "in an 8-MB cache with 128B blocks, 16-bit
        // forward and reverse pointers would be required for complete
        // flexibility. This amounts to 256-KB of pointers."
        let s = PointerScheme::flexible(CAP, 128, 4);
        assert_eq!(s.forward_pointer_bits(), 16);
        assert_eq!(s.reverse_pointer_bits(), 16);
        assert_eq!(s.forward_storage_bytes(), 128 * 1024); // per direction
        // Forward + reverse together: 256 KB, ~3% of 8 MB.
        let both = 2.0 * s.forward_overhead(CAP);
        assert!((both - 0.03).abs() < 0.005, "overhead {both}");
    }

    #[test]
    fn paper_example_restriction_shrinks_to_10_bits() {
        // Section 2.4.3: "If our example cache has 4 d-groups, and we
        // restrict placement of each block to 256 frames within each
        // d-group, the pointer size is reduced to 10 bits."
        let s = PointerScheme::restricted(CAP, 128, 4, 256);
        assert_eq!(s.forward_pointer_bits(), 2 + 8);
    }

    #[test]
    fn larger_blocks_shrink_pointers() {
        // Section 2.4.3: "as block sizes increase, the size of the
        // pointers ... will decrease."
        let small = PointerScheme::flexible(CAP, 128, 4);
        let large = PointerScheme::flexible(CAP, 512, 4);
        assert!(large.forward_pointer_bits() < small.forward_pointer_bits());
        assert!(large.forward_storage_bytes() < small.forward_storage_bytes());
    }

    #[test]
    fn log2_ceil_edges() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(65_536), 16);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn restriction_must_be_power_of_two() {
        let _ = PointerScheme::restricted(CAP, 128, 4, 300);
    }
}
