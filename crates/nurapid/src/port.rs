//! The single-port occupancy schedule.
//!
//! NuRAPID is one-ported and non-banked (Section 2.3): one array operation
//! at a time, and outstanding swaps must complete before a new access is
//! initiated. A miss, however, does not hold the arrays while DRAM works —
//! the port is busy for the tag probe up front and again for the fill (and
//! its demotion chain) when the data returns. This schedule tracks those
//! future reservations so intervening hits can slip into the gaps.

use simbase::Cycle;

/// Busy intervals of a single-ported structure.
///
/// Stored as a flat sorted `Vec` scanned from a moving `head` index:
/// pruned intervals advance `head` instead of shifting the buffer, and the
/// buffer is compacted only when the dead prefix dominates. The live
/// window is small (bounded by the reservation lag), so scans and
/// mid-buffer inserts stay within a cache line or two.
///
/// # Examples
///
/// ```
/// use nurapid::port::PortSchedule;
/// use simbase::Cycle;
///
/// let mut port = PortSchedule::new();
/// // A fill reserved in the future does not block a hit now...
/// assert_eq!(port.reserve(Cycle::new(200), 20), Cycle::new(200));
/// assert_eq!(port.reserve(Cycle::new(0), 10), Cycle::ZERO);
/// // ...but an operation that would overlap it is pushed past.
/// assert_eq!(port.reserve(Cycle::new(195), 10), Cycle::new(220));
/// ```
#[derive(Debug, Clone, Default)]
pub struct PortSchedule {
    /// Sorted, disjoint `[start, end)` reservations; live from `head`.
    busy: Vec<(Cycle, Cycle)>,
    /// Index of the first live reservation in `busy`.
    head: usize,
}

impl PortSchedule {
    /// Creates an idle port.
    ///
    /// The buffer is preallocated to its steady-state bound up front:
    /// live reservations span at most the pruning lag (4096 cycles, see
    /// [`PortSchedule::reserve`]) and every port operation occupies at
    /// least a few cycles, so with the ×2 compaction slack the buffer
    /// never outgrows this — keeping the per-access path allocation-free
    /// from the first access (`tests/no_alloc.rs`) instead of after a
    /// workload-dependent warm-up.
    pub fn new() -> Self {
        PortSchedule { busy: Vec::with_capacity(2048), head: 0 }
    }

    /// Reserves `dur` port cycles at the earliest time ≥ `at` that does
    /// not overlap an existing reservation. Returns the start time.
    ///
    /// Request times must be quasi-monotonic: `at` may lag the largest
    /// previously requested time by at most ~4096 cycles (reservations
    /// older than that are pruned). The out-of-order core's issue times
    /// wander by at most a window's worth of cycles, far inside that
    /// bound.
    pub fn reserve(&mut self, at: Cycle, dur: u64) -> Cycle {
        // Drop reservations that ended well before `at`. Requests arrive
        // nearly — but not exactly — in time order from the out-of-order
        // core, so keep a generous lag margin before forgetting history.
        const LAG: u64 = 4096;
        while let Some(&(_, end)) = self.busy.get(self.head) {
            if end.raw() + LAG <= at.raw() {
                self.head += 1;
            } else {
                break;
            }
        }
        // Compact once the dead prefix dominates, keeping inserts cheap
        // without shifting the buffer on every prune.
        if self.head > 32 && self.head * 2 >= self.busy.len() {
            self.busy.drain(..self.head);
            self.head = 0;
        }
        // Intervals that end at or before `at` cannot move `start` and
        // (for dur > 0) cannot satisfy the gap-fit break, so binary-search
        // past them instead of walking the whole live window. Zero-length
        // requests keep the full scan: an empty interval sitting exactly
        // at `at` could legitimately break first.
        let scan_from = if dur > 0 {
            self.head + self.busy[self.head..].partition_point(|&(_, e)| e <= at)
        } else {
            self.head
        };
        let mut start = at;
        let mut insert_at = scan_from;
        for (i, &(s, e)) in self.busy[scan_from..].iter().enumerate() {
            if start.raw() + dur <= s.raw() {
                break; // fits in the gap before interval i
            }
            if start < e {
                start = e; // pushed past this interval
            }
            insert_at = scan_from + i + 1;
        }
        self.busy.insert(insert_at, (start, start + dur));
        start
    }

    /// Earliest time ≥ `at` the port is free (without reserving).
    pub fn next_free(&self, at: Cycle) -> Cycle {
        let mut t = at;
        for &(s, e) in &self.busy[self.head..] {
            if t < s {
                break;
            }
            if t < e {
                t = e;
            }
        }
        t
    }

    /// Number of live reservations (for tests).
    pub fn reservations(&self) -> usize {
        self.busy.len() - self.head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: u64) -> Cycle {
        Cycle::new(x)
    }

    #[test]
    fn idle_port_grants_immediately() {
        let mut p = PortSchedule::new();
        assert_eq!(p.reserve(c(10), 5), c(10));
    }

    #[test]
    fn back_to_back_reservations_queue() {
        let mut p = PortSchedule::new();
        assert_eq!(p.reserve(c(0), 10), c(0));
        assert_eq!(p.reserve(c(0), 10), c(10));
        assert_eq!(p.reserve(c(5), 3), c(20));
    }

    #[test]
    fn gaps_between_reservations_are_usable() {
        let mut p = PortSchedule::new();
        // A fill reserved far in the future must not block a hit now.
        assert_eq!(p.reserve(c(200), 20), c(200));
        assert_eq!(p.reserve(c(0), 14), c(0));
        assert_eq!(p.reserve(c(14), 14), c(14));
        // But an operation that would overlap the future interval is
        // pushed past it.
        assert_eq!(p.reserve(c(195), 14), c(220));
    }

    #[test]
    fn operation_fitting_exactly_in_gap() {
        let mut p = PortSchedule::new();
        p.reserve(c(0), 10);
        p.reserve(c(30), 10);
        assert_eq!(p.reserve(c(0), 20), c(10), "20-cycle op fits in [10,30)");
        assert_eq!(p.reserve(c(0), 1), c(40), "everything earlier is taken");
    }

    #[test]
    fn next_free_does_not_reserve() {
        let mut p = PortSchedule::new();
        p.reserve(c(0), 10);
        assert_eq!(p.next_free(c(0)), c(10));
        assert_eq!(p.next_free(c(0)), c(10));
        assert_eq!(p.next_free(c(15)), c(15));
    }

    #[test]
    fn expired_reservations_are_pruned() {
        let mut p = PortSchedule::new();
        for i in 0..100 {
            p.reserve(c(i * 10), 5);
        }
        p.reserve(c(10_000), 1);
        assert!(p.reservations() <= 2, "old intervals must be dropped");
    }
}
