//! Dynamic-energy pricing of a NuRAPID-style cache: event counts × the
//! per-operation energies of [`cachemodel::catalog`] (Table 2).
//!
//! Lives here (rather than in the `energy` crate) so the cache can price
//! itself for [`memsys::org::Organization::report`]; `energy::l2` keeps a
//! delegating wrapper for its public API.

use crate::stats::NuRapidStats;
use cachemodel::catalog::NuRapidGeometry;
use simbase::EnergyNj;

/// Dynamic energy of a NuRAPID (or coupled set-associative-placement)
/// cache over a run: tag probes and pointer rewrites, plus every d-group
/// read and write (demand, fills, and swap traffic) at that d-group's
/// distance-dependent cost.
pub fn dynamic_energy(stats: &NuRapidStats, geo: &NuRapidGeometry) -> EnergyNj {
    let mut e = geo.tag_energy() * (stats.tag_probes.get() + stats.tag_writes.get());
    for g in 0..stats.n_dgroups() {
        e += geo.dgroup_access_energy(g)
            * (stats.group_reads.count(g) + stats.group_writes.count(g));
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NuRapidCache, NuRapidConfig};
    use memsys::lower::LowerCache;
    use simbase::{AccessKind, BlockAddr, Cycle};

    #[test]
    fn energy_grows_with_traffic() {
        let mut c = NuRapidCache::new(NuRapidConfig::micro2003(4));
        let mut t = Cycle::ZERO;
        for i in 0..100u64 {
            let out = c.access(BlockAddr::from_index((i * 13) % 4000), AccessKind::Read, t);
            t = out.complete_at + 20;
        }
        let e100 = dynamic_energy(c.stats(), c.geometry());
        for i in 0..900u64 {
            let out = c.access(BlockAddr::from_index((i * 13) % 4000), AccessKind::Read, t);
            t = out.complete_at + 20;
        }
        let e1000 = dynamic_energy(c.stats(), c.geometry());
        assert!(e100.nj() > 0.0);
        assert!(e1000.nj() > e100.nj());
    }
}
