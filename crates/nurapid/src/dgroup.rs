//! The distance-group data arrays: frames, reverse pointers, free-frame
//! tracking, and distance-replacement victim selection.
//!
//! A d-group is thousands of frames (16 K in a 2-MB d-group with 128-B
//! blocks). With fully flexible distance associativity any block may
//! occupy any frame; with the Section 2.4.3 *pointer restriction* the
//! d-group is partitioned into regions of candidate frames (e.g. 256
//! frames per region) and each block maps to one region, shrinking the
//! forward/reverse pointers. Victim selection for distance replacement is
//! random or true LRU ([`crate::policy::DistanceVictimPolicy`]); LRU is
//! tracked with intrusive doubly-linked lists so demotions stay O(1).

use crate::policy::DistanceVictimPolicy;
use crate::tag::TagRef;
use simbase::rng::SimRng;
use simbase::snapshot::{Decoder, Encoder, SnapshotError};

const NIL: u32 = u32::MAX;

/// Intrusive LRU list over local frame indices of one region.
#[derive(Debug, Clone)]
struct FrameLru {
    prev: Vec<u32>,
    next: Vec<u32>,
    head: u32, // MRU
    tail: u32, // LRU
    linked: Vec<bool>,
}

impl FrameLru {
    fn new(n: usize) -> Self {
        FrameLru {
            prev: vec![NIL; n],
            next: vec![NIL; n],
            head: NIL,
            tail: NIL,
            linked: vec![false; n],
        }
    }

    fn push_mru(&mut self, f: u32) {
        debug_assert!(!self.linked[f as usize], "frame {f} already linked");
        self.prev[f as usize] = NIL;
        self.next[f as usize] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = f;
        }
        self.head = f;
        if self.tail == NIL {
            self.tail = f;
        }
        self.linked[f as usize] = true;
    }

    fn unlink(&mut self, f: u32) {
        debug_assert!(self.linked[f as usize], "frame {f} not linked");
        let (p, n) = (self.prev[f as usize], self.next[f as usize]);
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        } else {
            self.tail = p;
        }
        self.linked[f as usize] = false;
    }

    fn touch(&mut self, f: u32) {
        self.unlink(f);
        self.push_mru(f);
    }

    fn lru(&self) -> Option<u32> {
        (self.tail != NIL).then_some(self.tail)
    }
}

/// Per-region free list and recency state.
#[derive(Debug, Clone)]
struct Region {
    /// Free *local* frame indices.
    free: Vec<u32>,
    lru: FrameLru,
    /// CLOCK reference bits and sweep hand (approximate LRU).
    referenced: Vec<bool>,
    hand: u32,
}

/// A free frame in the packed reverse-pointer arena.
const FREE: u64 = u64::MAX;

/// Packs a reverse pointer into a frame word: set in bits 8.., way in the
/// low byte. [`FREE`] (all ones) is unreachable because sets are `u32`.
#[inline(always)]
fn pack_owner(owner: TagRef) -> u64 {
    ((owner.set as u64) << 8) | owner.way as u64
}

#[inline(always)]
fn unpack_owner(word: u64) -> TagRef {
    TagRef { set: (word >> 8) as u32, way: word as u8 }
}

/// One distance-group's data array, optionally partitioned into placement
/// regions (Section 2.4.3).
///
/// Layout (DESIGN.md §9): the reverse pointers live in one flat `Vec<u64>`
/// (packed set/way per frame, `u64::MAX` = free), and the global↔local
/// frame index split uses shift+mask when the region size is a power of
/// two (it always is in the paper's configurations; the div/mod fallback
/// keeps arbitrary region counts working).
#[derive(Debug, Clone)]
pub struct DGroupArray {
    /// Packed reverse pointer per frame; [`FREE`] = free.
    frames: Vec<u64>,
    regions: Vec<Region>,
    /// Frames per region (`n_frames` when unrestricted).
    frames_per_region: u32,
    /// `log2(frames_per_region)` when it is a power of two.
    fpr_shift: Option<u32>,
    policy: DistanceVictimPolicy,
    rng: SimRng,
}

impl DGroupArray {
    /// Creates a fully flexible d-group of `n_frames` empty frames
    /// (a single region spanning the whole group).
    ///
    /// # Panics
    ///
    /// Panics if `n_frames` is zero.
    pub fn new(n_frames: usize, policy: DistanceVictimPolicy, rng: SimRng) -> Self {
        Self::with_regions(n_frames, 1, policy, rng)
    }

    /// Creates a d-group partitioned into `n_regions` equal placement
    /// regions; region `r` owns the contiguous frames
    /// `[r · n/R, (r+1) · n/R)`.
    ///
    /// # Panics
    ///
    /// Panics if `n_frames` is zero or `n_regions` does not evenly divide
    /// it.
    pub fn with_regions(
        n_frames: usize,
        n_regions: usize,
        policy: DistanceVictimPolicy,
        rng: SimRng,
    ) -> Self {
        assert!(n_frames > 0, "d-group needs at least one frame");
        assert!(
            n_regions > 0 && n_frames.is_multiple_of(n_regions),
            "{n_regions} regions must evenly divide {n_frames} frames"
        );
        let fpr = n_frames / n_regions;
        // Recency state is only ever *read* under the policy that uses it
        // (the intrusive list under LRU, the reference bits under CLOCK),
        // so skip allocating and maintaining what the policy ignores —
        // under random replacement the chain ops touch no recency state
        // at all.
        let track_lru = policy == DistanceVictimPolicy::Lru;
        let track_clock = policy == DistanceVictimPolicy::ClockApprox;
        let regions = (0..n_regions)
            .map(|_| Region {
                free: (0..fpr as u32).rev().collect(),
                lru: FrameLru::new(if track_lru { fpr } else { 0 }),
                referenced: vec![false; if track_clock { fpr } else { 0 }],
                hand: 0,
            })
            .collect();
        DGroupArray {
            frames: vec![FREE; n_frames],
            regions,
            frames_per_region: fpr as u32,
            fpr_shift: fpr.is_power_of_two().then(|| fpr.trailing_zeros()),
            policy,
            rng,
        }
    }

    /// Total frames.
    pub fn n_frames(&self) -> usize {
        self.frames.len()
    }

    /// Number of placement regions (1 when unrestricted).
    pub fn n_regions(&self) -> usize {
        self.regions.len()
    }

    /// The region a frame belongs to.
    #[inline]
    pub fn region_of_frame(&self, frame: u32) -> usize {
        match self.fpr_shift {
            Some(s) => (frame >> s) as usize,
            None => (frame / self.frames_per_region) as usize,
        }
    }

    #[inline]
    fn global(&self, region: usize, local: u32) -> u32 {
        match self.fpr_shift {
            Some(s) => ((region as u32) << s) | local,
            None => region as u32 * self.frames_per_region + local,
        }
    }

    #[inline]
    fn local(&self, frame: u32) -> u32 {
        match self.fpr_shift {
            Some(s) => frame & ((1 << s) - 1),
            None => frame % self.frames_per_region,
        }
    }

    /// Occupied frames (including frames in transient limbo during a
    /// demotion chain).
    pub fn occupied(&self) -> usize {
        self.frames.len() - self.regions.iter().map(|r| r.free.len()).sum::<usize>()
    }

    /// True if every frame of `region` is occupied.
    pub fn is_full(&self, region: usize) -> bool {
        self.regions[region].free.is_empty()
    }

    /// Takes a free frame in `region` if one exists.
    #[inline]
    pub fn take_free(&mut self, region: usize) -> Option<u32> {
        let local = self.regions[region].free.pop()?;
        Some(self.global(region, local))
    }

    /// Installs a block's data in `frame` with reverse pointer `owner`.
    ///
    /// # Panics
    ///
    /// Panics if the frame is occupied.
    #[inline]
    pub fn install(&mut self, frame: u32, owner: TagRef) {
        let slot = &mut self.frames[frame as usize];
        assert!(*slot == FREE, "install into occupied frame {frame}");
        *slot = pack_owner(owner);
        if self.policy == DistanceVictimPolicy::Lru {
            let (r, l) = (self.region_of_frame(frame), self.local(frame));
            self.regions[r].lru.push_mru(l);
        }
    }

    /// Removes the block in `frame`, returning its reverse pointer; the
    /// frame does NOT go on the free list (the caller immediately reuses
    /// it, as in a demotion chain).
    ///
    /// # Panics
    ///
    /// Panics if the frame is free.
    #[inline]
    pub fn remove(&mut self, frame: u32) -> TagRef {
        let word = self.frames[frame as usize];
        assert!(word != FREE, "remove from free frame");
        self.frames[frame as usize] = FREE;
        if self.policy == DistanceVictimPolicy::Lru {
            let (r, l) = (self.region_of_frame(frame), self.local(frame));
            self.regions[r].lru.unlink(l);
        }
        unpack_owner(word)
    }

    /// Removes the block in `frame` and returns the frame to its region's
    /// free list (used when a block is evicted from the cache entirely).
    ///
    /// # Panics
    ///
    /// Panics if the frame is free.
    #[inline]
    pub fn release(&mut self, frame: u32) -> TagRef {
        let owner = self.remove(frame);
        let (r, l) = (self.region_of_frame(frame), self.local(frame));
        self.regions[r].free.push(l);
        owner
    }

    /// Records a hit on `frame` for recency tracking.
    #[inline]
    pub fn touch(&mut self, frame: u32) {
        let (r, l) = (self.region_of_frame(frame), self.local(frame));
        match self.policy {
            DistanceVictimPolicy::Lru => self.regions[r].lru.touch(l),
            DistanceVictimPolicy::ClockApprox => {
                self.regions[r].referenced[l as usize] = true;
            }
            DistanceVictimPolicy::Random => {}
        }
    }

    /// Reverse pointer of `frame`, if occupied.
    #[inline]
    pub fn owner(&self, frame: u32) -> Option<TagRef> {
        let word = self.frames[frame as usize];
        (word != FREE).then(|| unpack_owner(word))
    }

    /// Updates the reverse pointer of an occupied `frame`.
    ///
    /// # Panics
    ///
    /// Panics if the frame is free.
    #[inline]
    pub fn set_owner(&mut self, frame: u32, owner: TagRef) {
        let slot = &mut self.frames[frame as usize];
        assert!(*slot != FREE, "set_owner on free frame {frame}");
        *slot = pack_owner(owner);
    }

    /// Serializes the full d-group state: reverse pointers, per-region
    /// free lists, whichever recency state the policy maintains, and the
    /// victim RNG stream (its draw sequence is architectural — it decides
    /// which blocks demote).
    pub fn save_state(&self, e: &mut Encoder) {
        e.put_u64_slice(&self.frames);
        for reg in &self.regions {
            e.put_u32_slice(&reg.free);
            e.put_u32_slice(&reg.lru.prev);
            e.put_u32_slice(&reg.lru.next);
            e.put_u32(reg.lru.head);
            e.put_u32(reg.lru.tail);
            e.put_len(reg.lru.linked.len());
            for &b in &reg.lru.linked {
                e.put_bool(b);
            }
            e.put_len(reg.referenced.len());
            for &b in &reg.referenced {
                e.put_bool(b);
            }
            e.put_u32(reg.hand);
        }
        for w in self.rng.state() {
            e.put_u64(w);
        }
    }

    /// Restores state written by [`DGroupArray::save_state`] into a
    /// d-group of identical geometry and policy.
    pub fn load_state(&mut self, d: &mut Decoder<'_>) -> Result<(), SnapshotError> {
        let frames = d.u64_slice()?;
        if frames.len() != self.frames.len() {
            return Err(SnapshotError::Malformed("d-group frame count mismatch"));
        }
        self.frames = frames;
        let fpr = self.frames_per_region as usize;
        for reg in self.regions.iter_mut() {
            let free = d.u32_slice()?;
            if free.len() > fpr {
                return Err(SnapshotError::Malformed("free list exceeds region size"));
            }
            reg.free = free;
            let prev = d.u32_slice()?;
            let next = d.u32_slice()?;
            if prev.len() != reg.lru.prev.len() || next.len() != reg.lru.next.len() {
                return Err(SnapshotError::Malformed("d-group recency geometry mismatch"));
            }
            reg.lru.prev = prev;
            reg.lru.next = next;
            reg.lru.head = d.u32()?;
            reg.lru.tail = d.u32()?;
            if d.len()? != reg.lru.linked.len() {
                return Err(SnapshotError::Malformed("d-group recency geometry mismatch"));
            }
            for b in reg.lru.linked.iter_mut() {
                *b = d.bool()?;
            }
            if d.len()? != reg.referenced.len() {
                return Err(SnapshotError::Malformed("d-group recency geometry mismatch"));
            }
            for b in reg.referenced.iter_mut() {
                *b = d.bool()?;
            }
            reg.hand = d.u32()?;
        }
        let s = [d.u64()?, d.u64()?, d.u64()?, d.u64()?];
        self.rng = SimRng::from_state(s);
        Ok(())
    }

    /// Chooses a distance-replacement victim frame within `region`.
    ///
    /// # Panics
    ///
    /// Panics if the region has free frames (callers must consume free
    /// frames first — victimizing while space exists is a policy bug).
    pub fn choose_victim(&mut self, region: usize) -> u32 {
        assert!(
            self.is_full(region),
            "choose_victim with {} free frames in region {region}",
            self.regions[region].free.len()
        );
        let local = match self.policy {
            DistanceVictimPolicy::Random => {
                self.rng.below(self.frames_per_region as u64) as u32
            }
            DistanceVictimPolicy::Lru => {
                self.regions[region].lru.lru().expect("non-empty region")
            }
            DistanceVictimPolicy::ClockApprox => {
                // Second-chance sweep: clear reference bits until an
                // unreferenced frame is found. Terminates within two laps.
                let fpr = self.frames_per_region;
                let reg = &mut self.regions[region];
                loop {
                    let l = reg.hand;
                    reg.hand = if reg.hand + 1 == fpr { 0 } else { reg.hand + 1 };
                    if reg.referenced[l as usize] {
                        reg.referenced[l as usize] = false;
                    } else {
                        break l;
                    }
                }
            }
        };
        self.global(region, local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tr(set: u32, way: u8) -> TagRef {
        TagRef { set, way }
    }

    fn group(n: usize, policy: DistanceVictimPolicy) -> DGroupArray {
        DGroupArray::new(n, policy, SimRng::seeded(7))
    }

    #[test]
    fn free_frames_are_consumed_before_victims() {
        let mut g = group(4, DistanceVictimPolicy::Random);
        assert_eq!(g.occupied(), 0);
        for i in 0..4 {
            let f = g.take_free(0).expect("free frame");
            g.install(f, tr(i, 0));
        }
        assert!(g.is_full(0));
        assert_eq!(g.take_free(0), None);
        assert_eq!(g.occupied(), 4);
    }

    #[test]
    fn install_remove_roundtrip() {
        let mut g = group(4, DistanceVictimPolicy::Lru);
        let f = g.take_free(0).unwrap();
        g.install(f, tr(9, 3));
        assert_eq!(g.owner(f), Some(tr(9, 3)));
        assert_eq!(g.remove(f), tr(9, 3));
        assert_eq!(g.owner(f), None);
        // Frame not on free list after remove: it stays in limbo.
        assert_eq!(g.occupied(), 1);
    }

    #[test]
    fn release_returns_frame_to_free_list() {
        let mut g = group(2, DistanceVictimPolicy::Random);
        let f0 = g.take_free(0).unwrap();
        let f1 = g.take_free(0).unwrap();
        g.install(f0, tr(0, 0));
        g.install(f1, tr(1, 0));
        g.release(f0);
        assert_eq!(g.occupied(), 1);
        assert_eq!(g.take_free(0), Some(f0));
    }

    #[test]
    fn lru_victim_is_least_recently_installed_or_touched() {
        let mut g = group(3, DistanceVictimPolicy::Lru);
        let f: Vec<u32> = (0..3).map(|_| g.take_free(0).unwrap()).collect();
        for (i, &fi) in f.iter().enumerate() {
            g.install(fi, tr(i as u32, 0));
        }
        assert_eq!(g.choose_victim(0), f[0]);
        g.touch(f[0]); // now f[1] is LRU
        assert_eq!(g.choose_victim(0), f[1]);
    }

    #[test]
    fn random_victims_are_deterministic_and_in_range() {
        let mut a = group(16, DistanceVictimPolicy::Random);
        let mut b = group(16, DistanceVictimPolicy::Random);
        for i in 0..16 {
            let fa = a.take_free(0).unwrap();
            a.install(fa, tr(i, 0));
            let fb = b.take_free(0).unwrap();
            b.install(fb, tr(i, 0));
        }
        for _ in 0..32 {
            let va = a.choose_victim(0);
            assert_eq!(va, b.choose_victim(0));
            assert!((va as usize) < 16);
        }
    }

    #[test]
    fn touch_is_noop_under_random_policy() {
        let mut g = group(2, DistanceVictimPolicy::Random);
        let f = g.take_free(0).unwrap();
        g.install(f, tr(0, 0));
        g.touch(f);
        let f2 = g.take_free(0).unwrap();
        g.install(f2, tr(1, 0));
        assert!(g.is_full(0));
    }

    #[test]
    fn set_owner_updates_reverse_pointer() {
        let mut g = group(2, DistanceVictimPolicy::Random);
        let f = g.take_free(0).unwrap();
        g.install(f, tr(0, 0));
        g.set_owner(f, tr(5, 1));
        assert_eq!(g.owner(f), Some(tr(5, 1)));
    }

    #[test]
    #[should_panic(expected = "occupied frame")]
    fn double_install_panics() {
        let mut g = group(2, DistanceVictimPolicy::Random);
        let f = g.take_free(0).unwrap();
        g.install(f, tr(0, 0));
        g.install(f, tr(1, 0));
    }

    #[test]
    #[should_panic(expected = "free frames")]
    fn victim_with_free_space_panics() {
        let mut g = group(2, DistanceVictimPolicy::Random);
        let f = g.take_free(0).unwrap();
        g.install(f, tr(0, 0));
        let _ = g.choose_victim(0);
    }

    #[test]
    #[should_panic(expected = "free frame")]
    fn remove_free_frame_panics() {
        let mut g = group(2, DistanceVictimPolicy::Random);
        g.remove(0);
    }

    // ---- Region (pointer-restriction) behavior --------------------------

    #[test]
    fn regions_partition_the_frames() {
        let g = DGroupArray::with_regions(16, 4, DistanceVictimPolicy::Random, SimRng::seeded(1));
        assert_eq!(g.n_regions(), 4);
        assert_eq!(g.region_of_frame(0), 0);
        assert_eq!(g.region_of_frame(3), 0);
        assert_eq!(g.region_of_frame(4), 1);
        assert_eq!(g.region_of_frame(15), 3);
    }

    #[test]
    fn take_free_respects_regions() {
        let mut g =
            DGroupArray::with_regions(8, 2, DistanceVictimPolicy::Random, SimRng::seeded(2));
        // Exhaust region 0 (frames 0..4); region 1 still has room.
        for i in 0..4 {
            let f = g.take_free(0).unwrap();
            assert_eq!(g.region_of_frame(f), 0);
            g.install(f, tr(i, 0));
        }
        assert!(g.is_full(0));
        assert!(!g.is_full(1));
        assert_eq!(g.take_free(0), None);
        let f = g.take_free(1).unwrap();
        assert_eq!(g.region_of_frame(f), 1);
    }

    #[test]
    fn victims_come_from_the_requested_region() {
        let mut g =
            DGroupArray::with_regions(8, 2, DistanceVictimPolicy::Random, SimRng::seeded(3));
        for i in 0..4 {
            let f = g.take_free(1).unwrap();
            g.install(f, tr(i, 0));
        }
        for _ in 0..16 {
            let v = g.choose_victim(1);
            assert_eq!(g.region_of_frame(v), 1);
        }
    }

    #[test]
    fn region_lru_is_tracked_locally() {
        let mut g = DGroupArray::with_regions(8, 2, DistanceVictimPolicy::Lru, SimRng::seeded(4));
        let f: Vec<u32> = (0..4).map(|_| g.take_free(1).unwrap()).collect();
        for (i, &fi) in f.iter().enumerate() {
            g.install(fi, tr(i as u32, 0));
        }
        assert_eq!(g.choose_victim(1), f[0]);
        g.touch(f[0]);
        assert_eq!(g.choose_victim(1), f[1]);
    }

    #[test]
    fn clock_spares_recently_referenced_frames() {
        let mut g = DGroupArray::new(4, DistanceVictimPolicy::ClockApprox, SimRng::seeded(6));
        let f: Vec<u32> = (0..4).map(|_| g.take_free(0).unwrap()).collect();
        for (i, &fi) in f.iter().enumerate() {
            g.install(fi, tr(i as u32, 0));
        }
        // Reference frames 1 and 2: the sweep must pick 0 (unreferenced).
        g.touch(f[1]);
        g.touch(f[2]);
        assert_eq!(g.choose_victim(0), f[0]);
        // Hand has passed 0; 1's bit gets cleared next, then 3 is chosen
        // (never referenced).
        assert_eq!(g.choose_victim(0), f[3]);
        // Third sweep: every bit was cleared along the way and the hand
        // wrapped to frame 0.
        assert_eq!(g.choose_victim(0), f[0]);
    }

    #[test]
    fn clock_terminates_when_everything_is_referenced() {
        let mut g = DGroupArray::new(8, DistanceVictimPolicy::ClockApprox, SimRng::seeded(6));
        for i in 0..8 {
            let f = g.take_free(0).unwrap();
            g.install(f, tr(i, 0));
            g.touch(f);
        }
        // All bits set: the sweep clears a full lap and returns the hand's
        // first frame on the second lap.
        let v = g.choose_victim(0);
        assert!((v as usize) < 8);
    }

    #[test]
    #[should_panic(expected = "evenly divide")]
    fn regions_must_divide_frames() {
        let _ =
            DGroupArray::with_regions(10, 3, DistanceVictimPolicy::Random, SimRng::seeded(5));
    }

    #[test]
    fn state_roundtrip_preserves_frames_recency_and_rng() {
        use simbase::snapshot::{Decoder, Encoder};
        for policy in [
            DistanceVictimPolicy::Random,
            DistanceVictimPolicy::Lru,
            DistanceVictimPolicy::ClockApprox,
        ] {
            let mut g = DGroupArray::with_regions(8, 2, policy, SimRng::seeded(11));
            for i in 0..3 {
                let f = g.take_free(0).unwrap();
                g.install(f, tr(i, 0));
                g.touch(f);
            }
            let f = g.take_free(1).unwrap();
            g.install(f, tr(9, 1));
            // Consume an RNG draw so the stream position is non-trivial.
            let f4 = g.take_free(0).unwrap();
            g.install(f4, tr(3, 0));
            let _ = g.choose_victim(0);

            let mut e = Encoder::new();
            g.save_state(&mut e);
            let bytes = e.into_bytes();
            let mut fresh = DGroupArray::with_regions(8, 2, policy, SimRng::seeded(99));
            let mut d = Decoder::new(&bytes);
            fresh.load_state(&mut d).unwrap();
            d.finish().unwrap();

            assert_eq!(fresh.occupied(), g.occupied(), "{policy:?}");
            for frame in 0..8 {
                assert_eq!(fresh.owner(frame), g.owner(frame), "{policy:?} frame {frame}");
            }
            // Victim choice (recency or RNG stream) must continue in step.
            assert_eq!(fresh.choose_victim(0), g.choose_victim(0), "{policy:?}");
        }
    }

    #[test]
    fn load_rejects_wrong_frame_count() {
        use simbase::snapshot::{Decoder, Encoder};
        let g = group(4, DistanceVictimPolicy::Random);
        let mut e = Encoder::new();
        g.save_state(&mut e);
        let bytes = e.into_bytes();
        let mut other = group(8, DistanceVictimPolicy::Random);
        let mut d = Decoder::new(&bytes);
        assert!(other.load_state(&mut d).is_err());
    }
}
