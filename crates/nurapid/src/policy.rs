//! Placement and replacement policy knobs (paper Sections 2.4.1–2.4.2).

use std::fmt;

/// What happens to a block that hits in a d-group other than the fastest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PromotionPolicy {
    /// Blocks are only ever demoted; a block that lands in a slow d-group
    /// stays there until evicted (the strawman of Section 2.4.1).
    DemotionOnly,
    /// On a hit to d-group *g > 0*, promote the block to d-group *g − 1*,
    /// demoting that group's distance-replacement victim into the freed
    /// frame. The paper's best policy.
    #[default]
    NextFastest,
    /// On a hit to d-group *g > 0*, promote the block all the way to
    /// d-group 0, rippling demotions down to fill the freed frame.
    Fastest,
}

impl fmt::Display for PromotionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PromotionPolicy::DemotionOnly => "demotion-only",
            PromotionPolicy::NextFastest => "next-fastest",
            PromotionPolicy::Fastest => "fastest",
        })
    }
}

/// How the victim frame is chosen within a d-group for distance
/// replacement (Section 2.4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DistanceVictimPolicy {
    /// Uniform random over the d-group's frames. O(1) hardware; promotion
    /// policies compensate for accidental demotion of hot blocks.
    #[default]
    Random,
    /// True LRU over the d-group's frames (thousands of blocks — the paper
    /// argues this is implementable only approximately; modeled exactly
    /// here as the upper bound).
    Lru,
    /// Approximate LRU (Section 2.4.2's middle ground): a CLOCK /
    /// second-chance sweep with one reference bit per frame — O(1)
    /// amortized and only one bit of state, but spares recently-touched
    /// frames like LRU.
    ClockApprox,
}

impl fmt::Display for DistanceVictimPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DistanceVictimPolicy::Random => "random",
            DistanceVictimPolicy::Lru => "true-LRU",
            DistanceVictimPolicy::ClockApprox => "approx-LRU (clock)",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_papers_choices() {
        // Section 5.3.1: "all NuRAPID results use random distance
        // replacement and next-fastest promotion policy."
        assert_eq!(PromotionPolicy::default(), PromotionPolicy::NextFastest);
        assert_eq!(DistanceVictimPolicy::default(), DistanceVictimPolicy::Random);
    }

    #[test]
    fn display_names() {
        assert_eq!(PromotionPolicy::DemotionOnly.to_string(), "demotion-only");
        assert_eq!(PromotionPolicy::NextFastest.to_string(), "next-fastest");
        assert_eq!(PromotionPolicy::Fastest.to_string(), "fastest");
        assert_eq!(DistanceVictimPolicy::Random.to_string(), "random");
        assert_eq!(DistanceVictimPolicy::Lru.to_string(), "true-LRU");
        assert_eq!(
            DistanceVictimPolicy::ClockApprox.to_string(),
            "approx-LRU (clock)"
        );
    }
}
