//! The naive reference oracle: the original, obviously-correct NuRAPID
//! implementation kept verbatim for differential testing.
//!
//! The hot-path modules ([`crate::tag`], [`crate::dgroup`],
//! [`crate::port`], [`crate::cache`]) were rewritten around flat arenas
//! and packed metadata for throughput. This module preserves the simple
//! structures they replaced — array-of-structs tag entries, `Vec`-shuffle
//! LRU order, `Option<TagRef>` frames, a `VecDeque` port schedule — wired
//! into the same orchestration logic. The differential property suite
//! drives both implementations with identical access streams and requires
//! identical outcomes and bit-identical statistics.
//!
//! Do not optimize this code: its value is being trivially auditable
//! against the paper, not fast.

use crate::cache::NuRapidConfig;
use crate::policy::{DistanceVictimPolicy, PromotionPolicy};
use crate::stats::NuRapidStats;
use crate::tag::{FramePtr, TagEviction, TagLookup, TagRef};
use cachemodel::catalog::{NuRapidGeometry, BLOCK_BYTES};
use memsys::lower::LowerOutcome;
use memsys::memory::MainMemory;
use simbase::rng::SimRng;
use simbase::{AccessKind, BlockAddr, Cycle};
use std::collections::VecDeque;

// ---------------------------------------------------------------------------
// Tag array: array-of-structs entries, per-set LRU as a shuffled Vec.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct TagEntry {
    block: BlockAddr,
    ptr: FramePtr,
    dirty: bool,
    valid: bool,
}

/// The original centralized tag array.
#[derive(Debug, Clone)]
pub struct NaiveTagArray {
    entries: Vec<TagEntry>, // sets * assoc
    lru: Vec<Vec<u8>>,      // per-set MRU..LRU order
    sets: usize,
    assoc: u32,
}

impl NaiveTagArray {
    /// Creates a tag array with `sets` sets of `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `assoc` is 0 or > 255.
    pub fn new(sets: usize, assoc: u32) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(assoc > 0 && assoc <= 255, "associativity out of range");
        NaiveTagArray {
            entries: vec![
                TagEntry {
                    block: BlockAddr::from_index(u64::MAX),
                    ptr: FramePtr { group: 0, frame: 0 },
                    dirty: false,
                    valid: false,
                };
                sets * assoc as usize
            ],
            lru: (0..sets).map(|_| (0..assoc as u8).collect()).collect(),
            sets,
            assoc,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Set index of `block`.
    pub fn set_of(&self, block: BlockAddr) -> u32 {
        (block.index() % self.sets as u64) as u32
    }

    fn idx(&self, r: TagRef) -> usize {
        r.set as usize * self.assoc as usize + r.way as usize
    }

    /// Probes the tag array for `block`; on a hit updates per-set LRU and,
    /// for writes, the dirty bit.
    pub fn access(&mut self, block: BlockAddr, kind: AccessKind) -> TagLookup {
        let set = self.set_of(block);
        for way in 0..self.assoc as u8 {
            let r = TagRef { set, way };
            let i = self.idx(r);
            if self.entries[i].valid && self.entries[i].block == block {
                if kind.is_write() {
                    self.entries[i].dirty = true;
                }
                self.touch(r);
                return TagLookup::Hit {
                    at: r,
                    ptr: self.entries[i].ptr,
                };
            }
        }
        TagLookup::Miss
    }

    /// Pure probe without state updates.
    pub fn probe(&self, block: BlockAddr) -> Option<(TagRef, FramePtr)> {
        let set = self.set_of(block);
        for way in 0..self.assoc as u8 {
            let r = TagRef { set, way };
            let i = self.idx(r);
            if self.entries[i].valid && self.entries[i].block == block {
                return Some((r, self.entries[i].ptr));
            }
        }
        None
    }

    fn touch(&mut self, r: TagRef) {
        let order = &mut self.lru[r.set as usize];
        let pos = order
            .iter()
            .position(|&w| w == r.way)
            .expect("way in order list");
        let w = order.remove(pos);
        order.insert(0, w);
    }

    /// Allocates a tag entry for `block`, evicting the set's LRU block if
    /// the set is full.
    ///
    /// # Panics
    ///
    /// Panics if `block` is already present.
    pub fn allocate(
        &mut self,
        block: BlockAddr,
        ptr: FramePtr,
        dirty: bool,
    ) -> (TagRef, Option<TagEviction>) {
        assert!(
            self.probe(block).is_none(),
            "allocate of already-present block {block}"
        );
        let set = self.set_of(block);
        // Prefer an invalid way.
        let mut target = None;
        for way in 0..self.assoc as u8 {
            let r = TagRef { set, way };
            if !self.entries[self.idx(r)].valid {
                target = Some(r);
                break;
            }
        }
        let (r, evicted) = match target {
            Some(r) => (r, None),
            None => {
                let way = *self.lru[set as usize].last().expect("non-empty order");
                let r = TagRef { set, way };
                let old = self.entries[self.idx(r)];
                (
                    r,
                    Some(TagEviction {
                        block: old.block,
                        dirty: old.dirty,
                        freed: old.ptr,
                    }),
                )
            }
        };
        let i = self.idx(r);
        self.entries[i] = TagEntry {
            block,
            ptr,
            dirty,
            valid: true,
        };
        self.touch(r);
        (r, evicted)
    }

    /// Rewrites the forward pointer of the entry at `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` names an invalid entry.
    pub fn set_ptr(&mut self, r: TagRef, ptr: FramePtr) {
        let i = self.idx(r);
        assert!(self.entries[i].valid, "set_ptr on invalid entry");
        self.entries[i].ptr = ptr;
    }

    /// The forward pointer of the entry at `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` names an invalid entry.
    pub fn ptr_of(&self, r: TagRef) -> FramePtr {
        let e = &self.entries[self.idx(r)];
        assert!(e.valid, "ptr_of on invalid entry");
        e.ptr
    }

    /// The block held by the entry at `r`, if valid.
    pub fn block_at(&self, r: TagRef) -> Option<BlockAddr> {
        let e = &self.entries[self.idx(r)];
        e.valid.then_some(e.block)
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }
}

// ---------------------------------------------------------------------------
// D-group arrays: Option<TagRef> frames, unconditional recency upkeep.
// ---------------------------------------------------------------------------

const NIL: u32 = u32::MAX;

/// Intrusive LRU list over local frame indices of one region.
#[derive(Debug, Clone)]
struct FrameLru {
    prev: Vec<u32>,
    next: Vec<u32>,
    head: u32, // MRU
    tail: u32, // LRU
    linked: Vec<bool>,
}

impl FrameLru {
    fn new(n: usize) -> Self {
        FrameLru {
            prev: vec![NIL; n],
            next: vec![NIL; n],
            head: NIL,
            tail: NIL,
            linked: vec![false; n],
        }
    }

    fn push_mru(&mut self, f: u32) {
        debug_assert!(!self.linked[f as usize], "frame {f} already linked");
        self.prev[f as usize] = NIL;
        self.next[f as usize] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = f;
        }
        self.head = f;
        if self.tail == NIL {
            self.tail = f;
        }
        self.linked[f as usize] = true;
    }

    fn unlink(&mut self, f: u32) {
        debug_assert!(self.linked[f as usize], "frame {f} not linked");
        let (p, n) = (self.prev[f as usize], self.next[f as usize]);
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        } else {
            self.tail = p;
        }
        self.linked[f as usize] = false;
    }

    fn touch(&mut self, f: u32) {
        self.unlink(f);
        self.push_mru(f);
    }

    fn lru(&self) -> Option<u32> {
        (self.tail != NIL).then_some(self.tail)
    }
}

/// Per-region free list and recency state.
#[derive(Debug, Clone)]
struct Region {
    /// Free *local* frame indices.
    free: Vec<u32>,
    lru: FrameLru,
    /// CLOCK reference bits and sweep hand (approximate LRU).
    referenced: Vec<bool>,
    hand: u32,
}

/// The original d-group data array: reverse pointers as `Option<TagRef>`,
/// recency state maintained for every policy, `div`/`mod` index math.
#[derive(Debug, Clone)]
pub struct NaiveDGroupArray {
    /// Reverse pointer per frame; `None` = free.
    frames: Vec<Option<TagRef>>,
    regions: Vec<Region>,
    /// Frames per region (`n_frames` when unrestricted).
    frames_per_region: u32,
    policy: DistanceVictimPolicy,
    rng: SimRng,
}

impl NaiveDGroupArray {
    /// Creates a fully flexible d-group of `n_frames` empty frames.
    ///
    /// # Panics
    ///
    /// Panics if `n_frames` is zero.
    pub fn new(n_frames: usize, policy: DistanceVictimPolicy, rng: SimRng) -> Self {
        Self::with_regions(n_frames, 1, policy, rng)
    }

    /// Creates a d-group partitioned into `n_regions` equal placement
    /// regions.
    ///
    /// # Panics
    ///
    /// Panics if `n_frames` is zero or `n_regions` does not evenly divide
    /// it.
    pub fn with_regions(
        n_frames: usize,
        n_regions: usize,
        policy: DistanceVictimPolicy,
        rng: SimRng,
    ) -> Self {
        assert!(n_frames > 0, "d-group needs at least one frame");
        assert!(
            n_regions > 0 && n_frames.is_multiple_of(n_regions),
            "{n_regions} regions must evenly divide {n_frames} frames"
        );
        let fpr = n_frames / n_regions;
        let regions = (0..n_regions)
            .map(|_| Region {
                free: (0..fpr as u32).rev().collect(),
                lru: FrameLru::new(fpr),
                referenced: vec![false; fpr],
                hand: 0,
            })
            .collect();
        NaiveDGroupArray {
            frames: vec![None; n_frames],
            regions,
            frames_per_region: fpr as u32,
            policy,
            rng,
        }
    }

    /// Total frames.
    pub fn n_frames(&self) -> usize {
        self.frames.len()
    }

    /// The region a frame belongs to.
    pub fn region_of_frame(&self, frame: u32) -> usize {
        (frame / self.frames_per_region) as usize
    }

    fn global(&self, region: usize, local: u32) -> u32 {
        region as u32 * self.frames_per_region + local
    }

    fn local(&self, frame: u32) -> u32 {
        frame % self.frames_per_region
    }

    /// Occupied frames.
    pub fn occupied(&self) -> usize {
        self.frames.len() - self.regions.iter().map(|r| r.free.len()).sum::<usize>()
    }

    /// True if every frame of `region` is occupied.
    pub fn is_full(&self, region: usize) -> bool {
        self.regions[region].free.is_empty()
    }

    /// Takes a free frame in `region` if one exists.
    pub fn take_free(&mut self, region: usize) -> Option<u32> {
        let local = self.regions[region].free.pop()?;
        Some(self.global(region, local))
    }

    /// Installs a block's data in `frame` with reverse pointer `owner`.
    ///
    /// # Panics
    ///
    /// Panics if the frame is occupied.
    pub fn install(&mut self, frame: u32, owner: TagRef) {
        let slot = &mut self.frames[frame as usize];
        assert!(slot.is_none(), "install into occupied frame {frame}");
        *slot = Some(owner);
        let (r, l) = (self.region_of_frame(frame), self.local(frame));
        self.regions[r].lru.push_mru(l);
    }

    /// Removes the block in `frame`, returning its reverse pointer.
    ///
    /// # Panics
    ///
    /// Panics if the frame is free.
    pub fn remove(&mut self, frame: u32) -> TagRef {
        let owner = self.frames[frame as usize]
            .take()
            .expect("remove from free frame");
        let (r, l) = (self.region_of_frame(frame), self.local(frame));
        self.regions[r].lru.unlink(l);
        owner
    }

    /// Removes the block in `frame` and returns the frame to its region's
    /// free list.
    ///
    /// # Panics
    ///
    /// Panics if the frame is free.
    pub fn release(&mut self, frame: u32) -> TagRef {
        let owner = self.remove(frame);
        let (r, l) = (self.region_of_frame(frame), self.local(frame));
        self.regions[r].free.push(l);
        owner
    }

    /// Records a hit on `frame` for recency tracking.
    pub fn touch(&mut self, frame: u32) {
        let (r, l) = (self.region_of_frame(frame), self.local(frame));
        match self.policy {
            DistanceVictimPolicy::Lru => self.regions[r].lru.touch(l),
            DistanceVictimPolicy::ClockApprox => {
                self.regions[r].referenced[l as usize] = true;
            }
            DistanceVictimPolicy::Random => {}
        }
    }

    /// Reverse pointer of `frame`, if occupied.
    pub fn owner(&self, frame: u32) -> Option<TagRef> {
        self.frames[frame as usize]
    }

    /// Updates the reverse pointer of an occupied `frame`.
    ///
    /// # Panics
    ///
    /// Panics if the frame is free.
    pub fn set_owner(&mut self, frame: u32, owner: TagRef) {
        let slot = &mut self.frames[frame as usize];
        assert!(slot.is_some(), "set_owner on free frame {frame}");
        *slot = Some(owner);
    }

    /// Chooses a distance-replacement victim frame within `region`.
    ///
    /// # Panics
    ///
    /// Panics if the region has free frames.
    pub fn choose_victim(&mut self, region: usize) -> u32 {
        assert!(
            self.is_full(region),
            "choose_victim with {} free frames in region {region}",
            self.regions[region].free.len()
        );
        let local = match self.policy {
            DistanceVictimPolicy::Random => {
                self.rng.below(self.frames_per_region as u64) as u32
            }
            DistanceVictimPolicy::Lru => {
                self.regions[region].lru.lru().expect("non-empty region")
            }
            DistanceVictimPolicy::ClockApprox => {
                let fpr = self.frames_per_region;
                let reg = &mut self.regions[region];
                loop {
                    let l = reg.hand;
                    reg.hand = (reg.hand + 1) % fpr;
                    if reg.referenced[l as usize] {
                        reg.referenced[l as usize] = false;
                    } else {
                        break l;
                    }
                }
            }
        };
        self.global(region, local)
    }
}

// ---------------------------------------------------------------------------
// Port schedule: VecDeque with front-pruning and a full linear scan.
// ---------------------------------------------------------------------------

/// The original single-port schedule.
#[derive(Debug, Clone, Default)]
pub struct NaivePortSchedule {
    /// Sorted, disjoint `[start, end)` reservations.
    busy: VecDeque<(Cycle, Cycle)>,
}

impl NaivePortSchedule {
    /// Creates an idle port.
    pub fn new() -> Self {
        NaivePortSchedule::default()
    }

    /// Reserves `dur` port cycles at the earliest time ≥ `at` that does
    /// not overlap an existing reservation. Returns the start time.
    pub fn reserve(&mut self, at: Cycle, dur: u64) -> Cycle {
        const LAG: u64 = 4096;
        while let Some(&(_, end)) = self.busy.front() {
            if end.raw() + LAG <= at.raw() {
                self.busy.pop_front();
            } else {
                break;
            }
        }
        let mut start = at;
        let mut insert_at = 0usize;
        for (i, &(s, e)) in self.busy.iter().enumerate() {
            if start.raw() + dur <= s.raw() {
                break; // fits in the gap before interval i
            }
            if start < e {
                start = e; // pushed past this interval
            }
            insert_at = i + 1;
        }
        self.busy.insert(insert_at, (start, start + dur));
        start
    }

    /// Earliest time ≥ `at` the port is free (without reserving).
    pub fn next_free(&self, at: Cycle) -> Cycle {
        let mut t = at;
        for &(s, e) in &self.busy {
            if t < s {
                break;
            }
            if t < e {
                t = e;
            }
        }
        t
    }

    /// Number of live reservations.
    pub fn reservations(&self) -> usize {
        self.busy.len()
    }
}

// ---------------------------------------------------------------------------
// The assembled reference cache.
// ---------------------------------------------------------------------------

/// The original NuRAPID cache wired from the naive components, with the
/// same orchestration logic as [`crate::NuRapidCache`] (telemetry elided —
/// it never feeds back into behavior).
#[derive(Debug)]
pub struct NaiveNuRapidCache {
    config: NuRapidConfig,
    geo: NuRapidGeometry,
    tags: NaiveTagArray,
    dgroups: Vec<NaiveDGroupArray>,
    memory: MainMemory,
    stats: NuRapidStats,
    port: NaivePortSchedule,
    n_regions: usize,
}

impl NaiveNuRapidCache {
    /// Builds the reference cache from `config` (same seeding and RNG fork
    /// structure as the production cache).
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent.
    pub fn new(config: NuRapidConfig) -> Self {
        let geo = NuRapidGeometry::micro2003(config.capacity, config.n_dgroups);
        let blocks = config.capacity.bytes() / BLOCK_BYTES;
        let sets = (blocks / config.assoc as u64) as usize;
        let frames = geo.frames_per_dgroup();
        let n_regions = match config.frames_per_region {
            None => 1,
            Some(fpr) => {
                assert!(
                    fpr > 0 && frames.is_multiple_of(fpr as usize),
                    "{fpr} frames per region must evenly divide {frames} frames"
                );
                frames / fpr as usize
            }
        };
        let mut rng = SimRng::seeded(config.seed);
        let dgroups = (0..config.n_dgroups)
            .map(|g| {
                NaiveDGroupArray::with_regions(
                    frames,
                    n_regions,
                    config.distance_victim,
                    rng.fork(g as u64),
                )
            })
            .collect();
        NaiveNuRapidCache {
            tags: NaiveTagArray::new(sets, config.assoc),
            dgroups,
            memory: MainMemory::micro2003(),
            stats: NuRapidStats::new(config.n_dgroups),
            geo,
            config,
            port: NaivePortSchedule::new(),
            n_regions,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NuRapidStats {
        &self.stats
    }

    /// Off-chip accesses (misses + writebacks).
    pub fn memory_accesses(&self) -> u64 {
        self.memory.accesses()
    }

    fn region_of(&self, block: BlockAddr) -> usize {
        (block.index() % self.n_regions as u64) as usize
    }

    /// Fills every frame and tag entry with placeholder blocks, mirroring
    /// [`crate::NuRapidCache::prefill`].
    ///
    /// # Panics
    ///
    /// Panics if the cache is not empty.
    pub fn prefill(&mut self) {
        assert_eq!(self.tags.occupancy(), 0, "prefill on a non-empty cache");
        let sets = self.tags.sets() as u64;
        let blocks = sets * self.config.assoc as u64;
        let base = u64::MAX / 256;
        for i in 0..blocks {
            let block = BlockAddr::from_index(base + i);
            let g = ((i / self.n_regions as u64) % self.config.n_dgroups as u64) as usize;
            let region = self.region_of(block);
            let frame = self.dgroups[g]
                .take_free(region)
                .expect("empty cache has frames in every region");
            let (at, ev) = self.tags.allocate(
                block,
                FramePtr {
                    group: g as u8,
                    frame,
                },
                false,
            );
            assert!(ev.is_none(), "prefill must not evict");
            self.dgroups[g].install(frame, at);
        }
    }

    fn place_with_demotions(&mut self, owner: TagRef, target: usize, region: usize) -> u64 {
        let mut carry = owner;
        let mut g = target;
        let mut cycles = 0;
        loop {
            assert!(g < self.dgroups.len(), "demotion chain ran off the end");
            let (frame, displaced) = match self.dgroups[g].take_free(region) {
                Some(f) => (f, None),
                None => {
                    let v = self.dgroups[g].choose_victim(region);
                    let victim_owner = self.dgroups[g].remove(v);
                    self.stats.group_reads.record(g);
                    cycles += self.geo.array_occupancy_cycles();
                    (v, Some(victim_owner))
                }
            };
            self.dgroups[g].install(frame, carry);
            self.tags.set_ptr(
                carry,
                FramePtr {
                    group: g as u8,
                    frame,
                },
            );
            self.stats.group_writes.record(g);
            self.stats.tag_writes.inc();
            cycles += self.geo.array_occupancy_cycles();
            match displaced {
                None => return cycles,
                Some(victim_owner) => {
                    carry = victim_owner;
                    self.stats.demotions.inc();
                    g += 1;
                }
            }
        }
    }

    fn promote(&mut self, at: TagRef, g: usize, frame: u32, region: usize) -> u64 {
        let target = match (self.config.promotion, g) {
            (PromotionPolicy::DemotionOnly, _) | (_, 0) => return 0,
            (PromotionPolicy::NextFastest, _) => g - 1,
            (PromotionPolicy::Fastest, _) => 0,
        };
        let owner = self.dgroups[g].release(frame);
        debug_assert_eq!(owner, at, "reverse pointer must match the tag hit");
        self.stats.promotions.inc();
        self.place_with_demotions(owner, target, region)
    }

    /// Demand access, mirroring [`crate::NuRapidCache::access_block`].
    pub fn access_block(&mut self, block: BlockAddr, kind: AccessKind, now: Cycle) -> LowerOutcome {
        self.stats.accesses.inc();
        self.stats.tag_probes.inc();

        match self.tags.access(block, kind) {
            TagLookup::Hit { at, ptr } => {
                let g = ptr.group as usize;
                self.stats.group_hits.record(g);
                self.stats.group_reads.record(g);
                self.dgroups[g].touch(ptr.frame);
                let latency = if self.config.ideal {
                    self.geo.dgroup_latency_cycles(0)
                } else {
                    self.geo.dgroup_latency_cycles(g)
                };
                let swap_cycles = self.promote(at, g, ptr.frame, self.region_of(block));
                let occupancy = if self.config.ideal {
                    self.geo.array_occupancy_cycles()
                } else {
                    self.geo.array_occupancy_cycles() + swap_cycles
                };
                let start = self.port.reserve(now, occupancy);
                LowerOutcome {
                    complete_at: start + latency,
                    hit: true,
                }
            }
            TagLookup::Miss => {
                self.stats.misses.inc();
                self.stats.memory_reads.inc();
                let probe_start = self.port.reserve(now, self.geo.tag_latency_cycles());
                let mem_start = probe_start + self.geo.tag_latency_cycles();
                let mem_done = self.memory.access(BLOCK_BYTES, mem_start);
                let (at, evicted) = self.tags.allocate(
                    block,
                    FramePtr { group: 0, frame: 0 }, // provisional
                    kind.is_write(),
                );
                if let Some(ev) = evicted {
                    self.dgroups[ev.freed.group as usize].release(ev.freed.frame);
                    if ev.dirty {
                        self.stats.writebacks.inc();
                        let _ = self.memory.access(BLOCK_BYTES, mem_done);
                    }
                }
                let fill_cycles = self.place_with_demotions(at, 0, self.region_of(block));
                if fill_cycles > 0 && !self.config.ideal {
                    let _ = self.port.reserve(mem_done, fill_cycles);
                }
                LowerOutcome {
                    complete_at: mem_done,
                    hit: false,
                }
            }
        }
    }
}
