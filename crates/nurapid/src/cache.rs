//! The assembled NuRAPID cache: tag array + d-groups + policies + the
//! one-ported, non-banked timing model.

use crate::dgroup::DGroupArray;
use crate::policy::{DistanceVictimPolicy, PromotionPolicy};
use crate::port::PortSchedule;
use crate::stats::NuRapidStats;
use crate::tag::{FramePtr, TagArray, TagLookup, TagRef};
use cachemodel::catalog::{NuRapidGeometry, BLOCK_BYTES};
use memsys::lower::{LowerCache, LowerOutcome};
use memsys::memory::MainMemory;
use simbase::rng::SimRng;
use simbase::{AccessKind, BlockAddr, Capacity, Cycle};
use simtel::TelemetrySink;

/// Static d-group labels so telemetry spans can carry a `&'static str`
/// name without per-event allocation (the paper evaluates up to 8).
const DGROUP_SPAN: [&str; 8] = [
    "dgroup0", "dgroup1", "dgroup2", "dgroup3", "dgroup4", "dgroup5", "dgroup6", "dgroup7",
];
/// Counter-track labels for the periodic per-d-group hit-fraction snapshot.
const DGROUP_SNAP: [&str; 8] = [
    "dgroup0_hit_milli",
    "dgroup1_hit_milli",
    "dgroup2_hit_milli",
    "dgroup3_hit_milli",
    "dgroup4_hit_milli",
    "dgroup5_hit_milli",
    "dgroup6_hit_milli",
    "dgroup7_hit_milli",
];

/// Configuration of a NuRAPID cache.
#[derive(Debug, Clone)]
pub struct NuRapidConfig {
    /// Total capacity (8 MB in the evaluation).
    pub capacity: Capacity,
    /// Tag-array associativity (8 in the evaluation).
    pub assoc: u32,
    /// Number of d-groups (2, 4, or 8 in the evaluation).
    pub n_dgroups: usize,
    /// Promotion policy (Section 2.4.1).
    pub promotion: PromotionPolicy,
    /// Distance-replacement victim policy (Section 2.4.2).
    pub distance_victim: DistanceVictimPolicy,
    /// RNG seed for random distance replacement.
    pub seed: u64,
    /// Figure 6's "ideal" configuration: every hit costs the fastest
    /// d-group's latency and swaps are free. Placement still operates so
    /// miss behavior is unchanged.
    pub ideal: bool,
    /// Section 2.4.3 pointer restriction: limit each block to this many
    /// candidate frames per d-group (`None` = fully flexible). Shrinks the
    /// forward/reverse pointers (see [`crate::pointers`]) at some cost in
    /// placement freedom.
    pub frames_per_region: Option<u32>,
}

impl NuRapidConfig {
    /// The paper's evaluated configuration: 8 MB, 8-way, with `n_dgroups`
    /// d-groups, next-fastest promotion and random distance replacement.
    pub fn micro2003(n_dgroups: usize) -> Self {
        NuRapidConfig {
            capacity: Capacity::from_mib(8),
            assoc: 8,
            n_dgroups,
            promotion: PromotionPolicy::NextFastest,
            distance_victim: DistanceVictimPolicy::Random,
            seed: 0x6e75_7261,
            ideal: false,
            frames_per_region: None,
        }
    }

    /// Same configuration with a different promotion policy.
    #[must_use]
    pub fn with_promotion(mut self, p: PromotionPolicy) -> Self {
        self.promotion = p;
        self
    }

    /// Same configuration with a different distance-victim policy.
    #[must_use]
    pub fn with_distance_victim(mut self, p: DistanceVictimPolicy) -> Self {
        self.distance_victim = p;
        self
    }

    /// Same configuration in Figure 6's ideal mode.
    #[must_use]
    pub fn with_ideal(mut self) -> Self {
        self.ideal = true;
        self
    }

    /// Same configuration with the Section 2.4.3 pointer restriction:
    /// each block may occupy only `frames` candidate frames per d-group.
    #[must_use]
    pub fn with_frames_per_region(mut self, frames: u32) -> Self {
        self.frames_per_region = Some(frames);
        self
    }
}

/// The NuRAPID cache (one-ported, non-banked).
#[derive(Debug)]
pub struct NuRapidCache {
    config: NuRapidConfig,
    geo: NuRapidGeometry,
    tags: TagArray,
    dgroups: Vec<DGroupArray>,
    memory: MainMemory,
    stats: NuRapidStats,
    /// The single port: one array operation at a time; outstanding swaps
    /// must complete before a new access is initiated (Section 2.3).
    port: PortSchedule,
    /// Placement regions per d-group (1 = fully flexible).
    n_regions: usize,
    /// `n_regions - 1` when the region count is a power of two (it is in
    /// every paper configuration), so [`Self::region_of`] is a mask.
    region_mask: Option<u64>,
    sink: TelemetrySink,
    snap_every: u64,
    next_snap: u64,
}

impl NuRapidCache {
    /// Builds a NuRAPID cache from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible by
    /// d-groups/associativity/block size).
    pub fn new(config: NuRapidConfig) -> Self {
        let geo = NuRapidGeometry::micro2003(config.capacity, config.n_dgroups);
        let blocks = config.capacity.bytes() / BLOCK_BYTES;
        let sets = (blocks / config.assoc as u64) as usize;
        let frames = geo.frames_per_dgroup();
        let n_regions = match config.frames_per_region {
            None => 1,
            Some(fpr) => {
                assert!(
                    fpr > 0 && frames.is_multiple_of(fpr as usize),
                    "{fpr} frames per region must evenly divide {frames} frames"
                );
                frames / fpr as usize
            }
        };
        let mut rng = SimRng::seeded(config.seed);
        let dgroups = (0..config.n_dgroups)
            .map(|g| {
                DGroupArray::with_regions(
                    frames,
                    n_regions,
                    config.distance_victim,
                    rng.fork(g as u64),
                )
            })
            .collect();
        NuRapidCache {
            tags: TagArray::new(sets, config.assoc),
            dgroups,
            memory: MainMemory::micro2003(),
            stats: NuRapidStats::new(config.n_dgroups),
            geo,
            config,
            port: PortSchedule::new(),
            n_regions,
            region_mask: n_regions.is_power_of_two().then(|| n_regions as u64 - 1),
            sink: TelemetrySink::disabled(),
            snap_every: 0,
            next_snap: u64::MAX,
        }
    }

    /// Attaches a telemetry sink, forwarded to the memory channel. When
    /// `snap_every` is non-zero, periodic per-d-group hit-fraction
    /// snapshots are emitted every `snap_every` cycles as counter tracks.
    pub fn set_telemetry(&mut self, sink: TelemetrySink, snap_every: u64) {
        self.memory.set_telemetry(sink.clone());
        self.next_snap = if sink.enabled() && snap_every > 0 {
            snap_every
        } else {
            u64::MAX
        };
        self.snap_every = snap_every;
        self.sink = sink;
    }

    /// Emits the periodic per-d-group hit-fraction snapshot once `now`
    /// passes the next snapshot boundary.
    fn maybe_snapshot(&mut self, now: Cycle) {
        if now.raw() < self.next_snap {
            return;
        }
        let total = self.stats.accesses.get().max(1);
        for g in 0..self.config.n_dgroups.min(DGROUP_SNAP.len()) {
            let milli = 1000 * self.stats.group_hits.count(g) / total;
            self.sink.counter_track("snap", DGROUP_SNAP[g], now.raw(), milli);
            self.sink.gauge(DGROUP_SNAP[g], now.raw(), self.stats.group_access_frac(g));
        }
        while self.next_snap <= now.raw() {
            self.next_snap += self.snap_every;
        }
    }

    /// The placement region of `block` (0 when unrestricted).
    #[inline]
    fn region_of(&self, block: BlockAddr) -> usize {
        match self.region_mask {
            Some(m) => (block.index() & m) as usize,
            None => (block.index() % self.n_regions as u64) as usize,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &NuRapidConfig {
        &self.config
    }

    /// The physical geometry (latencies and energies per d-group).
    pub fn geometry(&self) -> &NuRapidGeometry {
        &self.geo
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NuRapidStats {
        &self.stats
    }

    /// Zeroes the statistics (cache contents and timing state are kept).
    /// Used after warm-up so measurements reflect steady state, matching
    /// the paper's fast-forward-then-measure methodology. The memory
    /// model's counters — including an attached L4's — reset with them,
    /// so a timed warm-up leaves nothing behind the barrier.
    pub fn reset_stats(&mut self) {
        self.stats = NuRapidStats::new(self.config.n_dgroups);
        self.memory.reset_counters();
    }

    /// Off-chip accesses (misses + writebacks) for energy accounting.
    pub fn memory_accesses(&self) -> u64 {
        self.memory.accesses()
    }

    /// Fills every frame and tag entry with placeholder blocks, emulating
    /// the steady-state occupancy the paper reaches by fast-forwarding 5
    /// billion instructions: from the first real access on, placement must
    /// displace something. Placeholder blocks use a reserved address range
    /// and are natural LRU victims. No statistics or timing are charged.
    ///
    /// # Panics
    ///
    /// Panics if the cache is not empty.
    pub fn prefill(&mut self) {
        assert_eq!(self.tags.occupancy(), 0, "prefill on a non-empty cache");
        let sets = self.tags.sets() as u64;
        let blocks = sets * self.config.assoc as u64;
        // Reserved placeholder region far above any workload address.
        let base = u64::MAX / 256;
        for i in 0..blocks {
            let block = BlockAddr::from_index(base + i);
            // Stride the d-group choice by the region count so every
            // (d-group, region) pair receives exactly its share of
            // placeholders.
            let g = ((i / self.n_regions as u64) % self.config.n_dgroups as u64) as usize;
            let region = self.region_of(block);
            let frame = self.dgroups[g]
                .take_free(region)
                .expect("empty cache has frames in every region");
            let (at, ev) = self.tags.allocate(
                block,
                FramePtr {
                    group: g as u8,
                    frame,
                },
                false,
            );
            assert!(ev.is_none(), "prefill must not evict");
            self.dgroups[g].install(frame, at);
        }
    }

    /// Places the block owned by `owner` into d-group `target`, demoting
    /// existing blocks d-group by d-group until a free frame absorbs the
    /// chain (paper Section 2.2). Returns the swap cycles spent on the
    /// port.
    ///
    /// The caller must have already detached `owner`'s data from any frame
    /// (its read, if one was physically needed, is the caller's to count).
    fn place_with_demotions(&mut self, owner: TagRef, target: usize, region: usize) -> u64 {
        let mut carry = owner;
        let mut g = target;
        let mut cycles = 0;
        let mut chain_len = 0u64;
        loop {
            assert!(g < self.dgroups.len(), "demotion chain ran off the end");
            // Either a free frame absorbs the carried block, or this
            // group's victim is displaced one group down. Under the
            // pointer restriction everything stays within the block's
            // region: victims in region-r frames are themselves region-r
            // blocks, so the chain is closed.
            let (frame, displaced) = match self.dgroups[g].take_free(region) {
                Some(f) => (f, None),
                None => {
                    let v = self.dgroups[g].choose_victim(region);
                    let victim_owner = self.dgroups[g].remove(v);
                    // Reading the victim out of this group.
                    self.stats.group_reads.record(g);
                    cycles += self.geo.array_occupancy_cycles();
                    (v, Some(victim_owner))
                }
            };
            self.dgroups[g].install(frame, carry);
            self.tags.set_ptr(
                carry,
                FramePtr {
                    group: g as u8,
                    frame,
                },
            );
            // Writing the carried block into this group (plus the
            // forward-pointer rewrite).
            self.stats.group_writes.record(g);
            self.stats.tag_writes.inc();
            cycles += self.geo.array_occupancy_cycles();
            match displaced {
                None => {
                    if self.sink.enabled() {
                        self.sink.observe("nurapid.demotion_chain_len", chain_len);
                    }
                    return cycles;
                }
                Some(victim_owner) => {
                    carry = victim_owner;
                    self.stats.demotions.inc();
                    chain_len += 1;
                    g += 1;
                }
            }
        }
    }

    /// Handles promotion after a hit in d-group `g` at frame `frame`.
    /// Returns the swap cycles spent on the port.
    fn promote(&mut self, at: TagRef, g: usize, frame: u32, region: usize) -> u64 {
        let target = match (self.config.promotion, g) {
            (PromotionPolicy::DemotionOnly, _) | (_, 0) => return 0,
            (PromotionPolicy::NextFastest, _) => g - 1,
            (PromotionPolicy::Fastest, _) => 0,
        };
        // Detach the hit block; its frame becomes the hole the demotion
        // chain can terminate in.
        let owner = self.dgroups[g].release(frame);
        debug_assert_eq!(owner, at, "reverse pointer must match the tag hit");
        self.stats.promotions.inc();
        self.sink.count("nurapid.promotions", 1);
        self.place_with_demotions(owner, target, region)
    }

    /// Demand access used by tests and the experiment harness; identical
    /// to the [`LowerCache`] implementation.
    pub fn access_block(&mut self, block: BlockAddr, kind: AccessKind, now: Cycle) -> LowerOutcome {
        self.stats.accesses.inc();
        self.stats.tag_probes.inc();
        self.sink.count("nurapid.tag_probes", 1);
        self.maybe_snapshot(now);

        match self.tags.access(block, kind) {
            TagLookup::Hit { at, ptr } => {
                let g = ptr.group as usize;
                self.stats.group_hits.record(g);
                self.stats.group_reads.record(g);
                self.dgroups[g].touch(ptr.frame);
                let latency = if self.config.ideal {
                    self.geo.dgroup_latency_cycles(0)
                } else {
                    self.geo.dgroup_latency_cycles(g)
                };
                let swap_cycles = self.promote(at, g, ptr.frame, self.region_of(block));
                // One port: the hit occupies the arrays for the array-busy
                // portion of its latency (the tag array and wires are
                // pipelined) plus any promotion swap it triggered.
                let occupancy = if self.config.ideal {
                    self.geo.array_occupancy_cycles()
                } else {
                    self.geo.array_occupancy_cycles() + swap_cycles
                };
                let start = self.port.reserve(now, occupancy);
                if self.sink.enabled() {
                    self.sink.span("nurapid", DGROUP_SPAN[g.min(DGROUP_SPAN.len() - 1)], start.raw(), latency);
                    if swap_cycles > 0 {
                        self.sink.span("nurapid", "promotion_swap", start.raw(), swap_cycles);
                    }
                }
                LowerOutcome {
                    complete_at: start + latency,
                    hit: true,
                }
            }
            TagLookup::Miss => {
                self.stats.misses.inc();
                self.stats.memory_reads.inc();
                // The miss holds the port for the tag probe, releases it
                // while memory works, then holds it again for the fill
                // and its demotion chain.
                let probe_start = self.port.reserve(now, self.geo.tag_latency_cycles());
                let mem_start = probe_start + self.geo.tag_latency_cycles();
                let mem_done = self.memory.fill_block(block, BLOCK_BYTES, mem_start);

                // Data replacement: allocate the tag entry, evicting the
                // set's LRU block if needed (Figure 2, steps 1-2).
                let (at, evicted) = self.tags.allocate(
                    block,
                    FramePtr { group: 0, frame: 0 }, // provisional
                    kind.is_write(),
                );
                if let Some(ev) = evicted {
                    self.dgroups[ev.freed.group as usize].release(ev.freed.frame);
                    if ev.dirty {
                        self.stats.writebacks.inc();
                        let _ = self.memory.writeback_block(ev.block, BLOCK_BYTES, mem_done);
                    }
                }
                // Distance placement: the new block goes to the fastest
                // d-group, demoting as necessary (Figure 2, steps 3-4).
                let fill_cycles = self.place_with_demotions(at, 0, self.region_of(block));
                if fill_cycles > 0 {
                    self.sink.span("nurapid", "demotion_chain", mem_done.raw(), fill_cycles);
                    if !self.config.ideal {
                        let _ = self.port.reserve(mem_done, fill_cycles);
                    }
                }
                LowerOutcome {
                    complete_at: mem_done,
                    hit: false,
                }
            }
        }
    }

    /// Warm-up access: the architectural transitions of
    /// [`NuRapidCache::access_block`] — tag recency and dirty bits, data
    /// and distance replacement, demotion chains, promotions — with the
    /// port, memory channel, latency math, and telemetry elided. It
    /// reuses the same promotion/placement routines as the timed path, so
    /// victim selection draws the RNG stream identically.
    pub fn warm_access_block(&mut self, block: BlockAddr, kind: AccessKind) {
        match self.tags.access(block, kind) {
            TagLookup::Hit { at, ptr } => {
                let g = ptr.group as usize;
                self.dgroups[g].touch(ptr.frame);
                let _ = self.promote(at, g, ptr.frame, self.region_of(block));
            }
            TagLookup::Miss => {
                self.memory.warm_fill(block);
                let (at, evicted) = self.tags.allocate(
                    block,
                    FramePtr { group: 0, frame: 0 }, // provisional
                    kind.is_write(),
                );
                if let Some(ev) = evicted {
                    self.dgroups[ev.freed.group as usize].release(ev.freed.frame);
                    if ev.dirty {
                        self.memory.warm_writeback(ev.block);
                    }
                }
                let _ = self.place_with_demotions(at, 0, self.region_of(block));
            }
        }
    }

    /// Warm-up drain barrier: forgets port reservations and memory-channel
    /// occupancy. Neither holds architectural state.
    pub fn drain_timing(&mut self) {
        self.port = PortSchedule::new();
        self.memory.drain_timing();
    }

    /// Serializes the architectural state: the tag array and every
    /// d-group (contents, free lists, recency, RNG streams).
    pub fn save_state(&self, e: &mut simbase::snapshot::Encoder) {
        self.tags.save_state(e);
        e.put_len(self.dgroups.len());
        for g in &self.dgroups {
            g.save_state(e);
        }
        self.memory.save_l4_state(e);
    }

    /// Restores state written by [`NuRapidCache::save_state`] into a cache
    /// of identical configuration.
    pub fn load_state(
        &mut self,
        d: &mut simbase::snapshot::Decoder<'_>,
    ) -> Result<(), simbase::snapshot::SnapshotError> {
        self.tags.load_state(d)?;
        if d.len()? != self.dgroups.len() {
            return Err(simbase::snapshot::SnapshotError::Malformed(
                "d-group count mismatch",
            ));
        }
        for g in self.dgroups.iter_mut() {
            g.load_state(d)?;
        }
        self.memory.load_l4_state(d)
    }

    /// Verifies the tag/data bijection: every valid tag entry's forward
    /// pointer names an occupied frame whose reverse pointer names that
    /// entry, and occupied frame count equals valid tag count. Used by the
    /// test suite; O(capacity).
    pub fn check_invariants(&self) {
        let mut occupied = 0usize;
        for (gi, g) in self.dgroups.iter().enumerate() {
            for f in 0..g.n_frames() as u32 {
                if let Some(owner) = g.owner(f) {
                    occupied += 1;
                    let ptr = self.tags.ptr_of(owner);
                    assert_eq!(
                        (ptr.group as usize, ptr.frame),
                        (gi, f),
                        "frame ({gi},{f}) reverse pointer disagrees with forward pointer"
                    );
                    if self.n_regions > 1 {
                        let block = self.tags.block_at(owner).expect("valid entry");
                        assert_eq!(
                            self.region_of(block),
                            g.region_of_frame(f),
                            "restricted block {block} placed outside its region"
                        );
                    }
                }
            }
        }
        assert_eq!(
            occupied,
            self.tags.occupancy(),
            "occupied frames must equal valid tag entries"
        );
    }
}

impl LowerCache for NuRapidCache {
    fn access(&mut self, block: BlockAddr, kind: AccessKind, now: Cycle) -> LowerOutcome {
        self.access_block(block, kind, now)
    }

    fn accesses(&self) -> u64 {
        self.stats.accesses.get()
    }

    fn misses(&self) -> u64 {
        self.stats.misses.get()
    }

    fn block_bytes(&self) -> u64 {
        BLOCK_BYTES
    }

    fn warm_access(&mut self, block: BlockAddr, kind: AccessKind) {
        self.warm_access_block(block, kind);
    }
}

impl memsys::org::Organization for NuRapidCache {
    fn prefill(&mut self) {
        NuRapidCache::prefill(self);
    }

    fn reset_stats(&mut self) {
        NuRapidCache::reset_stats(self);
    }

    fn set_telemetry(&mut self, sink: &TelemetrySink, snap_every: u64) {
        NuRapidCache::set_telemetry(self, sink.clone(), snap_every);
    }

    fn drain_timing(&mut self) {
        NuRapidCache::drain_timing(self);
    }

    fn save_state(&self, e: &mut simbase::snapshot::Encoder) {
        NuRapidCache::save_state(self, e);
    }

    fn load_state(
        &mut self,
        d: &mut simbase::snapshot::Decoder<'_>,
    ) -> Result<(), simbase::snapshot::SnapshotError> {
        NuRapidCache::load_state(self, d)
    }

    fn main_memory(&self) -> Option<&memsys::memory::MainMemory> {
        Some(&self.memory)
    }

    fn main_memory_mut(&mut self) -> Option<&mut memsys::memory::MainMemory> {
        Some(&mut self.memory)
    }

    fn report(&self) -> memsys::org::OrgReport {
        let s = self.stats();
        memsys::org::OrgReport {
            l2_accesses: s.accesses.get(),
            l2_misses: s.misses.get(),
            group_fracs: (0..s.n_dgroups()).map(|g| s.group_access_frac(g)).collect(),
            miss_frac: s.miss_frac(),
            dgroup_accesses: s.total_dgroup_accesses(),
            swaps: s.total_moves(),
            memory_accesses: s.memory_reads.get() + s.writebacks.get(),
            l2_energy: crate::energy::dynamic_energy(s, self.geometry()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    fn small_cache(n_dgroups: usize) -> NuRapidCache {
        // 1-MB, 4-way NuRAPID for fast tests: 2048 sets, 8192 frames.
        let mut c = NuRapidConfig::micro2003(n_dgroups);
        c.capacity = Capacity::from_mib(1); // floorplan minimum granularity
        c.assoc = 4;
        NuRapidCache::new(c)
    }

    #[test]
    fn cold_miss_fills_fastest_dgroup() {
        let mut c = NuRapidCache::new(NuRapidConfig::micro2003(4));
        let out = c.access_block(blk(1), AccessKind::Read, Cycle::ZERO);
        assert!(!out.hit);
        // Access well after the fill's port work has drained.
        let hit = c.access_block(blk(1), AccessKind::Read, Cycle::new(1_000));
        assert!(hit.hit);
        // Table 4: fastest d-group of the 4-d-group NuRAPID is 14 cycles.
        assert_eq!(hit.complete_at, Cycle::new(1_014));
        assert_eq!(c.stats().group_hits.count(0), 1);
        c.check_invariants();
    }

    #[test]
    fn miss_latency_includes_tag_probe_and_memory() {
        let mut c = NuRapidCache::new(NuRapidConfig::micro2003(4));
        let out = c.access_block(blk(1), AccessKind::Read, Cycle::ZERO);
        // 8-cycle tag + 194-cycle memory block fill.
        assert_eq!(out.complete_at, Cycle::new(8 + 194));
    }

    #[test]
    fn all_ways_of_a_hot_set_fit_in_the_fastest_dgroup() {
        // The paper's key flexibility claim (Section 2.1): unlike D-NUCA,
        // every way of a hot set can live in d-group 0.
        let mut c = NuRapidCache::new(NuRapidConfig::micro2003(4));
        let sets = c.tags.sets() as u64;
        let mut t = Cycle::ZERO;
        for w in 0..8u64 {
            let out = c.access_block(blk(1 + w * sets), AccessKind::Read, t);
            t = out.complete_at + 1000;
        }
        // Re-access all 8: every one hits in d-group 0.
        for w in 0..8u64 {
            let out = c.access_block(blk(1 + w * sets), AccessKind::Read, t);
            assert!(out.hit);
            t = out.complete_at + 1000;
        }
        assert_eq!(c.stats().group_hits.count(0), 8);
        assert_eq!(c.stats().group_hits.total(), 8);
        c.check_invariants();
    }

    #[test]
    fn distance_replacement_never_evicts() {
        // Fill d-group 0 beyond capacity: blocks demote but stay cached.
        let mut c = small_cache(4);
        let frames = c.geo.frames_per_dgroup() as u64;
        let mut t = Cycle::ZERO;
        // Touch more distinct blocks than d-group 0 holds (but fewer than
        // the whole cache); each set has 4 ways and 2048 sets so no data
        // replacement occurs.
        let n = frames + frames / 2;
        for i in 0..n {
            let out = c.access_block(blk(i), AccessKind::Read, t);
            assert!(!out.hit, "first touch of {i} must miss");
            t = out.complete_at + 10;
        }
        assert_eq!(c.stats().misses.get(), n);
        // Every block is still resident: second pass has zero misses.
        for i in 0..n {
            let out = c.access_block(blk(i), AccessKind::Read, t);
            assert!(out.hit, "block {i} must still be cached");
            t = out.complete_at + 10;
        }
        assert_eq!(c.stats().misses.get(), n);
        assert!(c.stats().demotions.get() > 0, "demotions must have occurred");
        c.check_invariants();
    }

    #[test]
    fn miss_rate_is_policy_independent() {
        // Section 5.2.2: "miss rates for NuRAPID remain the same for the
        // three policies because distance replacement does not cause
        // evictions."
        let mut misses = Vec::new();
        for promo in [
            PromotionPolicy::DemotionOnly,
            PromotionPolicy::NextFastest,
            PromotionPolicy::Fastest,
        ] {
            let mut c = small_cache(4);
            c.config.promotion = promo;
            let mut t = Cycle::ZERO;
            // A reuse pattern with conflict and capacity pressure: 16 K
            // distinct blocks in an 8 K-block cache.
            for i in 0..32_768u64 {
                let b = (i * 37) % 16_384;
                let out = c.access_block(blk(b), AccessKind::Read, t);
                t = out.complete_at + 5;
            }
            misses.push(c.stats().misses.get());
            c.check_invariants();
        }
        assert_eq!(misses[0], misses[1]);
        assert_eq!(misses[1], misses[2]);
    }

    #[test]
    fn next_fastest_promotes_one_group_per_hit() {
        let mut c = small_cache(2);
        let frames = c.geo.frames_per_dgroup() as u64;
        let mut t = Cycle::ZERO;
        // Fill group 0 completely, then one more: block 0 demotes to
        // group 1 (random victim could be any block; so instead check via
        // stats).
        for i in 0..=frames {
            let out = c.access_block(blk(i), AccessKind::Read, t);
            t = out.complete_at + 10;
        }
        assert_eq!(c.stats().demotions.get(), 1);
        // Find the demoted block by scanning for a group-1 hit.
        let mut promoted = None;
        for i in 0..=frames {
            let before = c.stats().group_hits.count(1);
            let out = c.access_block(blk(i), AccessKind::Read, t);
            t = out.complete_at + 10;
            assert!(out.hit);
            if c.stats().group_hits.count(1) > before {
                promoted = Some(i);
                break;
            }
        }
        let promoted = promoted.expect("one block must be in group 1");
        assert_eq!(c.stats().promotions.get(), 1, "hit in group 1 promotes");
        // The promoted block now hits in group 0.
        let before0 = c.stats().group_hits.count(0);
        let out = c.access_block(blk(promoted), AccessKind::Read, t);
        assert!(out.hit);
        assert_eq!(c.stats().group_hits.count(0), before0 + 1);
        c.check_invariants();
    }

    #[test]
    fn demotion_only_blocks_stay_stuck() {
        let mut c = small_cache(2);
        c.config.promotion = PromotionPolicy::DemotionOnly;
        let frames = c.geo.frames_per_dgroup() as u64;
        let mut t = Cycle::ZERO;
        for i in 0..=frames {
            let out = c.access_block(blk(i), AccessKind::Read, t);
            t = out.complete_at + 10;
        }
        // Re-access everything twice: the demoted block keeps hitting in
        // group 1 and never comes back.
        for _ in 0..2 {
            for i in 0..=frames {
                let out = c.access_block(blk(i), AccessKind::Read, t);
                assert!(out.hit);
                t = out.complete_at + 10;
            }
        }
        assert_eq!(c.stats().promotions.get(), 0);
        assert_eq!(c.stats().group_hits.count(1), 2);
        c.check_invariants();
    }

    #[test]
    fn fastest_policy_promotes_straight_to_group_zero() {
        let mut c = small_cache(4);
        c.config.promotion = PromotionPolicy::Fastest;
        let frames = c.geo.frames_per_dgroup() as u64;
        let mut t = Cycle::ZERO;
        // Push blocks into groups 0..2.
        for i in 0..(2 * frames + 1) {
            let out = c.access_block(blk(i), AccessKind::Read, t);
            t = out.complete_at + 10;
        }
        c.check_invariants();
        // Find a block hitting in group 2 and verify it next hits group 0.
        for i in 0..(2 * frames + 1) {
            let before = c.stats().group_hits.count(2);
            let out = c.access_block(blk(i), AccessKind::Read, t);
            t = out.complete_at + 10;
            assert!(out.hit);
            if c.stats().group_hits.count(2) > before {
                let b0 = c.stats().group_hits.count(0);
                let out = c.access_block(blk(i), AccessKind::Read, t);
                assert!(out.hit);
                assert_eq!(c.stats().group_hits.count(0), b0 + 1);
                c.check_invariants();
                return;
            }
        }
        panic!("no block found in group 2");
    }

    #[test]
    fn data_replacement_evicts_and_frees_frame() {
        let mut c = small_cache(4);
        let sets = c.tags.sets() as u64;
        let mut t = Cycle::ZERO;
        // Over-fill one set (4-way): the 5th block evicts the LRU.
        for w in 0..5u64 {
            let out = c.access_block(blk(1 + w * sets), AccessKind::Read, t);
            t = out.complete_at + 10;
        }
        assert_eq!(c.tags.occupancy(), 4);
        // The first block is gone.
        let out = c.access_block(blk(1), AccessKind::Read, t);
        assert!(!out.hit);
        c.check_invariants();
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut c = small_cache(4);
        let sets = c.tags.sets() as u64;
        let mut t = Cycle::ZERO;
        c.access_block(blk(1), AccessKind::Write, t);
        t = Cycle::new(10_000);
        for w in 1..5u64 {
            let out = c.access_block(blk(1 + w * sets), AccessKind::Read, t);
            t = out.complete_at + 10;
        }
        assert_eq!(c.stats().writebacks.get(), 1);
    }

    #[test]
    fn port_serializes_swaps_before_next_access() {
        let mut c = small_cache(2);
        let frames = c.geo.frames_per_dgroup() as u64;
        let mut t = Cycle::ZERO;
        for i in 0..frames {
            let out = c.access_block(blk(i), AccessKind::Read, t);
            t = out.complete_at + 1;
        }
        // This miss triggers a demotion; the next access (back-to-back)
        // must start after the swap completes.
        let miss = c.access_block(blk(frames), AccessKind::Read, t);
        let hit = c.access_block(blk(frames), AccessKind::Read, miss.complete_at);
        let spacing = hit.complete_at - miss.complete_at;
        let pure_hit = c.geo.dgroup_latency_cycles(0);
        assert!(
            spacing > pure_hit,
            "swap must delay the next access: spacing {spacing} vs hit {pure_hit}"
        );
    }

    #[test]
    fn ideal_mode_hits_at_fastest_latency_everywhere() {
        let mut c = small_cache(4);
        c.config.ideal = true;
        let frames = c.geo.frames_per_dgroup() as u64;
        let mut t = Cycle::ZERO;
        for i in 0..(frames * 2) {
            let out = c.access_block(blk(i), AccessKind::Read, t);
            t = out.complete_at + 10;
        }
        // Every hit, wherever the block lives, costs group-0 latency.
        let lat0 = c.geo.dgroup_latency_cycles(0);
        for i in 0..(frames * 2) {
            let out = c.access_block(blk(i), AccessKind::Read, t);
            assert!(out.hit);
            assert_eq!(out.complete_at - t, lat0);
            t = out.complete_at + 10;
        }
    }

    #[test]
    fn lru_distance_victim_prefers_cold_blocks() {
        let mut cfg = NuRapidConfig::micro2003(2);
        cfg.capacity = Capacity::from_mib(1);
        cfg.assoc = 4;
        cfg.distance_victim = DistanceVictimPolicy::Lru;
        cfg.promotion = PromotionPolicy::DemotionOnly;
        let mut c = NuRapidCache::new(cfg);
        let frames = c.geo.frames_per_dgroup() as u64;
        let mut t = Cycle::ZERO;
        // Fill group 0; keep touching block 0 so it is MRU.
        for i in 0..frames {
            let out = c.access_block(blk(i), AccessKind::Read, t);
            t = out.complete_at + 10;
            let out = c.access_block(blk(0), AccessKind::Read, t);
            t = out.complete_at + 10;
        }
        // Overflow: the LRU victim demotes; block 0 must stay in group 0.
        let out = c.access_block(blk(frames), AccessKind::Read, t);
        t = out.complete_at + 10;
        let b0 = c.stats().group_hits.count(0);
        let out = c.access_block(blk(0), AccessKind::Read, t);
        assert!(out.hit);
        assert_eq!(c.stats().group_hits.count(0), b0 + 1);
        c.check_invariants();
    }

    #[test]
    fn restricted_cache_respects_regions_under_load() {
        let mut cfg = NuRapidConfig::micro2003(4)
            .with_frames_per_region(256);
        cfg.capacity = Capacity::from_mib(1);
        cfg.assoc = 4;
        let mut c = NuRapidCache::new(cfg);
        c.prefill();
        c.check_invariants();
        let mut t = Cycle::ZERO;
        for i in 0..20_000u64 {
            let out = c.access_block(blk((i * 37) % 6_000), AccessKind::Read, t);
            t = out.complete_at + 5;
        }
        c.check_invariants();
        assert!(c.stats().accesses.get() == 20_000);
    }

    #[test]
    fn restriction_does_not_change_miss_rate() {
        // The tag array is untouched by the restriction, so misses are
        // identical; only the d-group hit distribution may shift.
        let run = |fpr: Option<u32>| {
            let mut cfg = NuRapidConfig::micro2003(4);
            cfg.capacity = Capacity::from_mib(1);
            cfg.assoc = 4;
            cfg.frames_per_region = fpr;
            let mut c = NuRapidCache::new(cfg);
            c.prefill();
            let mut t = Cycle::ZERO;
            for i in 0..30_000u64 {
                let out = c.access_block(blk((i * 13) % 12_000), AccessKind::Read, t);
                t = out.complete_at + 5;
            }
            c.stats().misses.get()
        };
        assert_eq!(run(None), run(Some(128)));
    }

    #[test]
    #[should_panic(expected = "evenly divide")]
    fn restriction_must_divide_dgroup() {
        let mut cfg = NuRapidConfig::micro2003(4).with_frames_per_region(3_000);
        cfg.capacity = Capacity::from_mib(1);
        cfg.assoc = 4;
        let _ = NuRapidCache::new(cfg);
    }

    #[test]
    fn warm_access_matches_timed_architectural_state() {
        // Same access sequence through the timed and warm paths: the
        // resulting architectural state must be identical, including the
        // RNG stream position behind random distance replacement.
        for policy in [
            DistanceVictimPolicy::Random,
            DistanceVictimPolicy::Lru,
            DistanceVictimPolicy::ClockApprox,
        ] {
            let mk = || {
                let mut c = small_cache(4);
                c.config.distance_victim = policy;
                let mut c = NuRapidCache::new(c.config.clone());
                c.prefill();
                c
            };
            let mut timed = mk();
            let mut warm = mk();
            let mut t = Cycle::ZERO;
            let sets = timed.tags.sets() as u64;
            for i in 0..30_000u64 {
                let b = blk((i * 37) % 12_000 + (i % 7) * sets);
                let k = if i % 5 == 0 { AccessKind::Write } else { AccessKind::Read };
                let out = timed.access_block(b, k, t);
                t = out.complete_at + 3;
                warm.warm_access_block(b, k);
            }
            warm.check_invariants();
            timed.check_invariants();
            // Replay a probe sequence on both: identical hit groups prove
            // identical placement, and identical victims prove the RNG
            // streams stayed in lockstep.
            warm.reset_stats();
            timed.reset_stats();
            let mut t2 = Cycle::ZERO;
            for i in 0..5_000u64 {
                let b = blk((i * 13) % 14_000);
                let a = timed.access_block(b, AccessKind::Read, t2);
                t2 = a.complete_at + 3;
                warm.warm_access_block(b, AccessKind::Read);
                assert_eq!(
                    timed.tags.probe(b).map(|(_, p)| p),
                    warm.tags.probe(b).map(|(_, p)| p),
                    "{policy:?}: block {b} placement diverged at step {i}"
                );
            }
        }
    }

    #[test]
    fn state_roundtrips_through_snapshot() {
        use simbase::snapshot::{Decoder, Encoder};
        let mut c = small_cache(4);
        c.prefill();
        let mut t = Cycle::ZERO;
        for i in 0..20_000u64 {
            let out = c.access_block(blk((i * 37) % 9_000), AccessKind::Read, t);
            t = out.complete_at + 5;
        }
        let mut e = Encoder::new();
        c.save_state(&mut e);
        let bytes = e.into_bytes();
        let mut fresh = small_cache(4);
        let mut d = Decoder::new(&bytes);
        fresh.load_state(&mut d).unwrap();
        d.finish().unwrap();
        fresh.check_invariants();
        // The twin must now behave identically: same hits, same placements,
        // same victim draws.
        let mut t2 = Cycle::new(1_000_000);
        for i in 0..10_000u64 {
            let b = blk((i * 13) % 11_000);
            let orig = c.access_block(b, AccessKind::Read, t2);
            let twin = fresh.access_block(b, AccessKind::Read, t2);
            assert_eq!(orig.hit, twin.hit, "block {b} at step {i}");
            t2 = orig.complete_at + 5;
        }
        fresh.check_invariants();
    }

    #[test]
    fn lower_cache_interface_reports_counts() {
        let mut c = NuRapidCache::new(NuRapidConfig::micro2003(4));
        let _ = LowerCache::access(&mut c, blk(1), AccessKind::Read, Cycle::ZERO);
        let _ = LowerCache::access(&mut c, blk(1), AccessKind::Read, Cycle::new(1000));
        assert_eq!(c.accesses(), 2);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.block_bytes(), 128);
        assert_eq!(c.miss_ratio(), 0.5);
    }
}
