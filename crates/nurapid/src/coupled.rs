//! The set-associative-placement ablation (paper Figure 4).
//!
//! Section 5.2.1 compares decoupled distance-associative placement against
//! a non-uniform cache whose data placement is *coupled* to tag placement:
//! each way of a set maps to a fixed d-group (an 8-way cache over 4
//! d-groups has exactly 2 ways of every set in each d-group). To isolate
//! the placement effect, this cache uses the same initial-placement
//! (fastest first), demotion, and next-fastest promotion machinery as
//! NuRAPID — but every movement is confined to the blocks of one set, as
//! in D-NUCA's bubble replacement with fastest-first initial placement.

use crate::port::PortSchedule;
use crate::stats::NuRapidStats;
use cachemodel::catalog::{NuRapidGeometry, BLOCK_BYTES};
use memsys::lower::{LowerCache, LowerOutcome};
use memsys::memory::MainMemory;
use simbase::snapshot::{Decoder, Encoder, SnapshotError};
use simbase::{AccessKind, BlockAddr, Capacity, Cycle};
use simtel::TelemetrySink;

#[derive(Debug, Clone, Copy)]
struct Slot {
    block: BlockAddr,
    dirty: bool,
    valid: bool,
    /// Recency stamp for set-wide LRU data replacement.
    last_use: u64,
}

const EMPTY: Slot = Slot {
    block: BlockAddr::from_index(u64::MAX),
    dirty: false,
    valid: false,
    last_use: 0,
};

/// A non-uniform cache with set-associative (coupled) placement.
///
/// Slot `s` of every set lives in d-group `s / (assoc / n_dgroups)`;
/// moving a block between d-groups means moving it between slots of its
/// own set.
#[derive(Debug)]
pub struct CoupledCache {
    slots: Vec<Slot>, // sets * assoc
    sets: usize,
    assoc: u32,
    ways_per_group: u32,
    geo: NuRapidGeometry,
    memory: MainMemory,
    stats: NuRapidStats,
    port: PortSchedule,
    use_clock: u64,
    sink: TelemetrySink,
}

impl CoupledCache {
    /// Builds the Figure 4 comparison cache: same geometry as the
    /// corresponding NuRAPID (8 MB, 8-way, `n_dgroups` d-groups at the
    /// paper's configuration).
    ///
    /// # Panics
    ///
    /// Panics if `n_dgroups` does not divide the associativity.
    pub fn micro2003(n_dgroups: usize) -> Self {
        Self::new(Capacity::from_mib(8), 8, n_dgroups)
    }

    /// Builds a coupled-placement cache with explicit parameters.
    pub fn new(capacity: Capacity, assoc: u32, n_dgroups: usize) -> Self {
        assert!(
            n_dgroups > 0 && (assoc as usize).is_multiple_of(n_dgroups),
            "{n_dgroups} d-groups must divide {assoc} ways"
        );
        let geo = NuRapidGeometry::new(
            cachemodel::Tech::micro2003_70nm(),
            capacity,
            assoc,
            n_dgroups,
        );
        let blocks = capacity.bytes() / BLOCK_BYTES;
        let sets = (blocks / assoc as u64) as usize;
        CoupledCache {
            slots: vec![EMPTY; sets * assoc as usize],
            sets,
            assoc,
            ways_per_group: assoc / n_dgroups as u32,
            geo,
            memory: MainMemory::micro2003(),
            stats: NuRapidStats::new(n_dgroups),
            port: PortSchedule::new(),
            use_clock: 0,
            sink: TelemetrySink::disabled(),
        }
    }

    /// Attaches a telemetry sink, forwarded to the memory channel.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.memory.set_telemetry(sink.clone());
        self.sink = sink;
    }

    /// Accumulated statistics (same shape as NuRAPID's for Figure 4).
    pub fn stats(&self) -> &NuRapidStats {
        &self.stats
    }

    /// Zeroes the statistics (cache contents are kept); see
    /// [`crate::cache::NuRapidCache::reset_stats`]. The memory model's
    /// counters — including an attached L4's — reset with them.
    pub fn reset_stats(&mut self) {
        let n = self.stats.n_dgroups();
        self.stats = NuRapidStats::new(n);
        self.memory.reset_counters();
    }

    /// The physical geometry.
    pub fn geometry(&self) -> &NuRapidGeometry {
        &self.geo
    }

    /// Fills every slot with placeholder blocks (steady-state occupancy);
    /// see [`crate::cache::NuRapidCache::prefill`].
    ///
    /// # Panics
    ///
    /// Panics if the cache is not empty.
    pub fn prefill(&mut self) {
        let sets = self.sets as u64;
        // Reserved region, rounded to a multiple of the set count so each
        // placeholder lands in its intended set.
        let base = (u64::MAX / 256) / sets * sets;
        for set in 0..self.sets {
            for w in 0..self.assoc {
                let block = BlockAddr::from_index(base + set as u64 + w as u64 * sets);
                let slot = self.slot_mut(set, w);
                assert!(!slot.valid, "prefill on a non-empty cache");
                *slot = Slot {
                    block,
                    dirty: false,
                    valid: true,
                    last_use: 0,
                };
            }
        }
    }

    /// d-group of slot index `s` within a set.
    fn group_of_slot(&self, s: u32) -> usize {
        (s / self.ways_per_group) as usize
    }

    fn set_of(&self, block: BlockAddr) -> usize {
        (block.index() % self.sets as u64) as usize
    }

    fn slot(&self, set: usize, s: u32) -> &Slot {
        &self.slots[set * self.assoc as usize + s as usize]
    }

    fn slot_mut(&mut self, set: usize, s: u32) -> &mut Slot {
        &mut self.slots[set * self.assoc as usize + s as usize]
    }

    /// LRU-valid slot among the slots of `group` in `set`, if any valid.
    fn group_lru_slot(&self, set: usize, group: usize) -> Option<u32> {
        let lo = group as u32 * self.ways_per_group;
        (lo..lo + self.ways_per_group)
            .filter(|&s| self.slot(set, s).valid)
            .min_by_key(|&s| self.slot(set, s).last_use)
    }

    /// Free slot in `group` of `set`, if any.
    fn group_free_slot(&self, set: usize, group: usize) -> Option<u32> {
        let lo = group as u32 * self.ways_per_group;
        (lo..lo + self.ways_per_group).find(|&s| !self.slot(set, s).valid)
    }

    /// Swap/move accounting between two groups.
    fn count_move(&mut self, from: usize, to: usize) -> u64 {
        self.stats.group_reads.record(from);
        self.stats.group_writes.record(to);
        self.stats.tag_writes.inc();
        2 * self.geo.array_occupancy_cycles()
    }

    /// Places the contents of slot-held block `incoming` into `group`,
    /// demoting group by group within the set until a free slot absorbs
    /// the chain. Returns (slot chosen for incoming, swap cycles).
    fn place_in_group(&mut self, set: usize, group: usize, incoming: Slot) -> u64 {
        let mut carry = incoming;
        let mut g = group;
        let mut cycles = 0;
        loop {
            assert!(g < self.stats.n_dgroups(), "demotion ran off the set");
            if let Some(s) = self.group_free_slot(set, g) {
                *self.slot_mut(set, s) = carry;
                self.stats.group_writes.record(g);
                cycles += self.geo.array_occupancy_cycles();
                return cycles;
            }
            let victim_slot = self
                .group_lru_slot(set, g)
                .expect("full group has valid slots");
            let victim = *self.slot(set, victim_slot);
            *self.slot_mut(set, victim_slot) = carry;
            cycles += self.count_move(g, g); // read victim + write carry in g
            carry = victim;
            self.stats.demotions.inc();
            g += 1;
        }
    }

    /// Next-fastest promotion, confined to this set: swap the block in
    /// slot `s` (group `g > 0`) with the LRU block of the adjacent faster
    /// group. Returns the swap occupancy in cycles.
    fn promote_within_set(&mut self, set: usize, s: u32, g: usize) -> u64 {
        let here = *self.slot(set, s);
        let target = g - 1;
        let mut swap_cycles = 0;
        if let Some(free) = self.group_free_slot(set, target) {
            *self.slot_mut(set, free) = here;
            *self.slot_mut(set, s) = EMPTY;
            swap_cycles += self.count_move(g, target);
        } else {
            let victim_slot = self
                .group_lru_slot(set, target)
                .expect("full group");
            let victim = *self.slot(set, victim_slot);
            *self.slot_mut(set, victim_slot) = here;
            *self.slot_mut(set, s) = victim;
            swap_cycles += self.count_move(g, target);
            swap_cycles += self.count_move(target, g);
            self.stats.demotions.inc();
        }
        self.stats.promotions.inc();
        swap_cycles
    }

    /// Evicts the set-wide LRU block when no slot of `set` is free,
    /// returning the victim so the caller can decide about write-back.
    fn evict_set_lru(&mut self, set: usize) -> Option<Slot> {
        let any_free = (0..self.assoc).any(|s| !self.slot(set, s).valid);
        if any_free {
            return None;
        }
        let victim_slot = (0..self.assoc)
            .min_by_key(|&s| self.slot(set, s).last_use)
            .expect("non-empty set");
        let v = *self.slot(set, victim_slot);
        *self.slot_mut(set, victim_slot) = EMPTY;
        Some(v)
    }

    /// Warm-up access: applies every architectural effect of
    /// [`Self::access_block`] (recency, dirtying, promotion swaps,
    /// eviction, placement with demotions) while skipping port
    /// scheduling, memory timing, and latency math.
    pub fn warm_access_block(&mut self, block: BlockAddr, kind: AccessKind) {
        self.use_clock += 1;
        let set = self.set_of(block);
        let hit_slot = (0..self.assoc)
            .find(|&s| self.slot(set, s).valid && self.slot(set, s).block == block);
        if let Some(s) = hit_slot {
            let clock = self.use_clock;
            {
                let sl = self.slot_mut(set, s);
                sl.last_use = clock;
                if kind.is_write() {
                    sl.dirty = true;
                }
            }
            let g = self.group_of_slot(s);
            if g > 0 {
                let _ = self.promote_within_set(set, s, g);
            }
            return;
        }
        self.memory.warm_fill(block);
        if let Some(v) = self.evict_set_lru(set) {
            if v.dirty {
                self.memory.warm_writeback(v.block);
            }
        }
        let incoming = Slot {
            block,
            dirty: kind.is_write(),
            valid: true,
            last_use: self.use_clock,
        };
        let _ = self.place_in_group(set, 0, incoming);
    }

    /// Clears all timing residue (port schedule, memory channel) without
    /// touching cache contents; the drain barrier at the stats boundary.
    pub fn drain_timing(&mut self) {
        self.port = PortSchedule::new();
        self.memory.drain_timing();
    }

    /// Serialises the architectural state (slots and the recency clock).
    pub fn save_state(&self, e: &mut Encoder) {
        e.put_u64(self.use_clock);
        e.put_len(self.slots.len());
        for s in &self.slots {
            e.put_u64(s.block.index());
            e.put_u8(s.valid as u8 | (s.dirty as u8) << 1);
            e.put_u64(s.last_use);
        }
        self.memory.save_l4_state(e);
    }

    /// Restores state written by [`Self::save_state`] into a cache of the
    /// same geometry.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Malformed`] on a geometry mismatch or a
    /// truncated payload.
    pub fn load_state(&mut self, d: &mut Decoder) -> Result<(), SnapshotError> {
        self.use_clock = d.u64()?;
        if d.len()? != self.slots.len() {
            return Err(SnapshotError::Malformed("coupled slot count mismatch"));
        }
        for s in self.slots.iter_mut() {
            s.block = BlockAddr::from_index(d.u64()?);
            let packed = d.u8()?;
            s.valid = packed & 1 != 0;
            s.dirty = packed & 2 != 0;
            s.last_use = d.u64()?;
        }
        self.memory.load_l4_state(d)
    }

    /// Demand access; same contract as NuRAPID's.
    pub fn access_block(&mut self, block: BlockAddr, kind: AccessKind, now: Cycle) -> LowerOutcome {
        self.use_clock += 1;
        self.stats.accesses.inc();
        self.stats.tag_probes.inc();
        self.sink.count("coupled.tag_probes", 1);
        let set = self.set_of(block);

        // Probe all ways.
        let hit_slot = (0..self.assoc)
            .find(|&s| self.slot(set, s).valid && self.slot(set, s).block == block);

        if let Some(s) = hit_slot {
            let g = self.group_of_slot(s);
            self.stats.group_hits.record(g);
            self.stats.group_reads.record(g);
            let clock = self.use_clock;
            {
                let sl = self.slot_mut(set, s);
                sl.last_use = clock;
                if kind.is_write() {
                    sl.dirty = true;
                }
            }
            let latency = self.geo.dgroup_latency_cycles(g);
            let mut swap_cycles = 0;
            if g > 0 {
                swap_cycles = self.promote_within_set(set, s, g);
            }
            let start = self
                .port
                .reserve(now, self.geo.array_occupancy_cycles() + swap_cycles);
            return LowerOutcome {
                complete_at: start + latency,
                hit: true,
            };
        }

        // Miss.
        self.stats.misses.inc();
        self.stats.memory_reads.inc();
        let probe_start = self.port.reserve(now, self.geo.tag_latency_cycles());
        let mem_start = probe_start + self.geo.tag_latency_cycles();
        let mem_done = self.memory.fill_block(block, BLOCK_BYTES, mem_start);

        // Data replacement: evict the set-wide LRU block (conventional),
        // freeing its slot.
        if let Some(v) = self.evict_set_lru(set) {
            if v.dirty {
                self.stats.writebacks.inc();
                let _ = self.memory.writeback_block(v.block, BLOCK_BYTES, mem_done);
            }
        }
        // Initial placement in the fastest group, demoting within the set.
        let incoming = Slot {
            block,
            dirty: kind.is_write(),
            valid: true,
            last_use: self.use_clock,
        };
        let fill_cycles = self.place_in_group(set, 0, incoming);
        if fill_cycles > 0 {
            let _ = self.port.reserve(mem_done, fill_cycles);
        }
        LowerOutcome {
            complete_at: mem_done,
            hit: false,
        }
    }
}

impl LowerCache for CoupledCache {
    fn access(&mut self, block: BlockAddr, kind: AccessKind, now: Cycle) -> LowerOutcome {
        self.access_block(block, kind, now)
    }

    fn warm_access(&mut self, block: BlockAddr, kind: AccessKind) {
        self.warm_access_block(block, kind);
    }

    fn accesses(&self) -> u64 {
        self.stats.accesses.get()
    }

    fn misses(&self) -> u64 {
        self.stats.misses.get()
    }

    fn block_bytes(&self) -> u64 {
        BLOCK_BYTES
    }
}

impl memsys::org::Organization for CoupledCache {
    fn prefill(&mut self) {
        CoupledCache::prefill(self);
    }

    fn reset_stats(&mut self) {
        CoupledCache::reset_stats(self);
    }

    fn set_telemetry(&mut self, sink: &TelemetrySink, _snap_every: u64) {
        CoupledCache::set_telemetry(self, sink.clone());
    }

    fn drain_timing(&mut self) {
        CoupledCache::drain_timing(self);
    }

    fn save_state(&self, e: &mut Encoder) {
        CoupledCache::save_state(self, e);
    }

    fn load_state(&mut self, d: &mut Decoder) -> Result<(), SnapshotError> {
        CoupledCache::load_state(self, d)
    }

    fn main_memory(&self) -> Option<&memsys::memory::MainMemory> {
        Some(&self.memory)
    }

    fn main_memory_mut(&mut self) -> Option<&mut memsys::memory::MainMemory> {
        Some(&mut self.memory)
    }

    fn report(&self) -> memsys::org::OrgReport {
        let s = self.stats();
        memsys::org::OrgReport {
            l2_accesses: s.accesses.get(),
            l2_misses: s.misses.get(),
            group_fracs: (0..s.n_dgroups()).map(|g| s.group_access_frac(g)).collect(),
            miss_frac: s.miss_frac(),
            dgroup_accesses: s.total_dgroup_accesses(),
            swaps: s.total_moves(),
            memory_accesses: s.memory_reads.get() + s.writebacks.get(),
            l2_energy: crate::energy::dynamic_energy(s, self.geometry()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{NuRapidCache, NuRapidConfig};

    fn blk(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    fn small() -> CoupledCache {
        CoupledCache::new(Capacity::from_mib(1), 8, 4)
    }

    #[test]
    fn hot_set_cannot_fit_all_ways_in_fastest_group() {
        // The core limitation the paper identifies: with 8 ways over 4
        // d-groups, only 2 ways of a set can be fast. Touch 8 blocks of
        // one set, then re-touch: at most 2 hit in d-group 0.
        let mut c = small();
        let sets = c.sets as u64;
        let mut t = Cycle::ZERO;
        for w in 0..8u64 {
            let out = c.access_block(blk(1 + w * sets), AccessKind::Read, t);
            t = out.complete_at + 100;
        }
        for w in 0..8u64 {
            let out = c.access_block(blk(1 + w * sets), AccessKind::Read, t);
            assert!(out.hit);
            t = out.complete_at + 100;
        }
        let g0 = c.stats().group_hits.count(0);
        assert!(g0 <= 2, "coupled placement allowed {g0} fast hits");
        assert_eq!(c.stats().group_hits.total(), 8);
    }

    #[test]
    fn decoupled_placement_beats_coupled_on_hot_sets() {
        // Figure 4's claim, in miniature.
        let mut coupled = small();
        let mut cfg = NuRapidConfig::micro2003(4);
        cfg.capacity = Capacity::from_mib(1);
        let mut decoupled = NuRapidCache::new(cfg);

        let sets = coupled.sets as u64;
        let mut t = Cycle::ZERO;
        for rep in 0..4u64 {
            for w in 0..8u64 {
                let b = blk(1 + w * sets);
                let o1 = coupled.access_block(b, AccessKind::Read, t);
                let o2 = decoupled.access_block(b, AccessKind::Read, t);
                t = o1.complete_at.max(o2.complete_at) + 100;
                let _ = rep;
            }
        }
        let frac_coupled = coupled.stats().group_access_frac(0);
        let frac_decoupled = decoupled.stats().group_access_frac(0);
        assert!(
            frac_decoupled > frac_coupled,
            "decoupled {frac_decoupled} must beat coupled {frac_coupled}"
        );
    }

    #[test]
    fn miss_rates_match_nurapid() {
        // Both caches use 8-way tags with LRU data replacement, so their
        // miss streams must be identical.
        let mut coupled = small();
        let mut cfg = NuRapidConfig::micro2003(4);
        cfg.capacity = Capacity::from_mib(1);
        let mut decoupled = NuRapidCache::new(cfg);
        let mut t = Cycle::ZERO;
        for i in 0..30_000u64 {
            let b = blk((i * 37) % 16_384);
            let o1 = coupled.access_block(b, AccessKind::Read, t);
            let o2 = decoupled.access_block(b, AccessKind::Read, t);
            assert_eq!(o1.hit, o2.hit, "access {i} diverged");
            t = o1.complete_at.max(o2.complete_at) + 10;
        }
        assert_eq!(coupled.stats().misses.get(), decoupled.stats().misses.get());
    }

    #[test]
    fn cold_miss_then_fast_hit() {
        let mut c = small();
        let out = c.access_block(blk(5), AccessKind::Read, Cycle::ZERO);
        assert!(!out.hit);
        let hit = c.access_block(blk(5), AccessKind::Read, Cycle::new(2_000));
        assert!(hit.hit);
        assert_eq!(
            hit.complete_at - Cycle::new(2_000),
            c.geometry().dgroup_latency_cycles(0)
        );
    }

    #[test]
    fn promotion_happens_within_the_set() {
        let mut c = small();
        let sets = c.sets as u64;
        let mut t = Cycle::ZERO;
        // Fill group 0 of set 1 (2 ways), then one more: a block demotes
        // to group 1.
        for w in 0..3u64 {
            let out = c.access_block(blk(1 + w * sets), AccessKind::Read, t);
            t = out.complete_at + 100;
        }
        assert!(c.stats().demotions.get() >= 1);
        // A hit on the demoted block promotes it back.
        let demoted = blk(1); // first block placed, demoted by the chain
        let before = c.stats().promotions.get();
        let out = c.access_block(demoted, AccessKind::Read, t);
        assert!(out.hit);
        assert!(c.stats().promotions.get() > before);
    }

    #[test]
    fn dirty_evictions_write_back() {
        let mut c = small();
        let sets = c.sets as u64;
        let mut t = Cycle::ZERO;
        c.access_block(blk(1), AccessKind::Write, t);
        t = Cycle::new(50_000);
        for w in 1..9u64 {
            let out = c.access_block(blk(1 + w * sets), AccessKind::Read, t);
            t = out.complete_at + 100;
        }
        assert_eq!(c.stats().writebacks.get(), 1);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn groups_must_divide_ways() {
        let _ = CoupledCache::new(Capacity::from_mib(1), 8, 3);
    }

    fn slots_of(c: &CoupledCache) -> Vec<(u64, bool, bool, u64)> {
        c.slots
            .iter()
            .map(|s| (s.block.index(), s.valid, s.dirty, s.last_use))
            .collect()
    }

    #[test]
    fn warm_access_matches_timed_architectural_state() {
        let mut timed = small();
        let mut warm = small();
        let sets = timed.sets as u64;
        let mut t = Cycle::ZERO;
        for i in 0..30_000u64 {
            // Mix of strided misses, hot-set reuse, and writes.
            let b = match i % 5 {
                0 => blk((i * 37) % 16_384),
                1 => blk(1 + (i % 8) * sets),
                _ => blk((i * 13) % 4_096),
            };
            let kind = if i % 7 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let out = timed.access_block(b, kind, t);
            warm.warm_access_block(b, kind);
            t = out.complete_at + (i % 50);
        }
        assert_eq!(slots_of(&timed), slots_of(&warm));
        // Replay: both must serve the same hit stream from here.
        warm.drain_timing();
        let mut t = Cycle::ZERO;
        for i in 0..5_000u64 {
            let b = blk((i * 29) % 8_192);
            let o1 = timed.access_block(b, AccessKind::Read, t);
            let o2 = warm.access_block(b, AccessKind::Read, t);
            assert_eq!(o1.hit, o2.hit, "replay access {i} diverged");
            t = o1.complete_at + 10;
        }
    }

    #[test]
    fn state_roundtrips_through_snapshot() {
        let mut c = small();
        let sets = c.sets as u64;
        let mut t = Cycle::ZERO;
        for i in 0..20_000u64 {
            let b = blk((i * 37 + i % 3) % 12_288);
            let kind = if i % 4 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let out = c.access_block(b, kind, t);
            t = out.complete_at + 5;
        }
        let mut e = simbase::snapshot::Encoder::new();
        c.save_state(&mut e);
        let bytes = e.into_bytes();

        let mut restored = small();
        let mut d = simbase::snapshot::Decoder::new(&bytes);
        restored.load_state(&mut d).expect("load");
        d.finish().expect("no trailing bytes");
        assert_eq!(slots_of(&c), slots_of(&restored));
        assert_eq!(c.use_clock, restored.use_clock);

        // Twin replay from the restored state.
        c.drain_timing();
        let mut t = Cycle::ZERO;
        for i in 0..10_000u64 {
            let b = blk(1 + (i * 53) % 9_000 + (i % 4) * sets);
            let o1 = c.access_block(b, AccessKind::Read, t);
            let o2 = restored.access_block(b, AccessKind::Read, t);
            assert_eq!(o1.hit, o2.hit, "replay access {i} diverged");
            t = o1.complete_at + 10;
        }
    }

    #[test]
    fn load_rejects_wrong_geometry() {
        let c = small();
        let mut e = simbase::snapshot::Encoder::new();
        c.save_state(&mut e);
        let bytes = e.into_bytes();
        let mut smaller = CoupledCache::new(Capacity::from_mib(2), 8, 4);
        let mut d = simbase::snapshot::Decoder::new(&bytes);
        assert!(smaller.load_state(&mut d).is_err());
        // Same slot layout restores cleanly even across d-group splits.
        let mut other = CoupledCache::new(Capacity::from_mib(1), 8, 2);
        let mut d = simbase::snapshot::Decoder::new(&bytes);
        other.load_state(&mut d).expect("same slot layout");
    }
}
