//! `repro` — regenerates every table and figure of the paper's evaluation,
//! scheduling full-system runs on the simsched worker pool.
//!
//! ```text
//! repro [--exp <id>] [--quick | --huge] [--tsv] [--cores N] [--l4]
//!       [--sample [--intervals K]] [--threads N]
//!       [--artifacts DIR] [--checkpoints DIR [--simchk-prune BYTES]]
//!       [--telemetry DIR] [--quiet]
//!       [--serve ADDR [--port-file FILE]]
//!       [--connect ADDR [--watch | --drain | --shutdown]]
//!
//!   --exp       table2 | table3 | table4 | fig4 | fig5 | fig6 | lru |
//!               fig7 | fig8 | fig9 | fig10 | fig11 | restrict | orgs |
//!               cmp | dram | sampling | all (default: all; `dram` — the
//!               L4 resize-transient study — and `sampling` — the
//!               sampled-vs-full error/speedup study — are opt-in only,
//!               never part of `all`)
//!   --quick     run at the reduced test scale instead of the full
//!               reproduction scale
//!   --huge      run at the billion-instruction scale (local only;
//!               pair it with --sample unless you have hours to spare)
//!   --sample    estimate every run from periodic detailed windows with
//!               functional fast-forward between them (SMARTS-style)
//!               instead of simulating every instruction in detail;
//!               reports carry the same tables over estimated runs
//!   --intervals with --sample: split each sampled run into K (1-64)
//!               checkpoint-seeded intervals executed in parallel on the
//!               worker pool; output is bit-identical for any K
//!   --simchk-prune with --checkpoints: evict least-recently-used
//!               .simchk files beyond BYTES after each publish (also
//!               $SIMCHK_MAX; default: keep everything)
//!   --cores     restrict the `cmp` experiment to one core count (1-8;
//!               default: sweep 2, 4, and 8); other experiments are
//!               unaffected
//!   --l4        interpose the L4 DRAM-cache tier between every
//!               organization and DRAM; without it the report is
//!               byte-identical to builds that predate the tier
//!   --tsv       machine-readable output for the figure experiments
//!   --threads   worker threads for the run sweep (default:
//!               $SIMSCHED_THREADS, else the machine's parallelism;
//!               output is bit-identical for any value)
//!   --artifacts write every completed run to DIR/runs.jsonl and resume
//!               from digest-matching records (default: $SIMSCHED_DIR,
//!               else disabled)
//!   --checkpoints reuse/publish warm-up checkpoints in DIR (default:
//!               $SIMCHK_DIR, else disabled); results are bit-identical
//!               with a cold, warm, or absent store — only wall time
//!               changes
//!   --telemetry write metrics.json / trace.json / wall.json to DIR
//!               (default: $SIMTEL_DIR, else disabled); trace.json loads
//!               in chrome://tracing / Perfetto
//!   --quiet     suppress stderr progress lines (also $SIMTEL_QUIET);
//!               with --telemetry, the lines still land on the wall
//!               channel
//!   --serve     run as the resident simserve daemon on ADDR (host:port;
//!               port 0 picks a free port) instead of sweeping once;
//!               serves both scales, exits 0 on a client drain/shutdown
//!   --port-file with --serve: write the bound address to FILE once
//!               listening (for scripts using port 0)
//!   --connect   send this invocation's sweep to a daemon at ADDR and
//!               print the (byte-identical) report; --exp/--quick/--tsv
//!               select the request exactly as in local mode
//!   --watch     with --connect: stream the daemon's progress events to
//!               stderr while the sweep computes
//!   --drain     with --connect: ask the daemon to drain and exit
//!               (finishes in-flight work) instead of sweeping
//!   --shutdown  with --connect: like --drain, but abandons queued
//!               async submissions
//! ```
//!
//! Tables are always rendered in the same serial order; the thread count
//! only affects how fast the run store warms up. Progress events go to
//! stderr, tables to stdout. The telemetry artifacts' deterministic
//! channels (`metrics.json`, `trace.json`) are byte-identical for any
//! `--threads` value; only `wall.json` varies.

use experiments::exps::Sweep;
use experiments::repro::{prewarm_keys, render_experiment, render_experiment_tsv, EXPERIMENTS};
use experiments::{Scale, WarmupMode};
use simsched::progress::{console_observer, Counts};
use simtel::{Console, Telemetry};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exp = "all".to_string();
    let mut quick = false;
    let mut huge = false;
    let mut tsv = false;
    let mut cores: Option<u32> = None;
    let mut l4 = false;
    let mut sample = false;
    let mut intervals: u64 = 1;
    let mut quiet = false;
    let mut threads = default_threads();
    let mut artifacts = std::env::var("SIMSCHED_DIR").ok();
    let mut checkpoints = std::env::var("SIMCHK_DIR").ok();
    let mut simchk_budget: Option<u64> =
        std::env::var("SIMCHK_MAX").ok().and_then(|v| v.parse().ok());
    let mut telemetry_dir = std::env::var("SIMTEL_DIR").ok();
    let mut serve: Option<String> = None;
    let mut port_file: Option<String> = None;
    let mut connect: Option<String> = None;
    let mut watch = false;
    let mut drain = false;
    let mut shutdown = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" => {
                i += 1;
                exp = args.get(i).cloned().unwrap_or_else(|| usage("missing experiment id"));
            }
            "--quick" => quick = true,
            "--huge" => huge = true,
            "--sample" => sample = true,
            "--intervals" => {
                i += 1;
                let n: u64 = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("missing or bad --intervals value"));
                if !(1..=64).contains(&n) {
                    usage("--intervals must be between 1 and 64");
                }
                intervals = n;
            }
            "--simchk-prune" => {
                i += 1;
                let n: u64 = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("missing or bad --simchk-prune byte budget"));
                simchk_budget = Some(n);
            }
            "--tsv" => tsv = true,
            "--cores" => {
                i += 1;
                let n: u32 = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("missing or bad --cores value"));
                if !(1..=8).contains(&n) {
                    usage("--cores must be between 1 and 8");
                }
                cores = Some(n);
            }
            "--l4" => l4 = true,
            "--quiet" => quiet = true,
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("missing or bad --threads value"));
            }
            "--artifacts" => {
                i += 1;
                artifacts =
                    Some(args.get(i).cloned().unwrap_or_else(|| usage("missing artifact dir")));
            }
            "--checkpoints" => {
                i += 1;
                checkpoints =
                    Some(args.get(i).cloned().unwrap_or_else(|| usage("missing checkpoint dir")));
            }
            "--telemetry" => {
                i += 1;
                telemetry_dir =
                    Some(args.get(i).cloned().unwrap_or_else(|| usage("missing telemetry dir")));
            }
            "--serve" => {
                i += 1;
                serve =
                    Some(args.get(i).cloned().unwrap_or_else(|| usage("missing --serve address")));
            }
            "--port-file" => {
                i += 1;
                port_file = Some(
                    args.get(i).cloned().unwrap_or_else(|| usage("missing --port-file path")),
                );
            }
            "--connect" => {
                i += 1;
                connect = Some(
                    args.get(i).cloned().unwrap_or_else(|| usage("missing --connect address")),
                );
            }
            "--watch" => watch = true,
            "--drain" => drain = true,
            "--shutdown" => shutdown = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    if quick && huge {
        usage("--quick and --huge are mutually exclusive");
    }
    let scale = if quick {
        Scale::quick()
    } else if huge {
        Scale::huge()
    } else {
        Scale::full()
    };

    if serve.is_some() && connect.is_some() {
        usage("--serve and --connect are mutually exclusive");
    }
    if let Some(addr) = serve {
        serve_main(
            &addr,
            port_file.as_deref(),
            threads,
            quiet,
            artifacts,
            checkpoints,
            simchk_budget,
            telemetry_dir,
        );
        return;
    }
    if let Some(addr) = connect {
        if huge {
            usage("--huge is local-only; the daemon serves quick and full");
        }
        connect_main(
            &addr, &exp, quick, tsv, cores, l4, sample, intervals, watch, drain, shutdown, quiet,
        );
        return;
    }
    let cores_list: Vec<u32> = match cores {
        Some(n) => vec![n],
        None => experiments::cmp::CMP_CORES.to_vec(),
    };

    let t0 = Instant::now();
    let telemetry = telemetry_dir.as_ref().map(|_| Arc::new(Telemetry::from_env()));
    let mut console = Console::from_env(quiet);
    if let Some(tel) = &telemetry {
        console = console.with_mirror(Arc::clone(tel));
    }
    let counts = Counts::new();
    // $SIMCHK_WARMUP=timed re-enables the full-timing warm-up (the
    // differential oracle for the default functional fast-forward; the
    // report is bit-identical either way, only slower).
    let warmup = match std::env::var("SIMCHK_WARMUP").as_deref() {
        Ok("timed") => WarmupMode::Timed,
        _ => WarmupMode::FastForward,
    };
    let mut sweep = Sweep::new(scale)
        .with_threads(threads)
        .with_warmup(warmup)
        .with_l4(l4.then(experiments::L4Config::tdram))
        .with_sample(sample.then(|| experiments::SampleSpec::for_scale(scale)))
        .with_intervals(intervals)
        .with_observer(console_observer(console.clone(), Arc::clone(&counts), telemetry.clone()));
    if let Some(tel) = &telemetry {
        sweep = sweep.with_telemetry(Arc::clone(tel));
    }
    if let Some(dir) = &artifacts {
        sweep = match sweep.with_artifacts(dir) {
            Ok(s) => {
                console.status(&format!("[simsched] artifacts: {dir}/runs.jsonl"));
                s
            }
            Err(e) => usage(&format!("cannot open artifact dir {dir:?}: {e}")),
        };
    }
    if let Some(dir) = &checkpoints {
        sweep = match experiments::checkpoint::CheckpointStore::open(dir) {
            Ok(store) => {
                sweep.with_checkpoint_store(Arc::new(store.with_budget(simchk_budget)))
            }
            Err(e) => usage(&format!("cannot open checkpoint dir {dir:?}: {e}")),
        };
    }

    let ids: Vec<&str> = if exp == "all" {
        EXPERIMENTS.iter().map(|&(id, _)| id).collect()
    } else {
        vec![exp.as_str()]
    };

    // Warm the run store in parallel before rendering anything: the
    // union of every selected experiment's configurations, in a stable
    // order, farmed out to the worker pool.
    let keys = prewarm_keys(&ids);
    if !keys.is_empty() {
        console.status(&format!(
            "[simsched] {} jobs ({} apps x {} configs) on {} thread{}",
            sweep.apps().len() * keys.len(),
            sweep.apps().len(),
            keys.len(),
            threads,
            if threads == 1 { "" } else { "s" }
        ));
        sweep.prefetch_all(&keys);
    }

    for id in ids {
        run_one(id, &sweep, tsv, &cores_list);
    }
    console.status(&format!(
        "[repro] {} runs ({} simulated, {} resumed, {} shared hits), {} threads, {:.1}s",
        sweep.runs(),
        sweep.simulated(),
        sweep.resumed(),
        counts.shared.load(Ordering::Relaxed),
        sweep.threads(),
        t0.elapsed().as_secs_f64()
    ));
    if let Some(store) = sweep.checkpoints() {
        console.status(&format!(
            "[simchk] {} hits, {} misses, {} pruned -> {}",
            store.hits(),
            store.misses(),
            store.pruned(),
            store.dir().display()
        ));
    }
    if let (Some(dir), Some(tel)) = (&telemetry_dir, &telemetry) {
        match tel.write_all(dir) {
            Ok(()) => console.status(&format!(
                "[simtel] {} runs, {} wall events -> {dir}/{{metrics,trace,wall}}.json",
                tel.runs(),
                tel.wall_events()
            )),
            Err(e) => {
                eprintln!("error: cannot write telemetry to {dir:?}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Default worker-thread count: `$SIMSCHED_THREADS`, else the machine's
/// available parallelism.
fn default_threads() -> usize {
    std::env::var("SIMSCHED_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
        })
}

fn run_one(id: &str, sweep: &Sweep, tsv: bool, cores: &[u32]) {
    if id == "cmp" {
        let table = experiments::cmp::cmp_table(sweep, cores);
        println!("{}", if tsv { table.render_tsv() } else { table.render() });
        return;
    }
    if tsv {
        // Machine-readable output for the distribution and performance
        // figures; other experiments fall through to text.
        if let Some(out) = render_experiment_tsv(id, sweep) {
            println!("{out}");
            return;
        }
    }
    match render_experiment(id, sweep) {
        Some(out) => println!("{out}"),
        None => usage(&format!("unknown experiment {id:?}")),
    }
}

/// `--serve`: run as the resident daemon until a client drains it.
#[allow(clippy::too_many_arguments)]
fn serve_main(
    addr: &str,
    port_file: Option<&str>,
    threads: usize,
    quiet: bool,
    artifacts: Option<String>,
    checkpoints: Option<String>,
    simchk_budget: Option<u64>,
    telemetry_dir: Option<String>,
) {
    let cfg = simserve::ServeConfig {
        threads,
        quiet,
        artifacts: artifacts.map(Into::into),
        checkpoints: checkpoints.map(Into::into),
        simchk_budget,
        telemetry: telemetry_dir.map(Into::into),
        ..simserve::ServeConfig::default()
    };
    let service = match simserve::Service::new(cfg) {
        Ok(s) => s,
        Err(e) => usage(&format!("cannot start service: {e}")),
    };
    let server = match simserve::Server::bind(service, addr) {
        Ok(s) => s,
        Err(e) => usage(&format!("cannot bind {addr:?}: {e}")),
    };
    let bound = server.local_addr().expect("bound socket has an address");
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(path, format!("{bound}\n")) {
            usage(&format!("cannot write port file {path:?}: {e}"));
        }
    }
    if let Err(e) = server.run() {
        eprintln!("error: server failed: {e}");
        std::process::exit(1);
    }
}

/// `--connect`: one client call against a resident daemon.
#[allow(clippy::too_many_arguments)]
fn connect_main(
    addr: &str,
    exp: &str,
    quick: bool,
    tsv: bool,
    cores: Option<u32>,
    l4: bool,
    sample: bool,
    intervals: u64,
    watch: bool,
    drain: bool,
    shutdown: bool,
    quiet: bool,
) {
    let console = Console::from_env(quiet);
    let mut client = match simserve::Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    let outcome = if drain {
        client.drain().map(|()| None)
    } else if shutdown {
        client.shutdown().map(|()| None)
    } else {
        let req = simserve::SweepReq {
            exp: exp.to_string(),
            scale: if quick { simserve::ScaleName::Quick } else { simserve::ScaleName::Full },
            tsv,
            cores: cores.map_or(0, u64::from),
            watch,
            l4,
            sample,
            intervals,
        };
        client
            .sweep_watch(&req, |e| {
                let label = e.field("label").and_then(simbase::json::Json::as_str).unwrap_or("?");
                let kind = e.field("kind").and_then(simbase::json::Json::as_str).unwrap_or("?");
                console.status(&format!("[simserve] {kind} {label}"));
            })
            .map(Some)
    };
    match outcome {
        // `print!`, not `println!`: the report already carries the
        // trailing newline of every experiment, so stdout stays
        // byte-identical to local mode.
        Ok(Some(out)) => {
            print!("{}", out.report);
            console.status(&format!(
                "[simserve] report {} ({}) from {addr}",
                out.digest,
                if out.fresh { "computed" } else { "coalesced" }
            ));
        }
        Ok(None) => console.status(&format!(
            "[simserve] {} acknowledged by {addr}",
            if drain { "drain" } else { "shutdown" }
        )),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: repro [--exp table2|table3|table4|fig4|fig5|fig6|lru|fig7|fig8|fig9|fig10|fig11|restrict|orgs|cmp|dram|sampling|all] \
         [--quick|--huge] [--tsv] [--cores N] [--l4] [--sample [--intervals K]] [--threads N] [--artifacts DIR] \
         [--checkpoints DIR [--simchk-prune BYTES]] [--telemetry DIR] [--quiet] \
         [--serve ADDR [--port-file FILE]] [--connect ADDR [--watch|--drain|--shutdown]]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
