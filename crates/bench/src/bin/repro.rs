//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--exp <id>] [--quick]
//!
//!   --exp    table2 | table3 | table4 | fig4 | fig5 | fig6 | lru |
//!            fig7 | fig8 | fig9 | fig10 | fig11 | all   (default: all)
//!   --quick  run at the reduced test scale instead of the full
//!            reproduction scale
//! ```

use experiments::exps::{self, Sweep};
use experiments::Scale;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exp = "all".to_string();
    let mut scale = Scale::full();
    let mut tsv = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" => {
                i += 1;
                exp = args.get(i).cloned().unwrap_or_else(|| usage("missing experiment id"));
            }
            "--quick" => scale = Scale::quick(),
            "--tsv" => tsv = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }

    let t0 = Instant::now();
    let mut sweep = Sweep::new(scale);
    let ids: Vec<&str> = if exp == "all" {
        vec![
            "table2", "table4", "table3", "fig4", "fig5", "fig6", "lru", "fig7", "fig8", "fig9",
            "fig10", "fig11", "restrict",
        ]
    } else {
        vec![exp.as_str()]
    };
    for id in ids {
        run_one(id, &mut sweep, tsv);
    }
    eprintln!(
        "[repro] {} full-system runs, {:.1}s",
        sweep.runs(),
        t0.elapsed().as_secs_f64()
    );
}

fn run_one(id: &str, sweep: &mut Sweep, tsv: bool) {
    if tsv {
        // Machine-readable output for the distribution and performance
        // figures; other experiments fall through to text.
        let out = match id {
            "fig4" => Some(exps::fig4(sweep).render_tsv()),
            "fig5" => Some(exps::fig5(sweep).render_tsv()),
            "fig7" => Some(exps::fig7(sweep).render_tsv()),
            "fig6" => Some(exps::fig6(sweep).render_tsv()),
            "fig8" => Some(exps::fig8(sweep).render_tsv()),
            "fig9" => Some(exps::fig9(sweep).render_tsv()),
            _ => None,
        };
        if let Some(out) = out {
            println!("{out}");
            return;
        }
    }
    let out = match id {
        "table2" => format!("Table 2: cache energies (nJ)\n{}", exps::table2().render()),
        "table3" => format!(
            "Table 3: applications and base-case characterization\n{}",
            exps::table3(sweep).render()
        ),
        "table4" => format!("Table 4: cache latencies (cycles)\n{}", exps::table4().render()),
        "fig4" => exps::fig4(sweep).render(),
        "fig5" => exps::fig5(sweep).render(),
        "fig6" => exps::fig6(sweep).render(),
        "lru" => exps::sec531(sweep).render(),
        "fig7" => exps::fig7(sweep).render(),
        "fig8" => exps::fig8(sweep).render(),
        "fig9" => exps::fig9(sweep).render(),
        "fig10" => exps::fig10(sweep).render(),
        "fig11" => exps::fig11(sweep).render(),
        "restrict" => exps::restriction_ablation(sweep).render(),
        other => usage(&format!("unknown experiment {other:?}")),
    };
    println!("{out}");
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: repro [--exp table2|table3|table4|fig4|fig5|fig6|lru|fig7|fig8|fig9|fig10|fig11|restrict|all] [--quick] [--tsv]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
