//! `benchguard` — fails CI when a benchmark's `mean_ns` regresses past a
//! threshold against a committed baseline.
//!
//! ```text
//! benchguard <baseline.json> <current.json> [--max-regress PCT]
//! ```
//!
//! Both files are simkit bench JSON-lines (`{"name":...,"mean_ns":...}`
//! per line, as written under `SIMKIT_BENCH_DIR`). Every benchmark named
//! in the baseline must appear in the current file; if the current file
//! holds several lines for one name (the harness appends across runs),
//! the *last* line wins. A benchmark regresses when
//!
//! ```text
//! current.mean_ns > baseline.mean_ns * (1 + PCT/100)
//! ```
//!
//! with PCT defaulting to 25. Improvements and new benchmarks never fail;
//! a missing or unparsable entry always does. Exit status: 0 clean,
//! 1 regression, 2 usage/IO error.

use simbase::json;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Parses a bench JSON-lines file into `name -> mean_ns`, last line per
/// name winning.
fn load(path: &str) -> Result<BTreeMap<String, u64>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let mut out = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = json::parse(line)
            .map_err(|e| format!("{path}:{}: bad JSON: {e}", lineno + 1))?;
        let name = v
            .field("name")
            .and_then(json::Json::as_str)
            .ok_or_else(|| format!("{path}:{}: missing \"name\"", lineno + 1))?;
        let mean = v
            .field("mean_ns")
            .and_then(json::Json::as_u64)
            .ok_or_else(|| format!("{path}:{}: missing \"mean_ns\"", lineno + 1))?;
        out.insert(name.to_string(), mean);
    }
    if out.is_empty() {
        return Err(format!("{path}: no benchmark lines"));
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut max_regress = 25.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-regress" => {
                i += 1;
                max_regress = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(p) => p,
                    None => return usage("missing or bad --max-regress value"),
                };
            }
            "--help" | "-h" => return usage(""),
            other => paths.push(other.to_string()),
        }
        i += 1;
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return usage("expected exactly two files: <baseline.json> <current.json>");
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let mut failed = false;
    for (name, &base_mean) in &baseline {
        let Some(&cur_mean) = current.get(name) else {
            eprintln!("FAIL {name}: present in baseline, missing from {current_path}");
            failed = true;
            continue;
        };
        let ratio = cur_mean as f64 / base_mean as f64;
        let limit = 1.0 + max_regress / 100.0;
        let verdict = if ratio > limit {
            failed = true;
            "FAIL"
        } else {
            "ok  "
        };
        println!(
            "{verdict} {name}: baseline {base_mean} ns, current {cur_mean} ns ({:+.1}%)",
            (ratio - 1.0) * 100.0
        );
    }
    if failed {
        eprintln!("benchguard: regression beyond {max_regress:.0}% of baseline");
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: benchguard <baseline.json> <current.json> [--max-regress PCT]");
    ExitCode::from(if err.is_empty() { 0 } else { 2 })
}
