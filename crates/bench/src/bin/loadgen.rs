//! `loadgen` — hammers a simserve daemon with overlapping sweep requests
//! and verifies the serving contract, not just survival:
//!
//! - **Byte identity**: every response carries the same digest and the
//!   byte-identical report (optionally checked against a `--expect` file,
//!   e.g. the committed golden report).
//! - **Single-flight**: the daemon's `stats` counters must show at most
//!   one fresh rendering for the barrage; every other request coalesced.
//! - **No lost or duplicated responses**: each client gets exactly one
//!   response per request, all of them well-formed.
//!
//! Exit code 0 means every assertion held; any violation prints the
//! mismatch and exits 1.
//!
//! ```text
//! loadgen <addr> [--clients N] [--requests N] [--exp ID] [--quick]
//!         [--tsv] [--sample] [--expect FILE] [--quiet]
//!
//!   --clients   concurrent connections (default 8)
//!   --requests  total requests across all clients (default 1000)
//!   --exp       experiment selector sent on every request (default all)
//!   --quick     request the daemon's quick scale (default: full)
//!   --tsv       request TSV rendering
//!   --sample    request sampled estimates instead of full-detail runs
//!   --expect    file the report must match byte-for-byte
//!   --quiet     suppress the progress line per client
//! ```

use simbase::json::Json;
use simserve::{Client, ScaleName, SweepReq};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct Args {
    addr: String,
    clients: usize,
    requests: usize,
    exp: String,
    quick: bool,
    tsv: bool,
    sample: bool,
    expect: Option<String>,
    quiet: bool,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        addr: String::new(),
        clients: 8,
        requests: 1000,
        exp: "all".to_string(),
        quick: false,
        tsv: false,
        sample: false,
        expect: None,
        quiet: false,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--clients" => {
                i += 1;
                args.clients = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("missing or bad --clients"));
            }
            "--requests" => {
                i += 1;
                args.requests = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("missing or bad --requests"));
            }
            "--exp" => {
                i += 1;
                args.exp = argv.get(i).cloned().unwrap_or_else(|| usage("missing --exp id"));
            }
            "--quick" => args.quick = true,
            "--tsv" => args.tsv = true,
            "--sample" => args.sample = true,
            "--expect" => {
                i += 1;
                args.expect =
                    Some(argv.get(i).cloned().unwrap_or_else(|| usage("missing --expect file")));
            }
            "--quiet" => args.quiet = true,
            "--help" | "-h" => usage(""),
            other if args.addr.is_empty() && !other.starts_with('-') => {
                args.addr = other.to_string();
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    if args.addr.is_empty() {
        usage("missing daemon address");
    }
    if args.clients == 0 || args.requests == 0 {
        usage("--clients and --requests must be positive");
    }
    args
}

fn counter(stats: &Json, key: &str) -> u64 {
    stats.field(key).and_then(Json::as_u64).unwrap_or_else(|| {
        eprintln!("error: daemon stats have no {key:?}");
        std::process::exit(1);
    })
}

fn main() {
    let args = parse_args();
    let req = SweepReq {
        exp: args.exp.clone(),
        scale: if args.quick { ScaleName::Quick } else { ScaleName::Full },
        tsv: args.tsv,
        cores: 0,
        watch: false,
        l4: false,
        sample: args.sample,
        intervals: 1,
    };
    let expected = args.expect.as_ref().map(|path| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read --expect file {path:?}: {e}");
            std::process::exit(1);
        })
    });

    // Counter snapshot before the barrage, so the single-flight proof
    // also holds against a daemon that has already served other work.
    let mut probe = Client::connect(&args.addr).unwrap_or_else(|e| {
        eprintln!("error: cannot connect to {}: {e}", args.addr);
        std::process::exit(1);
    });
    let before = probe.stats().unwrap_or_else(|e| fail("stats", &e));
    let computed_before = counter(&before, "reports_computed");
    let coalesced_before = counter(&before, "reports_coalesced");

    let total = args.requests;
    let per_client = total.div_ceil(args.clients);
    let failures = Arc::new(AtomicU64::new(0));
    let responses = Arc::new(AtomicU64::new(0));
    let mut all_latencies: Vec<u64> = Vec::with_capacity(total);
    let mut reports: Vec<(String, String)> = Vec::new(); // (digest, report) per client
    let t0 = Instant::now();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for c in 0..args.clients {
            let quota = per_client.min(total - (c * per_client).min(total));
            if quota == 0 {
                break;
            }
            let req = req.clone();
            let addr = args.addr.clone();
            let failures = Arc::clone(&failures);
            let responses = Arc::clone(&responses);
            handles.push(s.spawn(move || {
                let mut latencies = Vec::with_capacity(quota);
                let mut first: Option<(String, String)> = None;
                let mut client = match Client::connect(&addr) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("client {c}: connect failed: {e}");
                        failures.fetch_add(quota as u64, Ordering::Relaxed);
                        return (latencies, first);
                    }
                };
                for _ in 0..quota {
                    let t = Instant::now();
                    match client.sweep(&req) {
                        Ok(out) => {
                            latencies.push(t.elapsed().as_nanos() as u64);
                            responses.fetch_add(1, Ordering::Relaxed);
                            match &first {
                                None => first = Some((out.digest, out.report)),
                                Some((digest, report)) => {
                                    if out.digest != *digest || out.report != *report {
                                        eprintln!("client {c}: responses diverged mid-run");
                                        failures.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                        }
                        Err(e) => {
                            eprintln!("client {c}: sweep failed: {e}");
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                (latencies, first)
            }));
        }
        for h in handles {
            let (latencies, first) = h.join().expect("client thread panicked");
            all_latencies.extend(latencies);
            if let Some(pair) = first {
                reports.push(pair);
            }
        }
    });
    let wall = t0.elapsed();

    let mut failed = failures.load(Ordering::Relaxed);
    let got = responses.load(Ordering::Relaxed);
    if got != total as u64 {
        eprintln!("error: {total} requests, {got} responses (lost or duplicated)");
        failed += 1;
    }
    // Every client's report must be identical to every other's...
    if let Some((first_digest, first_report)) = reports.first() {
        for (i, (digest, report)) in reports.iter().enumerate() {
            if digest != first_digest || report != first_report {
                eprintln!("error: client {i} saw different response bytes");
                failed += 1;
            }
        }
        // ...and to the expectation file, when given.
        if let Some(want) = &expected {
            if first_report != want {
                eprintln!(
                    "error: report does not match {} ({} vs {} bytes)",
                    args.expect.as_deref().unwrap_or("?"),
                    first_report.len(),
                    want.len()
                );
                failed += 1;
            }
        }
    }

    // Single-flight proof: the whole barrage added at most one fresh
    // rendering (zero if the report pre-existed on the daemon), and
    // everything else was answered by coalescing.
    let after = probe.stats().unwrap_or_else(|e| fail("stats", &e));
    let computed_delta = counter(&after, "reports_computed") - computed_before;
    let coalesced_delta = counter(&after, "reports_coalesced") - coalesced_before;
    // The daemon must expose its dropped-progress-event aggregate; a
    // missing field exits 1 via `counter` (the serving contract includes
    // observability, not just report bytes).
    let events_dropped = counter(&after, "events_dropped");
    // Same contract for the checkpoint-store counters and the uptime:
    // all zero on a store-less daemon, but the fields must exist, and
    // the uptime clock may never run backwards across the barrage.
    let simchk_hits = counter(&after, "simchk_hits");
    let simchk_misses = counter(&after, "simchk_misses");
    let _simchk_pruned = counter(&after, "simchk_pruned");
    let uptime_before = counter(&before, "uptime_ms");
    let uptime_after = counter(&after, "uptime_ms");
    if uptime_after < uptime_before {
        eprintln!("error: daemon uptime went backwards ({uptime_before} -> {uptime_after} ms)");
        failed += 1;
    }
    if computed_delta > 1 {
        eprintln!("error: duplicate digests computed {computed_delta} times (expected <= 1)");
        failed += 1;
    }
    if computed_delta + coalesced_delta < total as u64 {
        eprintln!(
            "error: stats account for {} requests, expected >= {total}",
            computed_delta + coalesced_delta
        );
        failed += 1;
    }

    if !args.quiet || failed > 0 {
        all_latencies.sort_unstable();
        let pct = |p: f64| -> f64 {
            if all_latencies.is_empty() {
                return f64::NAN;
            }
            let idx = ((all_latencies.len() - 1) as f64 * p).round() as usize;
            all_latencies[idx] as f64 / 1e6
        };
        eprintln!(
            "[loadgen] {total} requests / {} clients in {:.2}s: {:.0} req/s, \
             p50 {:.2} ms, p99 {:.2} ms; computed +{computed_delta}, coalesced +{coalesced_delta}, \
             events dropped {events_dropped}, simchk {simchk_hits}/{simchk_misses} hits/misses, \
             up {uptime_after} ms",
            args.clients,
            wall.as_secs_f64(),
            total as f64 / wall.as_secs_f64(),
            pct(0.5),
            pct(0.99),
        );
    }
    if failed > 0 {
        eprintln!("[loadgen] FAILED: {failed} violation(s)");
        std::process::exit(1);
    }
    eprintln!("[loadgen] OK: all responses byte-identical, single-flight held");
}

fn fail(what: &str, e: &dyn std::fmt::Display) -> ! {
    eprintln!("error: {what} failed: {e}");
    std::process::exit(1)
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: loadgen <addr> [--clients N] [--requests N] [--exp ID] [--quick] [--tsv] [--sample] \
         [--expect FILE] [--quiet]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
