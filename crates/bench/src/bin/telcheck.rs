//! `telcheck` — validates a `repro --telemetry DIR` output directory.
//!
//! ```text
//! telcheck DIR
//! ```
//!
//! Checks, using only the in-tree parsers:
//!
//! - `DIR/metrics.json` parses, carries the `simtel-metrics-v1` schema
//!   tag, and contains at least one run record;
//! - `DIR/trace.json` and `DIR/wall.json` are loadable Chrome
//!   trace-event files ([`simtel::trace::validate_chrome_trace`]).
//!
//! Prints a one-line summary per file and exits nonzero on the first
//! failure, so CI can gate on telemetry format regressions.

use simbase::json::{self, Json};
use simtel::trace::validate_chrome_trace;
use std::path::Path;
use std::process::exit;

fn main() {
    let mut args = std::env::args().skip(1);
    let dir = match (args.next(), args.next()) {
        (Some(dir), None) => dir,
        _ => {
            eprintln!("usage: telcheck DIR");
            exit(2);
        }
    };
    let dir = Path::new(&dir);

    let metrics = read(dir, "metrics.json");
    let parsed = json::parse(&metrics).unwrap_or_else(|e| fail("metrics.json", &e));
    match parsed.field("schema").and_then(Json::as_str) {
        Some("simtel-metrics-v1") => {}
        other => fail("metrics.json", &format!("bad schema tag {other:?}")),
    }
    let runs = match parsed.field("runs") {
        Some(Json::Obj(pairs)) => pairs.len(),
        _ => fail("metrics.json", "missing \"runs\" object"),
    };
    if runs == 0 {
        fail("metrics.json", "no run records");
    }
    println!("metrics.json: ok ({runs} runs)");

    for name in ["trace.json", "wall.json"] {
        let src = read(dir, name);
        let s = validate_chrome_trace(&src).unwrap_or_else(|e| fail(name, &e));
        println!(
            "{name}: ok ({} events: {} spans, {} instants, {} counters, {} metadata)",
            s.events, s.complete_spans, s.instants, s.counters, s.metadata
        );
    }
}

fn read(dir: &Path, name: &str) -> String {
    std::fs::read_to_string(dir.join(name))
        .unwrap_or_else(|e| fail(name, &format!("cannot read: {e}")))
}

fn fail(file: &str, msg: &str) -> ! {
    eprintln!("telcheck: {file}: {msg}");
    exit(1);
}
