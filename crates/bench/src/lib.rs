//! Shared helpers for the benchmark harness and the `repro` binary.

use experiments::exps::Sweep;
use experiments::Scale;
use workloads::profiles::{by_name, BenchProfile};

/// Scale used by the Criterion benches: small enough to iterate, large
/// enough to exercise every code path (warm caches, swaps, misses).
pub fn bench_scale() -> Scale {
    Scale {
        warmup: 30_000,
        measure: 50_000,
    }
}

/// The two-application subset the Criterion benches sweep (one high-load,
/// one low-load).
pub fn bench_apps() -> Vec<BenchProfile> {
    vec![
        by_name("galgel").expect("in roster"),
        by_name("wupwise").expect("in roster"),
    ]
}

/// A sweep sized for benchmarking.
pub fn bench_sweep() -> Sweep {
    Sweep::with_apps(bench_scale(), bench_apps())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_setup_is_consistent() {
        assert_eq!(bench_apps().len(), 2);
        assert!(bench_scale().measure > 0);
        let s = bench_sweep();
        assert_eq!(s.apps().len(), 2);
    }
}
