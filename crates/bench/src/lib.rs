//! Shared helpers for the benchmark harness and the `repro` binary.

use experiments::exps::Sweep;
use experiments::Scale;
use workloads::profiles::{by_name, BenchProfile};

/// Scale used by the simkit benches: small enough to iterate, large
/// enough to exercise every code path (warm caches, swaps, misses).
pub fn bench_scale() -> Scale {
    Scale {
        warmup: 30_000,
        measure: 50_000,
    }
}

/// The two-application subset the simkit benches sweep (one high-load,
/// one low-load).
pub fn bench_apps() -> Vec<BenchProfile> {
    vec![
        by_name("galgel").expect("in roster"),
        by_name("wupwise").expect("in roster"),
    ]
}

/// A sweep sized for benchmarking (serial; pipe through
/// [`Sweep::with_threads`] for the parallel variants).
pub fn bench_sweep() -> Sweep {
    Sweep::with_apps(bench_scale(), bench_apps())
}

/// The configuration keys the sweep benches prefetch: one of each
/// organization family, so the serial-vs-parallel comparison covers the
/// base hierarchy, NuRAPID, the coupled ablation, and D-NUCA.
pub const SWEEP_BENCH_KEYS: [&str; 5] = ["base", "dm4", "nf4", "sa4", "dn-energy"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_setup_is_consistent() {
        assert_eq!(bench_apps().len(), 2);
        assert!(bench_scale().measure > 0);
        let s = bench_sweep();
        assert_eq!(s.apps().len(), 2);
        assert_eq!(s.threads(), 1);
    }

    #[test]
    fn sweep_bench_keys_resolve() {
        for k in SWEEP_BENCH_KEYS {
            let _ = experiments::exps::kind_of(k);
        }
    }
}
