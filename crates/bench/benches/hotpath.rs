//! Hot-path throughput: raw accesses/sec through every lower-level cache
//! organization and sim-cycles/sec for the full-system core loop.
//!
//! This is the bench the flat-arena rewrite is measured against (DESIGN.md
//! §10): each benchmark drives a fixed, deterministic access stream through
//! one cache configuration and times the whole batch, so
//! `accesses/sec = ACCESSES / (mean_ns / 1e9)`. The stream mixes a hot
//! working set (hits, promotions) with strided cold scans (misses,
//! demotion chains, writebacks) to keep every branch of the per-access
//! path warm. JSON lines land in `BENCH_hotpath.json` when
//! `SIMKIT_BENCH_DIR` is set; CI compares mean_ns against the committed
//! baseline in `bench-baselines/`.

use cpu::uop::TraceSource;
use cpu::{CoreParams, OooCore};
use memsys::hierarchy::BaseHierarchy;
use memsys::l1::CoreMemSystem;
use memsys::lower::LowerCache;
use nuca::{CnucaConfig, CompressedNucaCache, DnucaCache, DnucaConfig, SearchPolicy};
use nurapid::coupled::CoupledCache;
use nurapid::{NuRapidCache, NuRapidConfig};
use simbase::rng::SimRng;
use simbase::{AccessKind, BlockAddr, Cycle};
use simkit::bench::{black_box, BenchRunner};
use workloads::profiles::by_name;
use workloads::TraceGenerator;

const WARMUP: u32 = 2;
const ITERS: u32 = 15;
/// Cache accesses per timed iteration.
const ACCESSES: u64 = 100_000;
/// Micro-ops per timed full-system iteration.
const UOPS: u64 = 50_000;

/// Drives `n` accesses with a deterministic hot-set + cold-scan mix and
/// returns (hits, final sim cycle). Roughly 3/4 of accesses fall in a
/// 4K-block hot set (mostly hits once warm, exercising promotion and the
/// LRU update path); the rest stride through a 512K-block range (misses,
/// fills, demotions, evictions).
fn drive<C: LowerCache>(c: &mut C, n: u64) -> (u64, u64) {
    let mut rng = SimRng::seeded(0x686f_7470_6174_68);
    let mut t = Cycle::ZERO;
    let mut hits = 0;
    let mut cold = 0u64;
    for i in 0..n {
        let block = if rng.below(4) < 3 {
            BlockAddr::from_index(rng.below(4096))
        } else {
            cold = cold.wrapping_add(97);
            BlockAddr::from_index(4096 + (cold & 0x7_ffff))
        };
        let kind = if i % 5 == 0 { AccessKind::Write } else { AccessKind::Read };
        let out = c.access(block, kind, t);
        hits += out.hit as u64;
        t = out.complete_at + 4;
    }
    (hits, t.raw())
}

/// Prints the derived throughput line for a cache bench.
fn throughput(report: Option<simkit::bench::BenchReport>, per_iter: u64, unit: &str) {
    if let Some(r) = report {
        let per_sec = per_iter as f64 / (r.mean_ns as f64 / 1e9);
        println!("  -> {:.2}M {unit}/sec (mean)", per_sec / 1e6);
    }
}

fn bench_caches(b: &mut BenchRunner) {
    let mut nf4 = NuRapidCache::new(NuRapidConfig::micro2003(4));
    nf4.prefill();
    let r = b.bench("hotpath_nurapid_nf4", WARMUP, ITERS, || black_box(drive(&mut nf4, ACCESSES)));
    throughput(r, ACCESSES, "accesses");

    let mut nf8 = NuRapidCache::new(NuRapidConfig::micro2003(8));
    nf8.prefill();
    let r = b.bench("hotpath_nurapid_nf8", WARMUP, ITERS, || black_box(drive(&mut nf8, ACCESSES)));
    throughput(r, ACCESSES, "accesses");

    let mut dn_perf = DnucaCache::new(DnucaConfig::micro2003(SearchPolicy::SsPerformance));
    dn_perf.prefill();
    let r = b.bench("hotpath_dnuca_ss_performance", WARMUP, ITERS, || {
        black_box(drive(&mut dn_perf, ACCESSES))
    });
    throughput(r, ACCESSES, "accesses");

    let mut dn_energy = DnucaCache::new(DnucaConfig::micro2003(SearchPolicy::SsEnergy));
    dn_energy.prefill();
    let r = b.bench("hotpath_dnuca_ss_energy", WARMUP, ITERS, || {
        black_box(drive(&mut dn_energy, ACCESSES))
    });
    throughput(r, ACCESSES, "accesses");

    let mut dn_memo = DnucaCache::new(DnucaConfig::micro2003(SearchPolicy::WayMemo));
    dn_memo.prefill();
    let r = b.bench("hotpath_dnuca_way_memo", WARMUP, ITERS, || {
        black_box(drive(&mut dn_memo, ACCESSES))
    });
    throughput(r, ACCESSES, "accesses");

    let mut cnuca = CompressedNucaCache::new(CnucaConfig::micro2003());
    cnuca.prefill();
    let r = b.bench("hotpath_cnuca", WARMUP, ITERS, || black_box(drive(&mut cnuca, ACCESSES)));
    throughput(r, ACCESSES, "accesses");

    let mut coupled = CoupledCache::micro2003(4);
    coupled.prefill();
    let r = b.bench("hotpath_coupled_sa4", WARMUP, ITERS, || {
        black_box(drive(&mut coupled, ACCESSES))
    });
    throughput(r, ACCESSES, "accesses");

    let mut base = BaseHierarchy::micro2003();
    base.prefill();
    let r =
        b.bench("hotpath_base_hierarchy", WARMUP, ITERS, || black_box(drive(&mut base, ACCESSES)));
    throughput(r, ACCESSES, "accesses");

    // The L4 DRAM-cache tier (DESIGN.md §15) wrapped around NuRAPID,
    // after a shrink + grow so the consistent-hash ring carries retired
    // vnodes and the bank slots a liveness mix — the steady state the
    // resize-transient experiment spends most of its windows in. The
    // cold scan's 64-MB stride range overflows the 32-MB tier, so the
    // timed loop exercises tag-cache hits and misses, fills, orphaned-
    // block replacement, and DRAM-channel queueing on every iteration.
    let kind = experiments::L2Kind::L4(
        Box::new(experiments::L2Kind::NuRapid(NuRapidConfig::micro2003(4))),
        experiments::L4Config::tdram(),
    );
    let mut l4 = kind.build();
    l4.prefill();
    drive_org(&mut l4, ACCESSES);
    for target in [4, 12] {
        l4.main_memory_mut()
            .expect("the L4 wrapper is DRAM-backed")
            .resize_l4(target, Cycle::ZERO);
    }
    let r = b.bench("hotpath_nurapid_l4", WARMUP, ITERS, || {
        black_box(drive_org(&mut l4, ACCESSES))
    });
    throughput(r, ACCESSES, "accesses");
}

/// [`drive`] for a boxed [`Organization`](memsys::org::Organization) —
/// same deterministic stream, dispatched through the trait object like
/// the real runner.
fn drive_org(c: &mut Box<dyn memsys::org::Organization>, n: u64) -> (u64, u64) {
    let mut rng = SimRng::seeded(0x686f_7470_6174_68);
    let mut t = Cycle::ZERO;
    let mut hits = 0;
    let mut cold = 0u64;
    for i in 0..n {
        let block = if rng.below(4) < 3 {
            BlockAddr::from_index(rng.below(4096))
        } else {
            cold = cold.wrapping_add(97);
            BlockAddr::from_index(4096 + (cold & 0x7_ffff))
        };
        let kind = if i % 5 == 0 { AccessKind::Write } else { AccessKind::Read };
        let out = c.access(block, kind, t);
        hits += out.hit as u64;
        t = out.complete_at + 4;
    }
    (hits, t.raw())
}

fn bench_full_system(b: &mut BenchRunner) {
    // The quick-repro driver loop: trace generator -> OoO core -> L1s ->
    // NuRAPID. Reports both uops/sec and simulated cycles/sec.
    let mut gen = TraceGenerator::new(by_name("equake").unwrap(), 7);
    let mem = CoreMemSystem::micro2003(NuRapidCache::new(NuRapidConfig::micro2003(4)));
    let mut core = OooCore::new(CoreParams::micro2003(), mem);
    let mut cycles_per_iter = 0u64;
    let r = b.bench("hotpath_full_system_nurapid", WARMUP, ITERS, || {
        let c0 = core.cycles();
        for _ in 0..UOPS {
            let op = gen.next_op();
            core.execute(op);
        }
        cycles_per_iter = core.cycles() - c0;
        black_box(core.cycles())
    });
    throughput(r.clone(), UOPS, "uops");
    throughput(r, cycles_per_iter, "sim-cycles");
}

fn bench_sampled(b: &mut BenchRunner) {
    // The sampled estimation path (DESIGN.md §16): functional
    // fast-forward between short detailed windows, the measured phase
    // split into 4 interval jobs seeded from encoded snapshots. The
    // sampler's win comes from executing ~6× fewer detailed
    // instructions at this regime; what this bench guards is the
    // machinery's own overhead — the snapshot chain, interval
    // encode/decode seeding, and the trace-order window stitch — which
    // must stay small against the detailed windows it saves.
    use experiments::{run_app_sampled, RunOptions, SampleSpec, Scale};
    let app = by_name("equake").unwrap();
    let kind = experiments::L2Kind::NuRapid(NuRapidConfig::micro2003(4));
    let scale = Scale { warmup: 30_000, measure: 50_000 };
    let spec = SampleSpec { period: 5_000, warmup: 200, measure: 800 };
    let mut insts = 0u64;
    let r = b.bench("hotpath_sampled", WARMUP, ITERS, || {
        let s = run_app_sampled(app, &kind, scale, spec, 4, 1, RunOptions::default());
        insts = scale.measure;
        black_box(s.ipc().mean)
    });
    throughput(r, insts, "sampled-insts");
}

fn bench_cmp_system(b: &mut BenchRunner) {
    // The CMP front-end: two cores interleaving misses into one shared
    // NuRAPID through the per-bank contention model — the `cmp`
    // experiment's hot loop (argmin-cycles core stepping + bank queues +
    // invalidation-lite sharing on top of the single-core path above).
    use cmp::{CmpConfig, CmpSystem};
    use simtel::TelemetrySink;
    let profiles = vec![by_name("galgel").unwrap(), by_name("equake").unwrap()];
    let mut sys = CmpSystem::new(
        CmpConfig::micro2003(2),
        experiments::L2Kind::NuRapid(NuRapidConfig::micro2003(4)).build(),
        &profiles,
        0x5eed,
    );
    sys.warm_run(5_000);
    sys.drain_barrier(&TelemetrySink::disabled(), 0);
    let r = b.bench("hotpath_cmp_2x_nurapid", WARMUP, ITERS, || {
        sys.run(UOPS / 2);
        black_box(sys.finish().per_core[0].instructions)
    });
    throughput(r, UOPS, "uops");
}

fn main() {
    let mut b = BenchRunner::new("hotpath");
    bench_caches(&mut b);
    bench_full_system(&mut b);
    bench_sampled(&mut b);
    bench_cmp_system(&mut b);
    b.finish();
}
