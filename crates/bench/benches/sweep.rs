//! Serial vs parallel sweep wall-clock comparison on the simsched
//! scheduler: the same 10-job prewarm (2 applications × 5 configuration
//! families) through 1, 2, and 4 worker threads. Results are
//! bit-identical across all variants (asserted here on every iteration);
//! only wall time differs. With `SIMKIT_BENCH_DIR` set, the JSON lines
//! land in `BENCH_sweep.json` for the record.

use bench::{bench_apps, bench_scale, SWEEP_BENCH_KEYS};
use experiments::exps::Sweep;
use simkit::bench::{black_box, BenchRunner};

const WARMUP: u32 = 1;
const ITERS: u32 = 5;

/// One full prewarm at `threads`, returning a determinism witness (total
/// cycles over all runs) so the serial/parallel variants can be compared.
fn sweep_once(threads: usize) -> u64 {
    let s = Sweep::with_apps(bench_scale(), bench_apps()).with_threads(threads);
    s.prefetch_all(&SWEEP_BENCH_KEYS);
    assert_eq!(s.runs(), bench_apps().len() * SWEEP_BENCH_KEYS.len());
    let s = &s;
    bench_apps()
        .iter()
        .flat_map(|&a| SWEEP_BENCH_KEYS.iter().map(move |&k| s.run(a, k).core.cycles))
        .sum()
}

fn main() {
    let mut b = BenchRunner::new("sweep");
    let witness = sweep_once(1);
    for threads in [1usize, 2, 4] {
        b.bench(&format!("sweep_prewarm_{threads}_threads"), WARMUP, ITERS, || {
            let w = sweep_once(threads);
            assert_eq!(w, witness, "{threads}-thread sweep diverged from serial");
            black_box(w)
        });
    }
    b.finish();
}
