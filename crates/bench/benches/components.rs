//! Component microbenchmarks: throughput of the simulator's hot paths and
//! the DESIGN.md ablations (pointer restriction, promotion policies,
//! smart-search policies).

use criterion::{criterion_group, criterion_main, Criterion};
use cpu::uop::TraceSource;
use cpu::{CoreParams, OooCore};
use memsys::hierarchy::BaseHierarchy;
use memsys::l1::CoreMemSystem;
use memsys::lower::LowerCache;
use nuca::{DnucaCache, DnucaConfig, SearchPolicy};
use nurapid::pointers::PointerScheme;
use nurapid::{NuRapidCache, NuRapidConfig, PromotionPolicy};
use simbase::{AccessKind, BlockAddr, Capacity, Cycle};
use std::hint::black_box;
use std::time::Duration;
use workloads::profiles::by_name;
use workloads::TraceGenerator;

/// Drives `n` mixed accesses through a lower-level cache.
fn drive<C: LowerCache>(c: &mut C, n: u64) -> u64 {
    let mut t = Cycle::ZERO;
    let mut hits = 0;
    for i in 0..n {
        let block = BlockAddr::from_index((i * 37) % 20_000);
        let kind = if i % 5 == 0 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let out = c.access(block, kind, t);
        hits += out.hit as u64;
        t = out.complete_at + 10;
    }
    hits
}

fn bench_caches(c: &mut Criterion) {
    c.bench_function("nurapid_access_path", |b| {
        let mut cache = NuRapidCache::new(NuRapidConfig::micro2003(4));
        cache.prefill();
        b.iter(|| black_box(drive(&mut cache, 5_000)))
    });
    c.bench_function("nurapid_fastest_promotion", |b| {
        let mut cache = NuRapidCache::new(
            NuRapidConfig::micro2003(4).with_promotion(PromotionPolicy::Fastest),
        );
        cache.prefill();
        b.iter(|| black_box(drive(&mut cache, 5_000)))
    });
    c.bench_function("dnuca_ss_performance_path", |b| {
        let mut cache = DnucaCache::new(DnucaConfig::micro2003(SearchPolicy::SsPerformance));
        cache.prefill();
        b.iter(|| black_box(drive(&mut cache, 5_000)))
    });
    c.bench_function("dnuca_ss_energy_path", |b| {
        let mut cache = DnucaCache::new(DnucaConfig::micro2003(SearchPolicy::SsEnergy));
        cache.prefill();
        b.iter(|| black_box(drive(&mut cache, 5_000)))
    });
    c.bench_function("base_hierarchy_path", |b| {
        let mut cache = BaseHierarchy::micro2003();
        cache.prefill();
        b.iter(|| black_box(drive(&mut cache, 5_000)))
    });
}

fn bench_core(c: &mut Criterion) {
    c.bench_function("trace_generator", |b| {
        let mut gen = TraceGenerator::new(by_name("equake").unwrap(), 1);
        b.iter(|| {
            let mut x = 0u64;
            for _ in 0..10_000 {
                x ^= gen.next_op().pc.raw();
            }
            black_box(x)
        })
    });
    c.bench_function("ooo_core_full_system", |b| {
        let mut gen = TraceGenerator::new(by_name("equake").unwrap(), 2);
        let mem = CoreMemSystem::micro2003(BaseHierarchy::micro2003());
        let mut core = OooCore::new(CoreParams::micro2003(), mem);
        b.iter(|| {
            for _ in 0..10_000 {
                let op = gen.next_op();
                core.execute(op);
            }
            black_box(core.cycles())
        })
    });
}

fn bench_ablations(c: &mut Criterion) {
    // DESIGN.md §5.6: pointer restriction trades flexibility for pointer
    // bits — the bench reports the sizing arithmetic cost (trivial) and
    // documents the overhead figures as side effects.
    c.bench_function("ablation_pointer_restriction", |b| {
        b.iter(|| {
            let cap = Capacity::from_mib(8);
            let flexible = PointerScheme::flexible(cap, 128, 4);
            let restricted = PointerScheme::restricted(cap, 128, 4, 256);
            black_box((
                flexible.forward_pointer_bits(),
                restricted.forward_pointer_bits(),
                flexible.forward_overhead(cap),
            ))
        })
    });
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {
    name = caches;
    config = short();
    targets = bench_caches
}
criterion_group! {
    name = core;
    config = short();
    targets = bench_core
}
criterion_group! {
    name = ablations;
    config = short();
    targets = bench_ablations
}
criterion_main!(caches, core, ablations);
