//! Component microbenchmarks: throughput of the simulator's hot paths and
//! the DESIGN.md ablations (pointer restriction, promotion policies,
//! smart-search policies). Runs on the in-tree `simkit` wall-clock
//! harness; each benchmark prints a human line plus a JSON line.

use cpu::uop::TraceSource;
use cpu::{CoreParams, OooCore};
use memsys::hierarchy::BaseHierarchy;
use memsys::l1::CoreMemSystem;
use memsys::lower::LowerCache;
use nuca::{DnucaCache, DnucaConfig, SearchPolicy};
use nurapid::pointers::PointerScheme;
use nurapid::{NuRapidCache, NuRapidConfig, PromotionPolicy};
use simbase::{AccessKind, BlockAddr, Capacity, Cycle};
use simkit::bench::{black_box, BenchRunner};
use workloads::profiles::by_name;
use workloads::TraceGenerator;

const WARMUP: u32 = 3;
const ITERS: u32 = 20;

/// Drives `n` mixed accesses through a lower-level cache.
fn drive<C: LowerCache>(c: &mut C, n: u64) -> u64 {
    let mut t = Cycle::ZERO;
    let mut hits = 0;
    for i in 0..n {
        let block = BlockAddr::from_index((i * 37) % 20_000);
        let kind = if i % 5 == 0 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let out = c.access(block, kind, t);
        hits += out.hit as u64;
        t = out.complete_at + 10;
    }
    hits
}

fn bench_caches(b: &mut BenchRunner) {
    let mut nurapid = NuRapidCache::new(NuRapidConfig::micro2003(4));
    nurapid.prefill();
    b.bench("nurapid_access_path", WARMUP, ITERS, || {
        black_box(drive(&mut nurapid, 5_000))
    });

    let mut fastest = NuRapidCache::new(
        NuRapidConfig::micro2003(4).with_promotion(PromotionPolicy::Fastest),
    );
    fastest.prefill();
    b.bench("nurapid_fastest_promotion", WARMUP, ITERS, || {
        black_box(drive(&mut fastest, 5_000))
    });

    let mut dn_perf = DnucaCache::new(DnucaConfig::micro2003(SearchPolicy::SsPerformance));
    dn_perf.prefill();
    b.bench("dnuca_ss_performance_path", WARMUP, ITERS, || {
        black_box(drive(&mut dn_perf, 5_000))
    });

    let mut dn_energy = DnucaCache::new(DnucaConfig::micro2003(SearchPolicy::SsEnergy));
    dn_energy.prefill();
    b.bench("dnuca_ss_energy_path", WARMUP, ITERS, || {
        black_box(drive(&mut dn_energy, 5_000))
    });

    let mut base = BaseHierarchy::micro2003();
    base.prefill();
    b.bench("base_hierarchy_path", WARMUP, ITERS, || {
        black_box(drive(&mut base, 5_000))
    });
}

fn bench_core(b: &mut BenchRunner) {
    let mut gen = TraceGenerator::new(by_name("equake").unwrap(), 1);
    b.bench("trace_generator", WARMUP, ITERS, || {
        let mut x = 0u64;
        for _ in 0..10_000 {
            x ^= gen.next_op().pc.raw();
        }
        black_box(x)
    });

    let mut gen2 = TraceGenerator::new(by_name("equake").unwrap(), 2);
    let mem = CoreMemSystem::micro2003(BaseHierarchy::micro2003());
    let mut core = OooCore::new(CoreParams::micro2003(), mem);
    b.bench("ooo_core_full_system", WARMUP, ITERS, || {
        for _ in 0..10_000 {
            let op = gen2.next_op();
            core.execute(op);
        }
        black_box(core.cycles())
    });
}

fn bench_ablations(b: &mut BenchRunner) {
    // DESIGN.md §5.6: pointer restriction trades flexibility for pointer
    // bits — the bench reports the sizing arithmetic cost (trivial) and
    // documents the overhead figures as side effects.
    b.bench("ablation_pointer_restriction", WARMUP, ITERS, || {
        let cap = Capacity::from_mib(8);
        let flexible = PointerScheme::flexible(cap, 128, 4);
        let restricted = PointerScheme::restricted(cap, 128, 4, 256);
        black_box((
            flexible.forward_pointer_bits(),
            restricted.forward_pointer_bits(),
            flexible.forward_overhead(cap),
        ))
    });
}

fn main() {
    let mut b = BenchRunner::new("components");
    bench_caches(&mut b);
    bench_core(&mut b);
    bench_ablations(&mut b);
    b.finish();
}
