//! Telemetry overhead benchmark: the same NuRAPID access loop with no
//! sink attached (the default), with an explicitly attached disabled
//! sink, and with a recording sink plus snapshots. The disabled path is
//! the one every non-`--telemetry` run pays, so it is asserted to sit
//! within noise of the detached baseline; the recording figure documents
//! what `--telemetry` costs. With `SIMKIT_BENCH_DIR` set, the JSON lines
//! land in `BENCH_telemetry.json` for the record.

use memsys::lower::LowerCache;
use nurapid::{NuRapidCache, NuRapidConfig};
use simbase::{AccessKind, BlockAddr, Cycle};
use simkit::bench::{black_box, BenchRunner};
use simtel::{Telemetry, TelemetrySink};

const WARMUP: u32 = 3;
const ITERS: u32 = 20;
const ACCESSES: u64 = 5_000;

/// Drives `n` mixed accesses through the cache (same loop as the
/// `components` bench, so figures are comparable across files).
fn drive(c: &mut NuRapidCache, n: u64) -> u64 {
    let mut t = Cycle::ZERO;
    let mut hits = 0;
    for i in 0..n {
        let block = BlockAddr::from_index((i * 37) % 20_000);
        let kind = if i % 5 == 0 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let out = c.access(block, kind, t);
        hits += out.hit as u64;
        t = out.complete_at + 10;
    }
    hits
}

fn prefilled() -> NuRapidCache {
    let mut c = NuRapidCache::new(NuRapidConfig::micro2003(4));
    c.prefill();
    c
}

fn main() {
    let mut b = BenchRunner::new("telemetry");

    let mut baseline = prefilled();
    let r_baseline = b.bench("nurapid_no_sink", WARMUP, ITERS, || {
        black_box(drive(&mut baseline, ACCESSES))
    });

    let mut disabled = prefilled();
    disabled.set_telemetry(TelemetrySink::disabled(), 0);
    let r_disabled = b.bench("nurapid_disabled_sink", WARMUP, ITERS, || {
        black_box(drive(&mut disabled, ACCESSES))
    });

    let tel = Telemetry::with_params(512, 10_000);
    let mut recording = prefilled();
    recording.set_telemetry(tel.run_sink(), tel.snap_cycles());
    b.bench("nurapid_recording_sink", WARMUP, ITERS, || {
        black_box(drive(&mut recording, ACCESSES))
    });

    // The disabled sink is one `Option` check per event site; anything
    // beyond measurement noise over the detached baseline is a
    // regression. Skipped under `SIMKIT_BENCH_ITERS` smoke passes, where
    // a single sample is all noise.
    if let (Some(base), Some(dis)) = (&r_baseline, &r_disabled) {
        if base.iters >= 5 && dis.iters >= 5 {
            let (b_ns, d_ns) = (base.median_ns, dis.median_ns);
            assert!(
                (d_ns as f64) <= 1.5 * b_ns as f64,
                "disabled-sink path regressed: {d_ns} ns vs {b_ns} ns baseline"
            );
        }
    }

    b.finish();
}
