//! Wall-clock cost of functional warm-up with and without a checkpoint
//! store: the same quick-repro-style sweep (2 applications × 5
//! configuration families) run with no store, against a cold on-disk
//! store (builds + seals every checkpoint), and against a warm store
//! (every warm-up restored from disk). Results are bit-identical across
//! all three variants (asserted on every iteration — checkpointing must
//! never change a number); only wall time differs, and the warm-store
//! variant is the one the `--checkpoints` flag buys. With
//! `SIMKIT_BENCH_DIR` set, the JSON lines land in `BENCH_warmup.json`.

use bench::{bench_apps, SWEEP_BENCH_KEYS};
use experiments::exps::Sweep;
use experiments::Scale;
use simkit::bench::{black_box, BenchRunner};
use std::path::PathBuf;

const WARMUP: u32 = 1;
const ITERS: u32 = 5;

/// Warm-up-heavy scale: the full repro runs 5 M warm-up + 2 M measured,
/// so warm-up dominates; this mirrors that ratio at bench size.
fn warmup_scale() -> Scale {
    Scale {
        warmup: 250_000,
        measure: 100_000,
    }
}

fn store_dir() -> PathBuf {
    std::env::temp_dir().join(format!("bench-warmup-simchk-{}", std::process::id()))
}

/// One full prewarm, optionally against a checkpoint store, returning a
/// determinism witness (total cycles over all runs).
fn sweep_once(checkpoints: Option<&PathBuf>) -> u64 {
    let mut s = Sweep::with_apps(warmup_scale(), bench_apps());
    if let Some(dir) = checkpoints {
        s = s.with_checkpoints(dir).expect("checkpoint dir");
    }
    s.prefetch_all(&SWEEP_BENCH_KEYS);
    let s = &s;
    bench_apps()
        .iter()
        .flat_map(|&a| SWEEP_BENCH_KEYS.iter().map(move |&k| s.run(a, k).core.cycles))
        .sum()
}

fn main() {
    let mut b = BenchRunner::new("warmup");
    let dir = store_dir();
    let _ = std::fs::remove_dir_all(&dir);

    let witness = sweep_once(None);
    b.bench("warmup_sweep_no_store", WARMUP, ITERS, || {
        let w = sweep_once(None);
        assert_eq!(w, witness, "store-less sweep diverged");
        black_box(w)
    });

    // Cold store: every iteration starts from an empty directory, so each
    // distinct warm-up is built, sealed, and written out.
    b.bench("warmup_sweep_cold_store", WARMUP, ITERS, || {
        let _ = std::fs::remove_dir_all(&dir);
        let w = sweep_once(Some(&dir));
        assert_eq!(w, witness, "cold-store sweep diverged");
        black_box(w)
    });

    // Warm store: the directory now holds every checkpoint; each
    // iteration restores all warm-ups from disk.
    let w = sweep_once(Some(&dir));
    assert_eq!(w, witness, "store-priming sweep diverged");
    b.bench("warmup_sweep_warm_store", WARMUP, ITERS, || {
        let w = sweep_once(Some(&dir));
        assert_eq!(w, witness, "warm-store sweep diverged");
        black_box(w)
    });

    let _ = std::fs::remove_dir_all(&dir);
    b.finish();
}
