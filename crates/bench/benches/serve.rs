//! Serving-path latency: a resident simserve daemon on loopback, hit
//! with sweep requests whose report is already rendered, so the numbers
//! isolate protocol + queueing + socket overhead (not simulation time).
//! Three concurrency levels (1, 8, 64 clients) record per-request
//! round-trip percentiles — p99 included — as `BENCH_serve.json` lines
//! gated by benchguard, plus a requests-per-second figure per level on
//! stderr. Every response is asserted byte-identical along the way, so
//! a throughput win can never silently buy a correctness loss.
//!
//! `SIMKIT_BENCH_ITERS` scales the per-client request count (default 32).

use bench::{bench_apps, bench_scale};
use simkit::bench::{summarize, BenchRunner};
use simserve::{Client, ScaleName, ServeConfig, Server, Service, SweepReq};
use std::sync::Arc;
use std::time::Instant;

fn per_client_requests() -> usize {
    std::env::var("SIMKIT_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

fn main() {
    let mut b = BenchRunner::new("serve");
    let service = Service::new(ServeConfig {
        threads: 2,
        apps: bench_apps(),
        quick: bench_scale(),
        quiet: true,
        ..ServeConfig::default()
    })
    .expect("service");
    let server = Server::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let stopper = server.stopper();
    let handle = std::thread::spawn(move || server.run());

    let req = SweepReq {
        exp: "fig4".to_string(),
        scale: ScaleName::Quick,
        tsv: false,
        cores: 0,
        watch: false,
    };
    // Prime: the first request renders the report; every timed request
    // after it is answered from the store, measuring serving overhead.
    let golden = Client::connect(&addr)
        .expect("connect")
        .sweep(&req)
        .expect("priming sweep")
        .report;

    let per_client = per_client_requests();
    for clients in [1usize, 8, 64] {
        let mut samples: Vec<u64> = Vec::with_capacity(clients * per_client);
        let t0 = Instant::now();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    let req = req.clone();
                    let addr = addr.clone();
                    let golden = golden.as_str();
                    s.spawn(move || {
                        let mut client = Client::connect(&addr).expect("connect");
                        let mut lat = Vec::with_capacity(per_client);
                        for _ in 0..per_client {
                            let t = Instant::now();
                            let out = client.sweep(&req).expect("sweep");
                            lat.push(t.elapsed().as_nanos() as u64);
                            assert_eq!(out.report, golden, "response bytes diverged");
                        }
                        lat
                    })
                })
                .collect();
            for h in handles {
                samples.extend(h.join().expect("client panicked"));
            }
        });
        let wall = t0.elapsed().as_secs_f64();
        eprintln!(
            "serve: {clients:>2} clients x {per_client} requests: {:.0} req/s",
            samples.len() as f64 / wall
        );
        b.record(summarize(&format!("serve_roundtrip_{clients:02}_clients"), &mut samples));
    }

    stopper.stop();
    handle.join().expect("server panicked").expect("clean drain");
    b.finish();
}
