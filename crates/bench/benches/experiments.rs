//! One Criterion benchmark per paper table and figure: each bench
//! regenerates its experiment end-to-end at the bench scale, so `cargo
//! bench` demonstrates (and times) the machinery behind every artifact.

use bench::bench_sweep;
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::exps;
use std::hint::black_box;
use std::time::Duration;

fn cfg(c: &mut Criterion) -> &mut Criterion {
    c
}

fn bench_tables(c: &mut Criterion) {
    let c = cfg(c);
    c.bench_function("table2_energy_model", |b| {
        b.iter(|| black_box(exps::table2()).rows.len())
    });
    c.bench_function("table4_latency_model", |b| {
        b.iter(|| black_box(exps::table4()).rows.len())
    });
    c.bench_function("table3_base_characterization", |b| {
        b.iter(|| {
            let mut s = bench_sweep();
            black_box(exps::table3(&mut s)).rows.len()
        })
    });
}

fn bench_placement(c: &mut Criterion) {
    let c = cfg(c);
    c.bench_function("fig4_placement", |b| {
        b.iter(|| {
            let mut s = bench_sweep();
            black_box(exps::fig4(&mut s)).avg_first_group(1)
        })
    });
    c.bench_function("fig5_promotion_policies", |b| {
        b.iter(|| {
            let mut s = bench_sweep();
            black_box(exps::fig5(&mut s)).avg_first_group(1)
        })
    });
    c.bench_function("sec531_lru_vs_random", |b| {
        b.iter(|| {
            let mut s = bench_sweep();
            black_box(exps::sec531(&mut s)).rows.len()
        })
    });
}

fn bench_dgroups(c: &mut Criterion) {
    let c = cfg(c);
    c.bench_function("fig7_dgroup_count_distribution", |b| {
        b.iter(|| {
            let mut s = bench_sweep();
            black_box(exps::fig7(&mut s)).avg_first_group(0)
        })
    });
    c.bench_function("fig8_dgroup_count_performance", |b| {
        b.iter(|| {
            let mut s = bench_sweep();
            black_box(exps::fig8(&mut s)).overall(1)
        })
    });
}

fn bench_performance(c: &mut Criterion) {
    let c = cfg(c);
    c.bench_function("fig6_policy_performance", |b| {
        b.iter(|| {
            let mut s = bench_sweep();
            black_box(exps::fig6(&mut s)).overall(1)
        })
    });
    c.bench_function("fig9_vs_dnuca", |b| {
        b.iter(|| {
            let mut s = bench_sweep();
            black_box(exps::fig9(&mut s)).overall(1)
        })
    });
}

fn bench_energy(c: &mut Criterion) {
    let c = cfg(c);
    c.bench_function("fig10_l2_energy", |b| {
        b.iter(|| {
            let mut s = bench_sweep();
            black_box(exps::fig10(&mut s)).energy_reduction_vs_dnuca()
        })
    });
    c.bench_function("fig11_energy_delay", |b| {
        b.iter(|| {
            let mut s = bench_sweep();
            black_box(exps::fig11(&mut s)).nurapid_mean()
        })
    });
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {
    name = tables;
    config = short();
    targets = bench_tables
}
criterion_group! {
    name = placement;
    config = short();
    targets = bench_placement
}
criterion_group! {
    name = dgroups;
    config = short();
    targets = bench_dgroups
}
criterion_group! {
    name = performance;
    config = short();
    targets = bench_performance
}
criterion_group! {
    name = energy;
    config = short();
    targets = bench_energy
}
criterion_main!(tables, placement, dgroups, performance, energy);
