//! One benchmark per paper table and figure: each bench regenerates its
//! experiment end-to-end at the bench scale, so `cargo bench` demonstrates
//! (and times) the machinery behind every artifact. Runs on the in-tree
//! `simkit` wall-clock harness.

use bench::bench_sweep;
use experiments::exps;
use simkit::bench::{black_box, BenchRunner};

const WARMUP: u32 = 1;
const ITERS: u32 = 10;

fn bench_tables(b: &mut BenchRunner) {
    b.bench("table2_energy_model", WARMUP, ITERS, || {
        black_box(exps::table2()).rows.len()
    });
    b.bench("table4_latency_model", WARMUP, ITERS, || {
        black_box(exps::table4()).rows.len()
    });
    b.bench("table3_base_characterization", WARMUP, ITERS, || {
        let s = bench_sweep();
        black_box(exps::table3(&s)).rows.len()
    });
}

fn bench_placement(b: &mut BenchRunner) {
    b.bench("fig4_placement", WARMUP, ITERS, || {
        let s = bench_sweep();
        black_box(exps::fig4(&s)).avg_first_group(1)
    });
    b.bench("fig5_promotion_policies", WARMUP, ITERS, || {
        let s = bench_sweep();
        black_box(exps::fig5(&s)).avg_first_group(1)
    });
    b.bench("sec531_lru_vs_random", WARMUP, ITERS, || {
        let s = bench_sweep();
        black_box(exps::sec531(&s)).rows.len()
    });
}

fn bench_dgroups(b: &mut BenchRunner) {
    b.bench("fig7_dgroup_count_distribution", WARMUP, ITERS, || {
        let s = bench_sweep();
        black_box(exps::fig7(&s)).avg_first_group(0)
    });
    b.bench("fig8_dgroup_count_performance", WARMUP, ITERS, || {
        let s = bench_sweep();
        black_box(exps::fig8(&s)).overall(1)
    });
}

fn bench_performance(b: &mut BenchRunner) {
    b.bench("fig6_policy_performance", WARMUP, ITERS, || {
        let s = bench_sweep();
        black_box(exps::fig6(&s)).overall(1)
    });
    b.bench("fig9_vs_dnuca", WARMUP, ITERS, || {
        let s = bench_sweep();
        black_box(exps::fig9(&s)).overall(1)
    });
}

fn bench_energy(b: &mut BenchRunner) {
    b.bench("fig10_l2_energy", WARMUP, ITERS, || {
        let s = bench_sweep();
        black_box(exps::fig10(&s)).energy_reduction_vs_dnuca()
    });
    b.bench("fig11_energy_delay", WARMUP, ITERS, || {
        black_box({
            let s = bench_sweep();
            exps::fig11(&s).nurapid_mean()
        })
    });
}

fn main() {
    let mut b = BenchRunner::new("experiments");
    bench_tables(&mut b);
    bench_placement(&mut b);
    bench_dgroups(&mut b);
    bench_performance(&mut b);
    bench_energy(&mut b);
    b.finish();
}
