//! The [`TelemetrySink`] handle every simulator component records into.
//!
//! A sink is either **disabled** (the default — every record call is a
//! single `Option` branch, benchmarked to be free) or **recording** into
//! a shared [`SinkData`] (one metric shard plus one bounded event ring).
//! Components hold a clone of the sink; the experiment runner drains it
//! when the run finishes and hands the data to the
//! [`Telemetry`](crate::telemetry::Telemetry) aggregator.
//!
//! Recording is `Mutex`-guarded so the handle is `Send + Sync`, but in
//! practice each run's sink is only touched by that run's worker thread,
//! so the lock is always uncontended.

use crate::metrics::MetricSet;
use crate::ring::{EventRing, SpanEvent};
use std::sync::{Arc, Mutex};

/// Everything one run records: a metric shard and a span ring.
#[derive(Debug, Clone, Default)]
pub struct SinkData {
    /// Counters, gauges, histograms.
    pub metrics: MetricSet,
    /// Cycle-stamped span/instant/counter events.
    pub ring: EventRing,
}

/// A cheap, cloneable telemetry handle. `TelemetrySink::disabled()` is
/// the no-op default; [`TelemetrySink::recording`] captures data.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySink(Option<Arc<Mutex<SinkData>>>);

impl TelemetrySink {
    /// The no-op sink: every record call returns after one branch.
    pub const fn disabled() -> Self {
        TelemetrySink(None)
    }

    /// A recording sink whose event ring holds at most `ring_cap` events.
    pub fn recording(ring_cap: usize) -> Self {
        TelemetrySink(Some(Arc::new(Mutex::new(SinkData {
            metrics: MetricSet::new(),
            ring: EventRing::new(ring_cap),
        }))))
    }

    /// True when the sink records. Components use this to skip expensive
    /// derived computations (never required for plain record calls).
    pub const fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds `n` to the named counter.
    pub fn count(&self, name: &'static str, n: u64) {
        if let Some(s) = &self.0 {
            s.lock().unwrap().metrics.count(name, n);
        }
    }

    /// Records a gauge observation at simulation cycle `stamp`.
    pub fn gauge(&self, name: &'static str, stamp: u64, value: f64) {
        if let Some(s) = &self.0 {
            s.lock().unwrap().metrics.gauge(name, stamp, value);
        }
    }

    /// Records a histogram sample.
    pub fn observe(&self, name: &'static str, sample: u64) {
        if let Some(s) = &self.0 {
            s.lock().unwrap().metrics.observe(name, sample);
        }
    }

    /// Records a cycle-stamped span (`dur` cycles starting at `start`).
    pub fn span(&self, cat: &'static str, name: &'static str, start: u64, dur: u64) {
        if let Some(s) = &self.0 {
            s.lock().unwrap().ring.push(SpanEvent {
                cat,
                name,
                start,
                dur,
                arg: None,
            });
        }
    }

    /// Records an instantaneous event at cycle `at`.
    pub fn instant(&self, cat: &'static str, name: &'static str, at: u64) {
        self.span(cat, name, at, 0);
    }

    /// Records a counter-track sample (exported as a Chrome `"C"` event,
    /// which Perfetto draws as a time-series track).
    pub fn counter_track(&self, cat: &'static str, name: &'static str, at: u64, value: u64) {
        if let Some(s) = &self.0 {
            s.lock().unwrap().ring.push(SpanEvent {
                cat,
                name,
                start: at,
                dur: 0,
                arg: Some(value),
            });
        }
    }

    /// Discards everything recorded so far (called when the measured
    /// phase begins, so warm-up traffic does not pollute the data).
    pub fn reset(&self) {
        if let Some(s) = &self.0 {
            let mut d = s.lock().unwrap();
            d.metrics = MetricSet::new();
            d.ring.clear();
        }
    }

    /// Takes the recorded data, leaving the sink empty (ring capacity
    /// preserved). Returns default-empty data for a disabled sink.
    pub fn drain(&self) -> SinkData {
        match &self.0 {
            None => SinkData::default(),
            Some(s) => {
                let mut d = s.lock().unwrap();
                let cap = d.ring.capacity();
                std::mem::replace(
                    &mut *d,
                    SinkData {
                        metrics: MetricSet::new(),
                        ring: EventRing::new(cap),
                    },
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let s = TelemetrySink::disabled();
        assert!(!s.enabled());
        s.count("c", 1);
        s.gauge("g", 1, 1.0);
        s.observe("h", 1);
        s.span("cat", "n", 0, 5);
        let d = s.drain();
        assert!(d.metrics.is_empty());
        assert!(d.ring.is_empty());
    }

    #[test]
    fn recording_sink_captures_all_kinds() {
        let s = TelemetrySink::recording(8);
        assert!(s.enabled());
        s.count("c", 2);
        s.count("c", 3);
        s.gauge("g", 7, 0.5);
        s.observe("h", 100);
        s.span("cat", "sp", 10, 4);
        s.instant("cat", "i", 11);
        s.counter_track("snap", "ipc_milli", 12, 1500);
        let d = s.drain();
        assert_eq!(d.metrics.counters["c"], 5);
        assert_eq!(d.metrics.gauges["g"].stamp, 7);
        assert_eq!(d.metrics.hists["h"].count(), 1);
        assert_eq!(d.ring.len(), 3);
        let kinds: Vec<(u64, Option<u64>)> = d.ring.iter().map(|e| (e.dur, e.arg)).collect();
        assert_eq!(kinds, vec![(4, None), (0, None), (0, Some(1500))]);
        // Drained: a second drain is empty.
        assert!(s.drain().metrics.is_empty());
    }

    #[test]
    fn reset_discards_warmup_traffic() {
        let s = TelemetrySink::recording(4);
        s.count("warm", 1);
        s.span("w", "w", 0, 1);
        s.reset();
        s.count("measured", 1);
        let d = s.drain();
        assert!(!d.metrics.counters.contains_key("warm"));
        assert_eq!(d.metrics.counters["measured"], 1);
        assert!(d.ring.is_empty());
    }

    #[test]
    fn clones_share_the_same_data() {
        let s = TelemetrySink::recording(4);
        let c = s.clone();
        c.count("x", 1);
        s.count("x", 1);
        assert_eq!(s.drain().metrics.counters["x"], 2);
    }
}
