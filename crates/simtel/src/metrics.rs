//! The metrics registry: named counters, gauges, and histograms held in
//! a per-worker shard ([`MetricSet`]) with a deterministic merge.
//!
//! Merge semantics are chosen so that `merge` is **associative and
//! commutative** for every metric kind (property-tested), which makes
//! parallel sweeps aggregate bit-identically regardless of worker
//! scheduling:
//!
//! - counters: saturating sum;
//! - gauges: max by `(stamp, value-bits)` — the cycle-stamped "latest
//!   wins" rule, with the bit pattern as a total-order tie-break;
//! - histograms: bucket-wise sum ([`LogHist::merge`]).

use crate::hist::LogHist;
use std::collections::BTreeMap;

/// A cycle-stamped gauge: the value observed at the largest stamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gauge {
    /// Simulation cycle at which the value was observed.
    pub stamp: u64,
    /// The observed value.
    pub value: f64,
}

impl Gauge {
    /// Keeps the observation with the larger `(stamp, value-bits)` key.
    /// Using the IEEE-754 bit pattern as the tie-break gives a total
    /// order on `f64` (NaN included), so the merge is deterministic.
    pub fn merge(&mut self, other: Gauge) {
        if (other.stamp, other.value.to_bits()) > (self.stamp, self.value.to_bits()) {
            *self = other;
        }
    }
}

/// One shard of the metrics registry. Each simulated run records into
/// its own `MetricSet` (single-threaded, no contention); shards are
/// merged deterministically at export time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricSet {
    /// Saturating event counters, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Cycle-stamped gauges, sorted by name.
    pub gauges: BTreeMap<String, Gauge>,
    /// Log-scaled sample histograms, sorted by name.
    pub hists: BTreeMap<String, LogHist>,
}

impl MetricSet {
    /// An empty shard.
    pub fn new() -> Self {
        MetricSet::default()
    }

    /// Adds `n` to the named counter (saturating).
    pub fn count(&mut self, name: &str, n: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c = c.saturating_add(n);
        } else {
            self.counters.insert(name.to_string(), n);
        }
    }

    /// Records a gauge observation at simulation cycle `stamp`.
    pub fn gauge(&mut self, name: &str, stamp: u64, value: f64) {
        let g = Gauge { stamp, value };
        if let Some(cur) = self.gauges.get_mut(name) {
            cur.merge(g);
        } else {
            self.gauges.insert(name.to_string(), g);
        }
    }

    /// Records a histogram sample.
    pub fn observe(&mut self, name: &str, sample: u64) {
        if let Some(h) = self.hists.get_mut(name) {
            h.record(sample);
        } else {
            let mut h = LogHist::new();
            h.record(sample);
            self.hists.insert(name.to_string(), h);
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Merges another shard into this one (associative, commutative).
    pub fn merge(&mut self, other: &MetricSet) {
        for (name, &n) in &other.counters {
            self.count(name, n);
        }
        for (name, &g) in &other.gauges {
            if let Some(cur) = self.gauges.get_mut(name) {
                cur.merge(g);
            } else {
                self.gauges.insert(name.clone(), g);
            }
        }
        for (name, h) in &other.hists {
            if let Some(cur) = self.hists.get_mut(name) {
                cur.merge(h);
            } else {
                self.hists.insert(name.clone(), h.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let mut m = MetricSet::new();
        m.count("a", 2);
        m.count("a", 3);
        m.count("b", u64::MAX);
        m.count("b", 1);
        assert_eq!(m.counters["a"], 5);
        assert_eq!(m.counters["b"], u64::MAX);
    }

    #[test]
    fn gauge_keeps_latest_stamp() {
        let mut m = MetricSet::new();
        m.gauge("ipc", 100, 1.5);
        m.gauge("ipc", 50, 9.0); // earlier stamp loses
        assert_eq!(m.gauges["ipc"], Gauge { stamp: 100, value: 1.5 });
        m.gauge("ipc", 200, 1.1);
        assert_eq!(m.gauges["ipc"].value, 1.1);
        // Equal stamps break ties on the value bit pattern, both ways.
        m.gauge("ipc", 200, 1.4);
        assert_eq!(m.gauges["ipc"].value, 1.4);
        m.gauge("ipc", 200, 1.2);
        assert_eq!(m.gauges["ipc"].value, 1.4);
    }

    #[test]
    fn merge_is_commutative_on_disjoint_and_overlapping_names() {
        let mut a = MetricSet::new();
        a.count("x", 1);
        a.gauge("g", 10, 0.5);
        a.observe("h", 100);
        let mut b = MetricSet::new();
        b.count("x", 2);
        b.count("y", 7);
        b.gauge("g", 20, 0.25);
        b.observe("h", 3);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counters["x"], 3);
        assert_eq!(ab.gauges["g"].stamp, 20);
        assert_eq!(ab.hists["h"].count(), 2);
    }

    #[test]
    fn empty_detection() {
        let mut m = MetricSet::new();
        assert!(m.is_empty());
        m.observe("h", 0);
        assert!(!m.is_empty());
    }
}
