//! Quiet-aware status output.
//!
//! Progress lines that used to be raw `eprintln!` calls route through a
//! [`Console`] so headless/CI runs can silence stderr with `--quiet` or
//! `SIMTEL_QUIET=1` without touching the stdout tables, and so every
//! status line can be mirrored onto the telemetry wall channel.

use crate::telemetry::Telemetry;
use std::sync::Arc;

/// A stderr status-line writer with an optional telemetry mirror.
#[derive(Clone, Default)]
pub struct Console {
    quiet: bool,
    mirror: Option<Arc<Telemetry>>,
    tag: Option<Arc<str>>,
}

impl std::fmt::Debug for Console {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Console")
            .field("quiet", &self.quiet)
            .field("mirror", &self.mirror.is_some())
            .finish()
    }
}

impl Console {
    /// A console that is quiet when `quiet` is set **or** the
    /// `SIMTEL_QUIET` environment variable is truthy (anything except
    /// empty, `0`, or `false`).
    pub fn from_env(quiet: bool) -> Self {
        Console {
            quiet: quiet || env_quiet(),
            mirror: None,
            tag: None,
        }
    }

    /// An explicitly-configured console (tests).
    pub fn new(quiet: bool) -> Self {
        Console { quiet, mirror: None, tag: None }
    }

    /// Mirrors every status line onto `telemetry`'s wall channel as an
    /// instant mark, so a silenced run still keeps its progress history.
    #[must_use]
    pub fn with_mirror(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.mirror = Some(telemetry);
        self
    }

    /// Prefixes every status line with `tag` — e.g. a serving daemon
    /// hands each connection a clone tagged `[conn 3]` so interleaved
    /// per-connection lines stay attributable. The tag is applied to the
    /// wall-channel mirror too.
    #[must_use]
    pub fn with_tag(mut self, tag: &str) -> Self {
        self.tag = Some(Arc::from(tag));
        self
    }

    /// True when stderr output is suppressed.
    pub const fn quiet(&self) -> bool {
        self.quiet
    }

    /// Emits one status line to stderr (unless quiet) and to the wall
    /// channel mirror (always, when attached).
    pub fn status(&self, line: &str) {
        let tagged;
        let line = match &self.tag {
            Some(tag) => {
                tagged = format!("{tag} {line}");
                tagged.as_str()
            }
            None => line,
        };
        if let Some(t) = &self.mirror {
            t.wall_mark("status", line);
        }
        if !self.quiet {
            eprintln!("{line}");
        }
    }
}

fn env_quiet() -> bool {
    match std::env::var("SIMTEL_QUIET") {
        Ok(v) => !(v.is_empty() || v == "0" || v.eq_ignore_ascii_case("false")),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_flag_is_respected() {
        assert!(Console::new(true).quiet());
        assert!(!Console::new(false).quiet());
    }

    #[test]
    fn tagged_console_prefixes_mirrored_lines() {
        let t = Arc::new(Telemetry::with_params(8, 0));
        let c = Console::new(true).with_mirror(Arc::clone(&t)).with_tag("[conn 3]");
        c.status("sweep accepted");
        assert_eq!(t.wall_events(), 1);
        let wall = t.render_wall();
        assert!(wall.contains("[conn 3] sweep accepted"), "{wall}");
    }

    #[test]
    fn status_lines_mirror_to_the_wall_channel_even_when_quiet() {
        let t = Arc::new(Telemetry::with_params(8, 0));
        let c = Console::new(true).with_mirror(Arc::clone(&t));
        c.status("[simsched] done nf4/galgel");
        c.status("[repro] finished");
        assert_eq!(t.wall_events(), 2);
    }
}
