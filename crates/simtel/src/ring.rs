//! Bounded ring buffer of cycle-stamped span events.
//!
//! Every event carries `&'static str` category/name (no allocation on
//! the hot path) and timestamps in **simulation cycles**, so the stream
//! is deterministic. When the ring is full the oldest events are
//! dropped (and counted), bounding memory for arbitrarily long runs.

use std::collections::VecDeque;

/// One cycle-stamped event: a span (`dur > 0`), an instant (`dur == 0`,
/// no `arg`), or a counter sample (`arg` present — exported as a Chrome
/// counter track).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Category (Chrome trace `cat`), e.g. `"nurapid"`.
    pub cat: &'static str,
    /// Event name, e.g. `"demotion_chain"`.
    pub name: &'static str,
    /// Start timestamp in simulation cycles.
    pub start: u64,
    /// Duration in simulation cycles (0 for instants and counters).
    pub dur: u64,
    /// Counter value for counter-track events.
    pub arg: Option<u64>,
}

/// A bounded FIFO of [`SpanEvent`]s.
#[derive(Debug, Clone, Default)]
pub struct EventRing {
    cap: usize,
    buf: VecDeque<SpanEvent>,
    dropped: u64,
}

impl EventRing {
    /// A ring holding at most `cap` events (`cap == 0` drops everything).
    pub fn new(cap: usize) -> Self {
        EventRing {
            cap,
            buf: VecDeque::with_capacity(cap.min(1024)),
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, e: SpanEvent) {
        if self.cap == 0 {
            self.dropped = self.dropped.saturating_add(1);
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped = self.dropped.saturating_add(1);
        }
        self.buf.push_back(e);
    }

    /// Events currently retained, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &SpanEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of events evicted (or refused) because of the bound.
    pub const fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured capacity.
    pub const fn capacity(&self) -> usize {
        self.cap
    }

    /// Discards all retained events and the drop count (used when the
    /// measured phase starts after warm-up).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(start: u64) -> SpanEvent {
        SpanEvent {
            cat: "t",
            name: "e",
            start,
            dur: 1,
            arg: None,
        }
    }

    #[test]
    fn bounded_fifo_drops_oldest() {
        let mut r = EventRing::new(3);
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let starts: Vec<u64> = r.iter().map(|e| e.start).collect();
        assert_eq!(starts, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_refuses_everything() {
        let mut r = EventRing::new(0);
        r.push(ev(1));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut r = EventRing::new(2);
        r.push(ev(1));
        r.push(ev(2));
        r.push(ev(3));
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.capacity(), 2);
    }
}
