//! `simtel` — the workspace's hermetic, std-only telemetry subsystem.
//!
//! The paper's results are entirely distributional (fractions of hits
//! per d-group, demotion chains, energy breakdowns — NuRAPID, MICRO
//! 2003 §5), and a production-scale simulator needs an observability
//! layer to profile against. This crate supplies it with zero external
//! dependencies:
//!
//! - [`metrics`] / [`hist`] — a **metrics registry**: named counters,
//!   cycle-stamped gauges, and log-scaled histograms with p50/p95/p99
//!   estimates, kept in one shard per run and merged deterministically
//!   (associative + commutative), so parallel sweeps aggregate
//!   bit-identically for any worker-thread count;
//! - [`ring`] / [`sink`] — **cycle-stamped spans and events** (tag
//!   probes, d-group accesses, demotion chains, MSHR stalls, DRAM round
//!   trips) in a bounded ring behind the [`TelemetrySink`] handle, which
//!   is a no-op by default and free when disabled (benched in
//!   `BENCH_telemetry.json`);
//! - [`telemetry`] — the aggregator and **exporters**: Chrome
//!   trace-event JSON for `chrome://tracing`/Perfetto (`trace.json`,
//!   deterministic; `wall.json`, the separate wall-clock profiling
//!   channel) and a flat `metrics.json` snapshot per sweep;
//! - [`trace`] — an in-tree validator for the exported trace format;
//! - [`console`] — quiet-aware status lines (`--quiet`/`SIMTEL_QUIET`).
//!
//! The simulator crates (`cpu`, `memsys`, `nuca`, `nurapid`) accept a
//! [`TelemetrySink`] via `set_telemetry`; `experiments` threads one sink
//! per run and hands the drained data to [`Telemetry`]; the `repro`
//! binary surfaces the whole subsystem as `--telemetry <dir>` /
//! `SIMTEL_DIR`.
//!
//! # Examples
//!
//! ```
//! use simtel::{Telemetry, TelemetrySink, Value};
//!
//! let tel = Telemetry::with_params(256, 0);
//! let sink = tel.run_sink();
//! sink.count("l2.accesses", 1);
//! sink.observe("dram.round_trip_cycles", 240);
//! sink.span("nurapid", "demotion_chain", 1_000, 12);
//! tel.record_run("nf4/galgel", "digest", vec![("ipc", Value::F64(1.5))], &sink);
//! assert!(simtel::trace::validate_chrome_trace(&tel.render_trace()).is_ok());
//! ```

pub mod console;
pub mod hist;
pub mod l4names;
pub mod metrics;
pub mod percore;
pub mod ring;
pub mod sink;
pub mod telemetry;
pub mod trace;

pub use console::Console;
pub use hist::LogHist;
pub use metrics::MetricSet;
pub use sink::{SinkData, TelemetrySink};
pub use telemetry::{Telemetry, Value};
