//! The per-process telemetry aggregator and its exporters.
//!
//! One [`Telemetry`] instance collects the [`SinkData`] of every run in
//! a sweep plus the scheduler's wall-clock spans, and renders three
//! artifacts:
//!
//! - `metrics.json` — a flat snapshot: per-run summary fields (IPC,
//!   d-group hit fractions, …), per-run metric shards, and the
//!   deterministic cross-run merge (`totals`);
//! - `trace.json` — the **deterministic channel**: cycle-stamped spans
//!   on one Chrome-trace thread per run (1 trace µs = 1 simulated
//!   cycle), byte-identical for any worker-thread count;
//! - `wall.json` — the **non-deterministic profiling channel**:
//!   wall-clock scheduler spans, kept in a separate file precisely so
//!   the deterministic artifacts stay comparable across machines and
//!   thread counts.
//!
//! Determinism model: runs are keyed by `(label, digest)` in a
//! [`BTreeMap`], so export order is a pure function of *which* runs
//! executed, never of when or on which worker they finished. Everything
//! inside a run is recorded single-threaded against simulation cycles,
//! and the shard merge ([`MetricSet::merge`]) is associative and
//! commutative.

use crate::metrics::MetricSet;
use crate::sink::{SinkData, TelemetrySink};
use simbase::json::Json;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

/// Default bound on retained span events per run (`SIMTEL_RING`).
pub const DEFAULT_RING_CAP: usize = 512;

/// Default cycles between progress snapshots (`SIMTEL_SNAP_CYCLES`).
pub const DEFAULT_SNAP_CYCLES: u64 = 250_000;

/// A summary field attached to a run record.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An exact integer.
    U64(u64),
    /// A float (rendered shortest-round-trip, so it re-parses bit-exact).
    F64(f64),
    /// A float vector (e.g. per-d-group hit fractions).
    F64s(Vec<f64>),
    /// A string.
    Str(String),
}

impl Value {
    fn to_json(&self) -> Json {
        match self {
            Value::U64(v) => Json::U64(*v),
            Value::F64(v) => Json::F64(*v),
            Value::F64s(vs) => Json::Arr(vs.iter().map(|&v| Json::F64(v)).collect()),
            Value::Str(s) => Json::Str(s.clone()),
        }
    }
}

/// Everything recorded about one completed run.
#[derive(Debug, Clone, Default)]
struct RunRecord {
    fields: Vec<(&'static str, Value)>,
    data: SinkData,
}

/// One wall-clock event on the non-deterministic channel.
#[derive(Debug, Clone)]
struct WallEvent {
    cat: &'static str,
    name: String,
    ts_us: u64,
    dur_us: u64,
    instant: bool,
}

/// The process-wide telemetry collector. Shared via `Arc` between the
/// sweep, the scheduler observer, and the exporter.
#[derive(Debug)]
pub struct Telemetry {
    epoch: Instant,
    ring_cap: usize,
    snap_cycles: u64,
    runs: Mutex<BTreeMap<(String, String), RunRecord>>,
    wall: Mutex<Vec<WallEvent>>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::from_env()
    }
}

impl Telemetry {
    /// A collector with explicit parameters (tests and benches).
    pub fn with_params(ring_cap: usize, snap_cycles: u64) -> Self {
        Telemetry {
            epoch: Instant::now(),
            ring_cap,
            snap_cycles,
            runs: Mutex::new(BTreeMap::new()),
            wall: Mutex::new(Vec::new()),
        }
    }

    /// A collector configured from `SIMTEL_RING` and `SIMTEL_SNAP_CYCLES`
    /// (falling back to [`DEFAULT_RING_CAP`] / [`DEFAULT_SNAP_CYCLES`]).
    pub fn from_env() -> Self {
        let ring_cap = env_parse("SIMTEL_RING", DEFAULT_RING_CAP);
        let snap_cycles = env_parse("SIMTEL_SNAP_CYCLES", DEFAULT_SNAP_CYCLES);
        Telemetry::with_params(ring_cap, snap_cycles)
    }

    /// A fresh recording sink for one run.
    pub fn run_sink(&self) -> TelemetrySink {
        TelemetrySink::recording(self.ring_cap)
    }

    /// Cycles between periodic progress snapshots.
    pub const fn snap_cycles(&self) -> u64 {
        self.snap_cycles
    }

    /// Stores a completed run: its summary `fields` and whatever `sink`
    /// recorded. `dedup` (conventionally the configuration digest)
    /// disambiguates distinct configurations sharing a display label;
    /// re-recording the same `(label, dedup)` keeps the first record.
    pub fn record_run(
        &self,
        label: &str,
        dedup: &str,
        fields: Vec<(&'static str, Value)>,
        sink: &TelemetrySink,
    ) {
        let data = sink.drain();
        self.runs
            .lock()
            .unwrap()
            .entry((label.to_string(), dedup.to_string()))
            .or_insert(RunRecord { fields, data });
    }

    /// Number of recorded runs.
    pub fn runs(&self) -> usize {
        self.runs.lock().unwrap().len()
    }

    /// Records a wall-clock span that ended now and lasted `wall_ns`
    /// (non-deterministic channel).
    pub fn wall_span(&self, cat: &'static str, name: &str, wall_ns: u64) {
        let end_us = self.epoch.elapsed().as_micros() as u64;
        let dur_us = wall_ns / 1_000;
        self.wall.lock().unwrap().push(WallEvent {
            cat,
            name: name.to_string(),
            ts_us: end_us.saturating_sub(dur_us),
            dur_us,
            instant: false,
        });
    }

    /// Records an instantaneous wall-clock mark (e.g. a routed status
    /// line) on the non-deterministic channel.
    pub fn wall_mark(&self, cat: &'static str, name: &str) {
        let ts_us = self.epoch.elapsed().as_micros() as u64;
        self.wall.lock().unwrap().push(WallEvent {
            cat,
            name: name.to_string(),
            ts_us,
            dur_us: 0,
            instant: true,
        });
    }

    /// Number of wall-clock events recorded.
    pub fn wall_events(&self) -> usize {
        self.wall.lock().unwrap().len()
    }

    /// Number of wall-clock events recorded in category `cat` — the
    /// per-track view of the wall channel. Sampled runs use it to count
    /// their `"sample-window"` marks and `"simchk"` hit/miss marks.
    pub fn wall_events_in(&self, cat: &str) -> usize {
        self.wall.lock().unwrap().iter().filter(|e| e.cat == cat).count()
    }

    /// Total duration (µs) of wall spans recorded in category `cat`.
    /// This is the sampling-overhead track: comparing
    /// `"sample-prefix"` (functional fast-forward and snapshot seeding)
    /// against `"sample-measure"` (the detailed windows) shows where a
    /// sampled run's wall time actually went.
    pub fn wall_time_in(&self, cat: &str) -> u64 {
        self.wall.lock().unwrap().iter().filter(|e| e.cat == cat).map(|e| e.dur_us).sum()
    }

    /// Display labels in export order, disambiguated exactly as the
    /// exporters disambiguate them.
    fn display_labels(runs: &BTreeMap<(String, String), RunRecord>) -> Vec<String> {
        runs.keys()
            .map(|(label, dedup)| {
                let dup = runs.keys().filter(|(l, _)| l == label).count() > 1;
                if dup {
                    format!("{label}#{}", &dedup[..dedup.len().min(8)])
                } else {
                    label.clone()
                }
            })
            .collect()
    }

    /// Renders `metrics.json`: per-run fields and shards plus the
    /// deterministic cross-run merge.
    pub fn render_metrics(&self) -> String {
        let runs = self.runs.lock().unwrap();
        let labels = Self::display_labels(&runs);
        let mut totals = MetricSet::new();
        let mut run_objs = Vec::with_capacity(runs.len());
        for (label, rec) in labels.iter().zip(runs.values()) {
            totals.merge(&rec.data.metrics);
            let mut pairs: Vec<(&str, Json)> =
                rec.fields.iter().map(|(k, v)| (*k, v.to_json())).collect();
            pairs.push(("counters", counters_json(&rec.data.metrics)));
            pairs.push(("gauges", gauges_json(&rec.data.metrics)));
            pairs.push(("hists", hists_json(&rec.data.metrics)));
            pairs.push(("events_retained", Json::U64(rec.data.ring.len() as u64)));
            pairs.push(("events_dropped", Json::U64(rec.data.ring.dropped())));
            run_objs.push((label.as_str(), Json::obj(pairs)));
        }
        Json::obj(vec![
            ("schema", Json::Str("simtel-metrics-v1".into())),
            ("runs", Json::obj(run_objs)),
            (
                "totals",
                Json::obj(vec![
                    ("counters", counters_json(&totals)),
                    ("hists", hists_json(&totals)),
                ]),
            ),
        ])
        .render()
    }

    /// Renders `trace.json`, the deterministic cycle-stamped channel:
    /// one Chrome-trace thread per run, 1 trace µs = 1 simulated cycle.
    pub fn render_trace(&self) -> String {
        let runs = self.runs.lock().unwrap();
        let labels = Self::display_labels(&runs);
        let mut events = vec![meta_event("process_name", 0, 0, "simulation (cycle time)")];
        for (i, (label, rec)) in labels.iter().zip(runs.values()).enumerate() {
            let tid = i as u64 + 1;
            events.push(meta_event("thread_name", 0, tid, label));
            for e in rec.data.ring.iter() {
                let mut pairs = vec![
                    ("name", Json::Str(e.name.into())),
                    ("cat", Json::Str(e.cat.into())),
                ];
                match e.arg {
                    Some(v) => {
                        pairs.push(("ph", Json::Str("C".into())));
                        pairs.push(("ts", Json::U64(e.start)));
                        pairs.push(("args", Json::obj(vec![("value", Json::U64(v))])));
                    }
                    None if e.dur == 0 => {
                        pairs.push(("ph", Json::Str("i".into())));
                        pairs.push(("ts", Json::U64(e.start)));
                        pairs.push(("s", Json::Str("t".into())));
                    }
                    None => {
                        pairs.push(("ph", Json::Str("X".into())));
                        pairs.push(("ts", Json::U64(e.start)));
                        pairs.push(("dur", Json::U64(e.dur)));
                    }
                }
                pairs.push(("pid", Json::U64(0)));
                pairs.push(("tid", Json::U64(tid)));
                events.push(Json::obj(pairs));
            }
        }
        trace_file(events)
    }

    /// Renders `wall.json`, the non-deterministic wall-clock channel
    /// (scheduler spans; timestamps in real µs since collector start).
    pub fn render_wall(&self) -> String {
        let wall = self.wall.lock().unwrap();
        let mut events = vec![meta_event("process_name", 1, 0, "scheduler (wall clock)")];
        for e in wall.iter() {
            let mut pairs = vec![
                ("name", Json::Str(e.name.clone())),
                ("cat", Json::Str(e.cat.into())),
            ];
            if e.instant {
                pairs.push(("ph", Json::Str("i".into())));
                pairs.push(("ts", Json::U64(e.ts_us)));
                pairs.push(("s", Json::Str("p".into())));
            } else {
                pairs.push(("ph", Json::Str("X".into())));
                pairs.push(("ts", Json::U64(e.ts_us)));
                pairs.push(("dur", Json::U64(e.dur_us)));
            }
            pairs.push(("pid", Json::U64(1)));
            pairs.push(("tid", Json::U64(1)));
            events.push(Json::obj(pairs));
        }
        trace_file(events)
    }

    /// Writes `metrics.json`, `trace.json`, and `wall.json` under `dir`
    /// (created if missing).
    pub fn write_all(&self, dir: impl AsRef<Path>) -> io::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("metrics.json"), self.render_metrics())?;
        std::fs::write(dir.join("trace.json"), self.render_trace())?;
        std::fs::write(dir.join("wall.json"), self.render_wall())?;
        Ok(())
    }
}

fn env_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn counters_json(m: &MetricSet) -> Json {
    Json::Obj(m.counters.iter().map(|(k, &v)| (k.clone(), Json::U64(v))).collect())
}

fn gauges_json(m: &MetricSet) -> Json {
    Json::Obj(
        m.gauges
            .iter()
            .map(|(k, g)| {
                (
                    k.clone(),
                    Json::obj(vec![
                        ("cycle", Json::U64(g.stamp)),
                        ("value", Json::F64(g.value)),
                    ]),
                )
            })
            .collect(),
    )
}

fn hists_json(m: &MetricSet) -> Json {
    Json::Obj(
        m.hists
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    Json::obj(vec![
                        ("count", Json::U64(h.count())),
                        ("mean", Json::F64(h.mean())),
                        ("p50", Json::U64(h.p50())),
                        ("p95", Json::U64(h.p95())),
                        ("p99", Json::U64(h.p99())),
                        ("max", Json::U64(h.max())),
                    ]),
                )
            })
            .collect(),
    )
}

fn meta_event(name: &str, pid: u64, tid: u64, value: &str) -> Json {
    Json::obj(vec![
        ("name", Json::Str(name.into())),
        ("ph", Json::Str("M".into())),
        ("pid", Json::U64(pid)),
        ("tid", Json::U64(tid)),
        ("args", Json::obj(vec![("name", Json::Str(value.into()))])),
    ])
}

fn trace_file(events: Vec<Json>) -> String {
    Json::obj(vec![
        ("displayTimeUnit", Json::Str("ms".into())),
        ("traceEvents", Json::Arr(events)),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::validate_chrome_trace;

    fn record(t: &Telemetry, label: &str, dedup: &str, frac: f64) {
        let sink = t.run_sink();
        sink.count("l2.accesses", 100);
        sink.observe("chain_len", 3);
        sink.span("nurapid", "dgroup0", 10, 4);
        sink.counter_track("snap", "ipc_milli", 20, 1500);
        t.record_run(
            label,
            dedup,
            vec![
                ("app", Value::Str("galgel".into())),
                ("ipc", Value::F64(1.25)),
                ("group_fracs", Value::F64s(vec![frac, 1.0 - frac])),
            ],
            &sink,
        );
    }

    #[test]
    fn exports_are_independent_of_recording_order() {
        let a = Telemetry::with_params(64, 0);
        record(&a, "nf4/galgel", "d1", 0.75);
        record(&a, "base/galgel", "d2", 0.5);
        let b = Telemetry::with_params(64, 0);
        record(&b, "base/galgel", "d2", 0.5);
        record(&b, "nf4/galgel", "d1", 0.75);
        assert_eq!(a.render_metrics(), b.render_metrics());
        assert_eq!(a.render_trace(), b.render_trace());
    }

    #[test]
    fn rendered_trace_validates_and_counts_events() {
        let t = Telemetry::with_params(64, 0);
        record(&t, "nf4/galgel", "d1", 0.75);
        let s = validate_chrome_trace(&t.render_trace()).expect("valid trace");
        assert_eq!(s.complete_spans, 1);
        assert_eq!(s.counters, 1);
        assert_eq!(s.metadata, 2); // process_name + one thread_name
    }

    #[test]
    fn metrics_fields_roundtrip_bit_exactly() {
        let t = Telemetry::with_params(64, 0);
        let frac = 0.1 + 0.2; // a value with a non-trivial shortest form
        record(&t, "nf4/galgel", "d1", frac);
        let parsed = simbase::json::parse(&t.render_metrics()).expect("parses");
        let run = parsed.field("runs").and_then(|r| r.field("nf4/galgel")).expect("run");
        let fracs = run.field("group_fracs").and_then(Json::as_arr).expect("fracs");
        match fracs[0] {
            Json::F64(v) => assert_eq!(v.to_bits(), frac.to_bits()),
            ref other => panic!("expected F64, got {other:?}"),
        }
        assert_eq!(
            run.field("counters").and_then(|c| c.field("l2.accesses")).and_then(Json::as_u64),
            Some(100)
        );
    }

    #[test]
    fn duplicate_labels_are_disambiguated_by_digest() {
        let t = Telemetry::with_params(64, 0);
        record(&t, "nf4/galgel", "aaaabbbbcccc", 0.75);
        record(&t, "nf4/galgel", "ddddeeeeffff", 0.5);
        let parsed = simbase::json::parse(&t.render_metrics()).expect("parses");
        let runs = parsed.field("runs").expect("runs");
        assert!(runs.field("nf4/galgel#aaaabbbb").is_some());
        assert!(runs.field("nf4/galgel#ddddeeee").is_some());
    }

    #[test]
    fn duplicate_records_keep_the_first() {
        let t = Telemetry::with_params(64, 0);
        record(&t, "nf4/galgel", "d1", 0.75);
        record(&t, "nf4/galgel", "d1", 0.25);
        assert_eq!(t.runs(), 1);
        let parsed = simbase::json::parse(&t.render_metrics()).expect("parses");
        let run = parsed.field("runs").and_then(|r| r.field("nf4/galgel")).expect("run");
        let fracs = run.field("group_fracs").and_then(Json::as_arr).expect("fracs");
        assert_eq!(fracs[0], Json::F64(0.75));
    }

    #[test]
    fn wall_channel_is_separate_and_validates() {
        let t = Telemetry::with_params(64, 0);
        t.wall_span("simsched", "nf4/galgel", 2_000_000);
        t.wall_mark("repro", "tables rendered");
        assert_eq!(t.wall_events(), 2);
        let s = validate_chrome_trace(&t.render_wall()).expect("valid wall trace");
        assert_eq!(s.complete_spans, 1);
        assert_eq!(s.instants, 1);
        // The deterministic channels are untouched by wall events.
        assert_eq!(t.runs(), 0);
        let m = t.render_metrics();
        assert!(!m.contains("nf4/galgel"));
    }

    #[test]
    fn write_all_creates_the_three_files() {
        let t = Telemetry::with_params(64, 0);
        record(&t, "nf4/galgel", "d1", 0.75);
        let dir = std::env::temp_dir().join(format!("simtel-test-{}", std::process::id()));
        t.write_all(&dir).expect("write");
        for f in ["metrics.json", "trace.json", "wall.json"] {
            let path = dir.join(f);
            let src = std::fs::read_to_string(&path).expect("written");
            assert!(simbase::json::parse(&src).is_ok(), "{f} parses");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wall_category_views_partition_the_channel() {
        let t = Telemetry::with_params(64, 0);
        t.wall_span("sample-prefix", "nf4/galgel", 3_000_000);
        t.wall_span("sample-measure", "nf4/galgel", 1_000_000);
        t.wall_span("sample-measure", "nf4/galgel", 2_000_000);
        t.wall_mark("sample-window", "nf4/galgel/w0");
        t.wall_mark("sample-window", "nf4/galgel/w1");
        assert_eq!(t.wall_events(), 5);
        assert_eq!(t.wall_events_in("sample-prefix"), 1);
        assert_eq!(t.wall_events_in("sample-measure"), 2);
        assert_eq!(t.wall_events_in("sample-window"), 2);
        assert_eq!(t.wall_events_in("absent"), 0);
        assert_eq!(t.wall_time_in("sample-prefix"), 3_000);
        assert_eq!(t.wall_time_in("sample-measure"), 3_000);
        // Marks are instantaneous: a track of marks has zero duration.
        assert_eq!(t.wall_time_in("sample-window"), 0);
    }
}
