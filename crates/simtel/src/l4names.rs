//! Metric names of the L4 DRAM-cache tier.
//!
//! Like [`percore`](crate::percore), names flow through the sink as
//! `&'static str`, so the `l4.*` namespace is pinned here — the one
//! place the L4 tier and its consumers (telcheck, plots) agree on
//! spelling.

/// Block requests (fills plus writebacks) reaching the L4.
pub const ACCESSES: &str = "l4.accesses";

/// Resize events applied to the live bank set.
pub const RESIZES: &str = "l4.resizes";

/// Dirty blocks flushed to DRAM by bank retirement.
pub const RESIZE_WRITEBACKS: &str = "l4.resize_writebacks";
