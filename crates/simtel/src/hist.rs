//! Log-scaled histogram with quantile estimates.
//!
//! Samples land in power-of-two buckets (bucket `i` covers
//! `[2^(i-1), 2^i)`), so a 65-slot array spans the full `u64` range with
//! bounded error: every quantile estimate is the upper bound of the
//! bucket holding the exact order statistic, i.e. **within one bucket of
//! the exact value** (property-tested). Bucket-wise merge is associative
//! and commutative, which is what lets shard-per-worker telemetry
//! aggregate bit-identically regardless of merge order.

/// Number of buckets: one for zero plus one per `u64` bit length.
pub const N_BUCKETS: usize = 65;

/// A log₂-bucketed histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHist {
    buckets: [u64; N_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHist {
    fn default() -> Self {
        LogHist::new()
    }
}

/// The bucket index of a sample: 0 for 0, else the bit length of `v`.
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

impl LogHist {
    /// An empty histogram.
    pub const fn new() -> Self {
        LogHist {
            buckets: [0; N_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample. Saturating throughout: a runaway run degrades
    /// to pinned counts rather than panicking.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] = self.buckets[bucket_of(v)].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    pub const fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 when empty).
    pub const fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// The estimated `q`-quantile (`0.0 ..= 1.0`): the inclusive upper
    /// bound of the bucket containing the exact order statistic of rank
    /// `ceil(q · count)`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Bucket-wise merge. Associative and commutative, so shard merge
    /// order never changes the aggregate.
    pub fn merge(&mut self, other: &LogHist) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// Inclusive upper bound of bucket `i`.
fn upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 1..64usize {
            // The upper bound of bucket i is the last value mapping to it.
            assert_eq!(bucket_of(upper_bound(i)), i);
            assert_eq!(bucket_of(upper_bound(i) + 1), i + 1);
        }
    }

    #[test]
    fn quantiles_of_uniform_samples() {
        let mut h = LogHist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.max(), 1000);
        // Exact p50 is 500 (bucket 9: 256..=511); the estimate is the
        // bucket's upper bound.
        assert_eq!(bucket_of(h.p50()), bucket_of(500));
        assert_eq!(bucket_of(h.p99()), bucket_of(990));
        assert!(h.p50() <= h.p95() && h.p95() <= h.p99());
    }

    #[test]
    fn quantile_edge_cases() {
        let mut h = LogHist::new();
        assert_eq!(h.quantile(0.5), 0);
        h.record(7);
        assert_eq!(h.quantile(0.0), 7);
        assert_eq!(h.quantile(1.0), 7);
        // A single sample caps the estimate at the observed max even
        // though the bucket upper bound is 7.
        let mut one = LogHist::new();
        one.record(5);
        assert_eq!(one.p50(), 5);
    }

    #[test]
    fn merge_matches_recording_everything_in_one_histogram() {
        let samples_a = [3u64, 900, 17, 0, u64::MAX];
        let samples_b = [1u64, 2, 4, 1 << 40];
        let mut a = LogHist::new();
        let mut b = LogHist::new();
        let mut all = LogHist::new();
        for &s in &samples_a {
            a.record(s);
            all.record(s);
        }
        for &s in &samples_b {
            b.record(s);
            all.record(s);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let mut h = LogHist::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }
}
