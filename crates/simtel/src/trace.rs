//! In-tree validator for the Chrome trace-event JSON the exporters emit.
//!
//! Checks the subset of the trace-event format Perfetto and
//! `chrome://tracing` require of our files: a `traceEvents` array whose
//! entries carry `name`, `ph`, `pid`, `tid`, a numeric `ts` (metadata
//! events excepted), and a `dur` for complete (`"X"`) spans. CI runs
//! this over the `repro --telemetry` output so a format regression fails
//! the build instead of silently producing an unloadable trace.

use simbase::json::{self, Json};

/// What a validated trace contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Total events.
    pub events: usize,
    /// Complete spans (`ph == "X"`).
    pub complete_spans: usize,
    /// Instant events (`ph == "i"`).
    pub instants: usize,
    /// Counter samples (`ph == "C"`).
    pub counters: usize,
    /// Metadata events (`ph == "M"`).
    pub metadata: usize,
}

/// Parses `src` and validates it as a Chrome trace-event file.
pub fn validate_chrome_trace(src: &str) -> Result<TraceSummary, String> {
    let v = json::parse(src).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = v
        .field("traceEvents")
        .ok_or("missing \"traceEvents\" key")?
        .as_arr()
        .ok_or("\"traceEvents\" is not an array")?;
    let mut summary = TraceSummary {
        events: events.len(),
        ..TraceSummary::default()
    };
    for (i, e) in events.iter().enumerate() {
        let ctx = |msg: &str| format!("event {i}: {msg}");
        if e.field("name").and_then(Json::as_str).is_none() {
            return Err(ctx("missing string \"name\""));
        }
        let ph = e
            .field("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing string \"ph\""))?;
        for key in ["pid", "tid"] {
            if !matches!(e.field(key), Some(Json::U64(_) | Json::I64(_))) {
                return Err(ctx(&format!("missing integer {key:?}")));
            }
        }
        let has_ts = matches!(e.field("ts"), Some(Json::U64(_) | Json::I64(_) | Json::F64(_)));
        match ph {
            "X" => {
                if !has_ts {
                    return Err(ctx("complete span missing numeric \"ts\""));
                }
                if !matches!(e.field("dur"), Some(Json::U64(_) | Json::I64(_) | Json::F64(_))) {
                    return Err(ctx("complete span missing numeric \"dur\""));
                }
                summary.complete_spans += 1;
            }
            "i" => {
                if !has_ts {
                    return Err(ctx("instant missing numeric \"ts\""));
                }
                summary.instants += 1;
            }
            "C" => {
                if !has_ts {
                    return Err(ctx("counter missing numeric \"ts\""));
                }
                if e.field("args").is_none() {
                    return Err(ctx("counter missing \"args\""));
                }
                summary.counters += 1;
            }
            "M" => summary.metadata += 1,
            other => return Err(ctx(&format!("unknown phase {other:?}"))),
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_minimal_valid_trace() {
        let src = r#"{"traceEvents":[
            {"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"sim"}},
            {"name":"s","cat":"c","ph":"X","ts":10,"dur":5,"pid":0,"tid":1},
            {"name":"i","cat":"c","ph":"i","ts":11,"s":"t","pid":0,"tid":1},
            {"name":"v","cat":"c","ph":"C","ts":12,"pid":0,"tid":1,"args":{"value":3}}
        ]}"#;
        let s = validate_chrome_trace(src).expect("valid");
        assert_eq!(
            s,
            TraceSummary {
                events: 4,
                complete_spans: 1,
                instants: 1,
                counters: 1,
                metadata: 1,
            }
        );
    }

    #[test]
    fn rejects_malformed_traces() {
        let cases = [
            ("not json", "not valid JSON"),
            (r#"{"foo":[]}"#, "missing \"traceEvents\""),
            (r#"{"traceEvents":{}}"#, "not an array"),
            (r#"{"traceEvents":[{"ph":"X","ts":0,"dur":1,"pid":0,"tid":0}]}"#, "name"),
            (r#"{"traceEvents":[{"name":"a","ph":"X","ts":0,"pid":0,"tid":0}]}"#, "dur"),
            (r#"{"traceEvents":[{"name":"a","ph":"X","ts":0,"dur":1,"tid":0}]}"#, "pid"),
            (r#"{"traceEvents":[{"name":"a","ph":"Z","ts":0,"pid":0,"tid":0}]}"#, "unknown phase"),
            (r#"{"traceEvents":[{"name":"a","ph":"C","ts":0,"pid":0,"tid":0}]}"#, "args"),
        ];
        for (src, needle) in cases {
            let err = validate_chrome_trace(src).expect_err(src);
            assert!(err.contains(needle), "{src}: {err}");
        }
    }
}
