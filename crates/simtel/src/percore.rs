//! Per-core metric names for chip-multiprocessor runs.
//!
//! Metric and counter names flow through the sink as `&'static str`
//! (interning keeps the record path allocation-free), so per-core
//! prefixes cannot be formatted at runtime. This module pins one static
//! name table per CMP metric, indexed by core id, plus the shared
//! bank-contention counters — the single place the `cmp.coreN.*`
//! namespace is defined.

/// The largest core count the CMP front-end supports.
pub const MAX_CORES: usize = 8;

macro_rules! per_core_names {
    ($fn_name:ident, $doc:literal, [$($name:literal),+ $(,)?]) => {
        #[doc = $doc]
        ///
        /// # Panics
        ///
        /// Panics if `core >= MAX_CORES`.
        pub const fn $fn_name(core: usize) -> &'static str {
            const NAMES: [&str; MAX_CORES] = [$($name),+];
            NAMES[core]
        }
    };
}

per_core_names!(
    instructions,
    "Committed instructions for one core.",
    [
        "cmp.core0.instructions",
        "cmp.core1.instructions",
        "cmp.core2.instructions",
        "cmp.core3.instructions",
        "cmp.core4.instructions",
        "cmp.core5.instructions",
        "cmp.core6.instructions",
        "cmp.core7.instructions",
    ]
);

per_core_names!(
    ipc_milli,
    "Per-core IPC in milli-units (counters are integral).",
    [
        "cmp.core0.ipc_milli",
        "cmp.core1.ipc_milli",
        "cmp.core2.ipc_milli",
        "cmp.core3.ipc_milli",
        "cmp.core4.ipc_milli",
        "cmp.core5.ipc_milli",
        "cmp.core6.ipc_milli",
        "cmp.core7.ipc_milli",
    ]
);

per_core_names!(
    bank_stall_cycles,
    "Bank queue-delay cycles charged to one core's lower-level accesses.",
    [
        "cmp.core0.bank_stall_cycles",
        "cmp.core1.bank_stall_cycles",
        "cmp.core2.bank_stall_cycles",
        "cmp.core3.bank_stall_cycles",
        "cmp.core4.bank_stall_cycles",
        "cmp.core5.bank_stall_cycles",
        "cmp.core6.bank_stall_cycles",
        "cmp.core7.bank_stall_cycles",
    ]
);

per_core_names!(
    invalidations,
    "Private-L1 lines dropped in this core by other cores' writes.",
    [
        "cmp.core0.invalidations",
        "cmp.core1.invalidations",
        "cmp.core2.invalidations",
        "cmp.core3.invalidations",
        "cmp.core4.invalidations",
        "cmp.core5.invalidations",
        "cmp.core6.invalidations",
        "cmp.core7.invalidations",
    ]
);

/// Accesses that found their lower-level bank busy, all cores combined.
pub const BANK_CONFLICTS: &str = "cmp.bank_conflicts";

/// Queue-delay cycles charged by the bank model, all cores combined.
pub const BANK_STALL_CYCLES: &str = "cmp.bank_stall_cycles";

/// Cross-core invalidations delivered by the sharing model.
pub const INVALIDATIONS: &str = "cmp.invalidations";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct_and_indexed() {
        let mut seen = std::collections::BTreeSet::new();
        for c in 0..MAX_CORES {
            for name in [
                instructions(c),
                ipc_milli(c),
                bank_stall_cycles(c),
                invalidations(c),
            ] {
                assert!(name.contains(&format!("core{c}")), "{name} lacks core{c}");
                assert!(seen.insert(name), "{name} duplicated");
            }
        }
        assert!(seen.insert(BANK_CONFLICTS));
        assert!(seen.insert(BANK_STALL_CYCLES));
        assert!(seen.insert(INVALIDATIONS));
    }

    #[test]
    #[should_panic]
    fn out_of_range_core_panics() {
        let _ = instructions(MAX_CORES);
    }
}
