//! Property tests for the telemetry registry, on the in-tree `simkit`
//! engine: histogram quantile estimates stay within one bucket of the
//! exact order statistic, and shard merge is associative and commutative
//! (merge order never changes the report).

use simkit::prop::{checker, range_u64, vec_of};
use simtel::hist::{bucket_of, LogHist};
use simtel::MetricSet;

/// Exact quantile of `samples` at `q`: the order statistic of rank
/// `ceil(q · n)` — the same rank definition [`LogHist::quantile`] uses.
fn exact_quantile(samples: &[u64], q: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[test]
fn quantile_estimates_stay_within_one_bucket_of_exact() {
    checker("hist_quantile_within_one_bucket").cases(128).check(
        &vec_of(range_u64(0, 1 << 34), 1, 300),
        |samples| {
            let mut h = LogHist::new();
            for &s in samples {
                h.record(s);
            }
            for q in [0.0, 0.25, 0.50, 0.75, 0.95, 0.99, 1.0] {
                let est = h.quantile(q);
                let exact = exact_quantile(samples, q);
                let (be, bx) = (bucket_of(est), bucket_of(exact));
                assert!(
                    be.abs_diff(bx) <= 1,
                    "q={q}: estimate {est} (bucket {be}) vs exact {exact} (bucket {bx})"
                );
                assert!(est <= h.max(), "estimate must not exceed the observed max");
            }
        },
    );
}

#[test]
fn histogram_merge_is_associative_and_commutative() {
    let gen = (
        vec_of(range_u64(0, u64::MAX / 2), 0, 100),
        vec_of(range_u64(0, u64::MAX / 2), 0, 100),
        vec_of(range_u64(0, u64::MAX / 2), 0, 100),
    );
    checker("hist_merge_assoc_comm").cases(128).check(&gen, |(xs, ys, zs)| {
        let h = |samples: &Vec<u64>| {
            let mut h = LogHist::new();
            for &s in samples {
                h.record(s);
            }
            h
        };
        let (a, b, c) = (h(xs), h(ys), h(zs));

        // Commutative: a ∪ b == b ∪ a.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);

        // Associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
    });
}

/// Builds a shard from generated (metric index, value) operations,
/// exercising all three metric kinds under colliding names.
fn shard(ops: &[(u64, u64)]) -> MetricSet {
    const NAMES: [&str; 3] = ["alpha", "beta", "gamma"];
    let mut m = MetricSet::new();
    for &(sel, v) in ops {
        let name = NAMES[(sel % 3) as usize];
        match sel % 5 {
            0 | 1 => m.count(name, v),
            2 => m.gauge(name, v, (v % 1000) as f64 / 7.0),
            _ => m.observe(name, v),
        }
    }
    m
}

#[test]
fn shard_merge_is_associative_and_commutative() {
    let ops = || vec_of((range_u64(0, u64::MAX), range_u64(0, u64::MAX)), 0, 60);
    checker("shard_merge_assoc_comm").cases(128).check(&(ops(), ops(), ops()), |(xs, ys, zs)| {
        let (a, b, c) = (shard(xs), shard(ys), shard(zs));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");

        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "merge must be associative");
    });
}

#[test]
fn merged_shard_equals_single_shard_over_the_union() {
    let ops = || vec_of((range_u64(0, u64::MAX), range_u64(0, u64::MAX)), 0, 60);
    checker("shard_merge_equals_union").cases(128).check(&(ops(), ops()), |(xs, ys)| {
        let mut merged = shard(xs);
        merged.merge(&shard(ys));
        // Counters and histograms are order-insensitive sums, so the
        // merged shard must equal one shard fed the concatenation.
        let mut both = xs.clone();
        both.extend_from_slice(ys);
        let union = shard(&both);
        assert_eq!(merged.counters, union.counters);
        assert_eq!(merged.hists, union.hists);
    });
}
