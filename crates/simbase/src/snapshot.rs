//! Versioned binary checkpoint codec for architectural state.
//!
//! The warm-up engine (`experiments::runner`) snapshots the complete
//! architectural state of a warmed system — tag arrays, d-group contents,
//! LRU orders, forward/reverse pointers, RNG streams — so later runs that
//! share a warm-up configuration can restore it instead of re-warming.
//! Those snapshots live on disk across processes, which makes them a file
//! format: this module owns the container framing (magic, version,
//! payload length, checksum) and the primitive encoders/decoders, so a
//! truncated write, a corrupted byte, or a snapshot from an older codec
//! version is *detected* rather than silently deserialized into a subtly
//! wrong cache.
//!
//! The container layout, all little-endian:
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"SIMCHK\x00\x01"
//!      8     4  version (u32, chosen by the payload's owner)
//!     12     8  payload length (u64)
//!     20     n  payload
//!   20+n    16  FNV-1a-128 checksum of bytes [0, 20+n)
//! ```
//!
//! The checksum reuses the workspace digest hash ([`crate::digest`]): not
//! cryptographic, but it catches every truncation and any realistic bit
//! corruption, and it is already pinned by the digest golden tests.
//!
//! Payload contents are the owner's business; [`Encoder`] / [`Decoder`]
//! provide the primitive layer (u8/u32/u64/bool, length-prefixed u8/u64
//! slices) with every read bounds-checked against [`SnapshotError`].

use crate::digest::Hasher128;
use std::fmt;

/// Container magic: "SIMCHK" plus a two-byte layout revision.
pub const MAGIC: [u8; 8] = *b"SIMCHK\x00\x01";

/// Bytes of framing around a payload (magic + version + length + checksum).
pub const OVERHEAD: usize = 8 + 4 + 8 + 16;

/// Why a snapshot failed to open or decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream ended before the declared content did.
    Truncated,
    /// The container does not start with [`MAGIC`].
    BadMagic,
    /// The container's version differs from the expected one.
    VersionMismatch {
        /// Version found in the container.
        found: u32,
        /// Version the reader expected.
        expected: u32,
    },
    /// The stored checksum does not match the recomputed one.
    ChecksumMismatch,
    /// A decoded value violates an invariant (context in the message).
    Malformed(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a SIMCHK snapshot"),
            SnapshotError::VersionMismatch { found, expected } => {
                write!(f, "snapshot version {found}, expected {expected}")
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Wraps `payload` in the versioned, checksummed container.
pub fn seal(version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + OVERHEAD);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let mut h = Hasher128::new();
    h.write_bytes(&out);
    out.extend_from_slice(&h.digest().raw().to_le_bytes());
    out
}

/// Validates a sealed container and returns its payload slice.
///
/// Checks, in order: magic, version, declared length against the actual
/// byte count, and the trailing checksum. The checks are ordered so the
/// most informative error wins — a snapshot from an older codec reports
/// [`SnapshotError::VersionMismatch`], not a checksum failure.
pub fn open(bytes: &[u8], expected_version: u32) -> Result<&[u8], SnapshotError> {
    if bytes.len() < 8 {
        return Err(if bytes == &MAGIC[..bytes.len()] {
            SnapshotError::Truncated
        } else {
            SnapshotError::BadMagic
        });
    }
    if bytes[..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if bytes.len() < 20 {
        return Err(SnapshotError::Truncated);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != expected_version {
        return Err(SnapshotError::VersionMismatch { found: version, expected: expected_version });
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
    let Some(total) = len.checked_add(OVERHEAD) else {
        return Err(SnapshotError::Malformed("payload length overflows"));
    };
    if bytes.len() < total {
        return Err(SnapshotError::Truncated);
    }
    if bytes.len() > total {
        return Err(SnapshotError::Malformed("trailing bytes after checksum"));
    }
    let mut h = Hasher128::new();
    h.write_bytes(&bytes[..20 + len]);
    let stored = u128::from_le_bytes(bytes[20 + len..].try_into().expect("16 bytes"));
    if h.digest().raw() != stored {
        return Err(SnapshotError::ChecksumMismatch);
    }
    Ok(&bytes[20..20 + len])
}

/// Little-endian primitive writer for snapshot payloads.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh, empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// The encoded payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes a `usize` as a `u64` (platform-independent framing).
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes a length-prefixed byte slice.
    pub fn put_u8_slice(&mut self, vs: &[u8]) {
        self.put_len(vs.len());
        self.buf.extend_from_slice(vs);
    }

    /// Writes a length-prefixed `u64` slice.
    pub fn put_u64_slice(&mut self, vs: &[u64]) {
        self.put_len(vs.len());
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Writes a length-prefixed `u32` slice.
    pub fn put_u32_slice(&mut self, vs: &[u32]) {
        self.put_len(vs.len());
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Writes a length-prefixed *section*: `fill` populates a nested
    /// encoder, and the nested byte count is framed ahead of its bytes.
    /// A reader that knows the section's layout sub-decodes it with
    /// [`Decoder::section`]; one that doesn't can still skip it, which
    /// is what lets a snapshot owner append optional trailing sections
    /// without breaking older readers. An empty `fill` writes a valid
    /// zero-length section (just the 8-byte length prefix).
    pub fn put_section(&mut self, fill: impl FnOnce(&mut Encoder)) {
        let mut inner = Encoder::new();
        fill(&mut inner);
        self.put_u8_slice(&inner.buf);
    }
}

/// Bounds-checked little-endian reader over a snapshot payload.
#[derive(Debug)]
pub struct Decoder<'a> {
    bytes: &'a [u8],
}

impl<'a> Decoder<'a> {
    /// A decoder over `bytes` (typically the slice [`open`] returned).
    pub fn new(bytes: &'a [u8]) -> Self {
        Decoder { bytes }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len()
    }

    /// Fails unless every byte was consumed — catches payload/decoder
    /// drift that would otherwise misalign every later field.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(SnapshotError::Malformed("unconsumed payload bytes"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.bytes.len() < n {
            return Err(SnapshotError::Truncated);
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a `bool`, rejecting anything but 0 or 1.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Malformed("bool byte not 0 or 1")),
        }
    }

    /// Reads a length written by [`Encoder::put_len`], bounds-checked
    /// against the remaining bytes so a corrupt length cannot drive a
    /// huge allocation.
    pub fn len(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        if v > self.bytes.len() as u64 {
            return Err(SnapshotError::Malformed("length exceeds remaining bytes"));
        }
        Ok(v as usize)
    }

    /// Reads a length-prefixed byte slice.
    pub fn u8_slice(&mut self) -> Result<Vec<u8>, SnapshotError> {
        let n = self.len()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length-prefixed `u64` slice.
    pub fn u64_slice(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let n = self.u64()?;
        if n > (self.bytes.len() / 8) as u64 {
            return Err(SnapshotError::Malformed("length exceeds remaining bytes"));
        }
        (0..n).map(|_| self.u64()).collect()
    }

    /// Reads a length-prefixed `u32` slice.
    pub fn u32_slice(&mut self) -> Result<Vec<u32>, SnapshotError> {
        let n = self.u64()?;
        if n > (self.bytes.len() / 4) as u64 {
            return Err(SnapshotError::Malformed("length exceeds remaining bytes"));
        }
        (0..n).map(|_| self.u32()).collect()
    }

    /// Reads a section written by [`Encoder::put_section`], returning a
    /// sub-decoder over exactly the section's bytes. The outer decoder
    /// advances past the whole section, so calling this and ignoring
    /// the result *skips* it. A zero-length section yields an empty
    /// sub-decoder whose [`Decoder::finish`] succeeds immediately; the
    /// length prefix is bounds-checked like every other length, so a
    /// corrupt prefix fails here rather than overrunning the payload.
    pub fn section(&mut self) -> Result<Decoder<'a>, SnapshotError> {
        let n = self.len()?;
        Ok(Decoder::new(self.take(n)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_roundtrip() {
        let payload = b"architectural state".to_vec();
        let sealed = seal(3, &payload);
        assert_eq!(sealed.len(), payload.len() + OVERHEAD);
        assert_eq!(open(&sealed, 3).unwrap(), payload.as_slice());
    }

    #[test]
    fn empty_payload_roundtrips() {
        let sealed = seal(1, &[]);
        assert_eq!(open(&sealed, 1).unwrap(), &[] as &[u8]);
    }

    #[test]
    fn version_mismatch_is_reported_with_both_versions() {
        let sealed = seal(2, b"x");
        assert_eq!(
            open(&sealed, 5),
            Err(SnapshotError::VersionMismatch { found: 2, expected: 5 })
        );
    }

    #[test]
    fn bad_magic_is_detected() {
        let mut sealed = seal(1, b"x");
        sealed[0] ^= 0xFF;
        assert_eq!(open(&sealed, 1), Err(SnapshotError::BadMagic));
        assert_eq!(open(b"not a snapshot at all", 1), Err(SnapshotError::BadMagic));
    }

    #[test]
    fn truncation_is_detected_at_every_layer() {
        let sealed = seal(1, b"payload");
        // Cut inside the magic, the header, the payload, the checksum.
        for cut in [4, 10, 22, sealed.len() - 1] {
            assert_eq!(open(&sealed[..cut], 1), Err(SnapshotError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn payload_corruption_fails_the_checksum() {
        let mut sealed = seal(1, b"payload bytes");
        sealed[25] ^= 0x01;
        assert_eq!(open(&sealed, 1), Err(SnapshotError::ChecksumMismatch));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut sealed = seal(1, b"x");
        sealed.push(0);
        assert!(matches!(open(&sealed, 1), Err(SnapshotError::Malformed(_))));
    }

    #[test]
    fn encoder_decoder_primitives_roundtrip() {
        let mut e = Encoder::new();
        e.put_u8(7);
        e.put_u32(0xDEAD_BEEF);
        e.put_u64(u64::MAX - 1);
        e.put_bool(true);
        e.put_bool(false);
        e.put_u8_slice(&[1, 2, 3]);
        e.put_u64_slice(&[u64::MAX, 0, 42]);
        e.put_u32_slice(&[9, 8]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        assert_eq!(d.u8_slice().unwrap(), vec![1, 2, 3]);
        assert_eq!(d.u64_slice().unwrap(), vec![u64::MAX, 0, 42]);
        assert_eq!(d.u32_slice().unwrap(), vec![9, 8]);
        d.finish().unwrap();
    }

    #[test]
    fn decoder_rejects_short_reads_and_bad_bools() {
        let mut d = Decoder::new(&[1, 2]);
        assert_eq!(d.u64(), Err(SnapshotError::Truncated));
        let mut d = Decoder::new(&[9]);
        assert!(matches!(d.bool(), Err(SnapshotError::Malformed(_))));
    }

    #[test]
    fn corrupt_length_cannot_demand_more_than_remaining() {
        let mut e = Encoder::new();
        e.put_u64_slice(&[1, 2, 3]);
        let mut bytes = e.into_bytes();
        bytes[0] = 0xFF; // claim a huge element count
        let mut d = Decoder::new(&bytes);
        assert!(matches!(d.u64_slice(), Err(SnapshotError::Malformed(_))));
    }

    #[test]
    fn unconsumed_bytes_fail_finish() {
        let d = Decoder::new(&[1]);
        assert!(matches!(d.finish(), Err(SnapshotError::Malformed(_))));
    }

    #[test]
    fn sections_roundtrip_and_isolate() {
        let mut e = Encoder::new();
        e.put_section(|s| {
            s.put_u32(7);
            s.put_u8_slice(b"inner");
        });
        e.put_u64(99); // field after the section must stay aligned
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let mut s = d.section().unwrap();
        assert_eq!(s.u32().unwrap(), 7);
        assert_eq!(s.u8_slice().unwrap(), b"inner".to_vec());
        s.finish().unwrap();
        assert_eq!(d.u64().unwrap(), 99);
        d.finish().unwrap();
    }

    #[test]
    fn zero_length_section_is_valid_and_skippable() {
        let mut e = Encoder::new();
        e.put_section(|_| {});
        e.put_section(|s| s.put_u8(0xAB));
        e.put_u32(5);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let empty = d.section().unwrap();
        assert_eq!(empty.remaining(), 0);
        empty.finish().unwrap();
        // Skipping a section without reading it still advances past it.
        let _skipped = d.section().unwrap();
        assert_eq!(d.u32().unwrap(), 5);
        d.finish().unwrap();
    }

    #[test]
    fn section_underconsumption_fails_the_sub_decoder_only() {
        let mut e = Encoder::new();
        e.put_section(|s| s.put_u64(1));
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let s = d.section().unwrap();
        // The sub-decoder catches the unread field; the outer decoder
        // already advanced past the whole section regardless.
        assert!(matches!(s.finish(), Err(SnapshotError::Malformed(_))));
        d.finish().unwrap();
    }

    #[test]
    fn corrupt_section_length_is_bounds_checked() {
        let mut e = Encoder::new();
        e.put_section(|s| s.put_u8(1));
        let mut bytes = e.into_bytes();
        bytes[0] = 0xFF; // claim a section far larger than the payload
        let mut d = Decoder::new(&bytes);
        assert!(matches!(d.section(), Err(SnapshotError::Malformed(_))));
    }

    #[test]
    fn truncated_section_length_prefix_is_detected() {
        let mut d = Decoder::new(&[0, 0, 0]);
        assert_eq!(d.section().err(), Some(SnapshotError::Truncated));
    }
}
