//! Deterministic random number generation for reproducible simulations.
//!
//! Every stochastic component in the workspace (workload generators, random
//! distance replacement, branch outcome draws) takes a [`SimRng`] so that
//! experiment results are bit-reproducible given a seed.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A small, fast, seedable RNG used throughout the simulators.
///
/// Wraps [`rand::rngs::SmallRng`] so the concrete algorithm can change
/// without touching downstream crates.
///
/// # Examples
///
/// ```
/// use simbase::rng::SimRng;
/// let mut a = SimRng::seeded(7);
/// let mut b = SimRng::seeded(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng(SmallRng);

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        SimRng(SmallRng::seed_from_u64(seed))
    }

    /// Derives an independent child RNG, labeled by `stream`.
    ///
    /// Useful for giving each benchmark or cache component its own stream so
    /// adding draws in one component does not perturb another.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.0.gen::<u64>();
        SimRng::seeded(base ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Uniform draw in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.0.gen_range(0..bound)
    }

    /// Uniform draw in `[0, bound)` as `usize`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform draw in `[0.0, 1.0)`.
    pub fn unit(&mut self) -> f64 {
        self.0.gen::<f64>()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Geometric-ish draw: number of failures before a success with
    /// probability `p`, capped at `cap`.
    pub fn geometric(&mut self, p: f64, cap: u64) -> u64 {
        let p = p.clamp(1e-9, 1.0);
        let mut n = 0;
        while n < cap && !self.chance(p) {
            n += 1;
        }
        n
    }

    /// Draws an index from a cumulative weight table.
    ///
    /// `cdf` must be non-decreasing and end at a positive total; the draw is
    /// uniform over `[0, total)`.
    ///
    /// # Panics
    ///
    /// Panics if `cdf` is empty or its last element is not positive.
    pub fn from_cdf(&mut self, cdf: &[f64]) -> usize {
        let total = *cdf.last().expect("cdf must be non-empty");
        assert!(total > 0.0, "cdf total must be positive");
        let x = self.unit() * total;
        match cdf.binary_search_by(|v| v.partial_cmp(&x).expect("cdf values must be comparable")) {
            Ok(i) => (i + 1).min(cdf.len() - 1),
            Err(i) => i.min(cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = SimRng::seeded(42);
        let mut b = SimRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let mut root1 = SimRng::seeded(1);
        let mut root2 = SimRng::seeded(1);
        let mut c1 = root1.fork(9);
        let mut c2 = root2.fork(9);
        assert_eq!(c1.next_u64(), c2.next_u64());
        // A different stream label diverges.
        let mut root3 = SimRng::seeded(1);
        let mut c3 = root3.fork(10);
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::seeded(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn below_zero_panics() {
        SimRng::seeded(0).below(0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seeded(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range p values are clamped rather than panicking.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn chance_frequency_roughly_matches_p() {
        let mut r = SimRng::seeded(11);
        let hits = (0..20_000).filter(|_| r.chance(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn geometric_capped() {
        let mut r = SimRng::seeded(13);
        for _ in 0..100 {
            assert!(r.geometric(0.01, 5) <= 5);
        }
        // With p=1 the draw is always 0.
        assert_eq!(r.geometric(1.0, 100), 0);
    }

    #[test]
    fn from_cdf_distributes_by_weight() {
        let mut r = SimRng::seeded(17);
        let cdf = [0.1, 0.1, 1.0]; // weights 0.1, 0.0, 0.9
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[r.from_cdf(&cdf)] += 1;
        }
        assert!(counts[1] == 0, "zero-weight bucket must never be drawn");
        assert!(counts[2] > counts[0] * 5);
        assert_eq!(counts.iter().sum::<usize>(), 10_000);
    }

    #[test]
    fn index_covers_all_buckets() {
        let mut r = SimRng::seeded(19);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.index(4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
