//! Deterministic random number generation for reproducible simulations.
//!
//! Every stochastic component in the workspace (workload generators, random
//! distance replacement, branch outcome draws) takes a [`SimRng`] so that
//! experiment results are bit-reproducible given a seed.
//!
//! The generator is an in-tree **xoshiro256++** (Blackman & Vigna) seeded
//! through **splitmix64**, so the workspace carries no external RNG
//! dependency and the stream is pinned forever by the golden-value tests
//! below: any refactor that changes a single draw fails loudly instead of
//! silently invalidating every recorded experiment.

/// splitmix64 step: advances `state` and returns the next output.
///
/// Used to expand a 64-bit seed into the 256-bit xoshiro state (the
/// construction recommended by the xoshiro authors: never seed a generator
/// with correlated words).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A small, fast, seedable RNG used throughout the simulators.
///
/// Implements xoshiro256++ directly so the concrete stream is owned by this
/// workspace and cannot drift with a dependency upgrade.
///
/// # Examples
///
/// ```
/// use simbase::rng::SimRng;
/// let mut a = SimRng::seeded(7);
/// let mut b = SimRng::seeded(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// The raw 256-bit generator state, for checkpointing. Reading the
    /// state does not advance the stream.
    pub const fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a [`SimRng::state`] snapshot. The
    /// restored generator continues the original stream exactly where the
    /// snapshot was taken.
    pub const fn from_state(s: [u64; 4]) -> Self {
        SimRng { s }
    }

    /// Derives an independent child RNG, labeled by `stream`.
    ///
    /// Useful for giving each benchmark or cache component its own stream so
    /// adding draws in one component does not perturb another.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::seeded(base ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Uniform draw in `[0, bound)`, unbiased (Lemire's widening-multiply
    /// rejection method).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let mut m = u128::from(self.next_u64()) * u128::from(bound);
        let mut low = m as u64;
        if low < bound {
            // Threshold = 2^64 mod bound; redrawing below it removes bias.
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                m = u128::from(self.next_u64()) * u128::from(bound);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform draw in `[0, bound)` as `usize`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform draw in `[0.0, 1.0)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Raw 64-bit draw: one xoshiro256++ step.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Geometric-ish draw: number of failures before a success with
    /// probability `p`, capped at `cap`.
    pub fn geometric(&mut self, p: f64, cap: u64) -> u64 {
        let p = p.clamp(1e-9, 1.0);
        let mut n = 0;
        while n < cap && !self.chance(p) {
            n += 1;
        }
        n
    }

    /// Draws an index from a cumulative weight table.
    ///
    /// `cdf` must be non-decreasing and end at a positive total; the draw is
    /// uniform over `[0, total)`.
    ///
    /// # Panics
    ///
    /// Panics if `cdf` is empty or its last element is not positive.
    pub fn from_cdf(&mut self, cdf: &[f64]) -> usize {
        let total = *cdf.last().expect("cdf must be non-empty");
        assert!(total > 0.0, "cdf total must be positive");
        let x = self.unit() * total;
        match cdf.binary_search_by(|v| v.partial_cmp(&x).expect("cdf values must be comparable")) {
            Ok(i) => (i + 1).min(cdf.len() - 1),
            Err(i) => i.min(cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the exact output stream of `SimRng::seeded(42)`. If this test
    /// fails, every recorded experiment result in the repo is invalidated —
    /// do not update the constants without bumping the experiment records.
    #[test]
    fn golden_first_16_draws_seed_42() {
        // Independently checkable: xoshiro256++ over the splitmix64(42)
        // expansion. Generated once by this implementation and frozen.
        let mut r = SimRng::seeded(42);
        let got: Vec<u64> = (0..16).map(|_| r.next_u64()).collect();
        let want = golden_stream(42, 16);
        assert_eq!(got, want, "seed-42 stream drifted");
    }

    /// Reference re-derivation of the stream from first principles, kept
    /// separate from the production code path so a bug in `next_u64` cannot
    /// hide in its own golden values.
    fn golden_stream(seed: u64, n: usize) -> Vec<u64> {
        let mut sm = seed;
        let mut step = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut s = [step(), step(), step(), step()];
        (0..n)
            .map(|_| {
                let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
                let t = s[1] << 17;
                s[2] ^= s[0];
                s[3] ^= s[1];
                s[1] ^= s[2];
                s[0] ^= s[3];
                s[2] ^= t;
                s[3] = s[3].rotate_left(45);
                out
            })
            .collect()
    }

    /// Hard-frozen first four draws for two seeds, as literal constants,
    /// so even a simultaneous bug in implementation and reference cannot
    /// slip through a refactor unnoticed.
    #[test]
    fn golden_literals_are_frozen() {
        let mut r0 = SimRng::seeded(0);
        assert_eq!(
            [r0.next_u64(), r0.next_u64(), r0.next_u64(), r0.next_u64()],
            [
                0x53175d61490b23df,
                0x61da6f3dc380d507,
                0x5c0fdf91ec9a7bfc,
                0x02eebf8c3bbe5e1a,
            ]
        );
        let mut r1 = SimRng::seeded(1);
        assert_eq!(
            [r1.next_u64(), r1.next_u64(), r1.next_u64(), r1.next_u64()],
            [
                0xcfc5d07f6f03c29b,
                0xbf424132963fe08d,
                0x19a37d5757aaf520,
                0xbf08119f05cd56d6,
            ]
        );
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut a = SimRng::seeded(42);
        for _ in 0..10 {
            a.next_u64();
        }
        let mut b = SimRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_read_does_not_advance() {
        let mut a = SimRng::seeded(7);
        let s1 = a.state();
        let s2 = a.state();
        assert_eq!(s1, s2);
        let mut b = SimRng::from_state(s1);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn seeded_is_deterministic() {
        let mut a = SimRng::seeded(42);
        let mut b = SimRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let mut root1 = SimRng::seeded(1);
        let mut root2 = SimRng::seeded(1);
        let mut c1 = root1.fork(9);
        let mut c2 = root2.fork(9);
        assert_eq!(c1.next_u64(), c2.next_u64());
        // A different stream label diverges.
        let mut root3 = SimRng::seeded(1);
        let mut c3 = root3.fork(10);
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn fork_streams_do_not_correlate() {
        // Children forked under different labels share no draws with each
        // other or the parent over a long window.
        let mut root = SimRng::seeded(77);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let draws_a: std::collections::BTreeSet<u64> = (0..512).map(|_| a.next_u64()).collect();
        let overlap = (0..512).filter(|_| draws_a.contains(&b.next_u64())).count();
        assert_eq!(overlap, 0, "fork streams collided");
        let parent_hits = (0..512).filter(|_| draws_a.contains(&root.next_u64())).count();
        assert_eq!(parent_hits, 0, "fork correlated with parent");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::seeded(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = SimRng::seeded(23);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((8_000..12_000).contains(&c), "bucket {i}: {c}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn below_zero_panics() {
        SimRng::seeded(0).below(0);
    }

    #[test]
    fn unit_stays_in_range() {
        let mut r = SimRng::seeded(29);
        for _ in 0..10_000 {
            let x = r.unit();
            assert!((0.0..1.0).contains(&x), "unit draw {x} out of range");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seeded(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range p values are clamped rather than panicking.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn chance_frequency_roughly_matches_p() {
        let mut r = SimRng::seeded(11);
        let hits = (0..20_000).filter(|_| r.chance(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn geometric_capped() {
        let mut r = SimRng::seeded(13);
        for _ in 0..100 {
            assert!(r.geometric(0.01, 5) <= 5);
        }
        // With p=1 the draw is always 0.
        assert_eq!(r.geometric(1.0, 100), 0);
    }

    #[test]
    fn from_cdf_distributes_by_weight() {
        let mut r = SimRng::seeded(17);
        let cdf = [0.1, 0.1, 1.0]; // weights 0.1, 0.0, 0.9
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[r.from_cdf(&cdf)] += 1;
        }
        assert!(counts[1] == 0, "zero-weight bucket must never be drawn");
        assert!(counts[2] > counts[0] * 5);
        assert_eq!(counts.iter().sum::<usize>(), 10_000);
    }

    #[test]
    fn index_covers_all_buckets() {
        let mut r = SimRng::seeded(19);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.index(4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
