//! Minimal JSON value model, writer, and parser for run artifacts.
//!
//! Hand-rolled under the workspace's hermetic zero-dependency policy
//! (DESIGN.md §6). Two properties matter for artifacts and are not
//! guaranteed by a generic f64-based JSON library:
//!
//! - **integers are preserved exactly**: numbers without a fraction or
//!   exponent parse to `u64`/`i64`, so IEEE-754 bit patterns (how the
//!   artifact layer stores floats) round-trip bit-exactly;
//! - **object key order is stable**: objects are ordered vectors, so a
//!   written line is byte-reproducible.
//!
//! The subset is exactly what the manifests need: no `\uXXXX` escapes
//! beyond what [`escape`] emits, and numbers outside `u64`/`i64` fall
//! back to `f64`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits in `u64`.
    U64(u64),
    /// A negative integer that fits in `i64`.
    I64(i64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with stable (insertion) key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn field(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` (exact integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders the value on one line (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                // `{:?}` is Rust's shortest round-trip f64 formatting.
                let _ = write!(out, "{v:?}");
            }
            Json::Str(s) => escape(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON value from `input`.
///
/// Returns a descriptive error (with byte offset) on malformed input or
/// trailing non-whitespace.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            s.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        parse(&v.render()).expect("roundtrip parse")
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::U64(0),
            Json::U64(u64::MAX),
            Json::I64(-42),
            Json::I64(i64::MIN),
            Json::F64(0.25),
            Json::F64(-1.5e-9),
            Json::Str("hé \"quoted\"\n\\tab\t".into()),
        ] {
            assert_eq!(roundtrip(&v), v, "{}", v.render());
        }
    }

    #[test]
    fn u64_bit_patterns_survive_exactly() {
        // The artifact layer stores f64s as bit patterns; they exceed
        // f64's exact-integer range, so integer preservation is load-
        // bearing, not cosmetic.
        let bits = std::f64::consts::PI.to_bits();
        assert!(bits > (1u64 << 53));
        let v = Json::obj(vec![("bits", Json::U64(bits))]);
        let back = roundtrip(&v);
        assert_eq!(back.field("bits").and_then(Json::as_u64), Some(bits));
        assert_eq!(f64::from_bits(bits), std::f64::consts::PI);
    }

    #[test]
    fn nested_structures_roundtrip_with_key_order() {
        let v = Json::obj(vec![
            ("zeta", Json::Arr(vec![Json::U64(1), Json::Null, Json::Str("x".into())])),
            ("alpha", Json::obj(vec![("k", Json::Bool(false))])),
        ]);
        let line = v.render();
        assert_eq!(line, r#"{"zeta":[1,null,"x"],"alpha":{"k":false}}"#);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn field_lookup_and_accessors() {
        let v = parse(r#"{"a": 7, "b": [1, 2], "c": "s"}"#).unwrap();
        assert_eq!(v.field("a").and_then(Json::as_u64), Some(7));
        assert_eq!(v.field("b").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        assert_eq!(v.field("c").and_then(Json::as_str), Some("s"));
        assert_eq!(v.field("missing"), None);
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in ["", "{", "[1,", "\"open", "{\"a\" 1}", "nul", "1 2", "{\"a\":}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse("\"\\u0041\\u00e9\"").unwrap(), Json::Str("Aé".into()));
    }
}
