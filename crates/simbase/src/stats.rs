//! Lightweight statistics: counters, distributions, and rate helpers.
//!
//! Every simulator crate reports through these types so the experiment
//! harness can print uniform tables (fractions of accesses per d-group,
//! miss rates, IPC, energy breakdowns).

use std::fmt;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    ///
    /// Saturates at `u64::MAX`: a runaway multi-billion-event run must
    /// degrade to a pinned counter, not panic in debug builds.
    pub fn inc(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Increments by `n`, saturating at `u64::MAX`.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// This counter as a fraction of `denom` (0.0 if `denom` is zero).
    pub fn frac_of(self, denom: u64) -> f64 {
        if denom == 0 {
            0.0
        } else {
            self.0 as f64 / denom as f64
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A bucketed distribution over a small fixed set of categories
/// (e.g. accesses per d-group).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BucketDist {
    buckets: Vec<u64>,
}

impl BucketDist {
    /// Creates a distribution with `n` buckets, all zero.
    pub fn new(n: usize) -> Self {
        BucketDist {
            buckets: vec![0; n],
        }
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True if there are no buckets.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Records one event in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn record(&mut self, i: usize) {
        self.buckets[i] += 1;
    }

    /// Raw count in bucket `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Total events across all buckets.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Fraction of events in bucket `i` (0.0 if the distribution is empty).
    pub fn frac(&self, i: usize) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.buckets[i] as f64 / t as f64
        }
    }

    /// Fractions for every bucket.
    pub fn fracs(&self) -> Vec<f64> {
        let t = self.total();
        self.buckets
            .iter()
            .map(|&c| if t == 0 { 0.0 } else { c as f64 / t as f64 })
            .collect()
    }

    /// Merges another distribution with the same bucket count into this one.
    ///
    /// # Panics
    ///
    /// Panics if bucket counts differ.
    pub fn merge(&mut self, other: &BucketDist) {
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "cannot merge distributions with different bucket counts"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

/// Streaming mean/min/max over f64 samples (used for per-app summaries).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    n: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub const fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Minimum sample.
    ///
    /// # Panics
    ///
    /// Panics when the summary is empty.
    pub fn min(&self) -> f64 {
        assert!(self.n > 0, "min of empty summary");
        self.min
    }

    /// Maximum sample.
    ///
    /// # Panics
    ///
    /// Panics when the summary is empty.
    pub fn max(&self) -> f64 {
        assert!(self.n > 0, "max of empty summary");
        self.max
    }
}

/// Geometric mean over positive samples, the conventional aggregate for
/// relative-performance figures like the paper's Figures 6, 8, and 9.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GeoMean {
    n: u64,
    log_sum: f64,
}

impl GeoMean {
    /// Creates an empty geometric mean.
    pub fn new() -> Self {
        GeoMean { n: 0, log_sum: 0.0 }
    }

    /// Adds a sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not strictly positive.
    pub fn add(&mut self, x: f64) {
        assert!(x > 0.0, "geometric mean requires positive samples, got {x}");
        self.n += 1;
        self.log_sum += x.ln();
    }

    /// The geometric mean (1.0 when empty).
    pub fn get(&self) -> f64 {
        if self.n == 0 {
            1.0
        } else {
            (self.log_sum / self.n as f64).exp()
        }
    }
}

/// Formats a fraction as a percentage with one decimal, e.g. `86.2%`.
pub fn pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basic() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.frac_of(10), 0.5);
        assert_eq!(c.frac_of(0), 0.0);
        assert_eq!(c.to_string(), "5");
    }

    #[test]
    fn counter_saturates_instead_of_overflowing() {
        let mut c = Counter::new();
        c.add(u64::MAX - 1);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX, "inc past MAX must pin, not wrap");
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX, "add past MAX must pin, not wrap");
    }

    #[test]
    fn bucket_dist_records_and_fracs() {
        let mut d = BucketDist::new(4);
        for _ in 0..3 {
            d.record(0);
        }
        d.record(2);
        assert_eq!(d.total(), 4);
        assert_eq!(d.count(0), 3);
        assert_eq!(d.frac(0), 0.75);
        assert_eq!(d.frac(1), 0.0);
        assert_eq!(d.fracs(), vec![0.75, 0.0, 0.25, 0.0]);
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
    }

    #[test]
    fn bucket_dist_empty_fracs_are_zero() {
        let d = BucketDist::new(2);
        assert_eq!(d.frac(0), 0.0);
        assert_eq!(d.fracs(), vec![0.0, 0.0]);
    }

    #[test]
    fn bucket_dist_merge() {
        let mut a = BucketDist::new(2);
        a.record(0);
        let mut b = BucketDist::new(2);
        b.record(1);
        b.record(1);
        a.merge(&b);
        assert_eq!(a.count(0), 1);
        assert_eq!(a.count(1), 2);
    }

    #[test]
    #[should_panic(expected = "different bucket counts")]
    fn bucket_dist_merge_mismatch_panics() {
        let mut a = BucketDist::new(2);
        a.merge(&BucketDist::new(3));
    }

    #[test]
    fn summary_tracks_extremes() {
        let mut s = Summary::new();
        s.add(1.0);
        s.add(3.0);
        s.add(2.0);
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
    }

    #[test]
    fn summary_empty_mean_is_zero() {
        assert_eq!(Summary::new().mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_empty_min_panics() {
        let _ = Summary::new().min();
    }

    #[test]
    fn geomean_matches_hand_computation() {
        let mut g = GeoMean::new();
        g.add(2.0);
        g.add(8.0);
        assert!((g.get() - 4.0).abs() < 1e-12);
        assert_eq!(GeoMean::new().get(), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        GeoMean::new().add(0.0);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.862), "86.2%");
        assert_eq!(pct(0.0), "0.0%");
    }
}
