//! Stable structural digests for experiment configurations.
//!
//! The experiment scheduler (`crates/simsched`) keys its run store and
//! on-disk artifacts by a digest of the *full* configuration — capacity,
//! associativity, policies, seeds, instruction budget — rather than by a
//! human-readable label, so two distinct configurations can never alias
//! (and the same configuration is recognized across processes when a
//! sweep resumes from artifacts).
//!
//! The hash is **FNV-1a over 128 bits** with the standard offset basis
//! and prime. It is not cryptographic; it only needs to be (a) stable
//! across runs, platforms, and compiler versions, and (b) wide enough
//! that accidental collisions among the few hundred configurations a
//! sweep ever sees are out of the question. Every multi-byte value is
//! fed in little-endian order, strings are length-prefixed, and floats
//! are hashed by bit pattern, so the digest is a deterministic function
//! of structure, not of formatting.
//!
//! # Examples
//!
//! ```
//! use simbase::digest::Hasher128;
//!
//! let mut h = Hasher128::new();
//! h.write_str("nf4");
//! h.write_u64(8 << 20);
//! let d = h.digest();
//! assert_eq!(d.hex().len(), 32);
//!
//! let mut h2 = Hasher128::new();
//! h2.write_str("nf4");
//! h2.write_u64(8 << 20);
//! assert_eq!(d, h2.digest());
//! ```

use std::fmt;

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime.
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A 128-bit structural digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest(u128);

impl Digest {
    /// Reconstructs a digest from its raw value.
    pub const fn from_raw(raw: u128) -> Self {
        Digest(raw)
    }

    /// The raw 128-bit value.
    pub const fn raw(self) -> u128 {
        self.0
    }

    /// Lower-case hexadecimal rendering (32 characters, zero-padded) —
    /// the form used in artifact manifests.
    pub fn hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the [`Digest::hex`] rendering.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Digest)
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

/// Streaming FNV-1a 128-bit hasher with typed, framing-safe writers.
#[derive(Debug, Clone)]
pub struct Hasher128 {
    state: u128,
}

impl Hasher128 {
    /// A fresh hasher at the FNV offset basis.
    pub const fn new() -> Self {
        Hasher128 { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds one byte (used for enum discriminants).
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Feeds a `u32` in little-endian order.
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `u64` in little-endian order.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds an `f64` by IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feeds a boolean as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(v as u8);
    }

    /// Feeds a string, length-prefixed so `("ab", "c")` and `("a", "bc")`
    /// digest differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Feeds an optional `u32`: presence byte, then the value.
    pub fn write_opt_u32(&mut self, v: Option<u32>) {
        match v {
            None => self.write_u8(0),
            Some(x) => {
                self.write_u8(1);
                self.write_u32(x);
            }
        }
    }

    /// The digest of everything written so far.
    pub const fn digest(&self) -> Digest {
        Digest(self.state)
    }
}

impl Default for Hasher128 {
    fn default() -> Self {
        Hasher128::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_digest_is_offset_basis() {
        assert_eq!(Hasher128::new().digest().raw(), FNV_OFFSET);
    }

    #[test]
    fn fnv1a_test_vector() {
        // FNV-1a 128 of "a": well-known published value.
        let mut h = Hasher128::new();
        h.write_bytes(b"a");
        assert_eq!(
            h.digest().hex(),
            "d228cb696f1a8caf78912b704e4a8964"
        );
    }

    #[test]
    fn digests_are_order_and_framing_sensitive() {
        let d = |parts: &[&str]| {
            let mut h = Hasher128::new();
            for p in parts {
                h.write_str(p);
            }
            h.digest()
        };
        assert_ne!(d(&["ab", "c"]), d(&["a", "bc"]));
        assert_ne!(d(&["a", "b"]), d(&["b", "a"]));
        assert_eq!(d(&["a", "b"]), d(&["a", "b"]));
    }

    #[test]
    fn hex_roundtrips() {
        let mut h = Hasher128::new();
        h.write_u64(0xdead_beef);
        h.write_f64(std::f64::consts::PI);
        h.write_opt_u32(Some(7));
        h.write_opt_u32(None);
        let d = h.digest();
        assert_eq!(Digest::from_hex(&d.hex()), Some(d));
        assert_eq!(Digest::from_hex("zz"), None);
        assert_eq!(Digest::from_hex(""), None);
    }

    #[test]
    fn float_bit_patterns_distinguish_zero_signs() {
        let mut a = Hasher128::new();
        a.write_f64(0.0);
        let mut b = Hasher128::new();
        b.write_f64(-0.0);
        assert_ne!(a.digest(), b.digest());
    }
}
