//! Common simulation types for the NuRAPID reproduction.
//!
//! This crate provides the vocabulary shared by every other crate in the
//! workspace: physical [`Addr`]esses and block framing, [`Cycle`] timestamps,
//! [`EnergyNj`] accounting, deterministic random number generation
//! ([`rng::SimRng`]), stable configuration digests ([`digest`]),
//! lightweight statistics ([`stats`]), the versioned checkpoint codec
//! ([`snapshot`]), and the in-tree JSON value model ([`json`]) shared by
//! the artifact and telemetry layers.
//!
//! # Examples
//!
//! ```
//! use simbase::{Addr, BlockGeometry, Cycle};
//!
//! let geom = BlockGeometry::new(128); // 128-byte cache blocks
//! let a = Addr::new(0x1_0080);
//! assert_eq!(geom.block_of(a).index(), 0x1_0080 / 128);
//! assert_eq!(Cycle::ZERO + 5, Cycle::new(5));
//! ```

pub mod digest;
pub mod json;
pub mod rng;
pub mod snapshot;
pub mod stats;

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A physical byte address in the simulated machine.
///
/// Addresses are 64-bit, matching the paper's 64-bit-address cache
/// (Section 2.4.3 sizes the tag entries for a 64-bit address space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte value.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the address advanced by `bytes`.
    #[must_use]
    pub const fn offset(self, bytes: u64) -> Self {
        Addr(self.0.wrapping_add(bytes))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A cache-block identifier: the address with the intra-block offset removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address from a block index (address divided by block size).
    pub const fn from_index(index: u64) -> Self {
        BlockAddr(index)
    }

    /// Returns the block index.
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk:{:#x}", self.0)
    }
}

/// Block framing parameters: how byte addresses map to cache blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockGeometry {
    block_bytes: u64,
    offset_bits: u32,
}

impl BlockGeometry {
    /// Creates a geometry for power-of-two `block_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is zero or not a power of two.
    pub fn new(block_bytes: u64) -> Self {
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a nonzero power of two, got {block_bytes}"
        );
        BlockGeometry {
            block_bytes,
            offset_bits: block_bytes.trailing_zeros(),
        }
    }

    /// Block size in bytes.
    pub const fn block_bytes(self) -> u64 {
        self.block_bytes
    }

    /// Number of address bits consumed by the intra-block offset.
    pub const fn offset_bits(self) -> u32 {
        self.offset_bits
    }

    /// Returns the block containing byte address `a`.
    pub const fn block_of(self, a: Addr) -> BlockAddr {
        BlockAddr(a.raw() >> self.offset_bits)
    }

    /// Returns the first byte address of block `b`.
    pub const fn base_of(self, b: BlockAddr) -> Addr {
        Addr::new(b.index() << self.offset_bits)
    }
}

/// A simulation timestamp or duration, in processor clock cycles.
///
/// The paper's machine runs at 5 GHz in 70 nm technology (Section 4); all
/// latencies in the workspace are expressed in these cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// Cycle zero (simulation start).
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle count.
    pub const fn new(c: u64) -> Self {
        Cycle(c)
    }

    /// Returns the raw cycle count.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Saturating subtraction, returning a duration in cycles.
    pub const fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// The later of two timestamps.
    #[must_use]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cyc", self.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    fn sub(self, rhs: Cycle) -> u64 {
        self.0
            .checked_sub(rhs.0)
            .expect("cycle subtraction underflow")
    }
}

/// Dynamic energy, in nanojoules.
///
/// Table 2 of the paper reports per-operation cache energies in nJ; all
/// energy bookkeeping in the workspace uses this unit.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct EnergyNj(f64);

impl EnergyNj {
    /// Zero energy.
    pub const ZERO: EnergyNj = EnergyNj(0.0);

    /// Creates an energy value.
    ///
    /// # Panics
    ///
    /// Panics if `nj` is negative or not finite.
    pub fn new(nj: f64) -> Self {
        assert!(nj.is_finite() && nj >= 0.0, "energy must be finite and non-negative, got {nj}");
        EnergyNj(nj)
    }

    /// Returns the value in nanojoules.
    pub const fn nj(self) -> f64 {
        self.0
    }

    /// Returns the value in joules.
    pub fn joules(self) -> f64 {
        self.0 * 1e-9
    }
}

impl fmt::Display for EnergyNj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}nJ", self.0)
    }
}

impl Add for EnergyNj {
    type Output = EnergyNj;
    fn add(self, rhs: EnergyNj) -> EnergyNj {
        EnergyNj(self.0 + rhs.0)
    }
}

impl AddAssign for EnergyNj {
    fn add_assign(&mut self, rhs: EnergyNj) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for EnergyNj {
    type Output = EnergyNj;
    fn mul(self, rhs: u64) -> EnergyNj {
        EnergyNj(self.0 * rhs as f64)
    }
}

impl Mul<f64> for EnergyNj {
    type Output = EnergyNj;
    fn mul(self, rhs: f64) -> EnergyNj {
        EnergyNj(self.0 * rhs)
    }
}

impl std::iter::Sum for EnergyNj {
    fn sum<I: Iterator<Item = EnergyNj>>(iter: I) -> EnergyNj {
        iter.fold(EnergyNj::ZERO, |a, b| a + b)
    }
}

/// Whether a memory access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load (or instruction fetch) access.
    Read,
    /// A store access.
    Write,
}

impl AccessKind {
    /// True for [`AccessKind::Write`].
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// Capacity expressed in bytes with convenience constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Capacity(u64);

impl Capacity {
    /// Creates a capacity from bytes.
    pub const fn from_bytes(b: u64) -> Self {
        Capacity(b)
    }

    /// Creates a capacity from kibibytes.
    pub const fn from_kib(k: u64) -> Self {
        Capacity(k * 1024)
    }

    /// Creates a capacity from mebibytes.
    pub const fn from_mib(m: u64) -> Self {
        Capacity(m * 1024 * 1024)
    }

    /// Returns the capacity in bytes.
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// Returns the capacity in kibibytes (truncating).
    pub const fn kib(self) -> u64 {
        self.0 / 1024
    }

    /// Returns the capacity in mebibytes (truncating).
    pub const fn mib(self) -> u64 {
        self.0 / (1024 * 1024)
    }
}

impl fmt::Display for Capacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 * 1024 && self.0.is_multiple_of(1024 * 1024) {
            write!(f, "{}MB", self.mib())
        } else if self.0 >= 1024 && self.0.is_multiple_of(1024) {
            write!(f, "{}KB", self.kib())
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_roundtrip_and_offset() {
        let a = Addr::new(0xdead_beef);
        assert_eq!(a.raw(), 0xdead_beef);
        assert_eq!(a.offset(0x11).raw(), 0xdead_bf00);
        assert_eq!(format!("{a}"), "0xdeadbeef");
    }

    #[test]
    fn addr_offset_wraps() {
        let a = Addr::new(u64::MAX);
        assert_eq!(a.offset(1).raw(), 0);
    }

    #[test]
    fn block_geometry_maps_addresses() {
        let g = BlockGeometry::new(128);
        assert_eq!(g.offset_bits(), 7);
        assert_eq!(g.block_of(Addr::new(0)).index(), 0);
        assert_eq!(g.block_of(Addr::new(127)).index(), 0);
        assert_eq!(g.block_of(Addr::new(128)).index(), 1);
        assert_eq!(g.base_of(BlockAddr::from_index(3)).raw(), 384);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn block_geometry_rejects_non_power_of_two() {
        let _ = BlockGeometry::new(96);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn block_geometry_rejects_zero() {
        let _ = BlockGeometry::new(0);
    }

    #[test]
    fn cycle_arithmetic() {
        let c = Cycle::new(10);
        assert_eq!((c + 5).raw(), 15);
        assert_eq!(c + 5 - c, 5);
        assert_eq!(c.max(Cycle::new(3)), c);
        assert_eq!(Cycle::new(3).max(c), c);
        assert_eq!(Cycle::new(3).saturating_since(c), 0);
        assert_eq!(c.saturating_since(Cycle::new(3)), 7);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn cycle_subtraction_underflow_panics() {
        let _ = Cycle::new(1) - Cycle::new(2);
    }

    #[test]
    fn energy_accumulates() {
        let mut e = EnergyNj::ZERO;
        e += EnergyNj::new(0.42);
        e += EnergyNj::new(3.3);
        assert!((e.nj() - 3.72).abs() < 1e-12);
        assert!((e.joules() - 3.72e-9).abs() < 1e-21);
        assert_eq!((EnergyNj::new(0.5) * 4u64).nj(), 2.0);
        let total: EnergyNj = [EnergyNj::new(1.0), EnergyNj::new(2.0)].into_iter().sum();
        assert_eq!(total.nj(), 3.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn energy_rejects_negative() {
        let _ = EnergyNj::new(-1.0);
    }

    #[test]
    fn capacity_display() {
        assert_eq!(Capacity::from_mib(8).to_string(), "8MB");
        assert_eq!(Capacity::from_kib(64).to_string(), "64KB");
        assert_eq!(Capacity::from_bytes(100).to_string(), "100B");
        assert_eq!(Capacity::from_mib(2).bytes(), 2 * 1024 * 1024);
    }

    #[test]
    fn access_kind_is_write() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
    }
}
