//! The smart-search (ss) array: partial tags cached near the core.
//!
//! D-NUCA's ss policies keep the 7 *least-significant* tag bits of every
//! block in a small array by the processor (Section 4: "We use the least
//! significant tag bits to decrease the probability of false hits").
//! A lookup compares the requested block's partial tag against all ways of
//! its set: matching positions are candidates (possibly false hits); no
//! match anywhere guarantees a miss, which lets ss-performance start the
//! memory access early.

use simbase::snapshot::{Decoder, Encoder, SnapshotError};
use simbase::BlockAddr;

/// Number of partial-tag bits cached per block (paper Section 4).
pub const PARTIAL_TAG_BITS: u32 = 7;

/// Entry bit marking the way occupied; the low 7 bits hold the partial
/// tag, so one byte encodes the whole entry and a single compare against
/// `VALID | tag` decides a match.
const VALID: u8 = 0x80;

/// The smart-search array for one cache: `sets × ways` 7-bit partial tags.
///
/// Entries are packed one byte per way (valid bit + tag), and lookups
/// return a way bitmask rather than an allocated list — the hot path runs
/// one probe per access and must not touch the allocator.
#[derive(Debug, Clone)]
pub struct SmartSearchArray {
    /// `sets * ways` packed entries: `VALID | partial_tag`, or 0 if empty.
    entries: Vec<u8>,
    ways: u32,
    set_mask: u64,
    set_bits: u32,
}

impl SmartSearchArray {
    /// Creates an array for `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero or exceeds
    /// 64 (lookups report candidates as a `u64` way mask).
    pub fn new(sets: usize, ways: u32) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways > 0, "need at least one way");
        assert!(ways <= 64, "way mask is 64 bits");
        SmartSearchArray {
            entries: vec![0; sets * ways as usize],
            ways,
            set_mask: sets as u64 - 1,
            set_bits: sets.trailing_zeros(),
        }
    }

    /// The partial tag of `block`: its least-significant tag bits (the
    /// bits just above the set index).
    pub fn partial_tag(&self, block: BlockAddr) -> u8 {
        ((block.index() >> self.set_bits) & ((1 << PARTIAL_TAG_BITS) - 1)) as u8
    }

    /// Set index of `block`.
    pub fn set_of(&self, block: BlockAddr) -> usize {
        (block.index() & self.set_mask) as usize
    }

    #[inline]
    fn idx(&self, set: usize, way: u32) -> usize {
        set * self.ways as usize + way as usize
    }

    /// Looks up `block`: returns a bitmask of the ways whose partial tags
    /// match (candidate locations; a superset of the true location). Bit
    /// `w` set means way `w` is a candidate.
    #[inline]
    pub fn lookup_mask(&self, block: BlockAddr) -> u64 {
        let probe = VALID | self.partial_tag(block);
        let base = self.set_of(block) * self.ways as usize;
        let mut mask = 0u64;
        for w in 0..self.ways as usize {
            mask |= ((self.entries[base + w] == probe) as u64) << w;
        }
        mask
    }

    /// Looks up `block` as an ascending list of candidate ways (the
    /// list-building convenience over [`Self::lookup_mask`]).
    pub fn lookup(&self, block: BlockAddr) -> Vec<u32> {
        let mut mask = self.lookup_mask(block);
        let mut ways = Vec::with_capacity(mask.count_ones() as usize);
        while mask != 0 {
            ways.push(mask.trailing_zeros());
            mask &= mask - 1;
        }
        ways
    }

    /// Records `block` as resident in `way` of its set.
    #[inline]
    pub fn insert(&mut self, block: BlockAddr, way: u32) {
        let entry = VALID | self.partial_tag(block);
        let i = self.idx(self.set_of(block), way);
        self.entries[i] = entry;
    }

    /// Invalidates `way` of `block`'s set.
    #[inline]
    pub fn invalidate(&mut self, block: BlockAddr, way: u32) {
        let i = self.idx(self.set_of(block), way);
        self.entries[i] = 0;
    }

    /// Swaps the recorded contents of two ways of `block`'s set (mirrors a
    /// bubble swap in the banks).
    #[inline]
    pub fn swap(&mut self, block: BlockAddr, way_a: u32, way_b: u32) {
        let set = self.set_of(block);
        let (a, b) = (self.idx(set, way_a), self.idx(set, way_b));
        self.entries.swap(a, b);
    }

    /// Total storage in bits (the paper's 7 bits per block).
    pub fn storage_bits(&self) -> u64 {
        self.entries.len() as u64 * PARTIAL_TAG_BITS as u64
    }

    /// Serialises the packed partial-tag entries.
    pub fn save_state(&self, e: &mut Encoder) {
        e.put_u8_slice(&self.entries);
    }

    /// Restores entries written by [`Self::save_state`] into an array of
    /// the same geometry.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Malformed`] if the entry count differs.
    pub fn load_state(&mut self, d: &mut Decoder) -> Result<(), SnapshotError> {
        let entries = d.u8_slice()?;
        if entries.len() != self.entries.len() {
            return Err(SnapshotError::Malformed("ss array geometry mismatch"));
        }
        self.entries = entries;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    #[test]
    fn resident_block_is_always_a_candidate() {
        let mut s = SmartSearchArray::new(16, 4);
        s.insert(blk(0x123), 2);
        assert!(s.lookup(blk(0x123)).contains(&2));
    }

    #[test]
    fn empty_array_reports_no_candidates() {
        let s = SmartSearchArray::new(16, 4);
        assert!(s.lookup(blk(99)).is_empty());
        assert_eq!(s.lookup_mask(blk(99)), 0);
    }

    #[test]
    fn false_hits_happen_when_partial_tags_collide() {
        let mut s = SmartSearchArray::new(16, 4);
        // Two blocks in the same set whose tags agree in the low 7 bits:
        // tag differs only above bit 7.
        let a = blk(5); // set 5, tag 0
        let b = blk(5 + 16 * (1 << PARTIAL_TAG_BITS) as u64); // same set, same partial tag
        assert_eq!(s.partial_tag(a), s.partial_tag(b));
        s.insert(a, 0);
        // Looking up b finds way 0 as a (false) candidate.
        assert_eq!(s.lookup(b), vec![0]);
        assert_eq!(s.lookup_mask(b), 1);
    }

    #[test]
    fn different_partial_tags_do_not_collide() {
        let mut s = SmartSearchArray::new(16, 4);
        let a = blk(5);
        let c = blk(5 + 16); // same set, partial tag 1
        assert_ne!(s.partial_tag(a), s.partial_tag(c));
        s.insert(a, 0);
        assert!(s.lookup(c).is_empty());
    }

    #[test]
    fn invalidate_removes_candidate() {
        let mut s = SmartSearchArray::new(16, 4);
        s.insert(blk(7), 1);
        s.invalidate(blk(7), 1);
        assert!(s.lookup(blk(7)).is_empty());
    }

    #[test]
    fn swap_mirrors_bank_movement() {
        let mut s = SmartSearchArray::new(16, 4);
        s.insert(blk(3), 3);
        s.swap(blk(3), 3, 0);
        assert_eq!(s.lookup(blk(3)), vec![0]);
    }

    #[test]
    fn mask_and_list_views_agree() {
        let mut s = SmartSearchArray::new(16, 8);
        for w in [1u32, 4, 6] {
            s.insert(blk(9), w);
        }
        let mask = s.lookup_mask(blk(9));
        assert_eq!(mask, (1 << 1) | (1 << 4) | (1 << 6));
        assert_eq!(s.lookup(blk(9)), vec![1, 4, 6]);
    }

    #[test]
    fn storage_matches_seven_bits_per_block() {
        // The paper's 8-MB/128-B/16-way cache: 4096 sets x 16 ways x 7 bits
        // = 56 KB of partial tags.
        let s = SmartSearchArray::new(4096, 16);
        assert_eq!(s.storage_bits(), 4096 * 16 * 7);
        assert_eq!(s.storage_bits() / 8 / 1024, 56);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        let _ = SmartSearchArray::new(10, 4);
    }

    #[test]
    fn state_roundtrips_and_rejects_geometry_mismatch() {
        let mut s = SmartSearchArray::new(16, 4);
        for w in 0..4u32 {
            s.insert(blk(3 + w as u64 * 16), w);
        }
        let mut e = Encoder::new();
        s.save_state(&mut e);
        let bytes = e.into_bytes();

        let mut restored = SmartSearchArray::new(16, 4);
        let mut d = Decoder::new(&bytes);
        restored.load_state(&mut d).expect("load");
        d.finish().expect("no trailing bytes");
        assert_eq!(s.lookup_mask(blk(3)), restored.lookup_mask(blk(3)));
        assert_eq!(restored.entries, s.entries);

        let mut wrong = SmartSearchArray::new(32, 4);
        let mut d = Decoder::new(&bytes);
        assert!(wrong.load_state(&mut d).is_err());
    }
}
