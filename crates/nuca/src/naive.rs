//! The naive reference oracle: the original, obviously-correct D-NUCA
//! implementation kept verbatim for differential testing.
//!
//! [`crate::cache`] and [`crate::smart_search`] were rewritten around
//! struct-of-arrays slots, a precomputed set → bank table, and bitmask
//! candidate lookups. This module preserves the structures they replaced —
//! array-of-structs slots, allocated candidate lists, `min_by_key` LRU
//! scans — with identical orchestration. The differential property suite
//! drives both with the same access streams and requires identical
//! outcomes and bit-identical statistics.
//!
//! Do not optimize this code: its value is being trivially auditable
//! against the paper, not fast.

use crate::cache::{DnucaConfig, SearchPolicy};
use crate::compress::CompressModel;
use crate::compressed::CnucaConfig;
use crate::smart_search::PARTIAL_TAG_BITS;
use crate::stats::{CnucaStats, DnucaStats};
use cachemodel::catalog::{self, DnucaGeometry, BLOCK_BYTES};
use memsys::lower::LowerOutcome;
use memsys::memory::MainMemory;
use simbase::{AccessKind, BlockAddr, Cycle};

/// The original smart-search array: separate tag and valid vectors,
/// candidate lists allocated per lookup.
#[derive(Debug, Clone)]
pub struct NaiveSmartSearchArray {
    tags: Vec<u8>, // sets * ways
    valid: Vec<bool>,
    sets: usize,
    ways: u32,
    set_bits: u32,
}

impl NaiveSmartSearchArray {
    /// Creates an array for `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(sets: usize, ways: u32) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways > 0, "need at least one way");
        NaiveSmartSearchArray {
            tags: vec![0; sets * ways as usize],
            valid: vec![false; sets * ways as usize],
            sets,
            ways,
            set_bits: sets.trailing_zeros(),
        }
    }

    /// The partial tag of `block`.
    pub fn partial_tag(&self, block: BlockAddr) -> u8 {
        ((block.index() >> self.set_bits) & ((1 << PARTIAL_TAG_BITS) - 1)) as u8
    }

    /// Set index of `block`.
    pub fn set_of(&self, block: BlockAddr) -> usize {
        (block.index() % self.sets as u64) as usize
    }

    fn idx(&self, set: usize, way: u32) -> usize {
        set * self.ways as usize + way as usize
    }

    /// Looks up `block`: returns the ways whose partial tags match.
    pub fn lookup(&self, block: BlockAddr) -> Vec<u32> {
        let set = self.set_of(block);
        let pt = self.partial_tag(block);
        (0..self.ways)
            .filter(|&w| {
                let i = self.idx(set, w);
                self.valid[i] && self.tags[i] == pt
            })
            .collect()
    }

    /// Records `block` as resident in `way` of its set.
    pub fn insert(&mut self, block: BlockAddr, way: u32) {
        let set = self.set_of(block);
        let pt = self.partial_tag(block);
        let i = self.idx(set, way);
        self.tags[i] = pt;
        self.valid[i] = true;
    }

    /// Invalidates `way` of `block`'s set.
    pub fn invalidate(&mut self, block: BlockAddr, way: u32) {
        let set = self.set_of(block);
        let i = self.idx(set, way);
        self.valid[i] = false;
    }

    /// Swaps the recorded contents of two ways of `block`'s set.
    pub fn swap(&mut self, block: BlockAddr, way_a: u32, way_b: u32) {
        let set = self.set_of(block);
        let (a, b) = (self.idx(set, way_a), self.idx(set, way_b));
        self.tags.swap(a, b);
        self.valid.swap(a, b);
    }
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    block: BlockAddr,
    dirty: bool,
    valid: bool,
    last_use: u64,
}

const EMPTY: Slot = Slot {
    block: BlockAddr::from_index(u64::MAX),
    dirty: false,
    valid: false,
    last_use: 0,
};

/// Cycles a bank is occupied by a full (tag + data) access.
const BANK_OCCUPANCY: u64 = 3;
/// Cycles a bank is occupied by a tag-only search.
const SEARCH_OCCUPANCY: u64 = 2;

/// The original D-NUCA cache (array-of-structs slots, per-access
/// candidate-list allocation), orchestrated identically to
/// [`crate::DnucaCache`].
#[derive(Debug)]
pub struct NaiveDnucaCache {
    config: DnucaConfig,
    geo: DnucaGeometry,
    /// `sets × assoc` slots; way `w` of a set lives at bank position
    /// `w / ways_per_position`.
    slots: Vec<Slot>,
    sets: usize,
    ways_per_position: u32,
    ss: NaiveSmartSearchArray,
    /// Way of the last hit per set, `None` where no hit has happened yet
    /// (the reference twin of the flat `MEMO_NONE`-sentinel vector).
    memo: Vec<Option<u32>>,
    /// Per-bank busy-until times.
    bank_busy: Vec<Cycle>,
    memory: MainMemory,
    stats: DnucaStats,
    use_clock: u64,
}

impl NaiveDnucaCache {
    /// Builds the reference cache from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent.
    pub fn new(config: DnucaConfig) -> Self {
        assert!(
            (config.assoc as usize).is_multiple_of(config.n_positions),
            "positions must divide associativity"
        );
        let geo = DnucaGeometry::new(
            cachemodel::Tech::micro2003_70nm(),
            config.capacity,
            config.n_banks,
            config.n_positions,
        );
        let blocks = config.capacity.bytes() / BLOCK_BYTES;
        let sets = (blocks / config.assoc as u64) as usize;
        NaiveDnucaCache {
            slots: vec![EMPTY; sets * config.assoc as usize],
            sets,
            ways_per_position: config.assoc / config.n_positions as u32,
            ss: NaiveSmartSearchArray::new(sets, config.assoc),
            memo: vec![None; sets],
            bank_busy: vec![Cycle::ZERO; config.n_banks],
            memory: MainMemory::micro2003(),
            stats: DnucaStats::new(config.n_positions, config.n_banks),
            geo,
            config,
            use_clock: 0,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DnucaStats {
        &self.stats
    }

    /// Off-chip accesses.
    pub fn memory_accesses(&self) -> u64 {
        self.memory.accesses()
    }

    /// Fills every slot (and the smart-search array) with placeholder
    /// blocks, mirroring [`crate::DnucaCache::prefill`].
    ///
    /// # Panics
    ///
    /// Panics if the cache is not empty.
    pub fn prefill(&mut self) {
        let sets = self.sets as u64;
        let base = (u64::MAX / 256) / sets * sets;
        for set in 0..self.sets {
            for w in 0..self.config.assoc {
                let block = BlockAddr::from_index(base + set as u64 + w as u64 * sets);
                {
                    let slot = self.slot_mut(set, w);
                    assert!(!slot.valid, "prefill on a non-empty cache");
                    *slot = Slot {
                        block,
                        dirty: false,
                        valid: true,
                        last_use: 0,
                    };
                }
                self.ss.insert(block, w);
            }
        }
    }

    fn set_of(&self, block: BlockAddr) -> usize {
        (block.index() % self.sets as u64) as usize
    }

    fn bank_of(&self, set: usize, w: u32) -> usize {
        let bank_set = set % self.geo.n_bank_sets();
        let position = (w / self.ways_per_position) as usize;
        self.geo.bank_index(bank_set, position)
    }

    fn position_of_way(&self, w: u32) -> usize {
        (w / self.ways_per_position) as usize
    }

    fn slot(&self, set: usize, w: u32) -> &Slot {
        &self.slots[set * self.config.assoc as usize + w as usize]
    }

    fn slot_mut(&mut self, set: usize, w: u32) -> &mut Slot {
        &mut self.slots[set * self.config.assoc as usize + w as usize]
    }

    fn bank_access(&mut self, bank: usize, t: Cycle) -> Cycle {
        let start = t.max(self.bank_busy[bank]);
        self.bank_busy[bank] = start + BANK_OCCUPANCY;
        self.stats.bank_accesses[bank] += 1;
        start + self.geo.bank_latency_cycles(bank)
    }

    fn bank_search(&mut self, bank: usize, t: Cycle) -> Cycle {
        let start = t.max(self.bank_busy[bank]);
        self.bank_busy[bank] = start + SEARCH_OCCUPANCY;
        self.stats.bank_searches[bank] += 1;
        start + self.geo.bank_latency_cycles(bank)
    }

    fn swap_banks(&mut self, bank_a: usize, bank_b: usize, t: Cycle) {
        for bank in [bank_a, bank_b] {
            let start = t.max(self.bank_busy[bank]);
            self.bank_busy[bank] = start + 2 * BANK_OCCUPANCY;
            self.stats.bank_accesses[bank] += 2; // read + write
        }
        self.stats.swaps.inc();
    }

    fn find(&self, set: usize, block: BlockAddr) -> Option<u32> {
        (0..self.config.assoc).find(|&w| {
            let s = self.slot(set, w);
            s.valid && s.block == block
        })
    }

    fn lru_way_at_position(&self, set: usize, p: usize) -> u32 {
        let lo = p as u32 * self.ways_per_position;
        (lo..lo + self.ways_per_position)
            .min_by_key(|&w| {
                let s = self.slot(set, w);
                (s.valid, s.last_use) // invalid slots sort first
            })
            .expect("position has ways")
    }

    fn bubble_promote(&mut self, set: usize, w: u32, t: Cycle) -> u32 {
        let p = self.position_of_way(w);
        if p == 0 {
            return w;
        }
        let other = self.lru_way_at_position(set, p - 1);
        let (a, b) = (
            set * self.config.assoc as usize + w as usize,
            set * self.config.assoc as usize + other as usize,
        );
        self.slots.swap(a, b);
        let moved = self.slot(set, other).block;
        self.ss.swap(moved, w, other);
        let bank_w = self.bank_of(set, w);
        let bank_o = self.bank_of(set, other);
        self.swap_banks(bank_w, bank_o, t);
        other
    }

    fn handle_miss(
        &mut self,
        block: BlockAddr,
        kind: AccessKind,
        detect_at: Cycle,
    ) -> LowerOutcome {
        self.stats.misses.inc();
        self.stats.memory_reads.inc();
        let mem_done = self.memory.access(BLOCK_BYTES, detect_at);
        let set = self.set_of(block);
        let slowest = self.config.n_positions - 1;
        let victim_way = self.lru_way_at_position(set, slowest);
        let victim = *self.slot(set, victim_way);
        if victim.valid {
            self.ss.invalidate(victim.block, victim_way);
            if victim.dirty {
                self.stats.writebacks.inc();
                let _ = self.memory.access(BLOCK_BYTES, mem_done);
            }
        }
        if self.memo[set] == Some(victim_way) {
            self.memo[set] = None;
        }
        let clock = self.use_clock;
        *self.slot_mut(set, victim_way) = Slot {
            block,
            dirty: kind.is_write(),
            valid: true,
            last_use: clock,
        };
        self.ss.insert(block, victim_way);
        // The fill is a full access to the slowest bank.
        let bank = self.bank_of(set, victim_way);
        let _ = self.bank_access(bank, mem_done);
        LowerOutcome {
            complete_at: mem_done,
            hit: false,
        }
    }

    /// Demand access, mirroring [`crate::DnucaCache::access_block`].
    pub fn access_block(&mut self, block: BlockAddr, kind: AccessKind, now: Cycle) -> LowerOutcome {
        self.use_clock += 1;
        self.stats.accesses.inc();
        let set = self.set_of(block);
        let ss_done = now + catalog::smart_search_latency_cycles();
        let candidates = self.ss.lookup(block);
        let hit_way = self.find(set, block);

        match self.config.policy {
            SearchPolicy::SsPerformance => {
                self.stats.ss_accesses.inc();
                // Multicast: every bank position of this set is searched.
                let bank_set_banks: Vec<usize> = (0..self.config.n_positions)
                    .map(|p| self.geo.bank_index(set % self.geo.n_bank_sets(), p))
                    .collect();
                let mut slowest_search = now;
                for (p, &bank) in bank_set_banks.iter().enumerate() {
                    if hit_way.map(|w| self.position_of_way(w)) == Some(p) {
                        continue; // the hit bank does a full access below
                    }
                    let done = self.bank_search(bank, now);
                    slowest_search = slowest_search.max(done);
                }
                match hit_way {
                    Some(w) => {
                        let p = self.position_of_way(w);
                        self.stats.position_hits.record(p);
                        let clock = self.use_clock;
                        {
                            let s = self.slot_mut(set, w);
                            s.last_use = clock;
                            if kind.is_write() {
                                s.dirty = true;
                            }
                        }
                        let bank = self.bank_of(set, w);
                        let done = self.bank_access(bank, now);
                        let fw = self.bubble_promote(set, w, done);
                        self.memo[set] = Some(fw);
                        LowerOutcome {
                            complete_at: done,
                            hit: true,
                        }
                    }
                    None => {
                        let detect_at = if candidates.is_empty() {
                            self.stats.early_misses.inc();
                            ss_done
                        } else {
                            self.stats.false_hits.add(candidates.len() as u64);
                            slowest_search
                        };
                        self.handle_miss(block, kind, detect_at)
                    }
                }
            }
            SearchPolicy::SsEnergy => {
                self.stats.ss_accesses.inc();
                // Probe only candidate positions, nearest first, serially.
                let mut positions: Vec<usize> = candidates
                    .iter()
                    .map(|&w| self.position_of_way(w))
                    .collect();
                positions.sort_unstable();
                positions.dedup();
                let mut t = ss_done;
                for p in positions {
                    let bank = self.geo.bank_index(set % self.geo.n_bank_sets(), p);
                    match hit_way {
                        Some(w) if self.position_of_way(w) == p => {
                            self.stats.position_hits.record(p);
                            let clock = self.use_clock;
                            {
                                let s = self.slot_mut(set, w);
                                s.last_use = clock;
                                if kind.is_write() {
                                    s.dirty = true;
                                }
                            }
                            let done = self.bank_access(bank, t);
                            let fw = self.bubble_promote(set, w, done);
                            self.memo[set] = Some(fw);
                            return LowerOutcome {
                                complete_at: done,
                                hit: true,
                            };
                        }
                        _ => {
                            // False hit: the partial tag matched but the
                            // block is not here.
                            self.stats.false_hits.inc();
                            t = self.bank_search(bank, t);
                        }
                    }
                }
                if candidates.is_empty() {
                    self.stats.early_misses.inc();
                }
                self.handle_miss(block, kind, t)
            }
            SearchPolicy::WayMemo => {
                self.stats.memo_lookups.inc();
                let mut t = now + catalog::way_memo_latency_cycles();
                let memo_position = self.memo[set].map(|w| self.position_of_way(w));
                if let Some(mp) = memo_position {
                    // Probe the memoized position with one full access.
                    let bank = self.geo.bank_index(set % self.geo.n_bank_sets(), mp);
                    match hit_way {
                        Some(w) if self.position_of_way(w) == mp => {
                            self.stats.memo_hits.inc();
                            self.stats.position_hits.record(mp);
                            let clock = self.use_clock;
                            {
                                let s = self.slot_mut(set, w);
                                s.last_use = clock;
                                if kind.is_write() {
                                    s.dirty = true;
                                }
                            }
                            let done = self.bank_access(bank, t);
                            let fw = self.bubble_promote(set, w, done);
                            self.memo[set] = Some(fw);
                            return LowerOutcome {
                                complete_at: done,
                                hit: true,
                            };
                        }
                        _ => {
                            // Memo miss: the speculative access was wasted.
                            t = self.bank_access(bank, t);
                        }
                    }
                }
                // Fall back to the serial candidate search (as ss-energy),
                // skipping the position the memo probe already ruled out;
                // the ss array was read in parallel with the memo probe.
                self.stats.ss_accesses.inc();
                let mut positions: Vec<usize> = candidates
                    .iter()
                    .map(|&w| self.position_of_way(w))
                    .collect();
                positions.sort_unstable();
                positions.dedup();
                t = t.max(ss_done);
                for p in positions {
                    if memo_position == Some(p) {
                        continue;
                    }
                    let bank = self.geo.bank_index(set % self.geo.n_bank_sets(), p);
                    match hit_way {
                        Some(w) if self.position_of_way(w) == p => {
                            self.stats.position_hits.record(p);
                            let clock = self.use_clock;
                            {
                                let s = self.slot_mut(set, w);
                                s.last_use = clock;
                                if kind.is_write() {
                                    s.dirty = true;
                                }
                            }
                            let done = self.bank_access(bank, t);
                            let fw = self.bubble_promote(set, w, done);
                            self.memo[set] = Some(fw);
                            return LowerOutcome {
                                complete_at: done,
                                hit: true,
                            };
                        }
                        _ => {
                            self.stats.false_hits.inc();
                            t = self.bank_search(bank, t);
                        }
                    }
                }
                if candidates.is_empty() {
                    self.stats.early_misses.inc();
                }
                self.handle_miss(block, kind, t)
            }
        }
    }
}

/// The reference compressed-NUCA cache: array-of-structs slots and
/// per-access candidate lists, orchestrated identically to
/// [`crate::compressed::CompressedNucaCache`]. Do not optimize.
#[derive(Debug)]
pub struct NaiveCnucaCache {
    config: CnucaConfig,
    geo: DnucaGeometry,
    model: CompressModel,
    /// `sets × ways` slots; the first `2·wpp` ways of a set are the
    /// half-frame compressed ways of position 0.
    slots: Vec<Slot>,
    sets: usize,
    ways_per_position: u32,
    n_ways: u32,
    ss: NaiveSmartSearchArray,
    bank_busy: Vec<Cycle>,
    memory: MainMemory,
    stats: CnucaStats,
    use_clock: u64,
}

impl NaiveCnucaCache {
    /// Builds the reference cache from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent.
    pub fn new(config: CnucaConfig) -> Self {
        assert!(
            (config.assoc as usize).is_multiple_of(config.n_positions),
            "positions must divide associativity"
        );
        let geo = DnucaGeometry::new(
            cachemodel::Tech::micro2003_70nm(),
            config.capacity,
            config.n_banks,
            config.n_positions,
        );
        let blocks = config.capacity.bytes() / BLOCK_BYTES;
        let sets = (blocks / config.assoc as u64) as usize;
        let wpp = config.assoc / config.n_positions as u32;
        let n_ways = 2 * wpp + (config.n_positions as u32 - 1) * wpp;
        NaiveCnucaCache {
            slots: vec![EMPTY; sets * n_ways as usize],
            sets,
            ways_per_position: wpp,
            n_ways,
            ss: NaiveSmartSearchArray::new(sets, n_ways),
            bank_busy: vec![Cycle::ZERO; config.n_banks],
            memory: MainMemory::micro2003(),
            stats: CnucaStats::new(config.n_positions, config.n_banks),
            model: CompressModel::new(config.comp_seed),
            geo,
            config,
            use_clock: 0,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CnucaStats {
        &self.stats
    }

    /// Off-chip accesses.
    pub fn memory_accesses(&self) -> u64 {
        self.memory.accesses()
    }

    fn fast_ways(&self) -> u32 {
        2 * self.ways_per_position
    }

    /// Fills every slot with placeholder blocks, mirroring
    /// [`crate::compressed::CompressedNucaCache::prefill`].
    ///
    /// # Panics
    ///
    /// Panics if the cache is not empty.
    pub fn prefill(&mut self) {
        let sets = self.sets as u64;
        let base = (u64::MAX / 256) / sets * sets;
        for set in 0..self.sets {
            let mut k = 0u64;
            for w in 0..self.n_ways {
                let block = loop {
                    let b = BlockAddr::from_index(base + set as u64 + k * sets);
                    k += 1;
                    if w >= self.fast_ways() || self.model.is_compressible(b) {
                        break b;
                    }
                };
                {
                    let slot = self.slot_mut(set, w);
                    assert!(!slot.valid, "prefill on a non-empty cache");
                    *slot = Slot {
                        block,
                        dirty: false,
                        valid: true,
                        last_use: 0,
                    };
                }
                self.ss.insert(block, w);
            }
        }
    }

    fn set_of(&self, block: BlockAddr) -> usize {
        (block.index() % self.sets as u64) as usize
    }

    fn position_of_way(&self, w: u32) -> usize {
        if w < self.fast_ways() {
            0
        } else {
            1 + ((w - self.fast_ways()) / self.ways_per_position) as usize
        }
    }

    fn ways_at_position(&self, p: usize) -> (u32, u32) {
        if p == 0 {
            (0, self.fast_ways())
        } else {
            (
                self.fast_ways() + (p as u32 - 1) * self.ways_per_position,
                self.ways_per_position,
            )
        }
    }

    fn bank_of(&self, set: usize, w: u32) -> usize {
        let bank_set = set % self.geo.n_bank_sets();
        self.geo.bank_index(bank_set, self.position_of_way(w))
    }

    fn slot(&self, set: usize, w: u32) -> &Slot {
        &self.slots[set * self.n_ways as usize + w as usize]
    }

    fn slot_mut(&mut self, set: usize, w: u32) -> &mut Slot {
        &mut self.slots[set * self.n_ways as usize + w as usize]
    }

    fn bank_access(&mut self, bank: usize, t: Cycle) -> Cycle {
        let start = t.max(self.bank_busy[bank]);
        self.bank_busy[bank] = start + BANK_OCCUPANCY;
        self.stats.bank_accesses[bank] += 1;
        start + self.geo.bank_latency_cycles(bank)
    }

    fn bank_search(&mut self, bank: usize, t: Cycle) -> Cycle {
        let start = t.max(self.bank_busy[bank]);
        self.bank_busy[bank] = start + SEARCH_OCCUPANCY;
        self.stats.bank_searches[bank] += 1;
        start + self.geo.bank_latency_cycles(bank)
    }

    fn swap_banks(&mut self, bank_a: usize, bank_b: usize, t: Cycle) {
        for bank in [bank_a, bank_b] {
            let start = t.max(self.bank_busy[bank]);
            self.bank_busy[bank] = start + 2 * BANK_OCCUPANCY;
            self.stats.bank_accesses[bank] += 2; // read + write
        }
        self.stats.swaps.inc();
    }

    fn find(&self, set: usize, block: BlockAddr) -> Option<u32> {
        (0..self.n_ways).find(|&w| {
            let s = self.slot(set, w);
            s.valid && s.block == block
        })
    }

    fn lru_way_at_position(&self, set: usize, p: usize) -> u32 {
        let (lo, n) = self.ways_at_position(p);
        (lo..lo + n)
            .min_by_key(|&w| {
                let s = self.slot(set, w);
                (s.valid, s.last_use)
            })
            .expect("position has ways")
    }

    /// Architectural half of a promotion: distance-associative jump into
    /// position 0 for compressible blocks, a single bubble hop (floored
    /// at position 1) for incompressible ones; returns the partner way
    /// when a swap happened.
    fn bubble_swap_slots(&mut self, set: usize, w: u32) -> Option<u32> {
        let p = self.position_of_way(w);
        if p == 0 {
            return None;
        }
        let target = if self.model.is_compressible(self.slot(set, w).block) {
            0
        } else if p == 1 {
            return None;
        } else {
            p - 1
        };
        let other = self.lru_way_at_position(set, target);
        let (a, b) = (
            set * self.n_ways as usize + w as usize,
            set * self.n_ways as usize + other as usize,
        );
        self.slots.swap(a, b);
        let moved = self.slot(set, other).block;
        self.ss.swap(moved, w, other);
        Some(other)
    }

    /// Bubble promotion with bank timing; counts refused position-0 hops.
    fn bubble_promote(&mut self, set: usize, w: u32, t: Cycle) {
        match self.bubble_swap_slots(set, w) {
            Some(other) => {
                let bank_w = self.bank_of(set, w);
                let bank_o = self.bank_of(set, other);
                self.swap_banks(bank_w, bank_o, t);
            }
            None => {
                if self.position_of_way(w) == 1 {
                    self.stats.promotion_refusals.inc();
                }
            }
        }
    }

    fn handle_miss(
        &mut self,
        block: BlockAddr,
        kind: AccessKind,
        detect_at: Cycle,
    ) -> LowerOutcome {
        self.stats.misses.inc();
        self.stats.memory_reads.inc();
        let mem_done = self.memory.access(BLOCK_BYTES, detect_at);
        let set = self.set_of(block);
        let slowest = self.config.n_positions - 1;
        let victim_way = self.lru_way_at_position(set, slowest);
        let victim = *self.slot(set, victim_way);
        if victim.valid {
            self.ss.invalidate(victim.block, victim_way);
            if victim.dirty {
                self.stats.writebacks.inc();
                let _ = self.memory.access(BLOCK_BYTES, mem_done);
            }
        }
        let clock = self.use_clock;
        *self.slot_mut(set, victim_way) = Slot {
            block,
            dirty: kind.is_write(),
            valid: true,
            last_use: clock,
        };
        self.ss.insert(block, victim_way);
        let bank = self.bank_of(set, victim_way);
        let _ = self.bank_access(bank, mem_done);
        LowerOutcome {
            complete_at: mem_done,
            hit: false,
        }
    }

    /// Warm-up access, mirroring
    /// [`crate::compressed::CompressedNucaCache::warm_access_block`]:
    /// every architectural effect of a demand access, no timing or stats.
    pub fn warm_access_block(&mut self, block: BlockAddr, kind: AccessKind) {
        self.use_clock += 1;
        let set = self.set_of(block);
        match self.find(set, block) {
            Some(w) => {
                let clock = self.use_clock;
                {
                    let s = self.slot_mut(set, w);
                    s.last_use = clock;
                    if kind.is_write() {
                        s.dirty = true;
                    }
                }
                let _ = self.bubble_swap_slots(set, w);
            }
            None => {
                let slowest = self.config.n_positions - 1;
                let victim_way = self.lru_way_at_position(set, slowest);
                let victim = *self.slot(set, victim_way);
                if victim.valid {
                    self.ss.invalidate(victim.block, victim_way);
                }
                let clock = self.use_clock;
                *self.slot_mut(set, victim_way) = Slot {
                    block,
                    dirty: kind.is_write(),
                    valid: true,
                    last_use: clock,
                };
                self.ss.insert(block, victim_way);
            }
        }
    }

    /// Demand access, mirroring
    /// [`crate::compressed::CompressedNucaCache::access_block`].
    pub fn access_block(&mut self, block: BlockAddr, kind: AccessKind, now: Cycle) -> LowerOutcome {
        self.use_clock += 1;
        self.stats.accesses.inc();
        self.stats.ss_accesses.inc();
        let set = self.set_of(block);
        let ss_done = now + catalog::smart_search_latency_cycles();
        let candidates = self.ss.lookup(block);
        let hit_way = self.find(set, block);

        // Multicast: every bank position of this set is searched.
        let bank_set_banks: Vec<usize> = (0..self.config.n_positions)
            .map(|p| self.geo.bank_index(set % self.geo.n_bank_sets(), p))
            .collect();
        let mut slowest_search = now;
        for (p, &bank) in bank_set_banks.iter().enumerate() {
            if hit_way.map(|w| self.position_of_way(w)) == Some(p) {
                continue; // the hit bank does a full access below
            }
            let done = self.bank_search(bank, now);
            slowest_search = slowest_search.max(done);
        }
        match hit_way {
            Some(w) => {
                let p = self.position_of_way(w);
                self.stats.position_hits.record(p);
                let clock = self.use_clock;
                {
                    let s = self.slot_mut(set, w);
                    s.last_use = clock;
                    if kind.is_write() {
                        s.dirty = true;
                    }
                }
                let bank = self.bank_of(set, w);
                let mut done = self.bank_access(bank, now);
                if p == 0 {
                    self.stats.decompressions.inc();
                    done += self.config.decomp_cycles;
                }
                self.bubble_promote(set, w, done);
                LowerOutcome {
                    complete_at: done,
                    hit: true,
                }
            }
            None => {
                let detect_at = if candidates.is_empty() {
                    self.stats.early_misses.inc();
                    ss_done
                } else {
                    self.stats.false_hits.add(candidates.len() as u64);
                    slowest_search
                };
                self.handle_miss(block, kind, detect_at)
            }
        }
    }
}
